let () =
  Alcotest.run "soda"
    (List.concat
       [
         Test_obs.suites;
         Test_analyze.suites;
         Test_sim.suites;
         Test_net.suites;
         Test_wire.suites;
         Test_transport.suites;
         Test_window.suites;
         Test_kernel.suites;
         Test_sodal.suites;
         Test_facilities.suites;
         Test_examples.suites;
         Test_extensions.suites;
         Test_baseline.suites;
         Test_properties.suites;
         Test_semantics.suites;
         Test_stream.suites;
         Test_sodal_lang.suites;
         Test_analysis.suites;
        Test_modelcheck.suites;
         Test_chaos.suites;
         Test_store.suites;
         Test_scd.suites;
         Test_scale.suites;
       ])
