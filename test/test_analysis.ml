(* Golden diagnostics for sodalint (lib/analysis): every rule id has a
   broken fixture under test/lint_fixtures/ that must produce exactly
   one diagnostic of that rule at a known file:line:col — and the
   shipped examples/sodal/ programs must all come back clean. Rule
   semantics are documented in docs/ANALYSIS.md. *)

module Sodalint = Soda_analysis.Sodalint
module Diagnostic = Soda_analysis.Diagnostic
module Ast = Soda_sodal_lang.Ast

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let analyze paths =
  Sodalint.analyze
    (List.map (fun path -> { Sodalint.path; text = read_file path }) paths)

(* file:line:col severity rule — the stable part of a diagnostic; the
   message wording is free to evolve *)
let fingerprint (d : Diagnostic.t) =
  Printf.sprintf "%s:%d:%d %s %s" (Filename.basename d.file) d.pos.Ast.line
    d.pos.Ast.col
    (Diagnostic.severity_name d.severity)
    d.rule

(* Each case: the fixture files checked together, and the exact expected
   diagnostics in output order. *)
let golden_cases =
  [
    ([ "sl000_syntax.sodal" ], [ "sl000_syntax.sodal:3:1 error SL000" ]);
    ( [ "sl001_block_in_handler.sodal" ],
      [ "sl001_block_in_handler.sodal:4:3 error SL001" ] );
    ( [ "sl002_current_outside_handler.sodal" ],
      [ "sl002_current_outside_handler.sodal:4:3 error SL002" ] );
    ( [ "sl003_unknown_builtin.sodal" ],
      [ "sl003_unknown_builtin.sodal:4:3 error SL003" ] );
    ([ "sl004_arity.sodal" ], [ "sl004_arity.sodal:4:3 error SL004" ]);
    ([ "sl010_undeclared.sodal" ], [ "sl010_undeclared.sodal:4:14 error SL010" ]);
    ( [ "sl011_duplicate_decl.sodal" ],
      [ "sl011_duplicate_decl.sodal:4:1 warning SL011" ] );
    ( [ "sl012_unused_decl.sodal" ],
      [ "sl012_unused_decl.sodal:3:1 warning SL012" ] );
    ( [ "pingpong_server_broken.sodal" ],
      [ "pingpong_server_broken.sodal:18:17 error SL020" ] );
    ( [ "sl030_close_without_open.sodal" ],
      [ "sl030_close_without_open.sodal:4:3 error SL030" ] );
    ( [ "sl031_double_close.sodal" ],
      [ "sl031_double_close.sodal:6:3 warning SL031" ] );
    ( [ "sl040_enqueue_full.sodal" ],
      [ "sl040_enqueue_full.sodal:7:3 error SL040" ] );
    ( [ "sl041_dequeue_empty.sodal" ],
      [ "sl041_dequeue_empty.sodal:5:14 error SL041" ] );
    ( [ "sl050_requester.sodal"; "sl050_peer.sodal" ],
      [ "sl050_requester.sodal:6:13 warning SL050" ] );
    ( [ "sl051_readvertise.sodal" ],
      [ "sl051_readvertise.sodal:5:3 warning SL051" ] );
    ([ "sl052_unadvertise.sodal" ], [ "sl052_unadvertise.sodal:4:3 error SL052" ]);
    ( [ "sl053_shape_mismatch.sodal" ],
      [ "sl053_shape_mismatch.sodal:16:3 error SL053" ] );
    ( [ "sl054_truncated_put.sodal" ],
      [ "sl054_truncated_put.sodal:17:3 warning SL054" ] );
    ( [ "sl055_a.sodal"; "sl055_b.sodal" ],
      [
        "sl055_a.sodal:16:3 warning SL055"; "sl055_b.sodal:16:3 warning SL055";
      ] );
    ([ "sl060_no_join.sodal" ], [ "sl060_no_join.sodal:4:3 error SL060" ]);
    ([ "sl061_bad_reg.sodal" ], [ "sl061_bad_reg.sodal:5:3 error SL061" ]);
  ]

let test_golden () =
  List.iter
    (fun (fixtures, expected) ->
      let paths = List.map (Filename.concat "lint_fixtures") fixtures in
      let got = List.map fingerprint (analyze paths) in
      Alcotest.(check (list string)) (String.concat "+" fixtures) expected got)
    golden_cases

(* every rule id in the catalogue has at least one golden fixture *)
let test_rule_coverage () =
  let covered =
    List.concat_map
      (fun (_, expected) ->
        List.map
          (fun fp ->
            match String.rindex_opt fp ' ' with
            | Some i -> String.sub fp (i + 1) (String.length fp - i - 1)
            | None -> fp)
          expected)
      golden_cases
  in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " has a golden fixture")
        true (List.mem rule covered))
    [
      "SL000"; "SL001"; "SL002"; "SL003"; "SL004"; "SL010"; "SL011"; "SL012";
      "SL020"; "SL030"; "SL031"; "SL040"; "SL041"; "SL050"; "SL051"; "SL052";
      "SL053"; "SL054"; "SL055"; "SL060"; "SL061";
    ]

(* the shipped examples are lint-clean, checked as one system (the
   acceptance bar for sodal_check in CI) *)
let test_examples_clean () =
  let dir = Filename.concat ".." (Filename.concat "examples" "sodal") in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sodal")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  Alcotest.(check bool) "found the shipped examples" true (List.length files >= 4);
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map fingerprint (analyze files))

let test_exit_status () =
  let clean = [] in
  let warn =
    [
      Diagnostic.make ~file:"f" ~pos:Ast.no_pos ~severity:Diagnostic.Warning
        ~rule:"SL012" ~message:"m";
    ]
  in
  let err =
    [
      Diagnostic.make ~file:"f" ~pos:Ast.no_pos ~severity:Diagnostic.Error
        ~rule:"SL020" ~message:"m";
    ]
  in
  Alcotest.(check int) "clean" 0 (Sodalint.exit_status clean);
  Alcotest.(check int) "warnings pass" 0 (Sodalint.exit_status warn);
  Alcotest.(check int) "warnings fail under strict" 1
    (Sodalint.exit_status ~strict:true warn);
  Alcotest.(check int) "errors fail" 1 (Sodalint.exit_status err);
  Alcotest.(check int) "errors fail under strict" 1
    (Sodalint.exit_status ~strict:true err)

let test_rendering () =
  let d =
    Diagnostic.make ~file:"a.sodal"
      ~pos:{ Ast.line = 3; col = 7 }
      ~severity:Diagnostic.Error ~rule:"SL001" ~message:"no \"blocking\" here"
  in
  Alcotest.(check string)
    "human" "a.sodal:3:7: error: [SL001] no \"blocking\" here"
    (Format.asprintf "%a" Diagnostic.pp d);
  Alcotest.(check string)
    "json"
    {|{"file":"a.sodal","line":3,"col":7,"severity":"error","rule":"SL001","message":"no \"blocking\" here"}|}
    (Diagnostic.to_json d)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "golden diagnostics per rule" `Quick test_golden;
        Alcotest.test_case "every rule id has a fixture" `Quick test_rule_coverage;
        Alcotest.test_case "shipped examples are clean" `Quick test_examples_clean;
        Alcotest.test_case "exit status" `Quick test_exit_status;
        Alcotest.test_case "human and json rendering" `Quick test_rendering;
      ] );
  ]
