(* PR 7 scale suite.

   The zero-alloc hot paths (pooled wire buffers, in-place codec,
   array/hashtable-backed bus) must be observationally identical to the
   seed implementations they replaced. Four angles:

   - codec equivalence: the offset writers produce byte-for-byte what the
     seed's Buffer-based allocator produces, at any offset, and
     [decode_sub] reads frames in place;
   - pool discipline: reuse is real, and acquire never hands out a buffer
     that is still live;
   - bus differential: on random topologies and fault schedules the new
     bus delivers the exact same (receiver, virtual-time, bytes) log as
     the seed's list-based algorithm ([Helpers.Ref_bus]), each driven by
     its own same-seed engine so the split fault-RNG streams coincide;
   - replay: the open-loop SCALE workload is a pure function of its
     config — two runs agree on every engine counter and tag count. *)

module Wire = Soda_proto.Wire
module Pool = Soda_net.Pool
module Crc16 = Soda_net.Crc16
module Bus = Soda_net.Bus
module Frame = Soda_net.Frame
module Heap = Soda_sim.Heap
module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Openloop = Soda_core.Openloop
module Ref_bus = Helpers.Ref_bus

(* ---- wire codec: pooled path == seed allocator -------------------------- *)

let prop_encode_equals_seed_allocator =
  QCheck.Test.make ~name:"pooled encoder matches seed Buffer allocator byte-for-byte"
    ~count:1000 Test_wire.arb_packet (fun pkt ->
      let fast = Wire.encode pkt in
      let seed = Wire.encode_buffer pkt in
      Bytes.equal fast seed && Wire.encoded_size pkt = Bytes.length seed)

let arb_packet_at_offset =
  QCheck.make
    ~print:(fun (pkt, off, slack) ->
      Printf.sprintf "%s @%d+%d" (Wire.describe pkt) off slack)
    QCheck.Gen.(fun st -> (Test_wire.gen_packet st, int_bound 64 st, int_bound 32 st))

let bytes_all buf c lo hi =
  let ok = ref true in
  for i = lo to hi - 1 do
    if Bytes.get buf i <> c then ok := false
  done;
  !ok

let prop_encode_into_at_offset =
  QCheck.Test.make ~name:"encode_into writes exactly the packet at any offset"
    ~count:500 arb_packet_at_offset (fun (pkt, off, slack) ->
      let size = Wire.encoded_size pkt in
      let buf = Bytes.make (off + size + slack) '\xAA' in
      let written = Wire.encode_into pkt buf ~off in
      written = size
      && Bytes.equal (Bytes.sub buf off size) (Wire.encode pkt)
      && bytes_all buf '\xAA' 0 off
      && bytes_all buf '\xAA' (off + size) (off + size + slack))

let prop_decode_sub_in_place =
  QCheck.Test.make ~name:"decode_sub reads frames in place at any offset" ~count:500
    arb_packet_at_offset (fun (pkt, off, slack) ->
      let size = Wire.encoded_size pkt in
      let buf = Bytes.make (off + size + slack) '\xEE' in
      let written = Wire.encode_into pkt buf ~off in
      Wire.decode_sub buf ~off ~len:written = Ok pkt)

(* End-to-end hot-path shape: acquire exact-size pooled buffer, encode in
   place, seal, then screen and decode in place like the receiving NIC. *)
let prop_pooled_frame_seals_and_screens =
  QCheck.Test.make ~name:"pooled frame seals, screens and decodes in place"
    ~count:300 Test_wire.arb_packet (fun pkt ->
      let pool = Pool.create () in
      let size = Wire.encoded_size pkt in
      let wire = Pool.acquire pool (size + 2) in
      let written = Wire.encode_into pkt wire ~off:0 in
      Crc16.seal wire ~len:written;
      Crc16.payload_len wire = written
      && Wire.decode_sub wire ~off:0 ~len:written = Ok pkt)

(* ---- pool discipline ---------------------------------------------------- *)

let test_pool_reuse () =
  let pool = Pool.create () in
  let a = Pool.acquire pool 64 in
  Pool.release pool a;
  let b = Pool.acquire pool 64 in
  Alcotest.(check bool) "same-size acquire recycles the released buffer" true (a == b);
  Alcotest.(check int) "reuse counted" 1 (Pool.reuses pool);
  let c = Pool.acquire pool 64 in
  Alcotest.(check bool) "bucket drained: fresh buffer" false (c == b);
  Alcotest.(check int) "acquired length honoured" 64 (Bytes.length c);
  Alcotest.(check int) "live tracks outstanding buffers" 2 (Pool.live pool);
  Alcotest.(check int) "acquires counted" 3 (Pool.acquires pool)

let prop_pool_never_aliases_live =
  QCheck.Test.make ~name:"pool reuse-after-release never aliases a live buffer"
    ~count:300
    QCheck.(list (pair bool (int_bound 4)))
    (fun ops ->
      let sizes = [| 8; 8; 24; 64; 130 |] in
      let pool = Pool.create () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (release, i) ->
          if release then (
            match !live with
            | [] -> ()
            | buf :: rest ->
              Pool.release pool buf;
              live := rest)
          else begin
            let buf = Pool.acquire pool sizes.(i) in
            if List.exists (fun b -> b == buf) !live then ok := false;
            (* append: releases then recycle the oldest buffers first *)
            live := !live @ [ buf ]
          end)
        ops;
      !ok && Pool.live pool = List.length !live)

(* ---- differential bus: new implementation vs the seed algorithm --------- *)

type op =
  | Send of { src : int; dst : int option; payload : bytes }  (* None = broadcast *)
  | Partition of int list * int list
  | Heal
  | Duplicate of int
  | Jitter of int * int
  | Loss of float
  | Corrupt of float

(* A random fault-and-traffic schedule: mostly sends, with partitions,
   heals, duplications, jitter and loss/corruption-rate changes mixed in
   at strictly increasing virtual times. *)
let gen_schedule rng ~mids ~ops =
  let mid () = mids.(Rng.int rng (Array.length mids)) in
  let payload () =
    let len = Rng.int rng 65 in
    Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))
  in
  let groups () =
    let ga = ref [] and gb = ref [] in
    Array.iter
      (fun m ->
        match Rng.int rng 3 with
        | 1 -> ga := m :: !ga
        | 2 -> gb := m :: !gb
        | _ -> ())
      mids;
    (!ga, !gb)
  in
  let time = ref 0 in
  List.init ops (fun _ ->
      time := !time + 1 + Rng.int rng 150;
      let op =
        match Rng.int rng 10 with
        | 0 ->
          let ga, gb = groups () in
          Partition (ga, gb)
        | 1 -> Heal
        | 2 -> Duplicate (1 + Rng.int rng 2)
        | 3 ->
          let min_us = Rng.int rng 10 in
          Jitter (min_us, min_us + Rng.int rng 40)
        | 4 -> Loss (Rng.float rng 0.4)
        | 5 -> Corrupt (Rng.float rng 0.4)
        | _ ->
          Send
            {
              src = mid ();
              dst = (if Rng.int rng 4 = 0 then None else Some (mid ()));
              payload = payload ();
            }
      in
      (!time, op))

let apply_real bus = function
  | Send { src; dst; payload } ->
    let dst = match dst with Some m -> Frame.To m | None -> Frame.Broadcast in
    Bus.send bus ~src ~dst payload
  | Partition (ga, gb) -> Bus.set_partition bus (ga, gb)
  | Heal -> Bus.heal bus
  | Duplicate n -> Bus.duplicate_next ~count:n bus
  | Jitter (min_us, max_us) -> Bus.set_delay_jitter bus ~min_us ~max_us
  | Loss r -> Bus.set_loss_rate bus r
  | Corrupt r -> Bus.set_corruption_rate bus r

let apply_ref rbus = function
  | Send { src; dst; payload } ->
    let broadcast = dst = None in
    let dst = match dst with Some m -> m | None -> -1 in
    Ref_bus.send rbus ~src ~broadcast ~dst payload
  | Partition (ga, gb) -> Ref_bus.set_partition rbus (ga, gb)
  | Heal -> Ref_bus.heal rbus
  | Duplicate n -> Ref_bus.duplicate_next ~count:n rbus
  | Jitter (min_us, max_us) -> Ref_bus.set_delay_jitter rbus ~min_us ~max_us
  | Loss r -> Ref_bus.set_loss_rate rbus r
  | Corrupt r -> Ref_bus.set_corruption_rate rbus r

(* Run one schedule through both implementations, each on its own engine
   created from the same seed (so [Rng.split (Engine.rng e)] yields the
   same fault stream), and return both (receiver, time, wire) logs. *)
let diff_run ~script_seed ~n_mids ~ops =
  let rng = Rng.create ~seed:script_seed in
  (* sparse, non-contiguous mids: exercises the hashtable paths *)
  let mids = Array.init n_mids (fun i -> i * 3) in
  let schedule = gen_schedule rng ~mids ~ops in
  let engine_seed = 5000 + script_seed in
  let ea = Engine.create ~seed:engine_seed () in
  let bus = Bus.create ea in
  let log_a = ref [] in
  Array.iter
    (fun m ->
      Bus.attach bus ~mid:m ~rx:(fun f ->
          log_a := (m, Engine.now ea, Bytes.to_string f.Frame.wire) :: !log_a))
    mids;
  List.iter
    (fun (time, op) ->
      ignore (Engine.schedule ea ~delay:time (fun () -> apply_real bus op)))
    schedule;
  ignore (Engine.run ea);
  let eb = Engine.create ~seed:engine_seed () in
  let rbus = Ref_bus.create eb in
  let log_b = ref [] in
  Array.iter
    (fun m ->
      Ref_bus.attach rbus ~mid:m ~rx:(fun f ->
          log_b := (m, Engine.now eb, Bytes.to_string f.Ref_bus.wire) :: !log_b))
    mids;
  List.iter
    (fun (time, op) ->
      ignore (Engine.schedule eb ~delay:time (fun () -> apply_ref rbus op)))
    schedule;
  ignore (Engine.run eb);
  (List.rev !log_a, List.rev !log_b)

let check_diff ~script_seed ~n_mids ~ops () =
  let log_a, log_b = diff_run ~script_seed ~n_mids ~ops in
  Alcotest.(check bool) "schedule not vacuous" true (List.length log_b > 0);
  Alcotest.(check (list (triple int int string)))
    "delivery logs identical" log_b log_a

let prop_bus_differential =
  QCheck.Test.make ~name:"array bus matches seed list bus on random schedules"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let log_a, log_b =
        diff_run ~script_seed:(seed + 1) ~n_mids:(2 + (seed mod 9)) ~ops:60
      in
      log_a = log_b)

(* ---- event heap: zero-alloc accessors agree with pop_min ---------------- *)

let prop_heap_soa_accessors =
  QCheck.Test.make ~name:"heap SoA accessors agree with pop_min" ~count:200
    QCheck.(list (pair small_nat bool))
    (fun ops ->
      let a = Heap.create () and b = Heap.create () in
      let seq = ref 0 in
      let ok = ref true in
      let drain_one () =
        if Heap.is_empty a then begin
          if Heap.pop_min b <> None then ok := false
        end
        else begin
          let k = Heap.min_key a and s = Heap.min_seq a and v = Heap.min_value a in
          Heap.drop_min a;
          match Heap.pop_min b with
          | Some (k', s', v') -> if (k, s, v) <> (k', s', v') then ok := false
          | None -> ok := false
        end
      in
      List.iter
        (fun (key, pop) ->
          if pop then drain_one ()
          else begin
            incr seq;
            Heap.push a ~key ~seq:!seq key;
            Heap.push b ~key ~seq:!seq key
          end)
        ops;
      while not (Heap.is_empty a) do
        drain_one ()
      done;
      !ok && Heap.pop_min b = None && Heap.length a = 0)

(* ---- deterministic replay of the open-loop SCALE workload --------------- *)

let test_replay_n64 () =
  let cfg = Openloop.config ~nodes:64 ~requests:2048 in
  let snapshot () =
    let r = Openloop.run cfg in
    let engine = Soda_core.Network.engine r.Openloop.net in
    let c = Engine.counters engine in
    ( ( r.Openloop.offered,
        r.Openloop.issued,
        r.Openloop.completed,
        r.Openloop.failed,
        r.Openloop.shed,
        r.Openloop.gathers,
        r.Openloop.virtual_us ),
      (c.Engine.scheduled, c.Engine.fired, c.Engine.cancelled),
      Engine.tag_counts engine )
  in
  let (res_a, counters_a, tags_a) = snapshot () in
  let (res_b, counters_b, tags_b) = snapshot () in
  let (offered, _, completed, _, _, _, _) = res_a in
  Alcotest.(check int) "all roots offered" 2048 offered;
  Alcotest.(check bool) "work completed" true (completed > 0);
  let (scheduled_a, fired_a, cancelled_a) = counters_a in
  let (scheduled_b, fired_b, cancelled_b) = counters_b in
  Alcotest.(check int) "scheduled identical" scheduled_a scheduled_b;
  Alcotest.(check int) "fired identical" fired_a fired_b;
  Alcotest.(check int) "cancelled identical" cancelled_a cancelled_b;
  Alcotest.(check (list (pair string int))) "tag breakdown identical" tags_a tags_b;
  Alcotest.(check bool) "full result identical" true (res_a = res_b)

let suites =
  [
    ( "scale.wire",
      [
        QCheck_alcotest.to_alcotest prop_encode_equals_seed_allocator;
        QCheck_alcotest.to_alcotest prop_encode_into_at_offset;
        QCheck_alcotest.to_alcotest prop_decode_sub_in_place;
        QCheck_alcotest.to_alcotest prop_pooled_frame_seals_and_screens;
      ] );
    ( "scale.pool",
      [
        Alcotest.test_case "reuse after release" `Quick test_pool_reuse;
        QCheck_alcotest.to_alcotest prop_pool_never_aliases_live;
      ] );
    ( "scale.bus",
      [
        Alcotest.test_case "differential: dense small net" `Quick
          (check_diff ~script_seed:11 ~n_mids:6 ~ops:100);
        Alcotest.test_case "differential: mid-size net" `Quick
          (check_diff ~script_seed:23 ~n_mids:64 ~ops:80);
        Alcotest.test_case "differential: 512 stations" `Quick
          (check_diff ~script_seed:37 ~n_mids:512 ~ops:48);
        QCheck_alcotest.to_alcotest prop_bus_differential;
      ] );
    ( "scale.heap",
      [ QCheck_alcotest.to_alcotest prop_heap_soa_accessors ] );
    ( "scale.replay",
      [ Alcotest.test_case "open-loop N=64 deterministic replay" `Quick test_replay_n64 ] );
  ]
