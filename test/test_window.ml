(* Sliding-window transport conformance: modular sequence arithmetic,
   the cost-model clamps, and the window invariants that must hold under
   random loss / duplication / reordering.

   The wire-level encoding properties live in test_wire.ml; here the
   subject is the transport's *behaviour*: no acknowledgement of a packet
   that was never sent, at most W packets in flight, out-of-order
   arrivals parked only inside the receive window, and strict in-order
   delivery to the application regardless of what the wire did. *)

open Helpers
module Cost = Soda_base.Cost_model
module Event = Soda_obs.Event
module Recorder = Soda_obs.Recorder
module Stats = Soda_sim.Stats
module Fault_plan = Soda_fault.Fault_plan
module Injector = Soda_fault.Injector
module Stream = Soda_facilities.Stream

let patt = Pattern.well_known 0o555

(* ---- cost-model clamps and modular arithmetic -------------------------------- *)

let test_window_clamps () =
  let w n = Cost.transport_window { Cost.default with Cost.window = n } in
  Alcotest.(check int) "0 clamps to 1" 1 (w 0);
  Alcotest.(check int) "negative clamps to 1" 1 (w (-3));
  Alcotest.(check int) "in range untouched" 5 (w 5);
  Alcotest.(check int) "above max clamps to max" Cost.max_window (w 100);
  Alcotest.(check int) "default is the seed's stop-and-wait" 1
    (Cost.transport_window Cost.default)

let test_seq_space () =
  let s n = Cost.seq_space { Cost.default with Cost.window = n } in
  Alcotest.(check int) "window 1 keeps the alternating bit" 2 (s 1);
  Alcotest.(check int) "window 2 widens to 4 bits" 16 (s 2);
  Alcotest.(check int) "window 8 widens to 4 bits" 16 (s 8);
  Alcotest.(check int) "window 9 widens to 8 bits" 256 (s 9);
  Alcotest.(check int) "window 64 stays within 8 bits" 256 (s 64);
  (* W <= S/2 must hold for every admissible window, or duplicate
     detection is ambiguous (a retransmit of base is indistinguishable
     from new data at base + W). *)
  for n = 1 to Cost.max_window do
    let c = { Cost.default with Cost.window = n } in
    Alcotest.(check bool)
      (Printf.sprintf "W=%d fits the sequence space" n)
      true
      (2 * Cost.transport_window c <= Cost.seq_space c)
  done

let test_client_window () =
  let cw n = Cost.client_window { Cost.default with Cost.maxrequests = n } in
  (* One slot is reserved for the reply of the oldest request (§4.4.1),
     and the floor is 1 so a degenerate MAXREQUESTS cannot deadlock the
     pipelined facilities. *)
  Alcotest.(check int) "maxrequests 3 -> 2 in flight" 2 (cw 3);
  Alcotest.(check int) "maxrequests 1 -> floor of 1" 1 (cw 1);
  Alcotest.(check int) "maxrequests 0 -> floor of 1" 1 (cw 0);
  Alcotest.(check int) "maxrequests 9 -> 8 in flight" 8 (cw 9)

(* The distance function the window logic is built on: dist base x is the
   number of forward steps from base to x in the modular space. *)
let dist s base x = ((x - base) + s) mod s

let prop_modular_roundtrip =
  QCheck.Test.make ~name:"modular seq distance inverts modular advance" ~count:500
    QCheck.(triple (int_bound 2) (int_bound 255) (int_bound 255))
    (fun (tier, base, d) ->
      let s = match tier with 0 -> 2 | 1 -> 16 | _ -> 256 in
      let base = base mod s and d = d mod s in
      let x = (base + d) mod s in
      dist s base x = d && dist s x ((x + ((s - d) mod s)) mod s) = (s - d) mod s)

(* ---- trace-level invariants -------------------------------------------------- *)

(* Every Acked event must correspond to an earlier Tx of the same (mid,
   tid, pkt): the transport may never mark a packet acknowledged that it
   never put on the wire. *)
let no_ack_of_unsent events =
  let sent = Hashtbl.create 64 in
  List.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Tx { tid; pkt; _ } ->
        Hashtbl.replace sent (e.Event.mid, tid, pkt) ();
        true
      | Event.Acked { tid; pkt; _ } -> Hashtbl.mem sent (e.Event.mid, tid, pkt)
      | _ -> true)
    events

(* Window_advance never reports more than W in flight; Window_buffer only
   parks packets strictly inside the receive window (0 < dist < W). The
   modular distance must be computed in the window's own tier of the
   sequence space (2 / 16 / 256). *)
let window_events_bounded ~window events =
  let space = Cost.seq_space { Cost.default with Cost.window = window } in
  List.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Window_advance { in_flight; _ } -> in_flight >= 0 && in_flight < window
      | Event.Window_buffer { seq; expected; _ } ->
        (* d = 0 is an in-order REQUEST held while the input buffer drains *)
        dist space expected seq < window
      | _ -> true)
    events

let max_occupancy kernel = Stats.max_us (Kernel.stats kernel) "net.window_occupancy"

(* One streamed block, client mid 1 -> sink mid 0, under a fault plan.
   Returns (send result, reassembled blocks, events, client kernel,
   finish time). The sink rejects any out-of-order chunk, so a transport
   that delivers out of order fails the send. *)
let run_stream ?(aimd = true) ~seed ~window ~loss ?plan payload =
  let cost = { Cost.default with Cost.window; Cost.maxrequests = window + 1; aimd } in
  let net, kernels = make_net ~seed ~cost ~trace:true 2 in
  if loss > 0.0 then Soda_net.Bus.set_loss_rate (Network.bus net) loss;
  let blocks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       (Stream.sink ~pattern:patt
          ~on_block:(fun _ ~src:_ block -> blocks := Bytes.to_string block :: !blocks)
          ()));
  let sent = ref None and done_at = ref max_int in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             sent :=
               Some
                 (Stream.send env (Sodal.server ~mid:0 ~pattern:patt) ~chunk_bytes:100
                    (Bytes.of_string payload));
             done_at := Sodal.now env);
       });
  (match plan with Some p -> Injector.install net p | None -> ());
  ignore (Network.run ~until:300_000_000 net);
  let events = Recorder.events (Network.recorder net) in
  (!sent, List.rev !blocks, events, List.nth kernels 1, !done_at)

let payload = String.init 1_200 (fun i -> Char.chr ((i * 7 mod 94) + 33))

(* A clean wide-window run must actually pipeline: several packets in
   flight at once, the window base advancing as cumulative acks land, and
   a shorter wall-clock than the degenerate stop-and-wait run of the same
   workload. *)
let test_window_pipelines () =
  let _, _, _, _, t1 = run_stream ~seed:51 ~window:1 ~loss:0.0 payload in
  let sent, blocks, events, client, t4 = run_stream ~seed:51 ~window:4 ~loss:0.0 payload in
  Alcotest.(check bool) "send ok" true (sent = Some (Ok ()));
  Alcotest.(check (list string)) "block reassembled once" [ payload ] blocks;
  Alcotest.(check bool) "window actually opened (occupancy > 1)" true
    (max_occupancy client >= 2);
  Alcotest.(check bool) "occupancy never exceeds W" true (max_occupancy client <= 4);
  Alcotest.(check bool) "cumulative acks advanced the base" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with Event.Window_advance _ -> true | _ -> false)
       events);
  Alcotest.(check bool)
    (Printf.sprintf "W=4 beats stop-and-wait (%d us < %d us)" t4 t1)
    true (t4 < t1)

(* Forced reordering: heavy per-frame jitter with a wide window makes
   later chunks overtake earlier ones on the wire; the receive window
   must park them (Window_buffer) and release them in order. *)
let test_window_reorders_parked () =
  let plan =
    [ { Fault_plan.at_us = 0;
        action = Fault_plan.Delay_jitter { min_us = 0; max_us = 3_000 } } ]
  in
  let sent, blocks, events, client, _ = run_stream ~seed:53 ~window:8 ~loss:0.0 ~plan payload in
  (match sent with
   | Some (Ok ()) -> ()
   | Some (Error e) ->
     Alcotest.failf "send failed: %s"
       (match e with Stream.Rejected -> "rejected" | Stream.Receiver_gone -> "receiver gone")
   | None -> Alcotest.fail "send never returned");
  Alcotest.(check (list string)) "in-order reassembly despite reordering" [ payload ]
    blocks;
  Alcotest.(check bool) "receiver parked out-of-order arrivals" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with Event.Window_buffer _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "parked only inside the window" true
    (window_events_bounded ~window:8 events);
  Alcotest.(check bool) "no ack of an unsent packet" true (no_ack_of_unsent events);
  Alcotest.(check bool) "occupancy never exceeds W" true (max_occupancy client <= 8)

(* ---- the qcheck property ----------------------------------------------------- *)

type scenario = {
  seed : int;
  window : int;
  loss_pct : int;
  dup : (int * int) option; (* duplicate the next [n] frames at t *)
  jitter : int option; (* 0..max_us per-frame delay, from t=0 *)
}

let gen_scenario st =
  let open QCheck.Gen in
  let opt g st = if bool st then Some (g st) else None in
  {
    seed = int_bound 9999 st;
    window = oneofl [ 2; 4; 8 ] st;
    loss_pct = int_bound 10 st;
    dup = opt (pair (int_range 0 100_000) (int_range 1 4)) st;
    jitter = opt (int_range 500 2_500) st;
  }

let scenario_print s =
  Printf.sprintf "seed=%d window=%d loss=%d%% dup=%s jitter=%s" s.seed s.window
    s.loss_pct
    (match s.dup with Some (at, n) -> Printf.sprintf "%d@%dus" n at | None -> "-")
    (match s.jitter with Some j -> Printf.sprintf "0..%dus" j | None -> "-")

let plan_of_scenario s =
  let steps = ref [] in
  (match s.jitter with
   | Some max_us ->
     steps :=
       { Fault_plan.at_us = 0; action = Fault_plan.Delay_jitter { min_us = 0; max_us } }
       :: !steps
   | None -> ());
  (match s.dup with
   | Some (at_us, n) ->
     steps := { Fault_plan.at_us; action = Fault_plan.Duplicate_next n } :: !steps
   | None -> ());
  List.sort (fun a b -> compare a.Fault_plan.at_us b.Fault_plan.at_us) !steps

let prop_window_invariants =
  QCheck.Test.make ~name:"window invariants under loss / dup / reorder" ~count:12
    (QCheck.make ~print:scenario_print gen_scenario)
    (fun s ->
      let sent, blocks, events, client, _ =
        run_stream ~seed:(s.seed + 1) ~window:s.window
          ~loss:(float_of_int s.loss_pct /. 100.0)
          ~plan:(plan_of_scenario s) payload
      in
      let ok_sent = sent = Some (Ok ()) in
      let ok_blocks = blocks = [ payload ] in
      let ok_occ = max_occupancy client <= s.window in
      let ok_ack = no_ack_of_unsent events in
      let ok_win = window_events_bounded ~window:s.window events in
      if not (ok_sent && ok_blocks && ok_occ && ok_ack && ok_win) then
        (* name the violated invariant next to qcheck's counterexample *)
        Printf.eprintf "window invariants: sent=%b blocks=%b occupancy<=W=%b(%d) \
                        acked-subset-of-sent=%b window-events-bounded=%b\n%!"
          ok_sent ok_blocks ok_occ (max_occupancy client) ok_ack ok_win;
      ok_sent && ok_blocks && ok_occ && ok_ack && ok_win)

(* ---- AIMD / RTT estimator unit laws ------------------------------------------ *)

let test_aimd_laws () =
  let c = { Cost.default with Cost.window = 8 } in
  Alcotest.(check bool) "increase adds the increment" true
    (Cost.aimd_increase c ~cwnd:2.0 = 2.0 +. c.Cost.aimd_incr);
  Alcotest.(check bool) "increase caps at W" true (Cost.aimd_increase c ~cwnd:8.0 = 8.0);
  Alcotest.(check bool) "decrease halves" true (Cost.aimd_decrease c ~cwnd:8.0 = 4.0);
  Alcotest.(check bool) "decrease floors at 1" true (Cost.aimd_decrease c ~cwnd:1.0 = 1.0);
  Alcotest.(check bool) "initial cwnd within [1, W]" true
    (let i = Cost.cwnd_init c in 1.0 <= i && i <= 8.0);
  let srtt, rttvar = Cost.rtt_update c ~srtt_us:0.0 ~rttvar_us:0.0 ~sample_us:8_000 in
  Alcotest.(check bool) "first sample seeds srtt" true (srtt = 8_000.0);
  Alcotest.(check bool) "first sample seeds rttvar = sample/2" true (rttvar = 4_000.0);
  Alcotest.(check int) "empty estimator falls back to the static interval"
    c.Cost.retrans_interval_us
    (Cost.rto_us c ~srtt_us:0.0 ~rttvar_us:0.0);
  Alcotest.(check bool) "rto never undershoots the static interval" true
    (Cost.rto_us c ~srtt_us:100.0 ~rttvar_us:1.0 >= c.Cost.retrans_interval_us);
  Alcotest.(check bool) "rto tracks srtt + 4 rttvar once seeded" true
    (Cost.rto_us c ~srtt_us:100_000.0 ~rttvar_us:5_000.0 = 120_000)

(* Feeding the estimator a constant trace must contract srtt toward the
   sample at every step (the smoothed mean is a convex combination), and
   the variance term must stay non-negative throughout. *)
let prop_rtt_converges =
  QCheck.Test.make ~name:"constant RTT trace contracts the estimator" ~count:200
    QCheck.(triple (int_range 1 1_000_000) (int_range 1 1_000_000) (int_range 1 50))
    (fun (start, sample, steps) ->
      let c = Cost.default in
      let target = float_of_int sample in
      let srtt = ref (float_of_int start)
      and rttvar = ref (float_of_int start /. 2.0)
      and ok = ref true in
      for _ = 1 to steps do
        let s', v' =
          Cost.rtt_update c ~srtt_us:!srtt ~rttvar_us:!rttvar ~sample_us:sample
        in
        if Float.abs (s' -. target) > Float.abs (!srtt -. target) +. 1e-6 || v' < 0.0
        then ok := false;
        srtt := s';
        rttvar := v'
      done;
      !ok)

(* End-to-end at the full 8-bit window: a lossy W=64 stream still
   reassembles, and every Cwnd_change / Rtt_sample the transport emits
   respects the AIMD bounds (cwnd in [1, W], growth only on acks,
   non-negative estimator state). *)
let wide_payload = String.init 5_000 (fun i -> Char.chr ((i * 11 mod 94) + 33))

let test_cwnd_events_bounded () =
  let sent, blocks, events, client, _ =
    run_stream ~seed:91 ~window:64 ~loss:0.05 wide_payload
  in
  Alcotest.(check bool) "send ok under loss" true (sent = Some (Ok ()));
  Alcotest.(check (list string)) "block reassembled once" [ wide_payload ] blocks;
  Alcotest.(check bool) "occupancy never exceeds W" true (max_occupancy client <= 64);
  Alcotest.(check bool) "no ack of an unsent packet" true (no_ack_of_unsent events);
  Alcotest.(check bool) "window events bounded in the 256 space" true
    (window_events_bounded ~window:64 events);
  Alcotest.(check bool) "cwnd grew on clean acks" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Cwnd_change { reason; _ } -> reason = "ack"
         | _ -> false)
       events);
  Alcotest.(check bool) "cwnd always within [1, W]; estimator state sane" true
    (List.for_all
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Cwnd_change { cwnd; in_flight; _ } ->
           1 <= cwnd && cwnd <= 64 && in_flight >= 0 && in_flight <= 64
         | Event.Rtt_sample { sample_us; srtt_us; rttvar_us; _ } ->
           sample_us >= 0 && srtt_us > 0 && rttvar_us >= 0
         | _ -> true)
       events)

(* ---- sequence-slot reuse across send eras (regression) ----------------------- *)

module Transport = Soda_proto.Transport
module Wire = Soda_proto.Wire
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic
module Trace = Soda_sim.Trace
module Engine = Soda_sim.Engine

(* A scripted fake peer replays the receive-side scenario the full stack
   cannot schedule deterministically: era A dies mid-window (its sender
   exhausted max_retrans on slot 1 while slots 2-3 were already stashed
   by the receiver), then era B reuses the same slots. The receiver must
   deliver exactly the era-B messages: a stale hold must neither shadow a
   new message reusing its slot (silently dropped as a "duplicate", then
   falsely acked) nor be delivered in its place when the base advances. *)
let test_slot_reuse_stale_stash () =
  let engine = Engine.create ~seed:11 () in
  let trace = Trace.create ~enabled:false () in
  let bus = Bus.create engine in
  let cost = { Cost.default with Cost.window = 4 } in
  let recv = Transport.create ~engine ~bus ~mid:0 ~cost ~trace in
  let delivered = ref [] in
  Transport.set_callbacks recv
    {
      Transport.deliver_request =
        (fun ~src:_ ~tid ~pattern:_ ~arg:_ ~put_size:_ ~get_size:_ ->
          delivered := tid :: !delivered;
          `Deliver);
      complete_request = (fun ~tid:_ _ -> ());
      advertised = (fun _ -> true);
      classify_unknown_tid = (fun _ -> `Stale);
    };
  ignore (Transport.attach_nic recv);
  let peer = Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  let req ~tid ~seq ~run =
    Wire.encode
      {
        Wire.src = 1;
        reliable = true;
        seq;
        ack = None;
        run;
        body =
          Wire.Request
            { tid; pattern = patt; arg = 0; put_size = 0; get_size = 0;
              data = Bytes.empty; retry = false };
      }
  in
  let at us frame =
    ignore (Engine.schedule engine ~delay:us (fun () -> Nic.send peer ~dst:0 frame))
  in
  (* era A: slot 0 delivered; slots 2-3 arrive out of order and are
     stashed; slot 1 is "lost" and era A's sender gives up on all three *)
  at 0 (req ~tid:101 ~seq:0 ~run:true);
  at 5_000 (req ~tid:102 ~seq:2 ~run:false);
  at 10_000 (req ~tid:103 ~seq:3 ~run:false);
  (* era B reuses slots 1-3; its slot-2 message overtakes the run start *)
  at 15_000 (req ~tid:202 ~seq:2 ~run:false);
  at 20_000 (req ~tid:201 ~seq:1 ~run:true);
  (* era-B packets that overtook the run start may have been flushed with
     the stale holds; their sender still holds them unacked, so they are
     retransmitted *)
  at 25_000 (req ~tid:202 ~seq:2 ~run:false);
  at 30_000 (req ~tid:203 ~seq:3 ~run:false);
  ignore (Engine.run ~until:100_000 engine);
  Alcotest.(check (list int)) "exactly the live-era messages, in order"
    [ 101; 201; 202; 203 ] (List.rev !delivered)

(* Receive-side classification derives its sequence arithmetic from the
   LOCAL window; the bus refuses stations that disagree. *)
let test_window_mismatch_guard () =
  let engine = Engine.create ~seed:12 () in
  let trace = Trace.create ~enabled:false () in
  let bus = Bus.create engine in
  let mk mid window =
    ignore
      (Transport.create ~engine ~bus ~mid ~cost:{ Cost.default with Cost.window } ~trace)
  in
  mk 0 4;
  mk 1 4;
  let contains msg needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  match mk 2 1 with
  | () -> Alcotest.fail "mismatched station accepted"
  | exception Invalid_argument msg ->
    (* the diagnostic must name BOTH stations' windows and derived
       sequence spaces, or the operator cannot tell which side to fix *)
    Alcotest.(check bool) "names the incumbent window and space" true
      (contains msg "window 4 (seq space 16)");
    Alcotest.(check bool) "names the newcomer window and space" true
      (contains msg "window 1 (seq space 2)")

(* A pipelined W>1 kernel defers an in-order REQUEST while its input
   buffer is full. The hold must be bounded: a handler that stays busy
   past the sender's whole retransmission budget must surface as BUSY
   (indefinite adaptive retry, the seed's semantics), not a false
   CRASHED completion. *)
let test_long_busy_hold_nacks () =
  let cost = { Cost.default with Cost.window = 4; Cost.maxrequests = 4 } in
  let net, kernels = make_net ~seed:77 ~cost 2 in
  let server = List.nth kernels 0 and client = List.nth kernels 1 in
  ignore
    (Sodal.attach server
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             (* hold the handler far beyond the r_us retransmission span *)
             Sodal.compute env 600_000;
             ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let statuses = ref [] in
  ignore
    (Sodal.attach client
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let srv = Sodal.server ~mid:0 ~pattern:patt in
             let tids = List.init 3 (fun _ -> Sodal.signal env srv ~arg:0) in
             List.iter
               (fun tid ->
                 let c = Sodal.await_completion env tid in
                 statuses := c.Sodal.status :: !statuses)
               tids;
             Sodal.serve env);
       });
  run ~horizon:10.0 net;
  Alcotest.(check int) "all three requests completed" 3 (List.length !statuses);
  Alcotest.(check bool) "no request died of the hold" true
    (List.for_all (fun s -> s = Sodal.Comp_ok) !statuses);
  Alcotest.(check bool) "the hold was converted to a BUSY nack" true
    (Stats.counter (Kernel.stats server) "req.held_nacked" >= 1)

let suites =
  [
    ( "proto.window",
      [
        Alcotest.test_case "cost-model window clamps" `Quick test_window_clamps;
        Alcotest.test_case "sequence space sizing" `Quick test_seq_space;
        Alcotest.test_case "client window helper" `Quick test_client_window;
        QCheck_alcotest.to_alcotest prop_modular_roundtrip;
        Alcotest.test_case "wide window pipelines" `Quick test_window_pipelines;
        Alcotest.test_case "reordered arrivals parked and released" `Quick
          test_window_reorders_parked;
        QCheck_alcotest.to_alcotest prop_window_invariants;
        Alcotest.test_case "AIMD and RTO unit laws" `Quick test_aimd_laws;
        QCheck_alcotest.to_alcotest prop_rtt_converges;
        Alcotest.test_case "W=64 cwnd/rtt events bounded" `Quick test_cwnd_events_bounded;
        Alcotest.test_case "slot reuse across send eras" `Quick test_slot_reuse_stale_stash;
        Alcotest.test_case "bus refuses mismatched windows" `Quick
          test_window_mismatch_guard;
        Alcotest.test_case "long-busy hold converts to BUSY" `Quick
          test_long_busy_hold_nacks;
      ] );
  ]
