(* The quorum-replicated store (lib/store): unit tests for the tag and
   the protocol on a healthy cluster, the switchboard rebind path across
   replica reboots, and the linearizability property -- qcheck-generated
   fault plans crash, partition and degrade up to f < n/2 replicas while
   concurrent clients run recorded workloads, and every recorded history
   must pass the Wing-Gong checker (test/lin.ml).

   A failing case prints its (seed, workload, fault plan) triple; the
   plan is in the fault-plan file format, so saving it to plan.txt and
   running

     dune exec bin/sodal_run.exe -- --store 3 --seed SEED --fault-plan plan.txt

   replays the exact schedule bit-for-bit (same harness underneath).
   Nightly soak runs scale the case count with SODA_STORE_CHECK_COUNT
   and shift the seed space with SODA_STORE_SEED. *)

open Helpers
module Fault_plan = Soda_fault.Fault_plan
module Nameserver = Soda_facilities.Nameserver
module Tag = Soda_store.Tag
module Store = Soda_store.Store
module Harness = Soda_store.Harness

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let check_count = env_int "SODA_STORE_CHECK_COUNT" 250
let seed_base = env_int "SODA_STORE_SEED" 0

(* ---- tag --------------------------------------------------------------- *)

let test_tag_order_and_wire () =
  Alcotest.(check bool) "zero is minimal" true (Tag.compare Tag.zero { seq = 0; wid = 1 } < 0);
  Alcotest.(check bool) "seq dominates" true
    (Tag.compare { seq = 2; wid = 0 } { seq = 1; wid = 99 } > 0);
  Alcotest.(check bool) "wid breaks ties" true
    (Tag.compare { seq = 3; wid = 5 } { seq = 3; wid = 4 } > 0);
  List.iter
    (fun t ->
      match Tag.decode (Tag.encode t) ~at:0 with
      | Some t' -> Alcotest.(check bool) (Tag.to_string t) true (Tag.compare t t' = 0)
      | None -> Alcotest.fail "decode failed")
    [ Tag.zero; { seq = 1; wid = 7 }; { seq = 0xFFFF_FFFF; wid = 0xFFFF } ];
  Alcotest.(check bool) "short buffer" true (Tag.decode (Bytes.create 7) ~at:0 = None)

(* ---- protocol on a healthy cluster ------------------------------------- *)

(* n replicas on mids 0..n-1, one scripted client on mid n. *)
let with_cluster ?(n = 3) ~seed script =
  let cost = { Cost.default with maxrequests = n + 2 } in
  let net, kernels = make_net ~seed ~cost (n + 1) in
  let replicas = Array.init n (fun index -> Store.replica ~cluster:"t" ~index) in
  List.iteri
    (fun mid kernel ->
      if mid < n then ignore (Sodal.attach kernel (Store.replica_spec replicas.(mid))))
    kernels;
  ignore
    (Sodal.attach (List.nth kernels n)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 20_000;
             let h = Store.handle env ~cluster:"t" ~mids:(List.init n Fun.id) in
             script env h);
       });
  run net;
  replicas

let test_read_write_basic () =
  let observed = ref [] in
  ignore
    (with_cluster ~seed:31 (fun env h ->
         observed := [ Store.read env h ~key:7 ];
         Alcotest.(check bool) "write ok" true (Store.write env h ~key:7 (Bytes.of_string "v1") = Ok ());
         observed := Store.read env h ~key:7 :: !observed;
         Alcotest.(check bool) "overwrite ok" true
           (Store.write env h ~key:7 (Bytes.of_string "v2") = Ok ());
         observed := Store.read env h ~key:7 :: !observed));
  match !observed with
  | [ r3; r2; r1 ] ->
    Alcotest.(check bool) "unwritten key reads None" true (r1 = Ok None);
    Alcotest.(check bool) "reads back v1" true (r2 = Ok (Some (Bytes.of_string "v1")));
    Alcotest.(check bool) "reads back v2" true (r3 = Ok (Some (Bytes.of_string "v2")))
  | _ -> Alcotest.fail "client script did not run"

let test_write_reaches_majority () =
  let replicas =
    with_cluster ~seed:32 (fun env h ->
        Alcotest.(check bool) "write ok" true
          (Store.write env h ~key:1 (Bytes.of_string "x") = Ok ()))
  in
  let holders =
    Array.to_list replicas
    |> List.filter (fun r -> Store.peek_replica r ~key:1 <> None)
    |> List.length
  in
  Alcotest.(check bool) "value on a majority" true (holders >= 2);
  Array.iter
    (fun r ->
      match Store.peek_replica r ~key:1 with
      | Some (tag, v) ->
        Alcotest.(check string) "stored value" "x" (Bytes.to_string v);
        Alcotest.(check bool) "tag seq 1" true (tag.Tag.seq = 1)
      | None -> ())
    replicas

let test_cas () =
  ignore
    (with_cluster ~seed:33 (fun env h ->
         Alcotest.(check bool) "cas on empty with wrong expect fails" true
           (Store.cas env h ~key:4 ~expect:(Some (Bytes.of_string "no")) (Bytes.of_string "a")
            = Ok false);
         Alcotest.(check bool) "cas on empty with None succeeds" true
           (Store.cas env h ~key:4 ~expect:None (Bytes.of_string "a") = Ok true);
         Alcotest.(check bool) "cas with matching expect succeeds" true
           (Store.cas env h ~key:4 ~expect:(Some (Bytes.of_string "a")) (Bytes.of_string "b")
            = Ok true);
         Alcotest.(check bool) "stale expect fails" true
           (Store.cas env h ~key:4 ~expect:(Some (Bytes.of_string "a")) (Bytes.of_string "c")
            = Ok false);
         Alcotest.(check bool) "value is b" true
           (Store.read env h ~key:4 = Ok (Some (Bytes.of_string "b")))))

(* The asymmetric state a partially-propagated write leaves behind: one
   replica holds a newer tag than the rest. Once some read returns the
   newer value, every later read must too -- which forces the reader's
   write-back phase whenever the query round alone has not proved the
   max tag is on a majority (the classic ABD new-old inversion). The
   seed sweep varies which replicas' acks arrive first. *)
let test_read_write_back () =
  for seed = 40 to 59 do
    let results = ref [] in
    let cost = { Cost.default with maxrequests = 5 } in
    let net, kernels = make_net ~seed ~cost 4 in
    let replicas = Array.init 3 (fun index -> Store.replica ~cluster:"t" ~index) in
    Store.poke_replica replicas.(seed mod 3) ~key:9 { Tag.seq = 1; wid = 99 }
      (Bytes.of_string "new");
    List.iteri
      (fun mid kernel ->
        if mid < 3 then ignore (Sodal.attach kernel (Store.replica_spec replicas.(mid))))
      kernels;
    ignore
      (Sodal.attach (List.nth kernels 3)
         {
           Sodal.default_spec with
           task =
             (fun env ->
               Sodal.compute env 20_000;
               let h = Store.handle env ~cluster:"t" ~mids:[ 0; 1; 2 ] in
               for _ = 1 to 4 do
                 results := Store.read env h ~key:9 :: !results
               done);
         });
    run net;
    let results = List.rev !results in
    Alcotest.(check int) "four reads completed" 4 (List.length results);
    (* the partial write is concurrent: a read may return None before any
       read observes it, but once observed it must stay observed *)
    let seen = ref false in
    List.iter
      (fun r ->
        match r with
        | Ok (Some v) when Bytes.to_string v = "new" -> seen := true
        | Ok None ->
          if !seen then
            Alcotest.failf "new-old inversion at seed %d: read regressed to None" seed
        | Ok (Some v) -> Alcotest.failf "invented value %S at seed %d" (Bytes.to_string v) seed
        | Error Store.No_quorum -> Alcotest.failf "no quorum on a healthy cluster (seed %d)" seed)
      results
  done

(* One replica down: every operation must still complete OK (majority
   reachable) after skipping the dead replica on its crash verdict. *)
let test_survives_minority_crash () =
  let plan =
    [ { Fault_plan.at_us = 0; action = Fault_plan.Crash 0 } ]
  in
  let r =
    Harness.run ~n:3 ~clients:2 ~ops:6 ~keys:2 ~seed:(seed_base + 34) ~plan ()
  in
  Alcotest.(check int) "all clients finished" r.clients_total r.clients_done;
  List.iter
    (fun (op : Harness.op) ->
      if op.outcome = `No_quorum then
        Alcotest.failf "op failed with a majority up:\n%s"
          (Format.asprintf "%a" Harness.pp_history r.history))
    r.history;
  match Lin.check_history r.history with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s\n%a" msg (fun ppf -> Harness.pp_history ppf) r.history

(* ---- switchboard registration and rebind ------------------------------- *)

let test_nameserver_rebind () =
  let net, kernels = make_net ~seed:35 2 in
  ignore (Sodal.attach (List.nth kernels 0) (Nameserver.spec ()));
  let results = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sb = Sodal.server ~mid:0 ~pattern:Nameserver.switchboard_pattern in
             let first = Sodal.server ~mid:1 ~pattern:(Pattern.well_known 0o11) in
             let second = Sodal.server ~mid:1 ~pattern:(Pattern.well_known 0o22) in
             let r1 = Nameserver.register env sb ~name:"svc/a" first in
             (* a second register of the taken name still loses... *)
             let r2 = Nameserver.register env sb ~name:"svc/a" second in
             (* ...but rebind reclaims it unconditionally *)
             let r3 = Nameserver.rebind env sb ~name:"svc/a" second in
             let r4 = Nameserver.lookup env sb ~name:"svc/a" in
             (* rebind also creates missing bindings *)
             let r5 = Nameserver.rebind env sb ~name:"svc/b" first in
             let r6 = Nameserver.lookup env sb ~name:"svc/b" in
             results := [ r1 = Ok (); r2 = Error Nameserver.Already_registered;
                          r3 = Ok (); r4 = Ok second; r5 = Ok (); r6 = Ok first ]);
       });
  run net;
  Alcotest.(check (list bool)) "register/rebind/lookup sequence"
    [ true; true; true; true; true; true ] !results

(* A replica crashes and reboots mid-workload in switchboard mode: the
   fresh incarnation's register finds its dead predecessor's binding and
   must rebind; clients re-resolve on UNADVERTISED and keep going. The
   replica table is preserved across the reboot (stable storage), so the
   history stays linearizable. *)
let test_store_rebind_across_reboot () =
  let plan =
    [
      { Fault_plan.at_us = 600_000; action = Fault_plan.Crash 1 };
      { Fault_plan.at_us = 1_400_000; action = Fault_plan.Reboot 1 };
    ]
  in
  let r =
    Harness.run ~n:3 ~clients:2 ~ops:8 ~keys:2 ~seed:(seed_base + 36)
      ~use_nameserver:true ~plan ()
  in
  Alcotest.(check int) "all clients finished" r.clients_total r.clients_done;
  Alcotest.(check int) "replica 1 ran twice" 2 (Store.incarnations r.replicas.(1));
  List.iter
    (fun (op : Harness.op) ->
      if op.outcome = `No_quorum then
        Alcotest.failf "op failed with a majority up:\n%s"
          (Format.asprintf "%a" Harness.pp_history r.history))
    r.history;
  match Lin.check_history r.history with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s\n%a" msg (fun ppf -> Harness.pp_history ppf) r.history

(* ---- the checker itself ------------------------------------------------ *)

let op kind start_us end_us = { Lin.kind; start_us; end_us; required = true }

let test_checker_accepts_valid () =
  (* sequential write-then-read *)
  Alcotest.(check bool) "sequential" true
    (Lin.check [ op (`Write "a") 0 10; op (`Read (Some "a")) 20 30 ]);
  (* concurrent read may see either side of a write *)
  Alcotest.(check bool) "concurrent read old" true
    (Lin.check [ op (`Write "a") 0 10; op (`Write "b") 20 40; op (`Read (Some "a")) 15 25 ]);
  Alcotest.(check bool) "concurrent read new" true
    (Lin.check [ op (`Write "a") 0 10; op (`Write "b") 20 40; op (`Read (Some "b")) 30 50 ]);
  (* a failed write may linearize (read observes it)... *)
  Alcotest.(check bool) "failed write observed" true
    (Lin.check
       [ { Lin.kind = `Write "a"; start_us = 0; end_us = max_int; required = false };
         op (`Read (Some "a")) 10 20 ]);
  (* ...or not (read does not observe it) *)
  Alcotest.(check bool) "failed write unobserved" true
    (Lin.check
       [ { Lin.kind = `Write "a"; start_us = 0; end_us = max_int; required = false };
         op (`Read None) 10 20 ])

let test_checker_rejects_invalid () =
  (* stale read: the overwrite finished before the read started *)
  Alcotest.(check bool) "stale read" false
    (Lin.check
       [ op (`Write "a") 0 10; op (`Write "b") 20 30; op (`Read (Some "a")) 40 50 ]);
  (* lost update: value read was never written *)
  Alcotest.(check bool) "invented value" false
    (Lin.check [ op (`Write "a") 0 10; op (`Read (Some "zz")) 20 30 ]);
  (* new-old inversion across two sequential reads *)
  Alcotest.(check bool) "new-old inversion" false
    (Lin.check
       [ op (`Write "a") 0 10; op (`Write "b") 5 15;
         op (`Read (Some "b")) 20 30; op (`Read (Some "a")) 40 50 ]);
  (* a failed write must not be read after a later completed write *)
  Alcotest.(check bool) "failed write resurrected" false
    (Lin.check
       [ { Lin.kind = `Write "a"; start_us = 0; end_us = max_int; required = false };
         op (`Write "b") 10 20; op (`Read (Some "b")) 30 40;
         op (`Read (Some "a")) 50 60; op (`Read (Some "b")) 70 80 ])

(* ---- linearizability under random fault plans -------------------------- *)

(* Three adversary modes. [Crashes] and [Cut] provably keep a majority
   of replicas reachable from every client, so every operation must
   complete Ok; [Burst] degrades the medium, where crash verdicts (and
   hence NO QUORUM) are legitimate, and only completion + atomicity are
   asserted. *)
type adversary =
  | Crashes of (int * int * int option) list  (* victim, at, reboot gap *)
  | Cut of int list * int * int  (* minority group, at, heal gap *)
  | Burst of int * int * int  (* at, rate pct, duration *)

type scenario = {
  n : int;
  seed : int;
  clients : int;
  ops : int;
  keys : int;
  think_us : int;  (* 0 = hot contention: ops overlap constantly *)
  adversary : adversary;
}

let gen_scenario ~n st =
  let open QCheck.Gen in
  let f = (n - 1) / 2 in
  let seed = int_bound 99_999 st in
  let clients = int_range 1 3 st in
  let ops = int_range 3 8 st in
  let keys = int_range 1 2 st in
  let think_us = oneofl [ 0; 25_000; 250_000 ] st in
  let adversary =
    match int_bound 2 st with
    | 0 ->
      (* up to f distinct victims, each crashed once (maybe rebooted) *)
      let victims = List.init f (fun i -> i) in
      let picked = List.filter (fun _ -> bool st) victims in
      let picked = if picked = [] then [ 0 ] else picked in
      Crashes
        (List.map
           (fun v ->
             let at = int_range 100_000 2_000_000 st in
             let gap = if bool st then Some (int_range 200_000 900_000 st) else None in
             (v, at, gap))
           picked)
    | 1 ->
      let size = int_range 1 f st in
      let group = List.init size Fun.id in
      Cut (group, int_range 100_000 1_500_000 st, int_range 100_000 1_000_000 st)
    | _ -> Burst (int_range 0 1_000_000 st, int_range 10 35 st, int_range 50_000 400_000 st)
  in
  { n; seed; clients; ops; keys; think_us; adversary }

let plan_of_scenario s =
  match s.adversary with
  | Crashes victims ->
    List.concat_map
      (fun (v, at, gap) ->
        { Fault_plan.at_us = at; action = Fault_plan.Crash v }
        ::
        (match gap with
         | Some g -> [ { Fault_plan.at_us = at + g; action = Fault_plan.Reboot v } ]
         | None -> []))
      victims
    |> List.sort (fun a b -> compare a.Fault_plan.at_us b.Fault_plan.at_us)
  | Cut (group, at, heal_gap) ->
    (* the minority group against everyone else (replicas + clients) *)
    let others =
      List.filter (fun m -> not (List.mem m group)) (List.init (s.n + 1 + 3) Fun.id)
    in
    [
      { Fault_plan.at_us = at; action = Fault_plan.Partition (group, others) };
      { Fault_plan.at_us = at + heal_gap; action = Fault_plan.Heal };
    ]
  | Burst (at, pct, duration_us) ->
    [
      { Fault_plan.at_us = at;
        action = Fault_plan.Loss_burst { rate = float_of_int pct /. 100.0; duration_us } };
    ]

let majority_guaranteed s =
  match s.adversary with Crashes _ | Cut _ -> true | Burst _ -> false

let scenario_print s =
  Printf.sprintf
    "n=%d seed=%d clients=%d ops=%d keys=%d think=%dus\n-- fault plan --\n%s-- replay --\n\
     save the plan above to plan.txt, then:\n\
     \  dune exec bin/sodal_run.exe -- --store %d --store-clients %d --store-ops %d \\\n\
     \    --store-keys %d --store-think-us %d --seed %d --fault-plan plan.txt\n"
    s.n (seed_base + s.seed + 1) s.clients s.ops s.keys s.think_us
    (Fault_plan.to_string (plan_of_scenario s))
    s.n s.clients s.ops s.keys s.think_us (seed_base + s.seed + 1)

let prop_linearizable ~n =
  QCheck.Test.make
    ~name:(Printf.sprintf "store: linearizable under random fault plans (n=%d)" n)
    ~count:check_count
    (QCheck.make ~print:scenario_print (gen_scenario ~n))
    (fun s ->
      let r =
        Harness.run ~n ~clients:s.clients ~ops:s.ops ~keys:s.keys
          ~think_us:s.think_us ~seed:(seed_base + s.seed + 1)
          ~plan:(plan_of_scenario s) ()
      in
      if r.clients_done <> r.clients_total then
        QCheck.Test.fail_reportf "hang: %d/%d clients finished" r.clients_done
          r.clients_total;
      if majority_guaranteed s then
        List.iter
          (fun (o : Harness.op) ->
            if o.outcome = `No_quorum then
              QCheck.Test.fail_reportf
                "NO QUORUM with a majority reachable:@.%a" Harness.pp_history r.history)
          r.history;
      match Lin.check_history r.history with
      | Ok () -> true
      | Error msg ->
        QCheck.Test.fail_reportf "%s:@.%a" msg Harness.pp_history r.history)

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "tag: order and wire format" `Quick test_tag_order_and_wire;
        Alcotest.test_case "read/write on a healthy cluster" `Quick test_read_write_basic;
        Alcotest.test_case "write lands on a majority" `Quick test_write_reaches_majority;
        Alcotest.test_case "cas" `Quick test_cas;
        Alcotest.test_case "reader writes back partial writes" `Quick test_read_write_back;
        Alcotest.test_case "survives a minority crash" `Quick test_survives_minority_crash;
        Alcotest.test_case "nameserver rebind reclaims a name" `Quick test_nameserver_rebind;
        Alcotest.test_case "replica rebinds across a reboot" `Quick
          test_store_rebind_across_reboot;
      ] );
    ( "store.lin",
      [
        Alcotest.test_case "checker accepts valid histories" `Quick test_checker_accepts_valid;
        Alcotest.test_case "checker rejects violations" `Quick test_checker_rejects_invalid;
        QCheck_alcotest.to_alcotest (prop_linearizable ~n:3);
        QCheck_alcotest.to_alcotest (prop_linearizable ~n:5);
      ] );
  ]
