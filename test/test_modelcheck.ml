(* The whole-system model checker (lib/analysis/modelcheck.ml): golden
   diagnostics and minimal counterexample traces for the seeded
   SL070–SL073 fixtures, the interpreter/analyzer lockstep guard, the
   rule-catalog completeness check, the shipped examples' clean bill of
   health, and the lint-vs-runtime differential fuzzer: hundreds of
   random template-generated systems are both model checked and executed
   under the interpreter, and a runtime protocol failure on a
   statically-clean system fails the suite. *)

open Helpers
module Sodalint = Soda_analysis.Sodalint
module Diagnostic = Soda_analysis.Diagnostic
module Automata = Soda_analysis.Automata
module Modelcheck = Soda_analysis.Modelcheck
module Rules = Soda_analysis.Rules
module Ast = Soda_sodal_lang.Ast
module Builtins = Soda_sodal_lang.Builtins
module Interp = Soda_sodal_lang.Interp

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture f = Filename.concat (Filename.concat "lint_fixtures" "modelcheck") f

(* the full sodal_check --model-check pipeline over in-memory sources *)
let check_sources sources =
  let diags = Sodalint.analyze sources in
  let programs, parse_diags = Sodalint.parse_programs sources in
  if parse_diags <> [] then (diags, None)
  else
    let r = Modelcheck.run (Automata.extract programs) in
    ( List.sort_uniq Diagnostic.compare (diags @ Modelcheck.diagnostics_of r),
      Some r )

let check_files paths =
  check_sources
    (List.map (fun path -> { Sodalint.path; text = read_file path }) paths)

let fingerprint (d : Diagnostic.t) =
  Printf.sprintf "%s:%d:%d %s %s" (Filename.basename d.file) d.pos.Ast.line
    d.pos.Ast.col
    (Diagnostic.severity_name d.severity)
    d.rule

(* ---- golden diagnostics for the seeded fixtures -------------------------- *)

let golden_cases =
  [
    ( [ "sl070_deadlock_a.sodal"; "sl070_deadlock_b.sodal" ],
      [
        "sl070_deadlock_a.sodal:20:3 warning SL055";
        "sl070_deadlock_a.sodal:20:3 error SL070";
        "sl070_deadlock_a.sodal:20:3 error SL071";
        "sl070_deadlock_b.sodal:17:3 warning SL055";
        "sl070_deadlock_b.sodal:17:3 error SL070";
        "sl070_deadlock_b.sodal:17:3 error SL071";
      ] );
    ( [ "sl071_orphan_server.sodal"; "sl071_orphan_client.sodal" ],
      [ "sl071_orphan_client.sodal:8:3 error SL071" ] );
    ( [ "sl072_livelock_server.sodal"; "sl072_livelock_client.sodal" ],
      [ "sl072_livelock_client.sodal:10:11 warning SL072" ] );
    ( [ "sl073_withdraw_server.sodal"; "sl073_withdraw_client.sodal" ],
      [ "sl073_withdraw_client.sodal:8:9 warning SL073" ] );
  ]

let test_golden () =
  List.iter
    (fun (fixtures, expected) ->
      let diags, mc = check_files (List.map fixture fixtures) in
      Alcotest.(check (list string))
        (String.concat "+" fixtures)
        expected
        (List.map fingerprint diags);
      match mc with
      | Some r -> Alcotest.(check bool) "exhaustive" true r.Modelcheck.exhausted
      | None -> Alcotest.fail "fixtures did not parse")
    golden_cases

(* ---- golden counterexample traces ----------------------------------------- *)

let find_violation rule (r : Modelcheck.result) =
  match
    List.find_opt
      (fun (v : Modelcheck.violation) -> v.Modelcheck.v_rule = rule)
      r.Modelcheck.violations
  with
  | Some v -> v
  | None -> Alcotest.fail (rule ^ " violation not reported")

let mc_of_files paths =
  match check_files paths with
  | _, Some r -> r
  | _, None -> Alcotest.fail "fixtures did not parse"

let test_trace_deadlock () =
  let r =
    mc_of_files
      [ fixture "sl070_deadlock_a.sodal"; fixture "sl070_deadlock_b.sodal" ]
  in
  let v = find_violation "SL070" r in
  (* breadth-first search order makes this the minimal interleaving *)
  Alcotest.(check (list string))
    "minimal deadlock trace"
    [
      "dl_a: ADVERTISE %0751";
      "dl_b: ADVERTISE %0752";
      "dl_a: DISCOVER %0752 finds an advertiser";
      "dl_a: B_SIGNAL %0752 (blocks)";
      "dl_b: DISCOVER %0751 finds an advertiser";
      "dl_b: B_SIGNAL %0751 (blocks)";
      "deliver B_SIGNAL %0752 from dl_a to dl_b: deferred";
      "deliver B_SIGNAL %0751 from dl_b to dl_a: deferred";
    ]
    v.Modelcheck.v_trace

let test_trace_livelock () =
  let r =
    mc_of_files
      [ fixture "sl072_livelock_server.sodal"; fixture "sl072_livelock_client.sodal" ]
  in
  let v = find_violation "SL072" r in
  Alcotest.(check bool)
    "trace shows the repeating cycle" true
    (List.mem "-- the cycle repeats --" v.Modelcheck.v_trace);
  Alcotest.(check bool)
    "cycle contains the rejection" true
    (List.mem "deliver B_SIGNAL %0771 from busy_client to busy_server: rejected"
       v.Modelcheck.v_trace)

let test_trace_withdrawal () =
  let r =
    mc_of_files
      [ fixture "sl073_withdraw_server.sodal"; fixture "sl073_withdraw_client.sodal" ]
  in
  let v = find_violation "SL073" r in
  Alcotest.(check string)
    "race resolves UNADVERTISED"
    "B_SIGNAL %0731 from flaky_client completes UNADVERTISED"
    (List.nth v.Modelcheck.v_trace (List.length v.Modelcheck.v_trace - 1))

(* ---- interpreter/analyzer lockstep guard --------------------------------- *)

(* The analyzer and model checker read builtin semantics from
   Builtins.all; the interpreter dispatches from its own table. This
   pins them to the same name set so a builtin added to one side without
   the other fails the suite, not a user. *)
let test_lockstep () =
  let table =
    List.sort String.compare
      (List.map (fun (b : Builtins.t) -> b.Builtins.name) Builtins.all)
  in
  let interp = List.sort String.compare (Interp.implemented_builtins ()) in
  Alcotest.(check (list string))
    "interpreter dispatch = shared builtin table" table interp

(* ---- rule catalog completeness -------------------------------------------- *)

(* every rule id any analysis can emit, by construction *)
let emittable_rules =
  [
    "SL000"; "SL001"; "SL002"; "SL003"; "SL004"; "SL010"; "SL011"; "SL012";
    "SL020"; "SL030"; "SL031"; "SL040"; "SL041"; "SL050"; "SL051"; "SL052";
    "SL053"; "SL054"; "SL055"; "SL060"; "SL061"; "SL070"; "SL071"; "SL072";
    "SL073";
  ]

let test_catalog () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " catalogued") true (Rules.find id <> None);
      match Rules.explain id with
      | Some text ->
        Alcotest.(check bool) (id ^ " explained") true (String.length text > 0)
      | None -> Alcotest.fail (id ^ " has no --explain text"))
    emittable_rules;
  (* and nothing in the catalog that no analysis emits *)
  List.iter
    (fun (rule : Rules.t) ->
      Alcotest.(check bool)
        (rule.Rules.id ^ " emittable")
        true
        (List.mem rule.Rules.id emittable_rules))
    Rules.all;
  (* the generated markdown covers the whole catalog *)
  let md = Rules.to_markdown () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " in RULES.md") true (contains md id))
    emittable_rules

(* ---- the shipped examples model-check clean -------------------------------- *)

let test_examples_clean () =
  let dir = Filename.concat ".." (Filename.concat "examples" "sodal") in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sodal")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  Alcotest.(check bool) "found the shipped examples" true (List.length files >= 4);
  let diags, mc = check_files files in
  Alcotest.(check (list string)) "no diagnostics" [] (List.map fingerprint diags);
  match mc with
  | Some r ->
    Alcotest.(check bool) "exhaustive" true r.Modelcheck.exhausted;
    Alcotest.(check bool) "explored something" true (r.Modelcheck.configs_explored > 0)
  | None -> Alcotest.fail "examples did not parse"

(* ---- lint-vs-runtime differential fuzzer ----------------------------------- *)

(* Random well-formed systems from templates: one server whose handler
   arm inline-accepts, always rejects, defers to a §4.2.1 port, or
   swallows the request, possibly advertising the wrong pattern; plus
   one or two clients issuing a burst of blocking or fire-and-forget
   signals. The differential property: if lint and the model checker
   both come back clean, the system must also run clean under the real
   interpreter — every client reaches its final PRINT("DONE") and no
   Runtime_error fires. A failure here means the static side blessed a
   system the runtime rejects (or hangs), i.e. the two semantics have
   drifted. *)

type server_kind = Accept_inline | Reject_all | Port_defer | Ignore_arm

let server_source kind ~mismatch =
  let advertised = if mismatch then "%0702" else "%0701" in
  let arm =
    match kind with
    | Accept_inline -> "      ACCEPT_CURRENT_SIGNAL(0);\n"
    | Reject_all -> "      REJECT();\n"
    | Port_defer ->
      "      ENQUEUE(portq, ASKER);\n      if ISFULL(portq) then\n\
      \        CLOSE();\n      fi;\n"
    | Ignore_arm -> "      PRINT(\"swallowed\");\n"
  in
  let decls, task =
    match kind with
    | Port_defer ->
      ( "var portq : queue[3];\n",
        "task begin\n  loop\n    if not ISEMPTY(portq) then\n      OPEN();\n\
        \      ACCEPT_SIGNAL(DEQUEUE(portq), 0);\n    else\n      IDLE();\n\
        \    fi;\n  forever;\nend;\n" )
    | _ -> ("", "task begin\n  loop\n    IDLE();\n  forever;\nend;\n")
  in
  Printf.sprintf
    "program server;\nconst SVC = %s;\n%sinitialization begin\n\
    \  ADVERTISE(SVC);\nend;\nhandler begin\n  case entry of\n    SVC : begin\n\
     %s    end;\n  esac;\nend;\n%s.\n"
    advertised decls arm task

let client_source i ~nreqs ~blocking =
  let req =
    if blocking then "  st := B_SIGNAL(server, SVC, 0);\n"
    else "  SIGNAL(server, SVC, 0);\n"
  in
  let reqs = String.concat "" (List.init nreqs (fun _ -> req)) in
  let st_decl = if blocking then "var st : string;\n" else "" in
  let st_print = if blocking then "  PRINT(st);\n" else "" in
  Printf.sprintf
    "program client%d;\nconst SVC = %%0701;\nvar server : integer;\n\
     %stask begin\n  server := DISCOVER(SVC);\n%s%s  PRINT(\"DONE\");\nend;\n.\n"
    i st_decl reqs st_print

let gen_system =
  QCheck.Gen.(
    let* kind = oneofl [ Accept_inline; Reject_all; Port_defer; Ignore_arm ] in
    let* mismatch = bool in
    let* nclients = int_range 1 2 in
    let* nreqs = int_range 1 3 in
    let* blocking = bool in
    return (kind, mismatch, nclients, nreqs, blocking))

let arb_system =
  QCheck.make gen_system ~print:(fun (kind, mismatch, nclients, nreqs, blocking) ->
      Printf.sprintf "kind=%s mismatch=%b clients=%d reqs=%d blocking=%b"
        (match kind with
         | Accept_inline -> "accept"
         | Reject_all -> "reject"
         | Port_defer -> "port"
         | Ignore_arm -> "ignore")
        mismatch nclients nreqs blocking)

let run_differential (kind, mismatch, nclients, nreqs, blocking) =
  let server = server_source kind ~mismatch in
  let clients = List.init nclients (fun i -> client_source i ~nreqs ~blocking) in
  let sources =
    { Sodalint.path = "server.sodal"; text = server }
    :: List.mapi
         (fun i text -> { Sodalint.path = Printf.sprintf "client%d.sodal" i; text })
         clients
  in
  let diags, mc = check_sources sources in
  let clean =
    diags = []
    && match mc with Some r -> r.Modelcheck.violations = [] | None -> false
  in
  (* run the very same sources under the interpreter *)
  let net, kernels = make_net (nclients + 1) in
  let dones = ref 0 in
  let runtime_error = ref None in
  (try
     ignore (Interp.attach (List.nth kernels 0) server);
     List.iteri
       (fun i text ->
         ignore
           (Interp.attach
              ~print:(fun s -> if s = "DONE" then incr dones)
              (List.nth kernels (i + 1))
              text))
       clients;
     run ~horizon:120.0 net
   with Interp.Runtime_error e -> runtime_error := Some e);
  if clean then begin
    (match !runtime_error with
     | Some e ->
       QCheck.Test.fail_reportf
         "statically clean system raised Runtime_error %S at runtime" e
     | None -> ());
    if !dones <> nclients then
      QCheck.Test.fail_reportf
        "statically clean system: %d of %d clients reached DONE" !dones nclients
  end;
  true

let prop_differential =
  QCheck.Test.make
    ~name:"differential: lint+model-check clean implies runs clean" ~count:220
    arb_system run_differential

(* anchors against vacuity: the template space must contain systems the
   static side calls clean (so the implication is exercised) and systems
   it flags (so "clean" is not trivially true) *)
let static_clean (kind, mismatch, nclients, nreqs, blocking) =
  let server = server_source kind ~mismatch in
  let clients = List.init nclients (fun i -> client_source i ~nreqs ~blocking) in
  let sources =
    { Sodalint.path = "server.sodal"; text = server }
    :: List.mapi
         (fun i text -> { Sodalint.path = Printf.sprintf "client%d.sodal" i; text })
         clients
  in
  let diags, mc = check_sources sources in
  diags = []
  && match mc with Some r -> r.Modelcheck.violations = [] | None -> false

let test_differential_anchors () =
  Alcotest.(check bool)
    "inline-accept system is statically clean" true
    (static_clean (Accept_inline, false, 2, 3, true));
  Alcotest.(check bool)
    "port-defer system is statically clean" true
    (static_clean (Port_defer, false, 1, 2, false));
  Alcotest.(check bool)
    "request-swallowing system is flagged" false
    (static_clean (Ignore_arm, false, 1, 1, true));
  Alcotest.(check bool)
    "mismatched advertisement is flagged" false
    (static_clean (Accept_inline, true, 1, 1, true))

(* ---- registration ----------------------------------------------------------- *)

let suites =
  [
    ( "modelcheck",
      [
        Alcotest.test_case "golden fixture diagnostics" `Quick test_golden;
        Alcotest.test_case "minimal deadlock trace" `Quick test_trace_deadlock;
        Alcotest.test_case "livelock trace shows the cycle" `Quick
          test_trace_livelock;
        Alcotest.test_case "withdrawal race trace" `Quick test_trace_withdrawal;
        Alcotest.test_case "interpreter/analyzer lockstep" `Quick test_lockstep;
        Alcotest.test_case "rule catalog complete both ways" `Quick test_catalog;
        Alcotest.test_case "shipped examples model-check clean" `Quick
          test_examples_clean;
        Alcotest.test_case "differential templates span clean and flagged"
          `Quick test_differential_anchors;
        QCheck_alcotest.to_alcotest prop_differential;
      ] );
  ]
