(* Golden-trace generator: runs a fixed-seed pingpong scenario with tracing
   on and prints the JSONL export on stdout. The dune rule diffs the output
   against pingpong_trace.expected.jsonl, so any change to event emission,
   protocol timing or the exporter shows up as a reviewable diff
   (`dune promote` accepts it). *)

module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Pattern = Soda_base.Pattern
module Trace = Soda_sim.Trace

let () =
  let patt = Pattern.well_known 0o321 in
  (* Pin the transport window to 1: the degenerate sliding window must
     reproduce the seed's alternating-bit trace byte for byte. *)
  let cost = { Soda_base.Cost_model.default with Soda_base.Cost_model.window = 1 } in
  let net = Network.create ~seed:2025 ~cost ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             ignore
               (Sodal.accept_current_exchange env ~arg:0 ~into:(Bytes.create 4)
                  ~data:(Bytes.of_string "pong")));
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for _ = 1 to 3 do
               let into = Bytes.create 4 in
               let c = Sodal.b_exchange env sv ~arg:0 (Bytes.of_string "ping") ~into in
               if c.Sodal.status <> Sodal.Comp_ok then failwith "exchange failed"
             done;
             Sodal.serve env);
       });
  ignore (Network.run ~until:60_000_000 net);
  print_string (Soda_obs.Export.jsonl (Soda_obs.Recorder.events (Network.recorder net)))
