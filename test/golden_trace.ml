(* Golden-trace generator: runs a fixed-seed scenario with tracing on and
   prints the JSONL export on stdout. The dune rules diff the output
   against the checked-in snapshots, so any change to event emission,
   protocol timing or the exporter shows up as a reviewable diff
   (`dune promote` accepts it).

   Scenarios (selected by argv):
   - "pingpong" (default): window 1 — the degenerate sliding window must
     reproduce the seed's alternating-bit trace byte for byte;
   - "windowed": window 4 — pins the window<=8 single-extension-byte wire
     format and the AIMD ramp (cwnd growth on clean cumulative acks). *)

module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model

let pingpong () =
  let patt = Pattern.well_known 0o321 in
  let cost = { Cost.default with Cost.window = 1 } in
  let net = Network.create ~seed:2025 ~cost ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             ignore
               (Sodal.accept_current_exchange env ~arg:0 ~into:(Bytes.create 4)
                  ~data:(Bytes.of_string "pong")));
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for _ = 1 to 3 do
               let into = Bytes.create 4 in
               let c = Sodal.b_exchange env sv ~arg:0 (Bytes.of_string "ping") ~into in
               if c.Sodal.status <> Sodal.Comp_ok then failwith "exchange failed"
             done;
             Sodal.serve env);
       });
  net

let windowed () =
  let patt = Pattern.well_known 0o321 in
  let cost = { Cost.default with Cost.window = 4; maxrequests = 5 } in
  let net = Network.create ~seed:2025 ~cost ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (* six pipelined signals: enough to open the window past the
                initial cwnd and exercise cumulative piggybacked acks *)
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let pending = ref 0 in
             for i = 1 to 6 do
               while !pending >= 4 do
                 Sodal.idle env
               done;
               let tid = Sodal.signal env sv ~arg:i in
               incr pending;
               Sodal.on_completion_of env tid (fun _ -> decr pending)
             done;
             while !pending > 0 do
               Sodal.idle env
             done;
             Sodal.serve env);
       });
  net

let () =
  let net =
    match if Array.length Sys.argv > 1 then Sys.argv.(1) else "pingpong" with
    | "pingpong" -> pingpong ()
    | "windowed" -> windowed ()
    | s -> failwith (Printf.sprintf "unknown golden scenario %S" s)
  in
  ignore (Network.run ~until:60_000_000 net);
  print_string (Soda_obs.Export.jsonl (Soda_obs.Recorder.events (Network.recorder net)))
