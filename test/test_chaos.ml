(* Chaos/soak suite: the exactly-once property and the Chapter-4
   facilities under declarative fault plans -- qcheck-generated random
   plans plus hand-crafted adversaries (an ack eaten by a partition, a
   server reboot between deliver and ACCEPT, a requester reboot with the
   reply in flight).

   Every failure is reproducible from the printed (seed, fault plan)
   pair alone: the counterexample prints in the fault-plan file format,
   so saving it to a file and running

     dune exec bin/sodal_run.exe -- --seed SEED --fault-plan plan.txt \
       examples/sodal/pingpong_server.sodal examples/sodal/pingpong_client.sodal

   replays the exact schedule (see docs/TESTING.md). Nightly soak runs
   scale the case count with SODA_CHAOS_COUNT and shift the seed space
   with SODA_CHAOS_SEED. *)

open Helpers
module Bus = Soda_net.Bus
module Fault_plan = Soda_fault.Fault_plan
module Injector = Soda_fault.Injector
module Rpc = Soda_facilities.Rpc
module Nameserver = Soda_facilities.Nameserver
module Stream = Soda_facilities.Stream
module Multicast = Soda_facilities.Multicast
module Bidding = Soda_facilities.Bidding

let patt = Pattern.well_known 0o555

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

(* Nightly knobs: SODA_CHAOS_COUNT raises the random-plan case count,
   SODA_CHAOS_SEED shifts the whole seed space (see the chaos-nightly
   workflow). *)
let chaos_count = env_int "SODA_CHAOS_COUNT" 30
let chaos_seed = env_int "SODA_CHAOS_SEED" 0

(* ---- the exactly-once harness ------------------------------------------------

   A server on mid 0 logging every delivered arg, a client on mid 1
   issuing [ops] sequential signals, a fault plan injected over the run.
   Deliveries are segmented per server incarnation: the on_reboot hook
   closes the current log and re-attaches the server program, exactly as
   a SODAL deployment would restart its service. *)

type outcome = {
  statuses : (int, Sodal.comp_status) Hashtbl.t;
  incarnations : int list list; (* per-incarnation delivery logs, oldest first *)
}

let run_harness ~seed ~loss ~handler_us ~ops plan =
  let net, kernels = make_net ~seed 2 in
  if loss > 0.0 then Bus.set_loss_rate (Network.bus net) loss;
  let current = ref [] and closed = ref [] in
  let server_spec =
    {
      Sodal.default_spec with
      Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request =
        (fun env info ->
          current := info.Sodal.arg :: !current;
          if handler_us > 0 then Sodal.compute env handler_us;
          ignore (Sodal.accept_current_signal env ~arg:0));
    }
  in
  ignore (Sodal.attach (List.nth kernels 0) server_spec);
  let statuses = Hashtbl.create 16 in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 1 to ops do
               let c = Sodal.b_signal env sv ~arg:i in
               Hashtbl.replace statuses i c.Sodal.status;
               (* after a crash verdict, wait out the reboot + quarantine
                  so one dead server cannot swallow the whole batch *)
               if c.Sodal.status = Sodal.Comp_crashed then
                 Sodal.compute env 2_000_000
             done);
       });
  Injector.install net plan ~on_reboot:(fun ~mid kernel ->
      if mid = 0 then begin
        closed := List.rev !current :: !closed;
        current := [];
        ignore (Sodal.attach kernel server_spec)
      end);
  ignore (Network.run ~until:600_000_000 net);
  { statuses; incarnations = List.rev (List.rev !current :: !closed) }

(* The invariants that must survive ANY plan the generator can produce:
   every op completes with some status; within each server incarnation
   the deliveries are duplicate-free and in issue order; nothing is
   invented; a COMPLETED op was delivered. CRASHED is a legitimate
   verdict (bounded retransmissions, §5.2.2) and such an op may have
   been delivered at most once. *)
let exactly_once ~ops outcome =
  let all_completed = Hashtbl.length outcome.statuses = ops in
  let per_incarnation_ok =
    List.for_all
      (fun log ->
        List.length log = List.length (List.sort_uniq compare log)
        && List.sort compare log = log)
      outcome.incarnations
  in
  let deliveries = List.concat outcome.incarnations in
  let no_inventions = List.for_all (fun d -> d >= 1 && d <= ops) deliveries in
  let consistent =
    List.for_all
      (fun i ->
        match Hashtbl.find_opt outcome.statuses i with
        | Some Sodal.Comp_ok -> List.mem i deliveries
        | Some Sodal.Comp_crashed -> true
        | Some (Sodal.Comp_rejected | Sodal.Comp_unadvertised) | None -> false)
      (List.init ops (fun i -> i + 1))
  in
  all_completed && per_incarnation_ok && no_inventions && consistent

(* ---- random plans ------------------------------------------------------------ *)

type scenario = {
  seed : int;
  loss_pct : int;
  handler_us : int; (* server turnaround: widens the crash-mid-txn window *)
  cut : int option; (* partition at, healed [heal_gap] later *)
  heal_gap : int;
  crash : int option; (* server crash at, rebooted [reboot_gap] later *)
  reboot_gap : int;
  dup : (int * int) option; (* duplicate the next [n] frames at t *)
  jitter : (int * int) option; (* min/max per-frame delay, from t=0 *)
  burst : (int * int * int) option; (* loss burst: at, rate %, duration *)
}

(* Only the SERVER node (mid 0) is ever crashed: crashing the client
   kills its blocking fiber mid-call, which is machine death, not a
   protocol adversary (the requester-reboot adversary is hand-crafted
   below). Jitter stays well under the retransmission interval so the
   stop-and-wait exchange cannot reorder. *)
let gen_scenario st =
  let open QCheck.Gen in
  let opt g st = if bool st then Some (g st) else None in
  let seed = int_bound 9999 st in
  let loss_pct = int_bound 12 st in
  let handler_us = oneofl [ 0; 20_000; 100_000 ] st in
  let cut = opt (int_range 1_000 800_000) st in
  let heal_gap = int_range 20_000 300_000 st in
  let crash = opt (int_range 50_000 1_200_000) st in
  let reboot_gap = int_range 10_000 400_000 st in
  let dup = opt (pair (int_range 0 500_000) (int_range 1 3)) st in
  let jitter = opt (pair (int_range 0 1_000) (int_range 1_000 2_000)) st in
  let burst =
    opt (triple (int_range 0 400_000) (int_range 5 40) (int_range 20_000 150_000)) st
  in
  { seed; loss_pct; handler_us; cut; heal_gap; crash; reboot_gap; dup; jitter; burst }

let plan_of_scenario s =
  let steps = ref [] in
  let add at_us action = steps := { Fault_plan.at_us; action } :: !steps in
  (match s.jitter with
   | Some (min_us, max_us) -> add 0 (Fault_plan.Delay_jitter { min_us; max_us })
   | None -> ());
  (match s.cut with
   | Some at ->
     add at (Fault_plan.Partition ([ 0 ], [ 1 ]));
     add (at + s.heal_gap) Fault_plan.Heal
   | None -> ());
  (match s.crash with
   | Some at ->
     add at (Fault_plan.Crash 0);
     add (at + s.reboot_gap) (Fault_plan.Reboot 0)
   | None -> ());
  (match s.dup with
   | Some (at, n) -> add at (Fault_plan.Duplicate_next n)
   | None -> ());
  (match s.burst with
   | Some (at, pct, duration_us) ->
     add at (Fault_plan.Loss_burst { rate = float_of_int pct /. 100.0; duration_us })
   | None -> ());
  List.sort (fun a b -> compare a.Fault_plan.at_us b.Fault_plan.at_us) !steps

let scenario_print s =
  Printf.sprintf
    "net-seed=%d loss=%d%% handler=%dus\n-- fault plan --\n%s-- replay --\n\
     save the plan above to plan.txt, then:\n\
     \  dune exec bin/sodal_run.exe -- --seed %d --fault-plan plan.txt \\\n\
     \    examples/sodal/pingpong_server.sodal examples/sodal/pingpong_client.sodal\n"
    (chaos_seed + s.seed + 1) s.loss_pct s.handler_us
    (Fault_plan.to_string (plan_of_scenario s))
    (chaos_seed + s.seed + 1)

let arb_scenario = QCheck.make ~print:scenario_print gen_scenario

let prop_exactly_once_under_chaos =
  QCheck.Test.make ~name:"chaos: exactly-once under random fault plans"
    ~count:chaos_count arb_scenario
    (fun s ->
      let outcome =
        run_harness ~seed:(chaos_seed + s.seed + 1)
          ~loss:(float_of_int s.loss_pct /. 100.0)
          ~handler_us:s.handler_us ~ops:6 (plan_of_scenario s)
      in
      exactly_once ~ops:6 outcome)

(* A deterministic soak sweep rides in the tier-1 suite: a fixed band of
   seeds through a composite plan exercising every action kind at once.
   Unlike the qcheck property the schedule here never varies, so any
   regression bisects cleanly. *)
let test_soak_composite_plan () =
  let plan =
    [
      { Fault_plan.at_us = 0; action = Fault_plan.Delay_jitter { min_us = 0; max_us = 1_500 } };
      { Fault_plan.at_us = 3_000; action = Fault_plan.Duplicate_next 2 };
      { Fault_plan.at_us = 20_000; action = Fault_plan.Partition ([ 0 ], [ 1 ]) };
      { Fault_plan.at_us = 90_000; action = Fault_plan.Heal };
      { Fault_plan.at_us = 150_000;
        action = Fault_plan.Loss_burst { rate = 0.3; duration_us = 100_000 } };
      { Fault_plan.at_us = 400_000; action = Fault_plan.Crash 0 };
      { Fault_plan.at_us = 700_000; action = Fault_plan.Reboot 0 };
    ]
  in
  for seed = 1 to 10 do
    let outcome = run_harness ~seed ~loss:0.05 ~handler_us:20_000 ~ops:6 plan in
    if not (exactly_once ~ops:6 outcome) then
      Alcotest.failf "soak violation at seed %d; replay with:\n%s" seed
        (Fault_plan.to_string plan)
  done

(* ---- hand-crafted adversaries ------------------------------------------------ *)

(* The ACCEPT is eaten by a partition cut just after the request lands.
   The requester keeps retransmitting into the void; after the heal the
   server-side duplicate suppression must answer the retry by RESENDING
   the ACCEPT, not by re-executing the handler: Comp_ok, delivered
   exactly once. *)
let test_ack_eaten_by_partition () =
  let plan =
    [
      { Fault_plan.at_us = 5_000; action = Fault_plan.Partition ([ 0 ], [ 1 ]) };
      { Fault_plan.at_us = 60_000; action = Fault_plan.Heal };
    ]
  in
  (* handler 10 ms: the request is delivered (~4 ms) before the cut, the
     ACCEPT (~14 ms) is sent into the partition and eaten *)
  let outcome = run_harness ~seed:11 ~loss:0.0 ~handler_us:10_000 ~ops:1 plan in
  Alcotest.(check bool) "completed OK" true
    (Hashtbl.find_opt outcome.statuses 1 = Some Sodal.Comp_ok);
  Alcotest.(check (list (list int))) "delivered exactly once" [ [ 1 ] ]
    outcome.incarnations

(* The server crashes between delivering the request and sending the
   ACCEPT; the requester's probes must return a CRASHED verdict, and the
   rebooted incarnation must serve the follow-up op without ever seeing
   the first one again. *)
let test_reboot_between_deliver_and_accept () =
  let plan =
    [
      { Fault_plan.at_us = 100_000; action = Fault_plan.Crash 0 };
      { Fault_plan.at_us = 1_000_000; action = Fault_plan.Reboot 0 };
    ]
  in
  (* handler 800 ms: the crash at 100 ms lands mid-handler *)
  let outcome = run_harness ~seed:12 ~loss:0.0 ~handler_us:800_000 ~ops:2 plan in
  Alcotest.(check bool) "op 1 CRASHED" true
    (Hashtbl.find_opt outcome.statuses 1 = Some Sodal.Comp_crashed);
  Alcotest.(check bool) "op 2 served by the new incarnation" true
    (Hashtbl.find_opt outcome.statuses 2 = Some Sodal.Comp_ok);
  Alcotest.(check (list (list int))) "no cross-incarnation replay" [ [ 1 ]; [ 2 ] ]
    outcome.incarnations

(* The REQUESTER reboots while the server still holds its request; when
   the held-back data-bearing ACCEPT finally arrives, the fresh
   incarnation's mint classifies the TID stale and answers Err_crashed
   (§5.4): the server observes ACCEPT status CRASHED, and the rebooted
   node's own fresh request is served normally. *)
let test_requester_reboot_stale_reply () =
  let net, kernels = make_net ~seed:13 2 in
  let first_accept = ref None and delivered = ref [] and fresh = ref None in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             delivered := info.Sodal.arg :: !delivered;
             Sodal.compute env 500_000;
             let st, _ =
               Sodal.accept_current_exchange env ~arg:0
                 ~into:(Bytes.create info.Sodal.put_size)
                 ~data:(Bytes.of_string "reply")
             in
             if !first_accept = None then first_accept := Some st);
       });
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             ignore
               (Sodal.b_exchange env
                  (Sodal.server ~mid:0 ~pattern:patt)
                  ~arg:1 Bytes.empty ~into:(Bytes.create 16)));
       });
  let plan =
    [
      { Fault_plan.at_us = 100_000; action = Fault_plan.Crash 1 };
      { Fault_plan.at_us = 200_000; action = Fault_plan.Reboot 1 };
    ]
  in
  Injector.install net plan ~quarantine:false ~on_reboot:(fun ~mid:_ kernel ->
      ignore
        (Sodal.attach kernel
           {
             Sodal.default_spec with
             task =
               (fun env ->
                 (* outlive the stale ACCEPT (~500 ms), then prove the
                    reborn node is a first-class requester *)
                 Sodal.compute env 1_000_000;
                 let c =
                   Sodal.b_exchange env
                     (Sodal.server ~mid:0 ~pattern:patt)
                     ~arg:2 Bytes.empty ~into:(Bytes.create 16)
                 in
                 fresh := Some c.Sodal.status);
           }));
  run ~horizon:600.0 net;
  Alcotest.(check bool) "stale reply answered CRASHED" true
    (!first_accept = Some Types.Accept_crashed);
  Alcotest.(check bool) "fresh request from reborn node served" true
    (!fresh = Some Sodal.Comp_ok);
  Alcotest.(check (list int)) "each op delivered once" [ 1; 2 ] (List.rev !delivered)

(* ---- windowed-transport adversaries ------------------------------------------ *)

(* The pipelined variant of the exactly-once harness: a client with a
   sliding window of [window] keeps up to [window] signals in flight at
   once (cost-model window raised to match), so the fault lands while
   several sequence numbers are unacknowledged. Issue order no longer
   pins delivery order -- a BUSY retry legitimately re-sequences a
   request behind its successors -- so the invariants here are the
   order-free core: every op gets a verdict, nothing is delivered twice
   (within OR across incarnations: a rebooted server must never replay a
   pre-crash op), nothing is invented, and COMPLETED means delivered. *)
let run_windowed_harness ~seed ~window ~loss ~handler_us ~ops ?(tail_ops = 0) plan =
  let cost =
    { Cost.default with Cost.window; maxrequests = window + 1 }
  in
  let net, kernels = make_net ~seed ~cost 2 in
  if loss > 0.0 then Bus.set_loss_rate (Network.bus net) loss;
  let current = ref [] and closed = ref [] in
  let server_spec =
    {
      Sodal.default_spec with
      Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request =
        (fun env info ->
          current := info.Sodal.arg :: !current;
          if handler_us > 0 then Sodal.compute env handler_us;
          ignore (Sodal.accept_current_signal env ~arg:0));
    }
  in
  ignore (Sodal.attach (List.nth kernels 0) server_spec);
  let statuses = Hashtbl.create 16 in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let in_flight = ref 0 in
             for i = 1 to ops do
               while !in_flight >= window do
                 Sodal.idle env
               done;
               let tid = Sodal.signal env sv ~arg:i in
               incr in_flight;
               Sodal.on_completion_of env tid (fun c ->
                   decr in_flight;
                   Hashtbl.replace statuses i c.Sodal.status)
             done;
             while !in_flight > 0 do
               Sodal.idle env
             done;
             (* optional sequential tail: outlive reboot + quarantine, then
                prove the fresh incarnation serves the reborn window *)
             for i = ops + 1 to ops + tail_ops do
               if
                 Hashtbl.fold
                   (fun _ st any -> any || st = Sodal.Comp_crashed)
                   statuses false
               then Sodal.compute env 2_000_000;
               let c = Sodal.b_signal env sv ~arg:i in
               Hashtbl.replace statuses i c.Sodal.status
             done);
       });
  Injector.install net plan ~on_reboot:(fun ~mid kernel ->
      if mid = 0 then begin
        closed := List.rev !current :: !closed;
        current := [];
        ignore (Sodal.attach kernel server_spec)
      end);
  ignore (Network.run ~until:600_000_000 net);
  { statuses; incarnations = List.rev (List.rev !current :: !closed) }

let exactly_once_unordered ~ops outcome =
  let all_completed = Hashtbl.length outcome.statuses = ops in
  let deliveries = List.concat outcome.incarnations in
  let no_duplicates =
    List.length deliveries = List.length (List.sort_uniq compare deliveries)
  in
  let no_inventions = List.for_all (fun d -> d >= 1 && d <= ops) deliveries in
  let consistent =
    List.for_all
      (fun i ->
        match Hashtbl.find_opt outcome.statuses i with
        | Some Sodal.Comp_ok -> List.mem i deliveries
        | Some Sodal.Comp_crashed -> true
        | Some (Sodal.Comp_rejected | Sodal.Comp_unadvertised) | None -> false)
      (List.init ops (fun i -> i + 1))
  in
  all_completed && no_duplicates && no_inventions && consistent

(* A 40% loss burst landing while the window is full of unacked signals:
   retransmission under cumulative acks must recover every one of them,
   exactly once, with no crash verdicts (the burst is shorter than the
   retransmission budget). *)
let test_window_loss_burst_mid_flight () =
  let plan =
    [
      { Fault_plan.at_us = 5_000;
        action = Fault_plan.Loss_burst { rate = 0.4; duration_us = 60_000 } };
    ]
  in
  let outcome =
    run_windowed_harness ~seed:61 ~window:4 ~loss:0.0 ~handler_us:5_000 ~ops:8 plan
  in
  Alcotest.(check bool) "exactly once" true (exactly_once_unordered ~ops:8 outcome);
  Alcotest.(check bool) "no crash verdicts under a recoverable burst" true
    (Hashtbl.fold (fun _ st ok -> ok && st = Sodal.Comp_ok) outcome.statuses true)

(* The server crashes with W-1 signals unacknowledged in the window and
   reboots later: every in-flight op gets an honest verdict (OK iff it
   was delivered), the fresh incarnation never sees a pre-crash op again
   (stale-TID classification, §5.4), and a follow-up op issued after the
   quarantine is served normally. *)
let test_window_crash_with_unacked () =
  let plan =
    [
      { Fault_plan.at_us = 60_000; action = Fault_plan.Crash 0 };
      { Fault_plan.at_us = 800_000; action = Fault_plan.Reboot 0 };
    ]
  in
  let outcome =
    run_windowed_harness ~seed:62 ~window:4 ~loss:0.0 ~handler_us:100_000 ~ops:3
      ~tail_ops:1 plan
  in
  Alcotest.(check bool) "exactly once across incarnations" true
    (exactly_once_unordered ~ops:4 outcome);
  Alcotest.(check bool) "some in-flight op got a crash verdict" true
    (Hashtbl.fold (fun _ st any -> any || st = Sodal.Comp_crashed) outcome.statuses false);
  Alcotest.(check bool) "follow-up op served after reboot" true
    (Hashtbl.find_opt outcome.statuses 4 = Some Sodal.Comp_ok)

(* A duplicate storm: every early frame delivered twice while the window
   is full. Replay records must answer every duplicate; nothing is
   applied twice. *)
let test_window_duplicate_storm () =
  let plan =
    [
      { Fault_plan.at_us = 0; action = Fault_plan.Duplicate_next 12 };
      { Fault_plan.at_us = 40_000; action = Fault_plan.Duplicate_next 12 };
    ]
  in
  let outcome =
    run_windowed_harness ~seed:63 ~window:4 ~loss:0.0 ~handler_us:5_000 ~ops:8 plan
  in
  Alcotest.(check bool) "exactly once under duplication" true
    (exactly_once_unordered ~ops:8 outcome);
  Alcotest.(check bool) "all ops completed OK" true
    (Hashtbl.fold (fun _ st ok -> ok && st = Sodal.Comp_ok) outcome.statuses true)

(* ---- incast: many clients fan in on one server (PR 10) ----------------------- *)

(* [clients] windowed senders each push [ops] signals at one server.
   Returns (statuses keyed by (client, op), virtual finish time). The
   congestion regime the AIMD layer exists for: aggregate in-flight
   demand far exceeds what the shared medium absorbs, so queueing delay
   inflates roughly [clients]-fold and a static retransmission schedule
   fires spuriously on packets that are merely queued. *)
let run_incast ~seed ~clients ~ops ~window plan =
  let cost = { Cost.default with Cost.window; maxrequests = window + 1 } in
  let net, kernels = make_net ~seed ~cost (clients + 1) in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             ignore info.Sodal.arg;
             ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let statuses = Hashtbl.create 256 in
  let done_count = ref 0 and finished_at = ref 0 in
  List.iteri
    (fun idx kernel ->
      if idx > 0 then
        ignore
          (Sodal.attach kernel
             {
               Sodal.default_spec with
               task =
                 (fun env ->
                   let sv = Sodal.server ~mid:0 ~pattern:patt in
                   let in_flight = ref 0 in
                   for i = 1 to ops do
                     while !in_flight >= window do
                       Sodal.idle env
                     done;
                     let tid = Sodal.signal env sv ~arg:i in
                     incr in_flight;
                     Sodal.on_completion_of env tid (fun c ->
                         decr in_flight;
                         Hashtbl.replace statuses (idx, i) c.Sodal.status;
                         incr done_count;
                         if !done_count = clients * ops then
                           finished_at := Sodal.now env)
                   done;
                   while !in_flight > 0 do
                     Sodal.idle env
                   done);
             }))
    kernels;
  Injector.install net plan;
  ignore (Network.run ~until:600_000_000 net);
  (statuses, !finished_at)

(* 16 clients -> 1 server through a mid-transfer loss burst: the batch
   must converge with every op COMPLETED (no false CRASHED verdict — a
   queued-but-alive server is not a crashed one) and a finish time within
   2x of the loss-free run of the same workload. Without the adaptive
   RTO + AIMD machinery this collapses: the static schedule undershoots
   the 16-deep queueing delay and the retransmit storm feeds itself. *)
let test_incast_converges_under_loss_burst () =
  let clients = 16 and ops = 8 and window = 8 in
  let plan =
    [
      { Fault_plan.at_us = 50_000;
        action = Fault_plan.Loss_burst { rate = 0.3; duration_us = 100_000 } };
    ]
  in
  let all_ok statuses =
    Hashtbl.fold (fun _ st ok -> ok && st = Sodal.Comp_ok) statuses true
  in
  let statuses_clean, t_clean = run_incast ~seed:64 ~clients ~ops ~window [] in
  let statuses_lossy, t_lossy = run_incast ~seed:64 ~clients ~ops ~window plan in
  Alcotest.(check int) "all ops completed (loss-free)" (clients * ops)
    (Hashtbl.length statuses_clean);
  Alcotest.(check int) "all ops completed (loss burst)" (clients * ops)
    (Hashtbl.length statuses_lossy);
  Alcotest.(check bool) "zero false CRASHED verdicts (loss-free)" true
    (all_ok statuses_clean);
  Alcotest.(check bool) "zero false CRASHED verdicts (loss burst)" true
    (all_ok statuses_lossy);
  Alcotest.(check bool)
    (Printf.sprintf "lossy run within 2x of loss-free (%d us <= 2 * %d us)" t_lossy
       t_clean)
    true
    (t_lossy <= 2 * t_clean)

(* ---- Karn's rule (scripted peer) --------------------------------------------- *)

module Transport = Soda_proto.Transport
module Wire = Soda_proto.Wire
module Nic = Soda_net.Nic
module Engine = Soda_sim.Engine
module Trace = Soda_sim.Trace

(* A scripted peer controls exactly which transmission of a REQUEST gets
   acknowledged. [ack_first = false] swallows the first copy and acks
   only the retransmission: the sender cannot know which copy the ack
   answers, so Karn's rule forbids the sample and the estimator must
   stay empty. The [ack_first = true] control run must sample. *)
let run_karn ~ack_first =
  let engine = Engine.create ~seed:17 () in
  let trace = Trace.create ~enabled:false () in
  let bus = Bus.create engine in
  let cost = { Cost.default with Cost.window = 4; maxrequests = 5 } in
  let sender = Transport.create ~engine ~bus ~mid:0 ~cost ~trace in
  Transport.set_callbacks sender
    {
      Transport.deliver_request =
        (fun ~src:_ ~tid:_ ~pattern:_ ~arg:_ ~put_size:_ ~get_size:_ -> `Deliver);
      complete_request = (fun ~tid:_ _ -> ());
      advertised = (fun _ -> true);
      classify_unknown_tid = (fun _ -> `Stale);
    };
  ignore (Transport.attach_nic sender);
  let requests_seen = ref 0 in
  let peer = ref None in
  let p =
    Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ payload ->
        match Wire.decode_sub payload ~off:0 ~len:(Bytes.length payload) with
        | Error _ -> ()
        | Ok pkt ->
          (match pkt.Wire.body with
           | Wire.Request _ ->
             incr requests_seen;
             if ack_first || !requests_seen >= 2 then begin
               let ack =
                 Wire.encode
                   { Wire.src = 1; reliable = false; seq = 0;
                     ack = Some pkt.Wire.seq; run = false; body = Wire.Ack }
               in
               ignore
                 (Engine.schedule engine ~delay:500 (fun () ->
                      Nic.send (Option.get !peer) ~dst:0 ack))
             end
           | _ -> ()))
  in
  peer := Some p;
  (* Submit at a nonzero virtual time: a packet emitted at t=0 would be
     indistinguishable from the estimator's never-sent sentinel. *)
  ignore
    (Engine.schedule engine ~delay:1000 (fun () ->
         Transport.submit_request sender ~dst:1 ~tid:9001 ~pattern:patt ~arg:7
           ~put_data:Bytes.empty ~get_size:0));
  (* The delta-t record (and the estimator riding on it) expires after
     ~150 ms of silence, so snapshot the estimate while the record is
     still live rather than after the full run. *)
  let estimate = ref None in
  ignore
    (Engine.schedule engine ~delay:50_000 (fun () ->
         estimate := Transport.rtt_estimate_us sender ~peer:1));
  ignore (Engine.run ~until:5_000_000 engine);
  (!requests_seen, !estimate)

let test_karn_retransmit_never_samples () =
  let seen, estimate = run_karn ~ack_first:false in
  Alcotest.(check bool) "the REQUEST was retransmitted" true (seen >= 2);
  Alcotest.(check bool) "retransmitted packet never feeds the RTT estimator" true
    (estimate = None)

let test_karn_clean_ack_samples () =
  let seen, estimate = run_karn ~ack_first:true in
  Alcotest.(check int) "single transmission sufficed" 1 seen;
  match estimate with
  | Some (srtt, rttvar) ->
    Alcotest.(check bool) "positive smoothed RTT" true (srtt > 0);
    Alcotest.(check bool) "non-negative variance" true (rttvar >= 0)
  | None -> Alcotest.fail "clean first-transmission ack must sample the estimator"

(* ---- facilities under fault plans -------------------------------------------- *)

(* An RPC call across a partition cut + heal, with duplicated frames and
   jitter: the call must still return the one correct answer. *)
let test_rpc_under_partition_and_dup () =
  let net, kernels = make_net ~seed:21 2 in
  let double _env params =
    Bytes.of_string (string_of_int (2 * int_of_string (Bytes.to_string params)))
  in
  ignore (Sodal.attach (List.nth kernels 0) (Rpc.spec [ (patt, double) ]));
  let result = ref None in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             result :=
               Some
                 (Rpc.call env (Sodal.server ~mid:0 ~pattern:patt)
                    (Bytes.of_string "21") ~result_size:16));
       });
  let plan =
    [
      { Fault_plan.at_us = 0; action = Fault_plan.Delay_jitter { min_us = 0; max_us = 500 } };
      { Fault_plan.at_us = 0; action = Fault_plan.Duplicate_next 2 };
      { Fault_plan.at_us = 2_000; action = Fault_plan.Partition ([ 0 ], [ 1 ]) };
      { Fault_plan.at_us = 60_000; action = Fault_plan.Heal };
    ]
  in
  Injector.install net plan;
  run net;
  match !result with
  | Some (Ok r) -> Alcotest.(check string) "rpc answer" "42" (Bytes.to_string r)
  | Some (Error _) -> Alcotest.fail "rpc failed under partition + heal"
  | None -> Alcotest.fail "rpc never returned"

(* The nameserver under duplicated frames: a duplicated REGISTER must not
   double-apply (the retry answers Already_registered, not a dangling
   second binding), and lookup still resolves after a cut + heal. *)
let test_nameserver_under_chaos () =
  let net, kernels = make_net ~seed:22 2 in
  ignore (Sodal.attach (List.nth kernels 0) (Nameserver.spec ()));
  let reg = ref None and again = ref None and looked = ref None and listed = ref None in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sb =
               Sodal.server ~mid:0 ~pattern:Nameserver.switchboard_pattern
             in
             let me = Sodal.server ~mid:1 ~pattern:patt in
             let rival = Sodal.server ~mid:1 ~pattern:(Pattern.well_known 0o556) in
             reg := Some (Nameserver.register env sb ~name:"svc/echo" me);
             (* a rival binding for the taken name: first-wins must hold
                even with the frames duplicated on the wire *)
             again := Some (Nameserver.register env sb ~name:"svc/echo" rival);
             looked := Some (Nameserver.lookup env sb ~name:"svc/echo");
             listed := Some (Nameserver.list env sb ~prefix:"svc"));
       });
  let plan =
    [
      { Fault_plan.at_us = 0; action = Fault_plan.Duplicate_next 4 };
      { Fault_plan.at_us = 8_000; action = Fault_plan.Partition ([ 0 ], [ 1 ]) };
      { Fault_plan.at_us = 50_000; action = Fault_plan.Heal };
    ]
  in
  Injector.install net plan;
  run net;
  Alcotest.(check bool) "registered" true (!reg = Some (Ok ()));
  Alcotest.(check bool) "duplicate register rejected" true
    (!again = Some (Error Nameserver.Already_registered));
  (match !looked with
   | Some (Ok sv) ->
     Alcotest.(check bool) "resolves to registrant" true
       (sv.Types.sv_mid = Types.Mid 1)
   | _ -> Alcotest.fail "lookup failed");
  match !listed with
  | Some (Ok names) -> Alcotest.(check (list string)) "listing" [ "svc/echo" ] names
  | _ -> Alcotest.fail "list failed"

(* A chunked stream through a partition cut + a 30% loss burst: the block
   must reassemble byte-identical, exactly once. *)
let test_stream_under_partition_and_burst () =
  let net, kernels = make_net ~seed:23 2 in
  let payload = String.init 3_000 (fun i -> Char.chr ((i mod 94) + 33)) in
  let blocks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       (Stream.sink ~pattern:patt
          ~on_block:(fun _ ~src:_ block -> blocks := Bytes.to_string block :: !blocks)
          ()));
  let sent = ref None in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             sent :=
               Some
                 (Stream.send env (Sodal.server ~mid:0 ~pattern:patt)
                    ~chunk_bytes:200 (Bytes.of_string payload)));
       });
  let plan =
    [
      { Fault_plan.at_us = 10_000; action = Fault_plan.Partition ([ 0 ], [ 1 ]) };
      { Fault_plan.at_us = 70_000; action = Fault_plan.Heal };
      { Fault_plan.at_us = 150_000;
        action = Fault_plan.Loss_burst { rate = 0.3; duration_us = 100_000 } };
    ]
  in
  Injector.install net plan;
  run ~horizon:600.0 net;
  Alcotest.(check bool) "sender completed" true (!sent = Some (Ok ()));
  Alcotest.(check (list string)) "block reassembled exactly once" [ payload ] !blocks

(* A reliable multicast to a 4-member group with one member crashed in
   the middle of the round (40 ms member handlers hold the transfers
   open across the crash). Delivery-to-survivors: every surviving member
   must deliver exactly once with Comp_ok, the dead member gets an
   honest verdict (Comp_ok iff it delivered before dying), and the
   sender must not hang. *)
let test_multicast_delivery_to_survivors () =
  let group = [ 0; 1; 2; 3 ] and victim = 2 in
  let net, kernels = make_net ~seed:41 5 in
  let delivered = Hashtbl.create 8 in
  List.iter
    (fun mid ->
      ignore
        (Sodal.attach (List.nth kernels mid)
           {
             Sodal.default_spec with
             init = (fun env ~parent:_ -> Sodal.advertise env patt);
             on_request =
               (fun env _info ->
                 Sodal.compute env 40_000;
                 Hashtbl.replace delivered mid
                   (1 + Option.value ~default:0 (Hashtbl.find_opt delivered mid));
                 ignore (Sodal.accept_current_signal env ~arg:0));
           }))
    group;
  let outcomes = ref None in
  ignore
    (Sodal.attach (List.nth kernels 4)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 20_000;
             outcomes := Some (Multicast.signal env ~group ~pattern:patt ()));
       });
  Injector.install net
    [ { Fault_plan.at_us = 50_000; action = Fault_plan.Crash victim } ];
  run net;
  match !outcomes with
  | None -> Alcotest.fail "multicast never returned"
  | Some outcomes ->
    Alcotest.(check (list int)) "an outcome per member" group
      (List.sort compare (List.map (fun (o : Multicast.outcome) -> o.mid) outcomes));
    List.iter
      (fun (o : Multicast.outcome) ->
        let count = Option.value ~default:0 (Hashtbl.find_opt delivered o.mid) in
        if o.mid <> victim then begin
          Alcotest.(check bool) (Printf.sprintf "survivor %d ok" o.mid) true
            (o.status = Sodal.Comp_ok);
          Alcotest.(check int) (Printf.sprintf "survivor %d delivered once" o.mid) 1 count
        end
        else begin
          (* the victim's verdict must be honest: OK iff it delivered *)
          (match o.status with
           | Sodal.Comp_ok -> Alcotest.(check int) "victim delivered before dying" 1 count
           | Sodal.Comp_crashed -> Alcotest.(check bool) "victim at most once" true (count <= 1)
           | Sodal.Comp_rejected | Sodal.Comp_unadvertised ->
             Alcotest.fail "victim got a non-crash failure")
        end)
      outcomes

(* Bidding with the least-loaded bidder crashed mid-run: a client
   re-selects every 25 ms while the cheapest bidder (mid 1, load 1) is
   torn down. Every round must complete; rounds before the crash pick
   mid 1, rounds after its crash verdict pick the least-loaded survivor
   (mid 2, load 5), and no round may ever pick dead-and-known-dead
   bidders or hang. *)
let test_bidding_least_loaded_survivor () =
  let loads = [ (0, 10); (1, 1); (2, 5) ] in
  let net, kernels = make_net ~seed:42 4 in
  List.iter
    (fun (mid, load) ->
      let hook = ref (fun _ _ -> false) in
      ignore
        (Sodal.attach (List.nth kernels mid)
           {
             Sodal.default_spec with
             init =
               (fun env ~parent:_ ->
                 hook := Bidding.serve_bids env ~pattern:patt ~load:(fun () -> load));
             on_request =
               (fun env info ->
                 if not (!hook env info) then ignore (Sodal.accept_current_signal env ~arg:0));
           }))
    loads;
  let picks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 30_000;
             for _ = 1 to 24 do
               let pick =
                 match Bidding.select env ~pattern:patt () with
                 | Some ({ Types.sv_mid = Types.Mid m; _ }, load) -> Some (m, load)
                 | Some ({ Types.sv_mid = Types.Broadcast_mid; _ }, _) | None -> None
               in
               picks := (Sodal.now env, pick) :: !picks;
               Sodal.compute env 25_000
             done);
       });
  Injector.install net
    [ { Fault_plan.at_us = 300_000; action = Fault_plan.Crash 1 } ];
  run net;
  let picks = List.rev !picks in
  Alcotest.(check int) "every round completed" 24 (List.length picks);
  (match picks with
   | (_, first) :: _ ->
     Alcotest.(check bool) "healthy round picks the cheapest bid" true
       (first = Some (1, 1))
   | [] -> ());
  (match List.rev picks with
   | (_, last) :: _ ->
     Alcotest.(check bool) "after the crash the cheapest survivor wins" true
       (last = Some (2, 5))
   | [] -> ());
  List.iter
    (fun (at, pick) ->
      match pick with
      | Some ((0 | 1 | 2), _) -> ()
      | Some (m, _) -> Alcotest.failf "picked unknown bidder %d at %d" m at
      | None -> Alcotest.failf "select returned nobody at %d" at)
    picks

let suites =
  [
    ( "chaos",
      [
        QCheck_alcotest.to_alcotest prop_exactly_once_under_chaos;
        Alcotest.test_case "soak: composite plan over seed band" `Slow
          test_soak_composite_plan;
        Alcotest.test_case "adversary: ack eaten by partition" `Quick
          test_ack_eaten_by_partition;
        Alcotest.test_case "adversary: reboot between deliver and ACCEPT" `Quick
          test_reboot_between_deliver_and_accept;
        Alcotest.test_case "adversary: requester reboot, stale reply" `Quick
          test_requester_reboot_stale_reply;
        Alcotest.test_case "windowed: loss burst mid-window" `Quick
          test_window_loss_burst_mid_flight;
        Alcotest.test_case "windowed: crash with W-1 unacked" `Quick
          test_window_crash_with_unacked;
        Alcotest.test_case "windowed: duplicate storm" `Quick
          test_window_duplicate_storm;
        Alcotest.test_case "incast: 16 clients converge under loss burst" `Quick
          test_incast_converges_under_loss_burst;
        Alcotest.test_case "karn: retransmitted packet never samples RTT" `Quick
          test_karn_retransmit_never_samples;
        Alcotest.test_case "karn: clean ack samples RTT" `Quick
          test_karn_clean_ack_samples;
      ] );
    ( "chaos.facilities",
      [
        Alcotest.test_case "rpc under partition + duplication" `Quick
          test_rpc_under_partition_and_dup;
        Alcotest.test_case "nameserver under duplication + cut" `Quick
          test_nameserver_under_chaos;
        Alcotest.test_case "stream under cut + loss burst" `Quick
          test_stream_under_partition_and_burst;
        Alcotest.test_case "multicast delivers to survivors" `Quick
          test_multicast_delivery_to_survivors;
        Alcotest.test_case "bidding picks least-loaded survivor" `Quick
          test_bidding_least_loaded_survivor;
      ] );
  ]
