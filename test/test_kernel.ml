(* Kernel-level semantics: pattern tables, request validation, DISCOVER,
   booting / killing via reserved patterns. *)

open Helpers
module Stats = Soda_sim.Stats

let patt = Pattern.well_known 0o42

(* ---- pattern machinery ---------------------------------------------------- *)

let test_pattern_classes () =
  Alcotest.(check bool) "well-known bit" true (Pattern.is_well_known (Pattern.well_known 5));
  Alcotest.(check bool) "not reserved" false (Pattern.is_reserved (Pattern.well_known 5));
  Alcotest.(check bool) "kill reserved" true (Pattern.is_reserved Pattern.kill_pattern);
  Alcotest.(check bool) "boot reserved" true (Pattern.is_reserved (Pattern.boot_pattern 0));
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Pattern.of_int: 281474976710656 does not fit in 48 bits") (fun () ->
      ignore (Pattern.of_int (1 lsl 48)))

let test_mint_uniqueness_and_floor () =
  let m = Pattern.Mint.create ~serial:7 ~boot_clock:1000 in
  Alcotest.(check int) "floor" 1000 (Pattern.Mint.boot_floor m);
  let a = Pattern.Mint.fresh_tid m in
  let b = Pattern.Mint.fresh_tid m in
  Alcotest.(check bool) "tids distinct" true (a <> b);
  Alcotest.(check int) "serial embedded" 7 (a lsr 32);
  let p = Pattern.Mint.fresh_pattern m in
  Alcotest.(check bool) "minted patterns are not well-known" false
    (Pattern.is_well_known p);
  Alcotest.(check bool) "minted patterns are not reserved" false (Pattern.is_reserved p);
  let r = Pattern.Mint.fresh_reserved m in
  Alcotest.(check bool) "load patterns are reserved" true (Pattern.is_reserved r)

let test_advertise_reserved_rejected () =
  let _, kernels = make_net 1 in
  let k = List.hd kernels in
  (match Kernel.advertise k Pattern.kill_pattern with
   | Error `Reserved_pattern -> ()
   | Ok () -> Alcotest.fail "reserved pattern advertised");
  match Kernel.unadvertise k (Pattern.boot_pattern 0) with
  | Error `Reserved_pattern -> ()
  | Ok () -> Alcotest.fail "reserved pattern unadvertised"

let test_slot_table_overwrite () =
  (* §5.4: with the 256-slot table, two patterns sharing the low byte
     overwrite each other. *)
  let cost = { Cost.default with Cost.associative_patterns = false } in
  let _, kernels = make_net ~cost 1 in
  let k = List.hd kernels in
  let p1 = Pattern.well_known 0x101 in
  let p2 = Pattern.well_known 0x201 in
  (* same low byte *)
  ignore (Kernel.advertise k p1);
  Alcotest.(check bool) "p1 advertised" true (Kernel.advertised k p1);
  ignore (Kernel.advertise k p2);
  Alcotest.(check bool) "p2 overwrote p1" false (Kernel.advertised k p1);
  Alcotest.(check bool) "p2 advertised" true (Kernel.advertised k p2);
  (* unadvertising p1 must not remove p2 *)
  ignore (Kernel.unadvertise k p1);
  Alcotest.(check bool) "p2 still there" true (Kernel.advertised k p2)

let test_assoc_table_no_overwrite () =
  let _, kernels = make_net 1 in
  let k = List.hd kernels in
  let p1 = Pattern.well_known 0x101 and p2 = Pattern.well_known 0x201 in
  ignore (Kernel.advertise k p1);
  ignore (Kernel.advertise k p2);
  Alcotest.(check bool) "both advertised" true (Kernel.advertised k p1 && Kernel.advertised k p2)

(* ---- request validation ------------------------------------------------------ *)

let test_request_to_self_rejected () =
  let net, kernels = make_net 1 in
  let raised = ref false in
  ignore
    (Sodal.attach (List.hd kernels)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (try ignore (Sodal.signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0)
              with Sodal.Sodal_error _ -> raised := true));
       });
  run net;
  Alcotest.(check bool) "no local messages" true !raised

let test_oversized_data_rejected () =
  let net, kernels = make_net 2 in
  let raised = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let huge = Bytes.create (Cost.default.Cost.max_data_bytes + 1) in
             (try ignore (Sodal.put env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 huge)
              with Sodal.Sodal_error _ -> raised := true));
       });
  run net;
  Alcotest.(check bool) "no multipackets" true !raised

(* ---- discover ------------------------------------------------------------------ *)

let test_discover_finds_advertisers () =
  let net, kernels = make_net 4 in
  (* mids 0, 2 advertise; 1 has an idle client; 3 is the searcher. *)
  List.iteri
    (fun mid k ->
      if mid = 0 || mid = 2 then ignore (echo_server k patt)
      else if mid = 1 then ignore (Sodal.attach k Sodal.default_spec))
    kernels;
  let found = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task = (fun env -> found := Sodal.discover_list env patt ~max:8);
       })
  |> ignore;
  run net;
  Alcotest.(check (list int)) "both advertisers, stagger order" [ 0; 2 ] (List.sort compare !found)

let test_discover_transparent_to_clients () =
  (* §3.4.4: no information about a DISCOVER is ever presented to the
     server client. *)
  let net, kernels = make_net 2 in
  let server_handler_calls = ref 0 in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ _ -> incr server_handler_calls);
       });
  let found = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task = (fun env -> found := Sodal.discover_list env patt ~max:4);
       });
  run net;
  Alcotest.(check (list int)) "found" [ 0 ] !found;
  Alcotest.(check int) "server client never interrupted" 0 !server_handler_calls

let test_discover_none () =
  let net, kernels = make_net 2 in
  ignore (List.nth kernels 0);
  let found = ref [ 99 ] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task = (fun env -> found := Sodal.discover_list env patt ~max:4);
       });
  run net;
  Alcotest.(check (list int)) "empty" [] !found

let test_discover_blocking_retries () =
  (* Sodal.discover loops until some server advertises. *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  (* Server advertises only after 200 ms. *)
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 200_000;
             Sodal.advertise env patt;
             Sodal.idle env);
       });
  let sv = ref None in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task = (fun env -> sv := Some (Sodal.discover env patt));
       });
  run ~horizon:600.0 net;
  match !sv with
  | Some { Types.sv_mid = Types.Mid 0; _ } -> ()
  | _ -> Alcotest.fail "discover did not find the late advertiser"

(* ---- booting / killing ------------------------------------------------------------ *)

let decode_pattern_bytes b =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  Pattern.of_int !v

let test_network_boot () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let booted = ref false in
  let got_image = ref "" in
  ignore got_image;
  (* Node 0 is a free machine; register what runs when it is booted. *)
  Sodal.bootable k0
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env patt);
      task =
        (fun env ->
          booted := true;
          Sodal.idle env);
    };
  ignore got_image;
  (* Parent on node 1 performs the full §3.5.2 boot sequence. *)
  let served = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (* 1. discover a free machine of kind 0 *)
             let boot = Pattern.boot_pattern 0 in
             let mids = Sodal.discover_list env boot ~max:4 in
             Alcotest.(check (list int)) "free machine found" [ 0 ] mids;
             (* 2. GET the load pattern *)
             let into = Bytes.create 6 in
             let c = Sodal.b_get env (Sodal.server ~mid:0 ~pattern:boot) ~arg:0 ~into in
             Alcotest.(check bool) "load pattern granted" true (c.Sodal.status = Sodal.Comp_ok);
             let load = decode_pattern_bytes into in
             Alcotest.(check bool) "load is reserved" true (Pattern.is_reserved load);
             (* boot pattern now withdrawn *)
             let c2 = Sodal.b_get env (Sodal.server ~mid:0 ~pattern:boot) ~arg:0 ~into in
             Alcotest.(check bool) "boot pattern withdrawn" true
               (c2.Sodal.status = Sodal.Comp_unadvertised);
             (* 3. PUT the core image in two chunks *)
             let sv = Sodal.server ~mid:0 ~pattern:load in
             ignore (Sodal.b_put env sv ~arg:0 (bytes_of_string "CORE"));
             ignore (Sodal.b_put env sv ~arg:0 (bytes_of_string "IMAGE"));
             (* 4. SIGNAL starts the client *)
             ignore (Sodal.b_signal env sv ~arg:0);
             (* 5. talk to the new client *)
             Sodal.compute env 50_000;
             let c3 = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
             ignore c3;
             served := true);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "child booted" true !booted;
  Alcotest.(check bool) "parent finished" true !served

let test_kill_pattern () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  ignore (echo_server k0 patt);
  let after_kill = ref Sodal.Comp_ok in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (* working before the kill *)
             let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
             Alcotest.(check bool) "alive" true (c.Sodal.status = Sodal.Comp_ok);
             (* privileged kill *)
             ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:Pattern.kill_pattern) ~arg:0);
             Sodal.compute env 100_000;
             let c2 = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
             after_kill := c2.Sodal.status);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "client killed, pattern gone" true
    (!after_kill = Sodal.Comp_unadvertised)

let test_boot_patterns_readvertised_after_kill () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  ignore (echo_server k0 patt);
  let free_before = ref [ 99 ] and free_after = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let boot = Pattern.boot_pattern 0 in
             free_before := Sodal.discover_list env boot ~max:4;
             ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:Pattern.kill_pattern) ~arg:0);
             Sodal.compute env 200_000;
             free_after := Sodal.discover_list env boot ~max:4);
       });
  run ~horizon:600.0 net;
  Alcotest.(check (list int)) "busy node not bootable" [] !free_before;
  Alcotest.(check (list int)) "killed node becomes bootable" [ 0 ] !free_after

let test_system_pattern_privilege () =
  (* Only machine 0 may alter reserved patterns (§3.5.4). *)
  let net, kernels = make_net 3 in
  ignore (List.nth kernels 2);
  let from_nonzero = ref Sodal.Comp_ok in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let payload = Bytes.make 6 '\000' in
             let c =
               Sodal.b_put env
                 (Sodal.server ~mid:2 ~pattern:Pattern.system_pattern)
                 ~arg:3 payload
             in
             from_nonzero := c.Sodal.status);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "non-privileged SYSTEM rejected" true
    (!from_nonzero = Sodal.Comp_rejected)

(* ---- reboot quarantine (§5.4) ------------------------------------------------ *)

module Fault_plan = Soda_fault.Fault_plan
module Injector = Soda_fault.Injector

(* The server node is torn down mid-transaction and rebooted with a fresh
   boot epoch. The requester's probe machinery must classify the request
   CRASHED (§3.6.2); the rebooted incarnation must then serve normally. *)
let test_server_reboot_client_sees_crashed () =
  let net, kernels = make_net 2 in
  let server_spec =
    {
      Sodal.default_spec with
      Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request =
        (fun env _info ->
          (* a long handler turnaround: the crash lands mid-transaction *)
          Sodal.compute env 800_000;
          ignore (Sodal.accept_current_signal env ~arg:0));
    }
  in
  ignore (Sodal.attach (List.nth kernels 0) server_spec);
  let first = ref None and second = ref None in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let c1 = Sodal.b_signal env sv ~arg:0 in
             first := Some c1.Sodal.status;
             (* wait out the reboot (1 s) plus its ~256 ms quarantine so
                the fresh incarnation is reachable before retrying *)
             Sodal.compute env 2_000_000;
             let c2 = Sodal.b_signal env sv ~arg:0 in
             second := Some c2.Sodal.status);
       });
  let plan =
    [
      { Fault_plan.at_us = 100_000; action = Fault_plan.Crash 0 };
      { Fault_plan.at_us = 1_000_000; action = Fault_plan.Reboot 0 };
    ]
  in
  Injector.install net plan
    ~on_reboot:(fun ~mid:_ kernel -> ignore (Sodal.attach kernel server_spec));
  run ~horizon:600.0 net;
  Alcotest.(check bool) "request crossing the crash completes CRASHED" true
    (!first = Some Sodal.Comp_crashed);
  Alcotest.(check bool) "rebooted incarnation serves OK" true
    (!second = Some Sodal.Comp_ok)

(* A TID minted before the *requester's* reboot: when the server finally
   ACCEPTs it, the rebooted requester's mint classifies it stale and
   answers Err_crashed, which the server observes as ACCEPT status
   CRASHED (§5.4 / §3.6.1). The ACCEPT must carry get data: a dataless
   (signal) ACCEPT completes without awaiting the requester's answer, so
   only a data-bearing one can observe the Err_crashed. *)
let test_stale_tid_answered_err_crashed () =
  let net, kernels = make_net 2 in
  let acc_status = ref None in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             (* hold the ACCEPT until well after the requester rebooted *)
             Sodal.compute env 500_000;
             let st, _ =
               Sodal.accept_current_exchange env ~arg:0
                 ~into:(Bytes.create info.Sodal.put_size)
                 ~data:(Bytes.of_string "reply")
             in
             acc_status := Some st);
       });
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (* minted pre-reboot; the node dies while it is outstanding *)
             ignore
               (Sodal.b_exchange env
                  (Sodal.server ~mid:0 ~pattern:patt)
                  ~arg:0 Bytes.empty ~into:(Bytes.create 16)));
       });
  let plan =
    [
      { Fault_plan.at_us = 100_000; action = Fault_plan.Crash 1 };
      { Fault_plan.at_us = 200_000; action = Fault_plan.Reboot 1 };
    ]
  in
  (* no quarantine: the fresh incarnation must be reachable when the
     server's held-back ACCEPT finally goes out at ~500 ms *)
  Injector.install net plan ~quarantine:false
    ~on_reboot:(fun ~mid:_ kernel ->
      ignore (Sodal.attach kernel Sodal.default_spec));
  run ~horizon:600.0 net;
  Alcotest.(check bool) "server sees ACCEPT status CRASHED" true
    (!acc_status = Some Types.Accept_crashed)

let suites =
  [
    ( "kernel.patterns",
      [
        Alcotest.test_case "classes" `Quick test_pattern_classes;
        Alcotest.test_case "mint" `Quick test_mint_uniqueness_and_floor;
        Alcotest.test_case "reserved not advertisable" `Quick test_advertise_reserved_rejected;
        Alcotest.test_case "slot table overwrite (§5.4)" `Quick test_slot_table_overwrite;
        Alcotest.test_case "associative table" `Quick test_assoc_table_no_overwrite;
      ] );
    ( "kernel.validation",
      [
        Alcotest.test_case "request to self" `Quick test_request_to_self_rejected;
        Alcotest.test_case "oversized data" `Quick test_oversized_data_rejected;
      ] );
    ( "kernel.discover",
      [
        Alcotest.test_case "finds advertisers" `Quick test_discover_finds_advertisers;
        Alcotest.test_case "transparent to clients" `Quick test_discover_transparent_to_clients;
        Alcotest.test_case "no advertisers" `Quick test_discover_none;
        Alcotest.test_case "blocking discover retries" `Quick test_discover_blocking_retries;
      ] );
    ( "kernel.boot",
      [
        Alcotest.test_case "network boot sequence" `Quick test_network_boot;
        Alcotest.test_case "kill pattern" `Quick test_kill_pattern;
        Alcotest.test_case "boot patterns readvertised" `Quick
          test_boot_patterns_readvertised_after_kill;
        Alcotest.test_case "system pattern privilege" `Quick test_system_pattern_privilege;
      ] );
    ( "kernel.reboot",
      [
        Alcotest.test_case "server reboot -> Comp_crashed, then serves" `Quick
          test_server_reboot_client_sees_crashed;
        Alcotest.test_case "stale TID answered Err_crashed (§5.4)" `Quick
          test_stale_tid_answered_err_crashed;
      ] );
  ]
