(* SCD-broadcast (lib/scd): wire-codec units, the algorithm and its
   derived objects on a healthy cluster, the discover-duplication
   regression from the multicast audit, hand-crafted fault plans, and
   the qcheck properties -- set-constrained delivery / containment of
   the delivered sets, plus snapshot-object and counter consistency,
   under random crash, partition, loss-burst and duplication plans.

   A failing case prints its (seed, workload, fault plan) triple; the
   plan is in the fault-plan file format, so saving it to plan.txt and
   running

     dune exec bin/sodal_run.exe -- --scd 3 --seed SEED --fault-plan plan.txt

   replays the exact schedule bit-for-bit (same harness underneath).
   Nightly soak runs scale the case count with SODA_SCD_CHECK_COUNT and
   shift the seed space with SODA_SCD_SEED. *)

open Helpers
module Fault_plan = Soda_fault.Fault_plan
module Scd_wire = Soda_proto.Scd_wire
module Scd = Soda_scd.Scd
module Harness = Soda_scd.Harness
module Stats = Soda_sim.Stats
module Bus = Soda_net.Bus
module Metrics = Soda_obs.Metrics

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let check_count = env_int "SODA_SCD_CHECK_COUNT" 120
let seed_base = env_int "SODA_SCD_SEED" 0

(* ---- wire codec -------------------------------------------------------- *)

let test_wire_roundtrip () =
  let frames =
    [
      { Scd_wire.sd = 0; sn = 0; f = 0; snf = 0; payload = Scd_wire.Sync };
      { Scd_wire.sd = 3; sn = 41; f = 1; snf = 9;
        payload = Scd_wire.Write { reg = 7; value = -123_456_789_012; date = 5; writer = 2 } };
      { Scd_wire.sd = 65_535; sn = 0x7FFF_FFFF; f = 65_535; snf = 0x7FFF_FFFF;
        payload = Scd_wire.Incr { delta = min_int; origin = 12; oseq = 34 } };
    ]
  in
  List.iter
    (fun fwd ->
      let wire = Scd_wire.encode fwd in
      Alcotest.(check int)
        "encoded_size" (Bytes.length wire)
        (Scd_wire.encoded_size fwd);
      match Scd_wire.decode wire with
      | Ok fwd' ->
        Alcotest.(check bool)
          (Format.asprintf "%a" Scd_wire.pp fwd)
          true (Scd_wire.equal fwd fwd')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    frames

let test_wire_rejects_garbage () =
  let reject label b =
    match Scd_wire.decode b with
    | Ok _ -> Alcotest.failf "%s decoded" label
    | Error _ -> ()
  in
  reject "empty" Bytes.empty;
  reject "truncated header" (Bytes.create 5);
  let b = Bytes.make 29 '\000' in
  Bytes.set b 0 '\xee';
  reject "unknown tag" b;
  let good =
    Scd_wire.encode
      { Scd_wire.sd = 1; sn = 2; f = 3; snf = 4;
        payload = Scd_wire.Incr { delta = 9; origin = 1; oseq = 2 } }
  in
  reject "truncated payload" (Bytes.sub good 0 (Bytes.length good - 1))

(* ---- healthy cluster ---------------------------------------------------- *)

(* n members on mids 0..n-1, one scripted client on mid n. *)
let with_cluster ?(n = 3) ?(regs = 2) ~seed script =
  let cost = { Cost.default with maxrequests = n + 2 } in
  let net, kernels = make_net ~seed ~cost (n + 1) in
  let mids = List.init n Fun.id in
  let members = Array.init n (fun index -> Scd.member ~cluster:"t" ~index ~mids ~regs) in
  List.iteri
    (fun mid kernel ->
      if mid < n then ignore (Sodal.attach kernel (Scd.member_spec members.(mid))))
    kernels;
  ignore
    (Sodal.attach (List.nth kernels n)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 50_000;
             let h = Scd.handle env ~cluster:"t" ~mids ~regs in
             script env h);
       });
  run net;
  (net, members)

let ts_testable = Alcotest.(triple int int int)

let test_objects_basic () =
  let snapshots = ref [] in
  let counts = ref [] in
  let _, members =
    with_cluster ~seed:61 (fun env h ->
        (match Scd.write env h ~reg:0 42 with
         | Ok _ -> ()
         | Error Scd.Unreachable -> Alcotest.fail "write unreachable");
        snapshots := [ Scd.snapshot env h ];
        ignore (Scd.write env h ~reg:1 7);
        ignore (Scd.write env h ~reg:0 43);
        snapshots := Scd.snapshot env h :: !snapshots;
        ignore (Scd.incr env h ~delta:5);
        ignore (Scd.incr env h ~delta:6);
        counts := [ Scd.cread env h ])
  in
  (match !snapshots with
   | [ Ok s2; Ok s1 ] ->
     Alcotest.(check int) "first snapshot sees the write" 42 (fst s1.(0));
     Alcotest.(check int) "second snapshot: reg 0 overwritten" 43 (fst s2.(0));
     Alcotest.(check int) "second snapshot: reg 1" 7 (fst s2.(1));
     let _, (d1, _, _) = s1.(0) and _, (d2, _, _) = s2.(0) in
     Alcotest.(check bool) "overwrite advanced the date" true (d2 > d1)
   | _ -> Alcotest.fail "snapshots did not complete");
  (match !counts with
   | [ Ok c ] -> Alcotest.(check int) "counter totals the increments" 11 c
   | _ -> Alcotest.fail "cread did not complete");
  (* all members applied the same final state *)
  Array.iter
    (fun m ->
      Alcotest.(check int) "register 0 converged" 43 (fst (Scd.registers m).(0));
      Alcotest.(check int) "counter converged" 11 (Scd.counter_value m))
    members

(* Every member sends exactly one FORWARD per peer per message, so a
   healthy loss-free run costs exactly n(n-1) frames per broadcast --
   the O(n^2) bound the bench gates against. *)
let test_quadratic_message_cost () =
  let net, members =
    with_cluster ~seed:62 (fun env h ->
        ignore (Scd.write env h ~reg:0 1);
        ignore (Scd.incr env h ~delta:2);
        ignore (Scd.snapshot env h))
  in
  let broadcasts =
    Array.fold_left (fun acc m -> acc + Scd.broadcasts_made m) 0 members
  in
  let metrics = Soda_obs.Recorder.metrics (Network.recorder net) in
  Alcotest.(check bool) "some broadcasts happened" true (broadcasts > 0);
  Alcotest.(check int) "forwards = n(n-1) per broadcast"
    (broadcasts * 3 * 2)
    (Metrics.counter metrics "scd.forwards");
  Alcotest.(check int) "broadcast counter agrees" broadcasts
    (Metrics.counter metrics "scd.broadcasts")

let test_deliveries_well_formed () =
  let r = Harness.run ~n:3 ~clients:2 ~ops:6 ~regs:2 ~seed:63 () in
  Alcotest.(check int) "all clients finished" r.clients_total r.clients_done;
  List.iter
    (fun (op : Harness.op) ->
      if op.outcome = Harness.Failed then
        Alcotest.failf "op failed on a healthy cluster:\n%s"
          (Format.asprintf "%a" Harness.pp_history r.history))
    r.history;
  (match Harness.check_delivery r with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match Harness.check_objects r with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  match Harness.check_convergence r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* write timestamps are unique and returned to the writer *)
let test_write_timestamps () =
  let results = ref [] in
  ignore
    (with_cluster ~seed:64 (fun env h ->
         for i = 1 to 4 do
           match Scd.write env h ~reg:0 i with
           | Ok ts -> results := ts :: !results
           | Error Scd.Unreachable -> Alcotest.fail "unreachable"
         done));
  let tss = List.rev !results in
  Alcotest.(check int) "four writes" 4 (List.length tss);
  Alcotest.(check (list ts_testable))
    "timestamps strictly increase" tss (List.sort_uniq compare tss)

(* ---- multicast duplication audit (satellite regression) ------------------ *)

(* A duplicated DISCOVER broadcast used to trigger a second staggered
   Discover_reply from every matcher; the responder now dedupes by
   (src, tid) and counts the replay. *)
let test_discover_duplication_deduped () =
  let net, kernels = make_net ~seed:65 3 in
  let pattern = Pattern.well_known 0o741 in
  List.iter (fun k -> ignore (echo_server k pattern)) [ List.nth kernels 1; List.nth kernels 2 ];
  let found = ref None in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 20_000;
             (* arm the bus so the DISCOVER frame itself is doubled *)
             Bus.duplicate_next (Network.bus net);
             found := Some (Sodal.discover env pattern));
       });
  run net;
  Alcotest.(check bool) "discover still resolves" true (!found <> None);
  List.iter
    (fun responder ->
      let stats = Kernel.stats (List.nth kernels responder) in
      Alcotest.(check int)
        (Printf.sprintf "responder %d matched the discover once" responder)
        1
        (Stats.counter stats "discover.matched");
      Alcotest.(check bool)
        (Printf.sprintf "responder %d saw the replay" responder)
        true
        (Stats.counter stats "discover.duped" >= 1))
    [ 1; 2 ]

(* ---- hand-crafted fault plans ------------------------------------------- *)

let assert_safe ?(liveness = true) (r : Harness.result) =
  if liveness then begin
    Alcotest.(check int) "all clients finished" r.clients_total r.clients_done;
    List.iter
      (fun (op : Harness.op) ->
        if op.outcome = Harness.Failed then
          Alcotest.failf "op failed with a majority reachable:\n%s"
            (Format.asprintf "%a" Harness.pp_history r.history))
      r.history
  end;
  (match Harness.check_delivery r with
   | Ok () -> ()
   | Error m ->
     Alcotest.failf "%s\n%s" m (Format.asprintf "%a" Harness.pp_history r.history));
  match Harness.check_objects r with
  | Ok () -> ()
  | Error m ->
    Alcotest.failf "%s\n%s" m (Format.asprintf "%a" Harness.pp_history r.history)

let test_survives_minority_crash () =
  let plan = [ { Fault_plan.at_us = 400_000; action = Fault_plan.Crash 0 } ] in
  assert_safe
    (Harness.run ~n:3 ~clients:2 ~ops:6 ~regs:2 ~seed:(seed_base + 66) ~plan ())

let test_partition_heals_and_converges () =
  let plan =
    [
      { Fault_plan.at_us = 300_000; action = Fault_plan.Partition ([ 0 ], [ 1; 2; 3; 4 ]) };
      { Fault_plan.at_us = 900_000; action = Fault_plan.Heal };
    ]
  in
  let r = Harness.run ~n:3 ~clients:2 ~ops:6 ~regs:2 ~seed:(seed_base + 67) ~plan () in
  assert_safe r;
  match Harness.check_convergence r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_duplication_is_idempotent () =
  let plan =
    [
      { Fault_plan.at_us = 0; action = Fault_plan.Duplicate_next 40 };
      { Fault_plan.at_us = 500_000; action = Fault_plan.Duplicate_next 40 };
    ]
  in
  let r = Harness.run ~n:3 ~clients:2 ~ops:6 ~regs:2 ~seed:(seed_base + 68) ~plan () in
  assert_safe r;
  match Harness.check_convergence r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_loss_burst_safety () =
  let plan =
    [
      { Fault_plan.at_us = 100_000;
        action = Fault_plan.Loss_burst { rate = 0.25; duration_us = 300_000 } };
    ]
  in
  (* the medium degrades: crash verdicts (hence Failed ops) are
     legitimate, only safety is asserted *)
  assert_safe ~liveness:false
    (Harness.run ~n:3 ~clients:2 ~ops:6 ~regs:2 ~seed:(seed_base + 69) ~plan ())

(* ---- properties under random fault plans -------------------------------- *)

(* Four adversary modes. [Crashes] (minority, no reboot) and [Cut]
   provably keep a majority of members reachable from every client, so
   every operation must complete; [Dup] loses nothing, so the same
   holds; [Burst] degrades the medium, where crash verdicts (and hence
   Failed ops) are legitimate and only safety is asserted. Convergence
   is only checked where nothing is permanently lost or down ([Cut],
   [Dup]). *)
type adversary =
  | Crashes of (int * int) list  (* victim, at *)
  | Cut of int list * int * int  (* minority group, at, heal gap *)
  | Burst of int * int * int  (* at, rate pct, duration *)
  | Dup of int * int  (* at, frames *)

type scenario = {
  n : int;
  seed : int;
  clients : int;
  ops : int;
  regs : int;
  think_us : int;  (* 0 = hot contention: ops overlap constantly *)
  adversary : adversary;
}

let gen_scenario ~n st =
  let open QCheck.Gen in
  let f = (n - 1) / 2 in
  let seed = int_bound 99_999 st in
  let clients = int_range 1 3 st in
  let ops = int_range 3 8 st in
  let regs = int_range 1 3 st in
  let think_us = oneofl [ 0; 25_000; 250_000 ] st in
  let adversary =
    match int_bound 3 st with
    | 0 ->
      (* up to f distinct victims, crashed for good *)
      let victims = List.init f (fun i -> i) in
      let picked = List.filter (fun _ -> bool st) victims in
      let picked = if picked = [] then [ 0 ] else picked in
      Crashes (List.map (fun v -> (v, int_range 100_000 2_000_000 st)) picked)
    | 1 ->
      let size = int_range 1 f st in
      let group = List.init size Fun.id in
      Cut (group, int_range 100_000 1_500_000 st, int_range 100_000 1_000_000 st)
    | 2 -> Burst (int_range 0 1_000_000 st, int_range 10 35 st, int_range 50_000 400_000 st)
    | _ -> Dup (int_range 0 1_000_000 st, int_range 5 60 st)
  in
  { n; seed; clients; ops; regs; think_us; adversary }

let plan_of_scenario s =
  match s.adversary with
  | Crashes victims ->
    List.map (fun (v, at) -> { Fault_plan.at_us = at; action = Fault_plan.Crash v }) victims
    |> List.sort (fun a b -> compare a.Fault_plan.at_us b.Fault_plan.at_us)
  | Cut (group, at, heal_gap) ->
    (* the minority group against everyone else (members + clients) *)
    let others =
      List.filter (fun m -> not (List.mem m group)) (List.init (s.n + 3) Fun.id)
    in
    [
      { Fault_plan.at_us = at; action = Fault_plan.Partition (group, others) };
      { Fault_plan.at_us = at + heal_gap; action = Fault_plan.Heal };
    ]
  | Burst (at, pct, duration_us) ->
    [
      { Fault_plan.at_us = at;
        action = Fault_plan.Loss_burst { rate = float_of_int pct /. 100.0; duration_us } };
    ]
  | Dup (at, count) ->
    [ { Fault_plan.at_us = at; action = Fault_plan.Duplicate_next count } ]

let liveness_guaranteed s =
  match s.adversary with Crashes _ | Cut _ | Dup _ -> true | Burst _ -> false

let convergence_expected s =
  match s.adversary with Cut _ | Dup _ -> true | Crashes _ | Burst _ -> false

let scenario_print s =
  Printf.sprintf
    "n=%d seed=%d clients=%d ops=%d regs=%d think=%dus\n-- fault plan --\n%s-- replay --\n\
     save the plan above to plan.txt, then:\n\
     \  dune exec bin/sodal_run.exe -- --scd %d --scd-clients %d --scd-ops %d \\\n\
     \    --scd-regs %d --scd-think-us %d --seed %d --fault-plan plan.txt\n"
    s.n (seed_base + s.seed + 1) s.clients s.ops s.regs s.think_us
    (Fault_plan.to_string (plan_of_scenario s))
    s.n s.clients s.ops s.regs s.think_us (seed_base + s.seed + 1)

let prop_scd ~n =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "scd: set-constrained delivery and object safety (n=%d)" n)
    ~count:check_count
    (QCheck.make ~print:scenario_print (gen_scenario ~n))
    (fun s ->
      let r =
        Harness.run ~n ~clients:s.clients ~ops:s.ops ~regs:s.regs ~think_us:s.think_us
          ~seed:(seed_base + s.seed + 1) ~plan:(plan_of_scenario s) ()
      in
      if r.clients_done <> r.clients_total then
        QCheck.Test.fail_reportf "hang: %d/%d clients finished" r.clients_done
          r.clients_total;
      if liveness_guaranteed s then
        List.iter
          (fun (o : Harness.op) ->
            if o.outcome = Harness.Failed then
              QCheck.Test.fail_reportf
                "op failed with a majority reachable:@.%a" Harness.pp_history r.history)
          r.history;
      (match Harness.check_delivery r with
       | Ok () -> ()
       | Error msg ->
         QCheck.Test.fail_reportf "%s:@.%a" msg Harness.pp_history r.history);
      (match Harness.check_objects r with
       | Ok () -> ()
       | Error msg ->
         QCheck.Test.fail_reportf "%s:@.%a" msg Harness.pp_history r.history);
      if convergence_expected s then
        (match Harness.check_convergence r with
         | Ok () -> ()
         | Error msg ->
           QCheck.Test.fail_reportf "%s:@.%a" msg Harness.pp_history r.history);
      true)

let suites =
  [
    ( "scd",
      [
        Alcotest.test_case "wire: round-trips every payload" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire: rejects garbage" `Quick test_wire_rejects_garbage;
        Alcotest.test_case "objects on a healthy cluster" `Quick test_objects_basic;
        Alcotest.test_case "quadratic message cost" `Quick test_quadratic_message_cost;
        Alcotest.test_case "delivery properties on a healthy run" `Quick
          test_deliveries_well_formed;
        Alcotest.test_case "write timestamps increase" `Quick test_write_timestamps;
        Alcotest.test_case "duplicated DISCOVER answered once" `Quick
          test_discover_duplication_deduped;
        Alcotest.test_case "survives a minority crash" `Quick test_survives_minority_crash;
        Alcotest.test_case "partition heals and converges" `Quick
          test_partition_heals_and_converges;
        Alcotest.test_case "frame duplication is idempotent" `Quick
          test_duplication_is_idempotent;
        Alcotest.test_case "loss burst keeps safety" `Quick test_loss_burst_safety;
      ] );
    ( "scd.prop",
      [
        QCheck_alcotest.to_alcotest (prop_scd ~n:3);
        QCheck_alcotest.to_alcotest (prop_scd ~n:5);
      ] );
  ]
