(* Higher-level facilities of Chapter 4: ports, RPC, remote memory
   reference, timeouts, links with moving, CSP rendezvous, connector. *)

open Helpers
module Port = Soda_facilities.Port
module Rpc = Soda_facilities.Rpc
module Rmr = Soda_facilities.Rmr
module Timeserver = Soda_facilities.Timeserver
module Link = Soda_facilities.Link
module Csp = Soda_facilities.Csp
module Connector = Soda_facilities.Connector

let patt = Pattern.well_known 0o123

(* ---- ports ------------------------------------------------------------- *)

let test_port_fifo () =
  let net, kernels = make_net 2 in
  let got = ref [] in
  let port_spec =
    Port.spec ~pattern:patt
      ~on_data:(fun _ ~arg:_ data -> got := Bytes.to_string data :: !got)
      ()
  in
  ignore (Sodal.attach (List.nth kernels 0) port_spec);
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             List.iter
               (fun m -> ignore (Port.write env sv (bytes_of_string m)))
               [ "a"; "b"; "c"; "d" ]);
       });
  run net;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c"; "d" ] (List.rev !got)

let test_port_priority () =
  let net, kernels = make_net 3 in
  let got = ref [] in
  let port_spec =
    Port.spec ~pattern:patt ~discipline:Port.Priority
      ~on_data:(fun _ ~arg data -> got := (arg, Bytes.to_string data) :: !got)
      ()
  in
  ignore (Sodal.attach (List.nth kernels 0) port_spec);
  (* Writer 1 floods low-priority items, writer 2 sends one urgent item;
     the urgent item must overtake queued low-priority ones. *)
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 1 to 5 do
               ignore (Port.write env sv ~arg:1 (bytes_of_string (Printf.sprintf "low%d" i)))
             done);
       });
  ignore
    (Sodal.attach (List.nth kernels 2)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             Sodal.compute env 15_000;
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             ignore (Port.write env sv ~arg:9 (bytes_of_string "URGENT")));
       });
  run net;
  let order = List.rev !got in
  Alcotest.(check int) "all delivered" 6 (List.length order);
  let urgent_pos =
    match List.find_index (fun (_, d) -> d = "URGENT") order with
    | Some i -> i
    | None -> Alcotest.fail "urgent item lost"
  in
  Alcotest.(check bool) "urgent overtook queued low-priority traffic" true (urgent_pos < 5)

let test_port_flow_control () =
  (* Many eager writers against a tiny queue and a slow consumer: the port
     must close its handler for backpressure yet deliver everything. *)
  let net, kernels = make_net 4 in
  let got = ref 0 in
  let port_spec =
    Port.spec ~pattern:patt ~queue_len:2
      ~on_data:(fun env ~arg:_ _ ->
        Sodal.compute env 15_000;
        incr got)
      ()
  in
  ignore (Sodal.attach (List.nth kernels 0) port_spec);
  for w = 1 to 3 do
    ignore
      (Sodal.attach (List.nth kernels w)
         {
           Sodal.default_spec with
           task =
             (fun env ->
               let sv = Sodal.server ~mid:0 ~pattern:patt in
               for i = 1 to 5 do
                 let c = Port.write env sv (bytes_of_string (Printf.sprintf "w%d-%d" w i)) in
                 Alcotest.(check bool) "write completed" true (c.Sodal.status = Sodal.Comp_ok)
               done);
         })
  done;
  run ~horizon:900.0 net;
  Alcotest.(check int) "every write eventually served" 15 !got

let test_connector_three_stage_chain () =
  (* Four modules wired f -> a -> b -> c: a feeder and three relays; each
     relay appends its tag. The final word proves the connector wired the
     whole chain with fresh patterns. *)
  let net, kernels = make_net 6 in
  let registry = Connector.create_registry () in
  let final = ref "" in
  let relay ~module_name ~next =
    Connector.define registry ~name:module_name (fun ~resolve ->
        {
          Sodal.default_spec with
          on_request =
            (fun env info ->
              let into = Bytes.create info.Sodal.put_size in
              let _, got = Sodal.accept_current_put env ~arg:0 ~into in
              let word = Bytes.sub_string into 0 got ^ "+" ^ module_name in
              match next with
              | Some peer -> ignore (Sodal.put env (resolve peer) ~arg:0 (Bytes.of_string word))
              | None -> final := word);
        })
  in
  Connector.define registry ~name:"feeder" (fun ~resolve ->
      {
        Sodal.default_spec with
        task =
          (fun env ->
            ignore (Sodal.b_put env (resolve "a") ~arg:0 (Bytes.of_string "seed"));
            Sodal.serve env);
      });
  relay ~module_name:"r1" ~next:(Some "b");
  relay ~module_name:"r2" ~next:(Some "c");
  relay ~module_name:"r3" ~next:None;
  List.iter (fun i -> Connector.make_bootable registry (List.nth kernels i)) [ 0; 1; 2; 3; 4 ];
  ignore
    (Sodal.attach (List.nth kernels 5)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             ignore
               (Connector.deploy env
                  [
                    { Connector.instance = "f"; module_name = "feeder"; boot_kind = 0 };
                    { Connector.instance = "a"; module_name = "r1"; boot_kind = 0 };
                    { Connector.instance = "b"; module_name = "r2"; boot_kind = 0 };
                    { Connector.instance = "c"; module_name = "r3"; boot_kind = 0 };
                  ]
                  ~wiring:[ ("f", "a"); ("a", "b"); ("b", "c") ]);
             Sodal.serve env);
       });
  run ~horizon:900.0 net;
  Alcotest.(check string) "word crossed the whole pipeline" "seed+r1+r2+r3" !final

(* ---- rpc ------------------------------------------------------------------ *)

let double_proc _env params =
  let n = int_of_string (Bytes.to_string params) in
  Bytes.of_string (string_of_int (2 * n))

let test_rpc_basic () =
  let net, kernels = make_net 2 in
  ignore (Sodal.attach (List.nth kernels 0) (Rpc.spec [ (patt, double_proc) ]));
  let result = ref "" in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             match
               Rpc.call env (Sodal.server ~mid:0 ~pattern:patt) (bytes_of_string "21")
                 ~result_size:16
             with
             | Ok r -> result := Bytes.to_string r
             | Error _ -> Alcotest.fail "rpc failed");
       });
  run net;
  Alcotest.(check string) "doubled" "42" !result

let test_rpc_concurrent_callers () =
  let net, kernels = make_net 3 in
  ignore (Sodal.attach (List.nth kernels 0) (Rpc.spec [ (patt, double_proc) ]));
  let results = ref [] in
  let caller kernel n =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               match
                 Rpc.call env (Sodal.server ~mid:0 ~pattern:patt)
                   (bytes_of_string (string_of_int n))
                   ~result_size:16
               with
               | Ok r -> results := int_of_string (Bytes.to_string r) :: !results
               | Error _ -> Alcotest.fail "rpc failed");
         })
  in
  caller (List.nth kernels 1) 10;
  caller (List.nth kernels 2) 100;
  run net;
  Alcotest.(check (list int)) "both calls served" [ 20; 200 ] (List.sort compare !results)

let test_rpc_dead_server () =
  let net, kernels = make_net 2 in
  ignore (List.nth kernels 0);
  let got_error = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             match
               Rpc.call env (Sodal.server ~mid:0 ~pattern:patt) (bytes_of_string "1")
                 ~result_size:8
             with
             | Error Rpc.Server_crashed -> got_error := true
             | Ok _ | Error _ -> ());
       });
  run net;
  Alcotest.(check bool) "dead server reported" true !got_error

(* ---- rmr ---------------------------------------------------------------------- *)

let test_rmr_peek_poke () =
  let net, kernels = make_net 2 in
  let spec, memory = Rmr.spec ~pattern:patt ~words:64 in
  ignore (Sodal.attach (List.nth kernels 0) spec);
  let read_back = ref "" in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             (match Rmr.poke env sv ~addr:4 (bytes_of_string "WXYZ") with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "poke failed");
             (match Rmr.peek env sv ~addr:4 ~words:2 with
              | Ok data -> read_back := Bytes.to_string data
              | Error _ -> Alcotest.fail "peek failed");
             (* out-of-range access is rejected *)
             match Rmr.peek env sv ~addr:63 ~words:4 with
             | Error Rmr.Out_of_range -> ()
             | Ok _ | Error _ -> Alcotest.fail "range check missing");
       });
  run net;
  Alcotest.(check string) "poked then peeked" "WXYZ" !read_back;
  Alcotest.(check string) "server memory updated" "WXYZ" (Bytes.sub_string memory 8 4)

(* Three contenders increment a shared counter word under the RMR lock.
   Mutual exclusion must hold (no lost increments) and the capped
   exponential backoff must keep the TEST-AND-SET round count close to
   the ideal one-round-per-acquisition -- the old fixed 2 ms spin burnt
   an order of magnitude more rounds on the same schedule. *)
let test_rmr_lock_backoff () =
  let contenders = 3 and iters = 4 in
  let net, kernels = make_net ~seed:44 (1 + 1 + contenders) in
  let spec, _memory = Rmr.spec ~pattern:patt ~words:4 in
  ignore (Sodal.attach (List.nth kernels 0) spec);
  ignore (Sodal.attach (List.nth kernels 1) (Timeserver.spec ()));
  let finished = ref 0 in
  for c = 0 to contenders - 1 do
    ignore
      (Sodal.attach (List.nth kernels (2 + c))
         {
           Sodal.default_spec with
           task =
             (fun env ->
               let sv = Sodal.server ~mid:0 ~pattern:patt in
               let ts = Sodal.server ~mid:1 ~pattern:Timeserver.alarm_pattern in
               for _ = 1 to iters do
                 (match Rmr.lock ~timeserver:ts env sv ~addr:0 with
                  | Ok () -> ()
                  | Error _ -> Alcotest.fail "lock failed");
                 (* critical section: read-modify-write of word 1 *)
                 (match Rmr.peek env sv ~addr:1 ~words:1 with
                  | Ok w ->
                    let v = (Char.code (Bytes.get w 0) lsl 8) lor Char.code (Bytes.get w 1) in
                    Sodal.compute env 3_000;
                    let w' = Bytes.create 2 in
                    Bytes.set w' 0 (Char.chr (((v + 1) lsr 8) land 0xFF));
                    Bytes.set w' 1 (Char.chr ((v + 1) land 0xFF));
                    (match Rmr.poke env sv ~addr:1 w' with
                     | Ok () -> ()
                     | Error _ -> Alcotest.fail "poke failed")
                  | Error _ -> Alcotest.fail "peek failed");
                 match Rmr.unlock env sv ~addr:0 with
                 | Ok () -> incr finished
                 | Error _ -> Alcotest.fail "unlock failed"
               done);
         })
  done;
  run net;
  Alcotest.(check int) "every critical section ran" (contenders * iters) !finished;
  let counter =
    (Char.code (Bytes.get _memory 2) lsl 8) lor Char.code (Bytes.get _memory 3)
  in
  Alcotest.(check int) "no lost increments" (contenders * iters) counter;
  let attempts =
    Soda_obs.Metrics.counter
      (Soda_obs.Recorder.metrics (Network.recorder net))
      "rmr.lock.attempts"
  in
  Alcotest.(check bool)
    (Printf.sprintf "backoff bounds contention (%d rounds)" attempts)
    true
    (attempts >= contenders * iters && attempts <= contenders * iters * 4)

(* ---- timeserver ------------------------------------------------------------------ *)

let test_timeserver_sleep () =
  let net, kernels = make_net 2 in
  ignore (Sodal.attach (List.nth kernels 0) (Timeserver.spec ()));
  let woke_at = ref 0 in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let ts = Sodal.server ~mid:0 ~pattern:Timeserver.alarm_pattern in
             Timeserver.sleep env ts ~delay_us:500_000;
             woke_at := Sodal.now env);
       });
  run net;
  Alcotest.(check bool) "slept at least 500 ms" true (!woke_at >= 500_000);
  Alcotest.(check bool) "but not much longer" true (!woke_at < 700_000)

let test_with_timeout_fires () =
  (* The guarded request goes to a server that never accepts: the alarm
     must fire and the request must be cancelled (§4.3.2). *)
  let net, kernels = make_net 3 in
  ignore (Sodal.attach (List.nth kernels 0) (Timeserver.spec ()));
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ _ -> ());
       });
  let timed_out = ref false in
  ignore
    (Sodal.attach (List.nth kernels 2)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let ts = Sodal.server ~mid:0 ~pattern:Timeserver.alarm_pattern in
             match
               Timeserver.with_timeout env ts ~delay_us:300_000 (fun () ->
                   Sodal.signal env (Sodal.server ~mid:1 ~pattern:patt) ~arg:0)
             with
             | None -> timed_out := true
             | Some _ -> ());
       });
  run net;
  Alcotest.(check bool) "timed out" true !timed_out

let test_with_timeout_completes () =
  let net, kernels = make_net 3 in
  ignore (Sodal.attach (List.nth kernels 0) (Timeserver.spec ()));
  ignore (echo_server (List.nth kernels 1) patt);
  let completed = ref false in
  ignore
    (Sodal.attach (List.nth kernels 2)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let ts = Sodal.server ~mid:0 ~pattern:Timeserver.alarm_pattern in
             match
               Timeserver.with_timeout env ts ~delay_us:5_000_000 (fun () ->
                   Sodal.signal env (Sodal.server ~mid:1 ~pattern:patt) ~arg:0)
             with
             | Some c -> completed := c.Sodal.status = Sodal.Comp_ok
             | None -> ());
       });
  run net;
  Alcotest.(check bool) "completed before the alarm" true !completed

(* ---- links -------------------------------------------------------------------------- *)

let test_link_introduce_and_send () =
  let net, kernels = make_net 3 in
  let received = ref [] in
  let on_data _env _mgr _id ~arg:_ data =
    received := Bytes.to_string data :: !received;
    Bytes.empty
  in
  let mgr_a, spec_a =
    Link.spec
      ~task:(fun env mgr ->
        Link.wait_for_links env mgr ~n:1;
        let link = List.hd (Link.links mgr) in
        (match Link.send env mgr link (bytes_of_string "over the link") with
         | `Ok -> ()
         | `Destroyed -> Alcotest.fail "link destroyed");
        Sodal.serve env)
      ()
  in
  let _mgr_b, spec_b = Link.spec ~on_data () in
  ignore (Sodal.attach (List.nth kernels 0) spec_a);
  ignore (Sodal.attach (List.nth kernels 1) spec_b);
  ignore
    (Sodal.attach (List.nth kernels 2)
       {
         Sodal.default_spec with
         task = (fun env -> Link.introduce env ~a:0 ~b:1);
       });
  ignore mgr_a;
  run net;
  Alcotest.(check (list string)) "data arrived over the link" [ "over the link" ] !received

let test_link_move_transparent () =
  (* A <-> B, then B moves its end to C. A keeps sending over the same
     link id and the messages land at C (§4.2.4). *)
  let net, kernels = make_net 4 in
  let at_b = ref [] and at_c = ref [] in
  let collect cell _env _mgr _id ~arg:_ data =
    cell := Bytes.to_string data :: !cell;
    Bytes.empty
  in
  let _mgr_a, spec_a =
    Link.spec
      ~task:(fun env mgr ->
        Link.wait_for_links env mgr ~n:1;
        let link = List.hd (Link.links mgr) in
        ignore (Link.send env mgr link (bytes_of_string "first"));
        (* wait for the move to have happened, then send again over the
           SAME link id *)
        Sodal.compute env 2_000_000;
        ignore (Link.send env mgr link (bytes_of_string "second"));
        Sodal.serve env)
      ()
  in
  let mgr_b_box = ref None in
  let _mgr_b, spec_b =
    Link.spec
      ~on_data:(collect at_b)
      ~task:(fun env mgr ->
        mgr_b_box := Some mgr;
        Link.wait_for_links env mgr ~n:1;
        (* let the first message land, then move our end to machine 2 *)
        Sodal.compute env 1_000_000;
        let link = List.hd (Link.links mgr) in
        Link.move env mgr link ~to_machine:2;
        Sodal.serve env)
      ()
  in
  let _mgr_c, spec_c = Link.spec ~on_data:(collect at_c) () in
  ignore (Sodal.attach (List.nth kernels 0) spec_a);
  ignore (Sodal.attach (List.nth kernels 1) spec_b);
  ignore (Sodal.attach (List.nth kernels 2) spec_c);
  ignore
    (Sodal.attach (List.nth kernels 3)
       { Sodal.default_spec with task = (fun env -> Link.introduce env ~a:0 ~b:1) });
  run ~horizon:600.0 net;
  Alcotest.(check (list string)) "first message at B" [ "first" ] !at_b;
  Alcotest.(check (list string)) "second message transparently at C" [ "second" ] !at_c

let test_link_destroy () =
  let net, kernels = make_net 3 in
  let outcome = ref `Ok in
  let _mgr_a, spec_a =
    Link.spec
      ~task:(fun env mgr ->
        Link.wait_for_links env mgr ~n:1;
        let link = List.hd (Link.links mgr) in
        (* partner destroys the link shortly; our next send must fail *)
        Sodal.compute env 2_000_000;
        outcome := (Link.send env mgr link (bytes_of_string "into the void") :> [ `Ok | `Destroyed ]);
        Sodal.serve env)
      ()
  in
  let _mgr_b, spec_b =
    Link.spec
      ~task:(fun env mgr ->
        Link.wait_for_links env mgr ~n:1;
        Sodal.compute env 1_000_000;
        Link.destroy env mgr (List.hd (Link.links mgr));
        Sodal.serve env)
      ()
  in
  ignore (Sodal.attach (List.nth kernels 0) spec_a);
  ignore (Sodal.attach (List.nth kernels 1) spec_b);
  ignore
    (Sodal.attach (List.nth kernels 2)
       { Sodal.default_spec with task = (fun env -> Link.introduce env ~a:0 ~b:1) });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "send on destroyed link fails" true (!outcome = `Destroyed)

(* ---- CSP rendezvous -------------------------------------------------------------------- *)

let test_csp_symmetric_rendezvous () =
  (* The "Deadlock Danger" figure: A and B simultaneously run alternatives
     with both an output to and an input from each other. Exactly one
     direction must win at both ends, consistently. *)
  let net, kernels = make_net 2 in
  let outcome_a = ref None and outcome_b = ref None in
  let proc peer_mid outcome_cell tag =
    Csp.make ~task:(fun env p ->
        let result =
          Csp.select env p
            [
              Csp.Output { peer = peer_mid; chan = 1; data = bytes_of_string tag };
              Csp.Input { peer = Some peer_mid; chan = 1 };
            ]
        in
        outcome_cell := result;
        Sodal.serve env)
  in
  let _pa, spec_a = proc 1 outcome_a "from-A" in
  let _pb, spec_b = proc 0 outcome_b "from-B" in
  ignore (Sodal.attach (List.nth kernels 0) spec_a);
  ignore (Sodal.attach (List.nth kernels 1) spec_b);
  ignore (Network.run ~until:120_000_000 net);
  match !outcome_a, !outcome_b with
  | Some a, Some b ->
    (* index 0 = output fired, 1 = input fired; they must disagree. *)
    Alcotest.(check bool) "exactly one direction" true (a.Csp.index <> b.Csp.index);
    let data = if a.Csp.index = 1 then a.Csp.data else b.Csp.data in
    let expect = if a.Csp.index = 1 then "from-B" else "from-A" in
    Alcotest.(check string) "value crossed" expect (Bytes.to_string data)
  | _ -> Alcotest.fail "rendezvous did not complete (deadlock/livelock)"

let test_csp_three_cycle () =
  (* The paper's example: P1 queries P2 queries P3 queries P1 — the
     simultaneous-query cycle that Bernstein's mid-ordering must resolve
     without deadlock or livelock. Each process keeps evaluating the
     alternative until it has both sent to its successor and received from
     its predecessor: six guard firings in total. *)
  let net, kernels = make_net 3 in
  let finished = Array.make 3 false in
  let received = Array.make 3 "" in
  let proc self =
    let next = (self + 1) mod 3 in
    let prev = (self + 2) mod 3 in
    Csp.make ~task:(fun env p ->
        let sent = ref false and got = ref false in
        while not (!sent && !got) do
          let guards =
            (if !sent then []
             else
               [ Csp.Output { peer = next; chan = 7; data = bytes_of_string (string_of_int self) } ])
            @ if !got then [] else [ Csp.Input { peer = Some prev; chan = 7 } ]
          in
          match Csp.select env p guards with
          | Some outcome ->
            (match List.nth guards outcome.Csp.index with
             | Csp.Output _ -> sent := true
             | Csp.Input _ ->
               got := true;
               received.(self) <- Bytes.to_string outcome.Csp.data)
          | None -> Alcotest.failf "process %d: alternative failed" self
        done;
        finished.(self) <- true;
        Sodal.serve env)
  in
  List.iteri
    (fun i k ->
      let _p, spec = proc i in
      ignore (Sodal.attach k spec))
    kernels;
  ignore (Network.run ~until:600_000_000 net);
  Array.iteri
    (fun i done_ ->
      if not done_ then Alcotest.failf "process %d never completed the cycle" i)
    finished;
  (* Everyone received exactly its predecessor's token. *)
  Alcotest.(check (list string)) "tokens travelled the ring" [ "2"; "0"; "1" ]
    (Array.to_list received)

(* ---- connector ----------------------------------------------------------------------------- *)

let test_connector_deploy () =
  let net, kernels = make_net 4 in
  let registry = Connector.create_registry () in
  let pongs = ref [] in
  Connector.define registry ~name:"ponger" (fun ~resolve:_ ->
      {
        Sodal.default_spec with
        on_request =
          (fun env info ->
            let into = Bytes.create info.Sodal.put_size in
            let _, got = Sodal.accept_current_put env ~arg:0 ~into in
            pongs := Bytes.sub_string into 0 got :: !pongs);
      });
  Connector.define registry ~name:"pinger" (fun ~resolve ->
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let server = resolve "pong-instance" in
            ignore (Sodal.b_put env server ~arg:0 (bytes_of_string "ping!"));
            Sodal.serve env);
      });
  (* mids 0 and 1 are free machines running the loader; 3 is the connector. *)
  Connector.make_bootable registry (List.nth kernels 0);
  Connector.make_bootable registry (List.nth kernels 1);
  let placement = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             placement :=
               Connector.deploy env
                 [
                   { Connector.instance = "pong-instance"; module_name = "ponger"; boot_kind = 0 };
                   { Connector.instance = "ping-instance"; module_name = "pinger"; boot_kind = 0 };
                 ]
                 ~wiring:[ ("ping-instance", "pong-instance") ]);
       });
  run ~horizon:600.0 net;
  Alcotest.(check int) "two instances placed" 2 (List.length !placement);
  Alcotest.(check (list string)) "message crossed the wired path" [ "ping!" ] !pongs

let suites =
  [
    ( "facilities.port",
      [
        Alcotest.test_case "fifo" `Quick test_port_fifo;
        Alcotest.test_case "priority" `Quick test_port_priority;
        Alcotest.test_case "flow control" `Quick test_port_flow_control;
      ] );
    ( "facilities.rpc",
      [
        Alcotest.test_case "basic call" `Quick test_rpc_basic;
        Alcotest.test_case "concurrent callers" `Quick test_rpc_concurrent_callers;
        Alcotest.test_case "dead server" `Quick test_rpc_dead_server;
      ] );
    ( "facilities.rmr",
      [
        Alcotest.test_case "peek/poke" `Quick test_rmr_peek_poke;
        Alcotest.test_case "contended lock backs off" `Quick test_rmr_lock_backoff;
      ] );
    ( "facilities.timeserver",
      [
        Alcotest.test_case "sleep" `Quick test_timeserver_sleep;
        Alcotest.test_case "timeout fires" `Quick test_with_timeout_fires;
        Alcotest.test_case "timeout beaten" `Quick test_with_timeout_completes;
      ] );
    ( "facilities.link",
      [
        Alcotest.test_case "introduce + send" `Quick test_link_introduce_and_send;
        Alcotest.test_case "transparent move" `Quick test_link_move_transparent;
        Alcotest.test_case "destroy" `Quick test_link_destroy;
      ] );
    ( "facilities.csp",
      [
        Alcotest.test_case "symmetric rendezvous" `Quick test_csp_symmetric_rendezvous;
        Alcotest.test_case "three-cycle" `Quick test_csp_three_cycle;
      ] );
    ( "facilities.connector",
      [
        Alcotest.test_case "deploy + wire" `Quick test_connector_deploy;
        Alcotest.test_case "three-stage pipeline" `Quick test_connector_three_stage_chain;
      ] );
  ]
