module Heap = Soda_sim.Heap
module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Stats = Soda_sim.Stats
module Trace = Soda_sim.Trace

(* ---- heap ---------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~key:5 ~seq:0 "e";
  Heap.push h ~key:1 ~seq:1 "a";
  Heap.push h ~key:3 ~seq:2 "c";
  Heap.push h ~key:1 ~seq:3 "b";
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "min order with fifo ties" [ "a"; "b"; "c"; "e" ]
    (List.rev !order)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek_key h);
  Alcotest.(check bool) "pop none" true (Heap.pop_min h = None)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (k, _, ()) -> k >= last && drain k
      in
      drain min_int)

let prop_heap_preserves_multiset =
  QCheck.Test.make ~name:"heap returns exactly the pushed keys" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let rec drain acc =
        match Heap.pop_min h with None -> acc | Some (k, _, ()) -> drain (k :: acc)
      in
      List.sort compare (drain []) = List.sort compare keys)

(* ---- rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr matches
  done;
  Alcotest.(check bool) "split streams decorrelated" true (!matches < 4)

let prop_rng_chance_extremes =
  QCheck.Test.make ~name:"chance 0 never fires, chance 1 always" ~count:50 QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      (not (Rng.chance rng 0.0)) && Rng.chance rng 1.0)

let test_rng_uniformity () =
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 15% of uniform" true
        (abs (c - (n / 10)) < n * 15 / 100))
    buckets

(* ---- engine ----------------------------------------------------------------- *)

let test_engine_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:30 (fun () -> log := (`C, Engine.now e) :: !log));
  ignore (Engine.schedule e ~delay:10 (fun () -> log := (`A, Engine.now e) :: !log));
  ignore (Engine.schedule e ~delay:20 (fun () -> log := (`B, Engine.now e) :: !log));
  ignore (Engine.run e);
  Alcotest.(check int) "final time" 30 (Engine.now e);
  match List.rev !log with
  | [ (`A, 10); (`B, 20); (`C, 30) ] -> ()
  | _ -> Alcotest.fail "wrong event ordering"

let test_engine_same_instant_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:7 (fun () -> log := i :: !log))
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:5 (fun () -> fired := true) in
  Engine.cancel e id;
  Alcotest.(check int) "pending drops" 0 (Engine.pending e);
  ignore (Engine.run e);
  Alcotest.(check bool) "cancelled event never fires" false !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:10 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:15 (fun () -> times := Engine.now e :: !times))));
  ignore (Engine.run e);
  Alcotest.(check (list int)) "nested schedule relative to fire time" [ 10; 25 ]
    (List.rev !times)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:100 tick)
  in
  ignore (Engine.schedule e ~delay:0 tick);
  ignore (Engine.run ~until:1000 e);
  Alcotest.(check bool) "bounded run stops" true (!count >= 10 && !count <= 12);
  Alcotest.(check int) "clock advanced to horizon" 1000 (Engine.now e)

let test_engine_stop () =
  let e = Engine.create () in
  let after = ref false in
  ignore (Engine.schedule e ~delay:1 (fun () -> Engine.stop e));
  ignore (Engine.schedule e ~delay:2 (fun () -> after := true));
  ignore (Engine.run e);
  Alcotest.(check bool) "stop aborts the run" false !after

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1) (fun () -> ())))

(* ---- stats -------------------------------------------------------------------- *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Alcotest.(check int) "incr" 2 (Stats.counter s "a");
  Alcotest.(check int) "add" 5 (Stats.counter s "b");
  Alcotest.(check int) "absent counter" 0 (Stats.counter s "zzz");
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Stats.counter_names s)

let test_stats_times_and_samples () =
  let s = Stats.create () in
  Stats.add_time s "proto" 1500;
  Stats.add_time s "proto" 500;
  Alcotest.(check (float 0.001)) "ms" 2.0 (Stats.time_ms s "proto");
  Stats.sample s "lat" 10;
  Stats.sample s "lat" 20;
  Stats.sample s "lat" 30;
  Alcotest.(check (float 0.001)) "mean" 20.0 (Stats.mean_us s "lat");
  Alcotest.(check int) "max" 30 (Stats.max_us s "lat");
  Alcotest.(check int) "p50" 20 (Stats.percentile_us s "lat" 50.0);
  Alcotest.(check int) "p100" 30 (Stats.percentile_us s "lat" 100.0);
  Stats.reset s;
  Alcotest.(check int) "reset clears" 0 (Stats.count s "lat")

let test_stats_percentile_edges () =
  let s = Stats.create () in
  (* empty series *)
  Alcotest.(check int) "empty p50" 0 (Stats.percentile_us s "none" 50.0);
  Alcotest.(check int) "empty count" 0 (Stats.count s "none");
  Alcotest.(check int) "empty max" 0 (Stats.max_us s "none");
  (* single sample: every percentile is that sample *)
  Stats.sample s "one" 37;
  Alcotest.(check int) "single p0" 37 (Stats.percentile_us s "one" 0.0);
  Alcotest.(check int) "single p50" 37 (Stats.percentile_us s "one" 50.0);
  Alcotest.(check int) "single p100" 37 (Stats.percentile_us s "one" 100.0);
  (* out-of-range and NaN percentiles clamp instead of raising *)
  Stats.sample s "lat" 10;
  Stats.sample s "lat" 20;
  Stats.sample s "lat" 30;
  Alcotest.(check int) "p<0 clamps to min" 10 (Stats.percentile_us s "lat" (-5.0));
  Alcotest.(check int) "p>100 clamps to max" 30 (Stats.percentile_us s "lat" 200.0);
  Alcotest.(check int) "NaN clamps to min" 10 (Stats.percentile_us s "lat" Float.nan);
  (* negative samples clamp to zero rather than corrupting buckets *)
  Stats.sample s "neg" (-50);
  Alcotest.(check int) "negative sample clamps" 0 (Stats.max_us s "neg");
  Alcotest.(check int) "negative sample counted" 1 (Stats.count s "neg")

let test_stats_registry_backing () =
  let s = Stats.create () in
  Stats.incr s "pkt";
  Stats.sample s "lat" 99;
  let m = Stats.registry s in
  Alcotest.(check int) "counter visible in registry" 1
    (Soda_obs.Metrics.counter m "pkt");
  match Stats.histogram s "lat" with
  | Some h -> Alcotest.(check int) "histogram shared" 1 (Soda_obs.Metrics.Histogram.count h)
  | None -> Alcotest.fail "expected histogram"

(* ---- trace --------------------------------------------------------------------- *)

let test_trace () =
  let tr = Trace.create ~enabled:true () in
  Trace.record tr ~now:5 ~actor:"a" "hello %d" 1;
  Trace.record tr ~now:9 ~actor:"b" "world";
  Alcotest.(check int) "two entries" 2 (List.length (Trace.entries tr));
  Alcotest.(check int) "find" 1 (List.length (Trace.find tr ~substring:"hello"));
  Trace.set_enabled tr false;
  Trace.record tr ~now:10 ~actor:"c" "dropped";
  Alcotest.(check int) "disabled drops" 2 (List.length (Trace.entries tr));
  Trace.clear tr;
  Alcotest.(check int) "clear" 0 (List.length (Trace.entries tr))

let test_trace_disabled_is_free () =
  (* A disabled trace records nothing: format arguments are consumed
     without rendering and the recorder stays empty. *)
  let tr = Trace.create () in
  Alcotest.(check bool) "disabled by default" false (Trace.enabled tr);
  let side_effects = ref 0 in
  let effectful () =
    incr side_effects;
    "text"
  in
  (* the format ARGUMENTS are still evaluated (OCaml is strict) but no
     entry must be produced *)
  Trace.record tr ~now:1 ~actor:"a" "value %s" (effectful ());
  Alcotest.(check int) "no entries" 0 (List.length (Trace.entries tr));
  Alcotest.(check int) "recorder empty" 0
    (Soda_obs.Recorder.length (Trace.recorder tr));
  Trace.set_enabled tr true;
  Trace.record tr ~now:2 ~actor:"a" "kept %d" 5;
  Alcotest.(check int) "re-enabled records" 1 (List.length (Trace.entries tr))

let test_trace_typed_events_render () =
  (* Typed events emitted through the recorder appear in the legacy
     [entries] view with a human rendering. *)
  let tr = Trace.create ~enabled:true () in
  Soda_obs.Recorder.emit (Trace.recorder tr) ~time_us:4 ~mid:2 ~actor:"soda-2"
    (Soda_obs.Event.Tx
       { tid = 3; peer = 1; pkt = Soda_obs.Event.P_request; bytes = 24; seq = 1;
         retry = false });
  match Trace.entries tr with
  | [ e ] ->
    Alcotest.(check int) "time" 4 e.Trace.time_us;
    Alcotest.(check string) "actor" "soda-2" e.Trace.actor;
    Alcotest.(check bool) "message mentions the packet kind" true
      (List.length (Trace.find tr ~substring:"REQ") = 1)
  | _ -> Alcotest.fail "expected one entry"

let test_engine_counters () =
  let e = Engine.create () in
  let cancelled_id = Engine.schedule e ~delay:5 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:1 (fun () -> ()));
  Engine.cancel e cancelled_id;
  Engine.cancel e cancelled_id;  (* double-cancel is a no-op *)
  ignore (Engine.run e);
  let c = Engine.counters e in
  Alcotest.(check int) "scheduled" 2 c.Engine.scheduled;
  Alcotest.(check int) "fired" 1 c.Engine.fired;
  Alcotest.(check int) "cancelled" 1 c.Engine.cancelled;
  Alcotest.(check int) "pending" 0 c.Engine.pending;
  let m = Soda_obs.Metrics.create () in
  Engine.export_metrics e m ~prefix:"eng";
  Alcotest.(check int) "gauge scheduled" 2 (Soda_obs.Metrics.gauge m "eng.scheduled");
  Alcotest.(check int) "gauge clock" 1 (Soda_obs.Metrics.gauge m "eng.clock_us")

let test_engine_profiling () =
  let e = Engine.create () in
  Engine.set_profile_gc e true;
  ignore (Engine.schedule ~tag:"alpha" e ~delay:1 (fun () -> ()));
  ignore (Engine.schedule ~tag:"alpha" e ~delay:2 (fun () -> ()));
  ignore (Engine.schedule ~tag:"beta" e ~delay:3 (fun () -> ()));
  ignore (Engine.schedule e ~delay:4 (fun () -> ()));  (* untagged: uncounted *)
  Alcotest.(check int) "heap high-water tracks pushes" 4 (Engine.heap_highwater e);
  ignore (Engine.run e);
  Alcotest.(check (list (pair string int)))
    "tag counts" [ ("alpha", 2); ("beta", 1) ] (Engine.tag_counts e);
  Alcotest.(check int) "high-water survives drain" 4 (Engine.heap_highwater e);
  Alcotest.(check bool) "wall clock accrued" true (Engine.wall_seconds e >= 0.0);
  let minor, promoted, major = Engine.gc_words e in
  Alcotest.(check bool) "gc deltas non-negative" true
    (minor >= 0.0 && promoted >= 0.0 && major >= 0.0);
  let m = Soda_obs.Metrics.create () in
  Engine.export_metrics e m ~prefix:"eng";
  Alcotest.(check int) "tag gauge" 2 (Soda_obs.Metrics.gauge m "eng.tag.alpha");
  Alcotest.(check int) "heap gauge" 4 (Soda_obs.Metrics.gauge m "eng.heap_highwater");
  Alcotest.(check bool) "gc gauge present" true
    (List.mem "eng.gc_minor_words" (Soda_obs.Metrics.gauge_names m))

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "ordering with ties" `Quick test_heap_ordering;
        Alcotest.test_case "empty heap" `Quick test_heap_empty;
        QCheck_alcotest.to_alcotest prop_heap_sorted;
        QCheck_alcotest.to_alcotest prop_heap_preserves_multiset;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        QCheck_alcotest.to_alcotest prop_rng_chance_extremes;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_time_ordering;
        Alcotest.test_case "same-instant fifo" `Quick test_engine_same_instant_fifo;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "stop" `Quick test_engine_stop;
        Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay;
        Alcotest.test_case "lifetime counters" `Quick test_engine_counters;
        Alcotest.test_case "profiling counters" `Quick test_engine_profiling;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "counters" `Quick test_stats_counters;
        Alcotest.test_case "times and samples" `Quick test_stats_times_and_samples;
        Alcotest.test_case "percentile edge cases" `Quick test_stats_percentile_edges;
        Alcotest.test_case "metrics registry backing" `Quick test_stats_registry_backing;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "record/find/clear" `Quick test_trace;
        Alcotest.test_case "disabled trace records nothing" `Quick
          test_trace_disabled_is_free;
        Alcotest.test_case "typed events render" `Quick test_trace_typed_events_render;
      ] );
  ]
