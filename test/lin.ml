(* Wing-Gong linearizability checker for register histories.

   A history is a set of timed read/write operations on one register;
   [check] searches for a linearization: a total order that respects
   real time (op A precedes op B whenever A ended before B started) in
   which every read returns the value of the latest preceding write
   (or None before any write). Complexity is tamed the standard way
   (Wing & Gong 1993; Lowe 2017): only "minimal" operations -- those no
   other remaining op strictly precedes -- are candidates at each step,
   and visited configurations are memoized. Because the store harness
   writes unique values, a configuration is just (remaining-ops bitmask,
   index of the last linearized write), so the memo table is exact.

   Failed operations: a write that reported NO QUORUM may still have
   reached some replicas, so it is kept with an infinite end time (it
   can linearize anywhere after its start, or never -- it is optional);
   a failed read observed nothing and is dropped by the caller. *)

type op = {
  kind : [ `Read of string option | `Write of string ];
  start_us : int;
  end_us : int;  (* max_int for ops that never completed *)
  required : bool;  (* must appear in the linearization *)
}

let check (ops : op list) : bool =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Lin.check: more than 62 ops on one key";
  let all = (1 lsl n) - 1 in
  let required_mask = ref 0 in
  Array.iteri (fun i o -> if o.required then required_mask := !required_mask lor (1 lsl i)) ops;
  let memo : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* [go remaining last_write]: can the remaining ops be linearized,
     given the register currently holds the value of [last_write]
     (-1 = never written)? *)
  let rec go remaining last_write =
    if remaining land !required_mask = 0 then true
    else if Hashtbl.mem memo (remaining, last_write) then false
    else begin
      let value =
        if last_write < 0 then None
        else match ops.(last_write).kind with `Write v -> Some v | `Read _ -> None
      in
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let bit = 1 lsl !i in
        if remaining land bit <> 0 then begin
          let o = ops.(!i) in
          (* minimal: no other remaining op ended before [o] started *)
          let minimal = ref true in
          for j = 0 to n - 1 do
            if
              j <> !i
              && remaining land (1 lsl j) <> 0
              && ops.(j).required
              && ops.(j).end_us < o.start_us
            then minimal := false
          done;
          if !minimal then
            match o.kind with
            | `Read v ->
              if v = value && go (remaining lxor bit) last_write then ok := true
            | `Write _ -> if go (remaining lxor bit) !i then ok := true
        end;
        incr i
      done;
      if not !ok then Hashtbl.replace memo (remaining, last_write) ();
      !ok
    end
  in
  go all (-1)

(* ---- harness histories ------------------------------------------------- *)

module Harness = Soda_store.Harness

(* Convert one key's recorded ops. Failed reads are dropped (they
   observed nothing); failed writes become optional with end = infinity. *)
let ops_of_records records =
  List.filter_map
    (fun (r : Harness.op) ->
      match (r.kind, r.outcome) with
      | `Read, `Ok v ->
        Some { kind = `Read v; start_us = r.start_us; end_us = r.end_us; required = true }
      | `Read, `No_quorum -> None
      | `Write v, `Written ->
        Some { kind = `Write v; start_us = r.start_us; end_us = r.end_us; required = true }
      | `Write v, `No_quorum ->
        Some { kind = `Write v; start_us = r.start_us; end_us = max_int; required = false }
      | `Read, `Written | `Write _, `Ok _ -> assert false)
    records

(* Check a full harness history: registers are independent, so the
   history is linearizable iff each per-key subhistory is (atomicity is
   a local/compositional property). *)
let check_history (history : Harness.op list) : (unit, string) result =
  let by_key : (int, Harness.op list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Harness.op) ->
      Hashtbl.replace by_key r.key (r :: (Option.value ~default:[] (Hashtbl.find_opt by_key r.key))))
    history;
  Hashtbl.fold
    (fun key records acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if check (ops_of_records (List.rev records)) then Ok ()
        else Error (Printf.sprintf "history of key %d is not linearizable" key))
    by_key (Ok ())
