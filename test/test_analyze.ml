(* The offline analyzer (Soda_obs.Analyze) against the exporter it
   inverts, and the causal layer end-to-end: a store n=5 run under a
   fault plan must reconstruct one cross-node causal tree per client
   operation, failover retries included. *)

module Event = Soda_obs.Event
module Causal = Soda_obs.Causal
module Export = Soda_obs.Export
module Analyze = Soda_obs.Analyze
module Metrics = Soda_obs.Metrics
module Recorder = Soda_obs.Recorder

let ev ?ctx ?(actor = "") time_us mid kind = { Event.time_us; mid; actor; kind; ctx }

(* ---- string escaping ------------------------------------------------------ *)

let test_jsonl_escaping_round_trip () =
  let nasty = "q\"uote b\\ack\nnl\ttab\rcr ctrl\x01\x1f end" in
  let events =
    [ ev ~actor:"a\"c\\t" 5 0 (Event.Note nasty);
      ev 6 1 (Event.Complete { tid = 3; status = nasty }) ]
  in
  let jsonl = Export.jsonl events in
  (* escapes keep it one object per line *)
  Alcotest.(check int) "two lines" 2
    (List.length (String.split_on_char '\n' (String.trim jsonl)));
  (match Analyze.events_of_string jsonl with
   | [ a; b ] ->
     (match a.Event.kind with
      | Event.Note text -> Alcotest.(check string) "note round-trips" nasty text
      | _ -> Alcotest.fail "expected a note");
     Alcotest.(check string) "actor round-trips" "a\"c\\t" a.Event.actor;
     (match b.Event.kind with
      | Event.Complete { status; _ } ->
        Alcotest.(check string) "status round-trips" nasty status
      | _ -> Alcotest.fail "expected a completion")
   | l -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length l)));
  (* the chrome exporter must escape the same strings (its [message]
     rendering embeds them in event names) *)
  let chrome = Export.chrome events in
  String.iteri
    (fun i c ->
      if Char.code c < 0x20 && c <> '\n' then
        Alcotest.failf "raw control byte %#x at offset %d in chrome export" (Char.code c)
          i)
    chrome

(* ---- exact parser inverse over every event kind --------------------------- *)

let all_kinds_events =
  let open Event in
  let root = { Causal.trace = 3; span = 10; parent = Causal.no_parent } in
  let child = Causal.child root ~span:11 in
  [
    ev ~ctx:root 0 1 (Trap { tid = 7; dst = 0; pattern = 42; put_size = 3; get_size = 0 });
    ev ~ctx:child 1 1 (Enqueue { tid = 7; peer = 0; pkt = P_request });
    ev 2 1 (Tx { tid = 7; peer = 0; pkt = P_request; bytes = 20; seq = 0; retry = false });
    ev 3 1 (Tx { tid = 7; peer = 0; pkt = P_put_data; bytes = 64; seq = 5; retry = true });
    ev 4 0 (Rx { tid = 7; peer = 1; pkt = P_request; bytes = 20; seq = 1 });
    ev 5 1 (Acked { tid = 7; peer = 0; pkt = P_accept });
    ev 6 0 (Busy_nack { tid = 7; peer = 1 });
    ev 7 1 (Retransmit { tid = 7; peer = 0; pkt = P_request; attempt = 2 });
    ev 8 1 (Window_advance { peer = 0; base = 4; in_flight = 3 });
    ev 9 0 (Window_buffer { tid = 7; peer = 1; seq = 6; expected = 4 });
    ev 10 1 (Probe { tid = 7; peer = 0; misses = 1 });
    ev 11 0
      (Deliver
         { tid = 7; src = 1; pattern = 42; put_size = 3; get_size = 0;
           from_buffer = true });
    ev 12 0 Handler_invoke;
    ev 13 0 Endhandler;
    ev 14 1 (Complete { tid = 7; status = "accepted" });
    ev 15 (-1) (Bus_frame { src = 1; dst = -1; bytes = 28; start_us = 14; end_us = 15 });
    ev 16 (-1) (Bus_drop { src = 1; dst = 0; reason = "loss" });
    ev 17 (-1) (Fault_partition { group_a = [ 0; 1 ]; group_b = [ 2 ] });
    ev 18 (-1) (Fault_partition { group_a = []; group_b = [] });
    ev 19 (-1) Fault_heal;
    ev 20 (-1) (Fault_crash { mid = 2 });
    ev 21 (-1) (Fault_reboot { mid = 2 });
    ev 22 (-1) (Fault_duplicate { count = 3 });
    ev 23 (-1) (Fault_jitter { min_us = 0; max_us = 2000 });
    ev 24 (-1) (Fault_loss_burst { rate_pct = 40; duration_us = 200_000 });
    ev 25 6
      (Store_phase
         { op = "write"; phase = "propagate"; key = 2; acks = 2; quorum = 3;
           elapsed_us = 5_000 });
    ev 26 6 (Store_retry { op = "write"; phase = "query"; key = 2; attempt = 1 });
    ev 27 6
      (Store_complete { op = "write"; key = 2; ok = false; rounds = 4; elapsed_us = 99 });
    ev ~actor:"kern-0" 28 0 (Note "free text");
  ]

let test_parse_inverts_export () =
  let parsed = Analyze.events_of_string (Export.jsonl all_kinds_events) in
  Alcotest.(check int) "same count" (List.length all_kinds_events) (List.length parsed);
  List.iter2
    (fun want got ->
      if want <> got then
        Alcotest.failf "event at t=%d did not round-trip (%s)" want.Event.time_us
          (Event.kind_label want.Event.kind))
    all_kinds_events parsed

let test_parse_errors () =
  let bad line =
    match Analyze.events_of_string line with
    | exception Analyze.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" line
  in
  bad "{\"t\":1,\"mid\":0,\"ev\":\"no-such-kind\"}";
  bad "{\"t\":1,\"mid\":0";
  bad "not json at all";
  bad "{\"t\":1,\"mid\":0,\"ev\":\"trap\"}" (* missing trap fields *)

(* ---- qcheck: analyzer totals match the in-memory histograms --------------- *)

(* Synthesise request lifecycles with known durations, export to JSONL,
   re-ingest with the analyzer: its latency histogram must agree with a
   histogram fed the same durations directly — identical buckets, so
   count/sum/min/max and every percentile match exactly. *)
let span_events durations =
  List.concat
    (List.mapi
       (fun i dur ->
         let t0 = i * 1_000_000 in
         [ ev t0 1 (Event.Trap { tid = i; dst = 0; pattern = 1; put_size = 0; get_size = 0 });
           ev (t0 + dur) 1 (Event.Complete { tid = i; status = "accepted" }) ])
       durations)

let prop_latency_totals =
  QCheck.Test.make ~name:"analyze(jsonl) latency histogram matches in-memory" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 900_000))
    (fun durations ->
      let reference = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.observe reference) durations;
      let parsed = Analyze.events_of_string (Export.jsonl (span_events durations)) in
      let h = Analyze.latency_histogram parsed in
      Metrics.Histogram.count h = Metrics.Histogram.count reference
      && Metrics.Histogram.sum h = Metrics.Histogram.sum reference
      && Metrics.Histogram.min_value h = Metrics.Histogram.min_value reference
      && Metrics.Histogram.max_value h = Metrics.Histogram.max_value reference
      && List.for_all
           (fun p ->
             Metrics.Histogram.percentile h p = Metrics.Histogram.percentile reference p)
           [ 50.0; 90.0; 95.0; 99.0; 100.0 ])

(* ---- causal trees end-to-end ---------------------------------------------- *)

let store_fault_run () =
  let module FP = Soda_fault.Fault_plan in
  let plan =
    [ { FP.at_us = 400_000; action = FP.Crash 1 };
      { FP.at_us = 2_000_000; action = FP.Reboot 1 };
      { FP.at_us = 3_000_000; action = FP.Partition ([ 0; 1; 2 ], [ 3; 4 ]) };
      { FP.at_us = 4_500_000; action = FP.Heal } ]
  in
  Soda_store.Harness.run ~n:5 ~seed:7 ~plan ~trace:true ()

let test_store_causal_trees () =
  let module Harness = Soda_store.Harness in
  let module Network = Soda_core.Network in
  let r = store_fault_run () in
  let events = Recorder.events (Network.recorder r.Harness.net) in
  let trees = Analyze.causal_trees events in
  let ops = List.length r.Harness.history in
  Alcotest.(check bool) "clients finished" true
    (r.Harness.clients_done = r.Harness.clients_total);
  Alcotest.(check bool) "ops ran" true (ops > 0);
  (* one causal tree per client operation... *)
  Alcotest.(check int) "one tree per client op" ops (List.length trees);
  (* ...every one of them spanning nodes (each op fans out to replicas) *)
  List.iter
    (fun tree ->
      Alcotest.(check bool)
        (Printf.sprintf "trace %d crosses nodes" tree.Analyze.t_trace)
        true (Analyze.cross_node tree))
    trees;
  (* quorum fan-out: trees touch at least a majority of the 5 replicas *)
  List.iter
    (fun tree ->
      let replicas = List.filter (fun m -> m < 5) tree.Analyze.t_mids in
      Alcotest.(check bool)
        (Printf.sprintf "trace %d reaches a quorum" tree.Analyze.t_trace)
        true
        (List.length replicas >= 3))
    trees;
  (* the crash forces retries: some tree must record a retransmission *)
  let has_retry =
    List.exists
      (fun e ->
        match (e.Event.kind, e.Event.ctx) with
        | Event.Retransmit _, Some _ -> true
        | _ -> false)
      events
  in
  Alcotest.(check bool) "a stamped retransmit survives the crash window" true has_retry;
  (* critical paths exist and start at each tree's root *)
  List.iter
    (fun tree ->
      match Analyze.critical_path tree with
      | [] -> Alcotest.failf "trace %d has an empty critical path" tree.Analyze.t_trace
      | root :: _ ->
        Alcotest.(check bool) "path starts at a root" true
          (root.Analyze.sn_parent = Causal.no_parent
          || not
               (List.exists
                  (fun t ->
                    List.exists
                      (fun r -> r.Analyze.sn_span = root.Analyze.sn_parent)
                      t.Analyze.t_roots)
                  trees)))
    trees

let test_report_and_dot () =
  let module Harness = Soda_store.Harness in
  let module Network = Soda_core.Network in
  let r = store_fault_run () in
  let events = Recorder.events (Network.recorder r.Harness.net) in
  (* full text report renders without raising *)
  let report = Format.asprintf "%a" (fun ppf -> Analyze.report ppf) events in
  let contains needle haystack =
    let n = String.length needle and l = String.length haystack in
    let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report has causal section" true
    (contains "CAUSAL TREES" report);
  Alcotest.(check bool) "report has pair table" true (contains "NODE PAIRS" report);
  let trees = Analyze.causal_trees events in
  let dot = Analyze.dot trees in
  Alcotest.(check bool) "dot is a digraph" true (contains "digraph causal" dot);
  Alcotest.(check bool) "dot has clusters" true (contains "subgraph cluster_tr" dot);
  (* per-pair accounting saw the retransmissions the fault plan caused *)
  let pairs = Analyze.pair_accounting events in
  Alcotest.(check bool) "some pair retransmitted" true
    (List.exists (fun p -> p.Analyze.retransmits > 0) pairs)

(* ---- causal stamping basics ----------------------------------------------- *)

let test_causal_off_means_no_ctx () =
  let r = Recorder.create () in
  Recorder.set_tracing r true;
  Alcotest.(check bool) "mint_root off" true (Recorder.mint_root r = None);
  Recorder.set_causal r true;
  match Recorder.mint_root r with
  | None -> Alcotest.fail "mint_root on"
  | Some root ->
    Alcotest.(check bool) "root is root" true (Causal.is_root root);
    (match Recorder.mint_child r root with
     | None -> Alcotest.fail "mint_child on"
     | Some child ->
       Alcotest.(check int) "same trace" root.Causal.trace child.Causal.trace;
       Alcotest.(check int) "parent link" root.Causal.span child.Causal.parent;
       Alcotest.(check bool) "distinct span" true (child.Causal.span <> root.Causal.span))

let suites =
  [
    ( "analyze.parser",
      [
        Alcotest.test_case "escaping round-trips" `Quick test_jsonl_escaping_round_trip;
        Alcotest.test_case "every kind round-trips" `Quick test_parse_inverts_export;
        Alcotest.test_case "malformed input raises" `Quick test_parse_errors;
        QCheck_alcotest.to_alcotest prop_latency_totals;
      ] );
    ( "analyze.causal",
      [
        Alcotest.test_case "minting" `Quick test_causal_off_means_no_ctx;
        Alcotest.test_case "store fault run: cross-node trees" `Quick
          test_store_causal_trees;
        Alcotest.test_case "report, dot, pair accounting" `Quick test_report_and_dot;
      ] );
  ]
