(* Protocol-level behaviour: reliability under loss, duplicate suppression,
   busy NACKs vs the pipelined input buffer, CANCEL semantics, probes and
   crash detection, Delta-t record lifecycle. *)

open Helpers
module Stats = Soda_sim.Stats
module Bus = Soda_net.Bus
module Trace = Soda_sim.Trace

let patt = Pattern.well_known 0o711

let attach_echo kernel = ignore (echo_server ~reply:"ok" kernel patt)

let attach_sender kernel ~n ~record =
  ignore
    (Sodal.attach kernel
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 1 to n do
               let into = Bytes.create 8 in
               let c = Sodal.b_exchange env sv ~arg:i (bytes_of_string "msg") ~into in
               record (i, c.Sodal.status, Bytes.sub_string into 0 c.Sodal.get_transferred)
             done);
       })

let test_reliable_under_loss () =
  let net, kernels = make_net ~seed:21 2 in
  Bus.set_loss_rate (Network.bus net) 0.25;
  attach_echo (List.nth kernels 0);
  let results = ref [] in
  attach_sender (List.nth kernels 1) ~n:10 ~record:(fun r -> results := r :: !results);
  run ~horizon:600.0 net;
  Alcotest.(check int) "all ten completed" 10 (List.length !results);
  List.iter
    (fun (_, status, data) ->
      Alcotest.(check bool) "status ok" true (status = Sodal.Comp_ok);
      Alcotest.(check string) "payload intact" "ok" data)
    !results;
  let stats = Kernel.stats (List.nth kernels 1) in
  Alcotest.(check bool) "retransmissions happened" true
    (Stats.counter stats "pkt.retransmissions" > 0)

let test_exactly_once_under_loss () =
  (* Despite loss-induced retransmissions, each request is delivered to the
     server handler exactly once and in order. *)
  let net, kernels = make_net ~seed:33 2 in
  Bus.set_loss_rate (Network.bus net) 0.3;
  let k0 = List.nth kernels 0 in
  let seen = ref [] in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             seen := info.Sodal.arg :: !seen;
             ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let completed = ref 0 in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 1 to 12 do
               let c = Sodal.b_signal env sv ~arg:i in
               if c.Sodal.status = Sodal.Comp_ok then incr completed
             done);
       });
  run ~horizon:600.0 net;
  Alcotest.(check int) "all completed" 12 !completed;
  Alcotest.(check (list int)) "exactly once, in order"
    (List.init 12 (fun i -> i + 1))
    (List.rev !seen)

let test_corruption_recovered () =
  let net, kernels = make_net ~seed:5 2 in
  Bus.set_corruption_rate (Network.bus net) 0.2;
  attach_echo (List.nth kernels 0);
  let results = ref [] in
  attach_sender (List.nth kernels 1) ~n:5 ~record:(fun r -> results := r :: !results);
  run ~horizon:600.0 net;
  Alcotest.(check int) "all five completed despite CRC drops" 5 (List.length !results)

(* ---- busy / pipelining ------------------------------------------------------- *)

(* A server whose handler is busy for [service_us] per request, so that
   back-to-back requests find it BUSY. *)
let slow_handler_server kernel ~service_us =
  ignore
    (Sodal.attach kernel
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             Sodal.compute env service_us;
             ignore (Sodal.accept_current_signal env ~arg:0));
       })

let stream_signals kernel ~n ~on_all_done =
  (* Keep up to MAXREQUESTS signals in flight so arrivals meet a busy
     handler. *)
  let completions = ref 0 in
  ignore
    (Sodal.attach kernel
       {
         Sodal.default_spec with
         on_completion = (fun _ _ -> incr completions);
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let issued = ref 0 in
             while !completions < n do
               while !issued < n && !issued - !completions < 3 do
                 ignore (Sodal.signal env sv ~arg:0);
                 incr issued
               done;
               Sodal.idle env
             done;
             on_all_done ());
       })

let test_busy_nacks_non_pipelined () =
  let cost = { Cost.non_pipelined with Cost.ack_grace_us = 500 } in
  let net, kernels = make_net ~seed:9 ~cost 2 in
  slow_handler_server (List.nth kernels 0) ~service_us:20_000;
  let done_ = ref false in
  stream_signals (List.nth kernels 1) ~n:6 ~on_all_done:(fun () -> done_ := true);
  run ~horizon:600.0 net;
  Alcotest.(check bool) "completed" true !done_;
  let stats = Kernel.stats (List.nth kernels 0) in
  Alcotest.(check bool) "busy nacks occurred" true (Stats.counter stats "req.busy_nacked" > 0);
  Alcotest.(check int) "nothing buffered" 0 (Stats.counter stats "req.buffered")

let test_pipelined_buffering () =
  let net, kernels = make_net ~seed:9 2 in
  (* default cost is pipelined *)
  slow_handler_server (List.nth kernels 0) ~service_us:20_000;
  let done_ = ref false in
  stream_signals (List.nth kernels 1) ~n:6 ~on_all_done:(fun () -> done_ := true);
  run ~horizon:600.0 net;
  Alcotest.(check bool) "completed" true !done_;
  let stats = Kernel.stats (List.nth kernels 0) in
  Alcotest.(check bool) "input buffer used" true (Stats.counter stats "req.buffered" > 0)

(* ---- cancel ---------------------------------------------------------------------- *)

let test_cancel_before_accept () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  (* Server records the request but never accepts until told. *)
  let asker = ref None in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ info -> asker := Some info.Sodal.asker);
         task =
           (fun env ->
             while !asker = None do
               Sodal.idle env
             done;
             (* Give the client time to cancel, then try to accept. *)
             Sodal.compute env 300_000;
             let status = Sodal.accept_signal env (Option.get !asker) ~arg:0 in
             Alcotest.(check bool) "late accept sees CANCELLED" true
               (status = Types.Accept_cancelled));
       });
  let cancel_ok = ref false in
  let completion_seen = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         on_completion = (fun _ _ -> completion_seen := true);
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let tid = Sodal.signal env sv ~arg:0 in
             Sodal.compute env 100_000;
             cancel_ok := Sodal.cancel env tid;
             Sodal.compute env 2_000_000);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "cancel succeeded" true !cancel_ok;
  Alcotest.(check bool) "no completion after successful cancel" false !completion_seen

let test_cancel_after_completion_fails () =
  let net, kernels = make_net 2 in
  attach_echo (List.nth kernels 0);
  let cancel_ok = ref true in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let c = Sodal.b_signal env sv ~arg:0 in
             Alcotest.(check bool) "completed" true (c.Sodal.status = Sodal.Comp_ok);
             cancel_ok := Sodal.cancel env c.Sodal.tid);
       });
  run net;
  Alcotest.(check bool) "cancel after completion fails" false !cancel_ok

(* ---- crash semantics --------------------------------------------------------------- *)

let test_request_to_silent_node_crashes () =
  (* Node 0 exists but its client never advertises; node 5 doesn't exist at
     all: requests to it exhaust retransmissions and report CRASHED. *)
  let net, kernels = make_net 2 in
  let status = ref Sodal.Comp_ok in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:5 ~pattern:patt in
             let c = Sodal.b_signal env sv ~arg:0 in
             status := c.Sodal.status);
       });
  ignore (List.nth kernels 0);
  run ~horizon:600.0 net;
  Alcotest.(check bool) "CRASHED" true (!status = Sodal.Comp_crashed)

let test_probe_detects_server_crash () =
  (* The request is delivered (acknowledged) but the server crashes before
     accepting: the probe machinery must report CRASHED (§3.6.2). *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ _ -> ());
       });
  ignore
    (Network.engine net
     |> fun e -> Soda_sim.Engine.schedule e ~delay:500_000 (fun () -> Kernel.crash k0));
  let status = ref Sodal.Comp_ok in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
             status := c.Sodal.status);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "probe reported CRASHED" true (!status = Sodal.Comp_crashed)

let test_stale_accept_after_requester_death () =
  (* Requester dies after its request is delivered; the server's eventual
     ACCEPT must fail CRASHED (§3.6.1). *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let k1 = List.nth kernels 1 in
  let accept_status = ref Types.Accept_success in
  let asker = ref None in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ info -> asker := Some info.Sodal.asker);
         task =
           (fun env ->
             while !asker = None do
               Sodal.idle env
             done;
             Sodal.compute env 2_000_000;
             accept_status :=
               Sodal.accept_get env (Option.get !asker) ~arg:0
                 ~data:(bytes_of_string "too late");
             Sodal.serve env);
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             (* A GET, so the server's accept carries data and must await
                the (dead) requester's acknowledgement. *)
             ignore
               (Sodal.get env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0
                  ~into:(Bytes.create 16));
             Sodal.compute env 500_000;
             Sodal.die env);
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "stale accept crashed" true (!accept_status = Types.Accept_crashed)

(* ---- delta-t record lifecycle ------------------------------------------------------- *)

let test_deltat_record_expiry () =
  let net, kernels = make_net ~trace:true 2 in
  Trace.set_enabled (Network.trace net) true;
  attach_echo (List.nth kernels 0);
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let into = Bytes.create 8 in
             ignore (Sodal.b_exchange env sv ~arg:0 (bytes_of_string "a") ~into);
             (* Stay silent long past MPL + delta-t, then talk again. *)
             Sodal.compute env (2 * Cost.record_expiry_us Cost.default);
             let c = Sodal.b_exchange env sv ~arg:0 (bytes_of_string "b") ~into in
             Alcotest.(check bool) "works after expiry" true (c.Sodal.status = Sodal.Comp_ok));
       });
  run ~horizon:600.0 net;
  let expiries = Trace.find (Network.trace net) ~substring:"expired" in
  Alcotest.(check bool) "records expired during silence" true (List.length expiries > 0);
  let take_any = Trace.find (Network.trace net) ~substring:"taking any SN" in
  Alcotest.(check bool) "take-any on recontact" true (List.length take_any > 0)

(* ---- AIMD transparency (loss-free differential) ------------------------------ *)

(* On a clean wire congestion control must be invisible to the
   application: the identical workload, AIMD on vs off, delivers the
   same request sequence to the handler and the same completions to the
   client. Only the pacing may differ (cwnd ramps from its initial
   value instead of opening the full window at once). *)
let run_aimd_differential ~aimd =
  let cost = { Cost.default with Cost.window = 8; maxrequests = 9; aimd } in
  let net, kernels = make_net ~seed:44 ~cost 2 in
  let seen = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             seen := info.Sodal.arg :: !seen;
             ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let ok = Array.make 20 false in
  let pending = ref 0 in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 0 to 19 do
               while !pending >= 8 do
                 Sodal.idle env
               done;
               let tid = Sodal.signal env sv ~arg:i in
               incr pending;
               Sodal.on_completion_of env tid (fun c ->
                   decr pending;
                   ok.(i) <- c.Sodal.status = Sodal.Comp_ok)
             done;
             while !pending > 0 do
               Sodal.idle env
             done);
       });
  run ~horizon:60.0 net;
  (List.rev !seen, Array.to_list ok)

let test_aimd_transparent_loss_free () =
  let seen_on, ok_on = run_aimd_differential ~aimd:true in
  let seen_off, ok_off = run_aimd_differential ~aimd:false in
  Alcotest.(check int) "all twenty delivered" 20 (List.length seen_on);
  Alcotest.(check bool) "all completed ok" true (List.for_all (fun b -> b) ok_on);
  Alcotest.(check (list int)) "identical delivery sequence" seen_off seen_on;
  Alcotest.(check (list bool)) "identical completion sequence" ok_off ok_on

let suites =
  [
    ( "transport.reliability",
      [
        Alcotest.test_case "reliable under loss" `Quick test_reliable_under_loss;
        Alcotest.test_case "exactly once under loss" `Quick test_exactly_once_under_loss;
        Alcotest.test_case "corruption recovered" `Quick test_corruption_recovered;
      ] );
    ( "transport.busy",
      [
        Alcotest.test_case "busy nacks (non-pipelined)" `Quick test_busy_nacks_non_pipelined;
        Alcotest.test_case "input buffer (pipelined)" `Quick test_pipelined_buffering;
      ] );
    ( "transport.cancel",
      [
        Alcotest.test_case "cancel before accept" `Quick test_cancel_before_accept;
        Alcotest.test_case "cancel after completion" `Quick test_cancel_after_completion_fails;
      ] );
    ( "transport.crash",
      [
        Alcotest.test_case "silent node" `Quick test_request_to_silent_node_crashes;
        Alcotest.test_case "probe detects crash" `Quick test_probe_detects_server_crash;
        Alcotest.test_case "stale accept" `Quick test_stale_accept_after_requester_death;
      ] );
    ( "transport.deltat",
      [ Alcotest.test_case "record expiry + take-any" `Quick test_deltat_record_expiry ] );
    ( "transport.aimd",
      [
        Alcotest.test_case "AIMD transparent on a clean wire" `Quick
          test_aimd_transparent_loss_free;
      ] );
  ]
