(* The SODAL language (§4.1): lexer/parser units plus end-to-end programs
   running as real SODA clients, including the paper's readers/writers
   moderator written in SODAL and driven by OCaml clients. *)

open Helpers
module Lexer = Soda_sodal_lang.Lexer
module Parser = Soda_sodal_lang.Parser
module Ast = Soda_sodal_lang.Ast
module Interp = Soda_sodal_lang.Interp

(* ---- lexer -------------------------------------------------------------- *)

let test_lexer_basics () =
  let tokens = List.map fst (Lexer.tokenize "const P = %0346; -- comment\nx := 12_000;") in
  Alcotest.(check int) "token count" 10 (List.length tokens);
  (match tokens with
   | Lexer.KW "const" :: Lexer.IDENT "P" :: Lexer.SYM "=" :: Lexer.PATTERN p :: _ ->
     Alcotest.(check int) "octal pattern" 0o346 p
   | _ -> Alcotest.fail "unexpected token stream");
  match List.filteri (fun i _ -> i >= 5) tokens with
  | [ Lexer.IDENT "x"; Lexer.SYM ":="; Lexer.INT 12000; Lexer.SYM ";"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped or underscore int broken"

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "a := \"unterminated");
     Alcotest.fail "accepted unterminated string"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokenize "x # y");
    Alcotest.fail "accepted bad character"
  with Lexer.Lex_error _ -> ()

(* ---- parser -------------------------------------------------------------- *)

let test_parse_expressions () =
  let open Ast in
  let got = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "precedence" true
    (equal_expr got (e (Binop (Add, e (Int 1), e (Binop (Mul, e (Int 2), e (Int 3)))))));
  let got = Parser.parse_expr "not a and b" in
  Alcotest.(check bool) "not binds tightest" true
    (equal_expr got (e (Binop (And, e (Unop (Not, e (Var "a"))), e (Var "b")))));
  let got = Parser.parse_expr "ASKER.Mid" in
  Alcotest.(check bool) "field access" true (equal_expr got (e (Field ("ASKER", "MID"))))

let test_parse_program_skeleton () =
  let source =
    {|
program skeleton;
const SERVICE = %0346;
var count : integer;
var q : queue[3];
initialization begin
  ADVERTISE(SERVICE);
end;
handler begin
  case entry of
    SERVICE : begin count := count + 1; end;
  esac;
end;
task begin
  loop IDLE(); forever;
end;
.
|}
  in
  let p = Parser.parse source in
  Alcotest.(check string) "name" "skeleton" p.Ast.name;
  Alcotest.(check int) "decls" 3 (List.length p.Ast.decls);
  Alcotest.(check int) "init stmts" 1 (List.length p.Ast.initialization);
  Alcotest.(check int) "handler stmts" 1 (List.length p.Ast.handler);
  Alcotest.(check int) "task stmts" 1 (List.length p.Ast.task)

let test_parse_errors () =
  (try
     ignore (Parser.parse "program x; task begin end");
     Alcotest.fail "missing final dot accepted"
   with Parser.Parse_error _ -> ());
  try
    ignore (Parser.parse "program x; task begin if true then fi; end; .");
    ()
  with Parser.Parse_error _ -> Alcotest.fail "well-formed if rejected"

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* Malformed programs must be reported with line *and* column, plus the
   expected-token set at that point. *)
let test_error_positions () =
  (match Parser.parse "program x;\ntask begin\n  if true fi;\nend;\n." with
   | _ -> Alcotest.fail "accepted if without then"
   | exception Parser.Parse_error (msg, p) ->
     Alcotest.(check int) "parse error line" 3 p.Ast.line;
     Alcotest.(check int) "parse error col" 11 p.Ast.col;
     Alcotest.(check bool) "names the expected token" true (contains msg "expected 'then'"));
  (match Parser.parse "program x;\ntask begin\n  esac;\nend;\n." with
   | _ -> Alcotest.fail "accepted esac as a statement"
   | exception Parser.Parse_error (msg, p) ->
     Alcotest.(check int) "statement error line" 3 p.Ast.line;
     Alcotest.(check int) "statement error col" 3 p.Ast.col;
     Alcotest.(check bool) "lists the statement keywords" true
       (contains msg "one of" && contains msg "'skip'" && contains msg "'case'"));
  (match Parser.parse "program x;\nvar v : float;\ntask begin skip; end;\n." with
   | _ -> Alcotest.fail "accepted unknown type"
   | exception Parser.Parse_error (msg, p) ->
     Alcotest.(check int) "type error line" 2 p.Ast.line;
     Alcotest.(check int) "type error col" 9 p.Ast.col;
     Alcotest.(check bool) "lists the type keywords" true
       (contains msg "one of" && contains msg "'queue'"));
  match Lexer.tokenize "program x;\n  @" with
  | _ -> Alcotest.fail "accepted bad character"
  | exception Lexer.Lex_error (_, p) ->
    Alcotest.(check int) "lex error line" 2 p.Ast.line;
    Alcotest.(check int) "lex error col" 3 p.Ast.col

(* ---- end-to-end: SODAL echo server + SODAL client ------------------------- *)

let echo_sodal_server = String.concat "\n"
    [ "program echo;";
      "const SERVICE = %0711;";
      "var reply : string;";
      "initialization begin ADVERTISE(SERVICE); end;";
      "handler begin";
      "  case entry of";
      "    SERVICE : begin reply := ACCEPT_CURRENT_EXCHANGE(0, PUTSIZE, \"pong\"); end;";
      "  esac;";
      "end;";
      "." ]

let sodal_client =
  String.concat "\n"
    [ "program client;";
      "const SERVICE = %0711;";
      "var server : integer;  var answer : string;";
      "task begin";
      "  server := DISCOVER(SERVICE);";
      "  answer := B_EXCHANGE(server, SERVICE, 0, \"ping\", 16);";
      "  PRINT(\"got \", answer, \" status \", LAST_STATUS);";
      "  loop IDLE(); forever;";
      "end;";
      "." ]

let test_sodal_echo_end_to_end () =
  let net, kernels = make_net 2 in
  let printed = ref [] in
  ignore (Interp.attach (List.nth kernels 0) echo_sodal_server);
  ignore
    (Interp.attach ~print:(fun s -> printed := s :: !printed) (List.nth kernels 1)
       sodal_client);
  ignore (Network.run ~until:120_000_000 net);
  Alcotest.(check (list string)) "client saw the exchange"
    [ "got pong status COMPLETED" ] !printed

(* ---- the paper's readers/writers moderator, in SODAL ----------------------- *)

let moderator_sodal =
  String.concat "\n"
    [ "program moderator;";
      "const START_READ = %0401;  const START_WRITE = %0402;";
      "const END_READ = %0403;   const END_WRITE = %0404;";
      "var ReadQueue : queue[16];  var WriteQueue : queue[16];";
      "var readcount : integer;   var writecount : integer;";
      "var s : string;";
      "initialization begin";
      "  ADVERTISE(START_READ); ADVERTISE(START_WRITE);";
      "  ADVERTISE(END_READ); ADVERTISE(END_WRITE);";
      "end;";
      "handler begin";
      "  case entry of";
      "    START_READ : begin";
      "      if ISEMPTY(WriteQueue) and writecount = 0 then";
      "        s := ACCEPT_CURRENT_SIGNAL(0);";
      "        readcount := readcount + 1;";
      "      else";
      "        ENQUEUE(ReadQueue, ASKER);";
      "      fi;";
      "    end;";
      "    START_WRITE : begin";
      "      if readcount = 0 and writecount = 0 then";
      "        s := ACCEPT_CURRENT_SIGNAL(0);";
      "        writecount := writecount + 1;";
      "      else";
      "        ENQUEUE(WriteQueue, ASKER);";
      "      fi;";
      "    end;";
      "    END_READ : begin";
      "      s := ACCEPT_CURRENT_SIGNAL(0);";
      "      readcount := readcount - 1;";
      "      if readcount = 0 and not ISEMPTY(WriteQueue) then";
      "        writecount := writecount + 1;";
      "        s := ACCEPT_SIGNAL(DEQUEUE(WriteQueue), 0);";
      "      fi;";
      "    end;";
      "    END_WRITE : begin";
      "      s := ACCEPT_CURRENT_SIGNAL(0);";
      "      writecount := writecount - 1;";
      "      if not ISEMPTY(ReadQueue) then";
      "        while not ISEMPTY(ReadQueue) do";
      "          readcount := readcount + 1;";
      "          s := ACCEPT_SIGNAL(DEQUEUE(ReadQueue), 0);";
      "        end;";
      "      elsif not ISEMPTY(WriteQueue) then";
      "        writecount := writecount + 1;";
      "        s := ACCEPT_SIGNAL(DEQUEUE(WriteQueue), 0);";
      "      fi;";
      "    end;";
      "  esac;";
      "end;";
      "." ]

let test_sodal_moderator_with_ocaml_clients () =
  (* The moderator is interpreted SODAL; readers and writers are OCaml
     clients, checking the same invariants as the native example. *)
  let net, kernels = make_net 5 in
  ignore (Interp.attach (List.nth kernels 0) moderator_sodal);
  let start_read = Pattern.well_known 0o401 and start_write = Pattern.well_known 0o402 in
  let end_read = Pattern.well_known 0o403 and end_write = Pattern.well_known 0o404 in
  let active_readers = ref 0 and active_writers = ref 0 in
  let violations = ref 0 and reads = ref 0 and writes = ref 0 in
  let reader kernel =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               for _ = 1 to 5 do
                 ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:start_read) ~arg:0);
                 incr active_readers;
                 if !active_writers > 0 then incr violations;
                 Sodal.compute env 15_000;
                 incr reads;
                 decr active_readers;
                 ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:end_read) ~arg:0)
               done);
         })
  in
  let writer kernel =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               for _ = 1 to 5 do
                 ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:start_write) ~arg:0);
                 incr active_writers;
                 if !active_readers > 0 || !active_writers > 1 then incr violations;
                 Sodal.compute env 10_000;
                 incr writes;
                 decr active_writers;
                 ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:end_write) ~arg:0)
               done);
         })
  in
  reader (List.nth kernels 1);
  reader (List.nth kernels 2);
  writer (List.nth kernels 3);
  writer (List.nth kernels 4);
  ignore (Network.run ~until:600_000_000 net);
  Alcotest.(check int) "all reads" 10 !reads;
  Alcotest.(check int) "all writes" 10 !writes;
  Alcotest.(check int) "exclusion held by interpreted moderator" 0 !violations

let suites =
  [
    ( "sodal_lang",
      [
        Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
        Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
        Alcotest.test_case "expression parsing" `Quick test_parse_expressions;
        Alcotest.test_case "program skeleton" `Quick test_parse_program_skeleton;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "error line/column reporting" `Quick test_error_positions;
        Alcotest.test_case "echo end-to-end" `Quick test_sodal_echo_end_to_end;
        Alcotest.test_case "readers/writers moderator in SODAL" `Quick
          test_sodal_moderator_with_ocaml_clients;
      ] );
  ]
