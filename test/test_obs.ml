module Event = Soda_obs.Event
module Metrics = Soda_obs.Metrics
module Recorder = Soda_obs.Recorder
module Span = Soda_obs.Span
module Export = Soda_obs.Export

(* ---- metrics ------------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.add m "c" 4;
  Metrics.set_gauge m "g" 17;
  Metrics.set_gauge m "g" 9;
  Metrics.observe m "h" 5;
  Alcotest.(check int) "counter" 5 (Metrics.counter m "c");
  Alcotest.(check int) "gauge keeps latest" 9 (Metrics.gauge m "g");
  Alcotest.(check bool) "histogram exists" true (Metrics.histogram m "h" <> None);
  Alcotest.(check (list string)) "counter names" [ "c" ] (Metrics.counter_names m);
  Alcotest.(check (list string)) "gauge names" [ "g" ] (Metrics.gauge_names m);
  Alcotest.(check (list string)) "histogram names" [ "h" ] (Metrics.histogram_names m);
  Metrics.reset m;
  Alcotest.(check int) "reset counter" 0 (Metrics.counter m "c");
  Alcotest.(check (list string)) "reset names" [] (Metrics.counter_names m)

let test_histogram_small_values_exact () =
  (* Below 64 the buckets are exact unit buckets: percentiles of small
     integer series must come out exactly. *)
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.observe h) [ 10; 20; 30; 40; 50 ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 150 (Metrics.Histogram.sum h);
  Alcotest.(check int) "p20" 10 (Metrics.Histogram.percentile h 20.0);
  Alcotest.(check int) "p50" 30 (Metrics.Histogram.percentile h 50.0);
  Alcotest.(check int) "p80" 40 (Metrics.Histogram.percentile h 80.0);
  Alcotest.(check int) "p100" 50 (Metrics.Histogram.percentile h 100.0)

let test_histogram_large_values_bounded_error () =
  (* Above 64 the buckets are log-scale with 32 sub-buckets per octave:
     percentiles may be off by at most ~3.2% (one sub-bucket). *)
  let h = Metrics.Histogram.create () in
  for v = 1 to 100_000 do
    Metrics.Histogram.observe h v
  done;
  Alcotest.(check int) "min exact" 1 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max exact" 100_000 (Metrics.Histogram.max_value h);
  List.iter
    (fun p ->
      let exact = int_of_float (float_of_int 100_000 *. p /. 100.0) in
      let got = Metrics.Histogram.percentile h p in
      let err = abs (got - exact) in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within 3.5%% (got %d, exact %d)" p got exact)
        true
        (float_of_int err <= 0.035 *. float_of_int exact))
    [ 50.0; 90.0; 95.0; 99.0 ]

let test_histogram_negative_clamps () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.observe h (-17);
  Alcotest.(check int) "clamped to 0" 0 (Metrics.Histogram.max_value h);
  Alcotest.(check int) "count" 1 (Metrics.Histogram.count h)

(* ---- recorder ------------------------------------------------------------ *)

let test_recorder_enable_disable () =
  let r = Recorder.create () in
  Alcotest.(check bool) "off by default" false (Recorder.tracing r);
  Recorder.emit r ~time_us:1 ~mid:0 ~actor:"x" (Event.Note "dropped");
  Alcotest.(check int) "disabled emits nothing" 0 (Recorder.length r);
  Recorder.set_tracing r true;
  Recorder.emit r ~time_us:2 ~mid:0 ~actor:"x" (Event.Note "kept");
  Recorder.emit r ~time_us:3 ~mid:1 ~actor:"y" Event.Handler_invoke;
  Alcotest.(check int) "enabled records" 2 (Recorder.length r);
  (match Recorder.events r with
   | [ a; b ] ->
     Alcotest.(check int) "chronological" 2 a.Event.time_us;
     Alcotest.(check int) "chronological 2" 3 b.Event.time_us
   | _ -> Alcotest.fail "expected two events");
  Recorder.clear r;
  Alcotest.(check int) "clear" 0 (Recorder.length r)

(* ---- spans ---------------------------------------------------------------- *)

let ev time_us mid kind = { Event.time_us; mid; actor = "t"; kind; ctx = None }

let test_span_derivation () =
  (* Synthetic lifecycle: trap, first transmission, BUSY bounce, retry,
     delivery ack, accept, completion. *)
  let events =
    [
      ev 0 1 (Event.Trap { tid = 7; dst = 0; pattern = 42; put_size = 0; get_size = 0 });
      ev 100 1
        (Event.Tx
           { tid = 7; peer = 0; pkt = Event.P_request; bytes = 20; seq = 0;
             retry = false });
      ev 200 1 (Event.Rx { tid = 7; peer = 0; pkt = Event.P_busy; bytes = 8; seq = 0 });
      ev 300 1
        (Event.Tx
           { tid = 7; peer = 0; pkt = Event.P_request; bytes = 20; seq = 0; retry = true });
      ev 400 1 (Event.Acked { tid = 7; peer = 0; pkt = Event.P_request });
      ev 500 1 (Event.Rx { tid = 7; peer = 0; pkt = Event.P_accept; bytes = 16; seq = 1 });
      ev 600 1 (Event.Complete { tid = 7; status = "accepted" });
    ]
  in
  match Span.of_events events with
  | [ span ] ->
    Alcotest.(check int) "tid" 7 span.Span.tid;
    Alcotest.(check int) "mid" 1 span.Span.mid;
    Alcotest.(check (option int)) "duration" (Some 600) (Span.duration_us span);
    Alcotest.(check (option string)) "status" (Some "accepted") span.Span.status;
    let got =
      List.map
        (fun s -> (Span.phase_name s.Span.phase, s.Span.seg_start_us, s.Span.seg_end_us))
        span.Span.segments
    in
    Alcotest.(check (list (triple string int int)))
      "phase segments"
      [
        ("queued", 0, 100);
        ("on-wire", 100, 200);
        ("busy-backoff", 200, 300);
        ("on-wire", 300, 400);
        ("awaiting-accept", 400, 500);
        ("accept-transfer", 500, 600);
      ]
      got;
    let bd = Span.breakdown [ span ] in
    Alcotest.(check int) "on-wire total" 200 (List.assoc Span.On_wire bd);
    Alcotest.(check int) "queued total" 100 (List.assoc Span.Queued bd)
  | spans -> Alcotest.fail (Printf.sprintf "expected one span, got %d" (List.length spans))

let test_span_open_at_capture () =
  let events =
    [
      ev 0 1 (Event.Trap { tid = 9; dst = 0; pattern = 1; put_size = 0; get_size = 0 });
      ev 50 1
        (Event.Tx
           { tid = 9; peer = 0; pkt = Event.P_request; bytes = 20; seq = 0;
             retry = false });
    ]
  in
  match Span.of_events events with
  | [ span ] ->
    Alcotest.(check (option int)) "still open" None span.Span.end_us;
    Alcotest.(check (option int)) "no duration" None (Span.duration_us span);
    (* only the closed queued segment is attributed *)
    Alcotest.(check int) "one segment" 1 (List.length span.Span.segments)
  | _ -> Alcotest.fail "expected one open span"

(* ---- end-to-end through a simulated network ------------------------------- *)

let traced_pingpong () =
  let module Network = Soda_core.Network in
  let module Sodal = Soda_runtime.Sodal in
  let module Pattern = Soda_base.Pattern in
  let patt = Pattern.well_known 0o555 in
  let net = Network.create ~seed:7 ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             ignore
               (Sodal.accept_current_exchange env ~arg:0 ~into:(Bytes.create 1)
                  ~data:Bytes.empty));
       });
  let remaining = ref 3 in
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             while !remaining > 0 do
               let c = Sodal.b_signal env sv ~arg:0 in
               if c.Sodal.status <> Sodal.Comp_ok then failwith "signal failed";
               decr remaining
             done;
             Sodal.serve env);
       });
  ignore (Network.run ~until:60_000_000 net);
  Alcotest.(check int) "all signals completed" 0 !remaining;
  net

let test_network_events_and_spans () =
  let module Network = Soda_core.Network in
  let net = traced_pingpong () in
  let events = Recorder.events (Network.recorder net) in
  Alcotest.(check bool) "events recorded" true (List.length events > 10);
  let sorted = ref true and last = ref min_int in
  List.iter
    (fun e ->
      if e.Event.time_us < !last then sorted := false;
      last := e.Event.time_us)
    events;
  Alcotest.(check bool) "chronological order" true !sorted;
  let spans = Span.of_events events in
  let closed = List.filter (fun s -> s.Span.end_us <> None) spans in
  Alcotest.(check int) "one span per signal" 3 (List.length closed);
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "accepted" (Some "accepted") s.Span.status;
      Alcotest.(check bool) "has segments" true (s.Span.segments <> []))
    closed

let test_exporters_well_formed () =
  let module Network = Soda_core.Network in
  let net = traced_pingpong () in
  let events = Recorder.events (Network.recorder net) in
  (* JSONL: one object per line, matching the event count *)
  let jsonl = Export.jsonl events in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one line per event" (List.length events) (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is an object" true
        (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}'))
    lines;
  (* Chrome: top-level wrapper plus one lane (metadata) per node and bus *)
  let chrome = Export.chrome events in
  let contains needle =
    let n = String.length needle and l = String.length chrome in
    let rec go i = i + n <= l && (String.sub chrome i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "has process metadata" true (contains "process_name");
  Alcotest.(check bool) "has bus lane" true (contains "\"bus\"");
  let trimmed = String.trim chrome in
  Alcotest.(check bool) "balanced wrapper" true
    (trimmed.[String.length trimmed - 1] = '}');
  (* timeline renders without raising and one line per event *)
  let timeline = Format.asprintf "%a" Export.pp_timeline events in
  Alcotest.(check bool) "timeline non-empty" true (String.length timeline > 0)

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "registry" `Quick test_metrics_registry;
        Alcotest.test_case "histogram small values exact" `Quick
          test_histogram_small_values_exact;
        Alcotest.test_case "histogram log-scale error bound" `Quick
          test_histogram_large_values_bounded_error;
        Alcotest.test_case "histogram clamps negatives" `Quick
          test_histogram_negative_clamps;
      ] );
    ( "obs.recorder",
      [ Alcotest.test_case "enable/disable" `Quick test_recorder_enable_disable ] );
    ( "obs.span",
      [
        Alcotest.test_case "phase derivation" `Quick test_span_derivation;
        Alcotest.test_case "open at capture" `Quick test_span_open_at_capture;
      ] );
    ( "obs.end-to-end",
      [
        Alcotest.test_case "network events and spans" `Quick test_network_events_and_spans;
        Alcotest.test_case "exporters well-formed" `Quick test_exporters_well_formed;
      ] );
  ]
