module Engine = Soda_sim.Engine
module Crc16 = Soda_net.Crc16
module Frame = Soda_net.Frame
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic

let b = Bytes.of_string

(* ---- crc ------------------------------------------------------------------ *)

let test_crc_known_vector () =
  (* CRC-16/CCITT-FALSE("123456789") = 0x29B1 *)
  let data = b "123456789" in
  Alcotest.(check int) "check value" 0x29B1 (Crc16.compute data ~off:0 ~len:9)

let test_crc_roundtrip () =
  let payload = b "hello, megalink" in
  match Crc16.check (Crc16.append payload) with
  | Some p -> Alcotest.(check string) "payload preserved" "hello, megalink" (Bytes.to_string p)
  | None -> Alcotest.fail "valid CRC rejected"

let test_crc_detects_corruption () =
  let wire = Crc16.append (b "data") in
  Bytes.set wire 1 'X';
  Alcotest.(check bool) "corruption detected" true (Crc16.check wire = None)

let test_crc_short_frame () =
  Alcotest.(check bool) "tiny frame rejected" true (Crc16.check (b "x") = None)

let prop_crc_roundtrip =
  QCheck.Test.make ~name:"crc roundtrips arbitrary payloads" ~count:300 QCheck.string
    (fun s ->
      match Crc16.check (Crc16.append (Bytes.of_string s)) with
      | Some p -> Bytes.to_string p = s
      | None -> false)

let prop_crc_detects_single_flip =
  QCheck.Test.make ~name:"crc detects any single-byte flip" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (pair small_int small_int))
    (fun (s, (pos, flip)) ->
      let wire = Crc16.append (Bytes.of_string s) in
      let pos = pos mod Bytes.length wire in
      let flip = 1 + (flip mod 255) in
      Bytes.set wire pos (Char.chr (Char.code (Bytes.get wire pos) lxor flip));
      Crc16.check wire = None)

(* ---- bus / nic -------------------------------------------------------------- *)

let setup ?(config = Bus.default_config) () =
  let e = Engine.create ~seed:3 () in
  let bus = Bus.create ~config e in
  (e, bus)

let test_unicast_delivery () =
  let e, bus = setup () in
  let got = ref None in
  let n1 = Nic.attach bus ~mid:1 ~rx:(fun ~src ~broadcast:_ ~ctx:_ p -> got := Some (src, p)) in
  let n2 = Nic.attach bus ~mid:2 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> Alcotest.fail "mid 2 got frame") in
  ignore n1;
  Nic.send n2 ~dst:1 (b "ping");
  ignore (Engine.run e);
  match !got with
  | Some (2, p) -> Alcotest.(check string) "payload" "ping" (Bytes.to_string p)
  | _ -> Alcotest.fail "frame not delivered"

let test_broadcast_excludes_sender () =
  let e, bus = setup () in
  let hits = ref [] in
  let sender = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> hits := 0 :: !hits) in
  for mid = 1 to 3 do
    ignore (Nic.attach bus ~mid ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> hits := mid :: !hits))
  done;
  Nic.broadcast sender (b "hello");
  ignore (Engine.run e);
  Alcotest.(check (list int)) "all but sender, ascending" [ 1; 2; 3 ] (List.rev !hits)

let test_transmission_time () =
  let e, bus = setup () in
  (* 100-byte payload + 8 overhead + 2 crc = 110 bytes = 880 bits at 1 Mbit
     = 880 us, + 5 us propagation. *)
  let arrival = ref 0 in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> arrival := Engine.now e));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.send n0 ~dst:1 (Bytes.create 100);
  ignore (Engine.run e);
  Alcotest.(check int) "bandwidth-accurate latency" 885 !arrival

let test_medium_serialisation () =
  let e, bus = setup () in
  let arrivals = ref [] in
  ignore
    (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ ->
         arrivals := Engine.now e :: !arrivals));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.send n0 ~dst:1 (Bytes.create 100);
  Nic.send n0 ~dst:1 (Bytes.create 100);
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    Alcotest.(check int) "first frame" 885 t1;
    Alcotest.(check int) "second waits for the medium" 1765 t2
  | _ -> Alcotest.fail "expected two frames"

let test_loss_injection () =
  let config = { Bus.default_config with loss_rate = 1.0 } in
  let e, bus = setup ~config () in
  let got = ref false in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> got := true));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.send n0 ~dst:1 (b "doomed");
  ignore (Engine.run e);
  Alcotest.(check bool) "frame lost" false !got;
  Alcotest.(check int) "loss counted" 1 (Soda_sim.Stats.counter (Bus.stats bus) "bus.frames_lost")

let test_corruption_dropped_by_crc () =
  let config = { Bus.default_config with corruption_rate = 1.0 } in
  let e, bus = setup ~config () in
  let got = ref false in
  let n1 = Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> got := true) in
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.send n0 ~dst:1 (b "garbled");
  ignore (Engine.run e);
  Alcotest.(check bool) "corrupted frame never reaches the kernel" false !got;
  Alcotest.(check int) "crc drop counted" 1 (Nic.crc_drops n1)

let test_nic_disable () =
  let e, bus = setup () in
  let got = ref false in
  let n1 = Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> got := true) in
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.disable n1;
  Nic.send n0 ~dst:1 (b "x");
  ignore (Engine.run e);
  Alcotest.(check bool) "disabled nic silent" false !got;
  Nic.enable n1;
  Nic.send n0 ~dst:1 (b "y");
  ignore (Engine.run e);
  Alcotest.(check bool) "re-enabled nic receives" true !got

let test_rate_setter_validation () =
  let _, bus = setup () in
  Bus.set_loss_rate bus 0.0;
  Bus.set_loss_rate bus 1.0;
  Bus.set_corruption_rate bus 0.5;
  Alcotest.(check bool)
    "valid rates accepted" true ((Bus.config bus).Bus.corruption_rate = 0.5);
  let rejects f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "loss > 1 rejected" true
    (rejects (fun () -> Bus.set_loss_rate bus 1.5));
  Alcotest.(check bool) "negative loss rejected" true
    (rejects (fun () -> Bus.set_loss_rate bus (-0.1)));
  Alcotest.(check bool) "NaN loss rejected" true
    (rejects (fun () -> Bus.set_loss_rate bus Float.nan));
  Alcotest.(check bool) "corruption > 1 rejected" true
    (rejects (fun () -> Bus.set_corruption_rate bus 2.0));
  (* a rejected rate leaves the config untouched *)
  Alcotest.(check bool)
    "config unchanged after rejection" true
    ((Bus.config bus).Bus.corruption_rate = 0.5)

let test_crc_drops_in_metrics () =
  let config = { Bus.default_config with corruption_rate = 1.0 } in
  let e, bus = setup ~config () in
  let stats = Soda_sim.Stats.create () in
  let n1 = Nic.attach ~stats bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Nic.send n0 ~dst:1 (b "garbled");
  ignore (Engine.run e);
  Alcotest.(check int) "private counter" 1 (Nic.crc_drops n1);
  Alcotest.(check int) "surfaced in the metrics registry" 1
    (Soda_sim.Stats.counter stats "nic.crc_drops")

let test_partition_and_heal () =
  let e, bus = setup () in
  let got = ref 0 in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> incr got));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Bus.set_partition bus ([ 0 ], [ 1 ]);
  Nic.send n0 ~dst:1 (b "eaten");
  ignore (Engine.run e);
  Alcotest.(check int) "frame crossing the cut dropped" 0 !got;
  Alcotest.(check int) "partition drop counted" 1
    (Soda_sim.Stats.counter (Bus.stats bus) "bus.frames_partitioned");
  Bus.heal bus;
  Nic.send n0 ~dst:1 (b "through");
  ignore (Engine.run e);
  Alcotest.(check int) "after heal frames flow" 1 !got;
  Alcotest.check_raises "mid in both groups rejected"
    (Invalid_argument "Bus.set_partition: mid 1 in both groups") (fun () ->
      Bus.set_partition bus ([ 1 ], [ 1; 2 ]))

let test_partition_eats_inflight_frame () =
  let e, bus = setup () in
  let got = ref 0 in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> incr got));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  (* The frame enters the medium first; the cut appears while it is in
     flight (delivery happens at ~117 us for a 6-byte payload). *)
  Nic.send n0 ~dst:1 (b "launch");
  ignore (Engine.schedule e ~delay:1 (fun () -> Bus.set_partition bus ([ 0 ], [ 1 ])));
  ignore (Engine.run e);
  Alcotest.(check int) "in-flight frame eaten by the cut" 0 !got

let test_third_party_unaffected_by_partition () =
  let e, bus = setup () in
  let got = ref 0 in
  ignore (Nic.attach bus ~mid:2 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> incr got));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Bus.set_partition bus ([ 0 ], [ 1 ]);
  Nic.send n0 ~dst:2 (b "bystander");
  ignore (Engine.run e);
  Alcotest.(check int) "mid outside both groups still reachable" 1 !got

let test_duplicate_next () =
  let e, bus = setup () in
  let got = ref 0 in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> incr got));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Bus.duplicate_next bus;
  Nic.send n0 ~dst:1 (b "twice");
  Nic.send n0 ~dst:1 (b "once");
  ignore (Engine.run e);
  Alcotest.(check int) "first frame delivered twice, second once" 3 !got;
  Alcotest.(check int) "duplication counted" 1
    (Soda_sim.Stats.counter (Bus.stats bus) "bus.frames_duplicated")

let test_delay_jitter_validation_and_delivery () =
  let e, bus = setup () in
  let got = ref 0 in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> incr got));
  let n0 = Nic.attach bus ~mid:0 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()) in
  Alcotest.(check bool) "negative jitter rejected" true
    (try Bus.set_delay_jitter bus ~min_us:(-1) ~max_us:5; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inverted range rejected" true
    (try Bus.set_delay_jitter bus ~min_us:10 ~max_us:5; false
     with Invalid_argument _ -> true);
  Bus.set_delay_jitter bus ~min_us:100 ~max_us:5_000;
  for _ = 1 to 5 do Nic.send n0 ~dst:1 (b "wobbly") done;
  ignore (Engine.run e);
  Alcotest.(check int) "jittered frames still all delivered" 5 !got

(* PR 7 regression: the hashtable-backed partition check must pin the
   seed's List.mem semantics exactly — the cut is symmetric, same-group
   traffic delivers, mids in neither group talk to everyone, and heal
   restores full connectivity. *)
let test_partition_semantics () =
  let e, bus = setup () in
  let log = ref [] in
  List.iter
    (fun mid ->
      Bus.attach bus ~mid ~rx:(fun f -> log := (f.Frame.src, mid) :: !log))
    [ 1; 2; 3; 5 ];
  Bus.set_partition bus ([ 1; 2 ], [ 3 ]);
  let burst () =
    log := [];
    List.iter
      (fun (src, dst) -> Bus.send bus ~src ~dst:(Frame.To dst) (b "x"))
      [ (1, 3); (3, 1); (1, 2); (3, 5); (5, 3); (5, 1) ];
    ignore (Engine.run e);
    List.sort compare !log
  in
  Alcotest.(check (list (pair int int)))
    "cut is symmetric; same group and unlisted mids deliver"
    [ (1, 2); (3, 5); (5, 1); (5, 3) ]
    (burst ());
  Bus.heal bus;
  Alcotest.(check (list (pair int int)))
    "heal restores full connectivity"
    [ (1, 2); (1, 3); (3, 1); (3, 5); (5, 1); (5, 3) ]
    (burst ());
  Alcotest.check_raises "mid in both groups rejected"
    (Invalid_argument "Bus.set_partition: mid 2 in both groups") (fun () ->
      Bus.set_partition bus ([ 1; 2 ], [ 2; 3 ]))

let test_duplicate_mid_rejected () =
  let _, bus = setup () in
  ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ()));
  Alcotest.check_raises "duplicate station"
    (Invalid_argument "Bus.attach: mid 1 already attached") (fun () ->
      ignore (Nic.attach bus ~mid:1 ~rx:(fun ~src:_ ~broadcast:_ ~ctx:_ _ -> ())))

let suites =
  [
    ( "net.crc16",
      [
        Alcotest.test_case "known vector" `Quick test_crc_known_vector;
        Alcotest.test_case "roundtrip" `Quick test_crc_roundtrip;
        Alcotest.test_case "detects corruption" `Quick test_crc_detects_corruption;
        Alcotest.test_case "short frame" `Quick test_crc_short_frame;
        QCheck_alcotest.to_alcotest prop_crc_roundtrip;
        QCheck_alcotest.to_alcotest prop_crc_detects_single_flip;
      ] );
    ( "net.bus",
      [
        Alcotest.test_case "unicast delivery" `Quick test_unicast_delivery;
        Alcotest.test_case "broadcast excludes sender" `Quick test_broadcast_excludes_sender;
        Alcotest.test_case "transmission time" `Quick test_transmission_time;
        Alcotest.test_case "medium serialisation" `Quick test_medium_serialisation;
        Alcotest.test_case "loss injection" `Quick test_loss_injection;
        Alcotest.test_case "corruption dropped by crc" `Quick test_corruption_dropped_by_crc;
        Alcotest.test_case "nic disable/enable" `Quick test_nic_disable;
        Alcotest.test_case "duplicate mid rejected" `Quick test_duplicate_mid_rejected;
        Alcotest.test_case "rate setter validation" `Quick test_rate_setter_validation;
        Alcotest.test_case "crc drops in metrics" `Quick test_crc_drops_in_metrics;
      ] );
    ( "net.faults",
      [
        Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
        Alcotest.test_case "partition eats in-flight frame" `Quick
          test_partition_eats_inflight_frame;
        Alcotest.test_case "third party unaffected" `Quick
          test_third_party_unaffected_by_partition;
        Alcotest.test_case "partition semantics pinned" `Quick test_partition_semantics;
        Alcotest.test_case "duplicate next" `Quick test_duplicate_next;
        Alcotest.test_case "delay jitter" `Quick test_delay_jitter_validation_and_delivery;
      ] );
  ]
