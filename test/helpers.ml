(* Shared test utilities. *)

module Engine = Soda_sim.Engine
module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal

let bytes_of_string = Bytes.of_string
let string_of_bytes b = Bytes.to_string b

(* A network with [n] nodes, mids 0..n-1. *)
let make_net ?(seed = 7) ?(cost = Cost.default) ?trace n =
  let net = Network.create ~seed ~cost ?trace () in
  let kernels = List.init n (fun mid -> Network.add_node net ~mid) in
  (net, kernels)

(* Run until quiescent or [horizon] simulated seconds. *)
let run ?(horizon = 300.0) net =
  ignore (Network.run ~until:(int_of_float (horizon *. 1e6)) net)

let check_eventually net ~horizon flag msg =
  run ~horizon net;
  Alcotest.(check bool) msg true !flag

(* The seed's list-based broadcast bus, kept verbatim as a differential
   oracle for the array/hashtable-backed Soda_net.Bus: same config record,
   same fault RNG draw order (jitter at send, loss/corruption per matching
   delivery, duplicate slack after jitter), same delivery-time partition
   mask, same ascending-mid delivery order. test_scale.ml drives both
   implementations over random topologies and schedules on same-seed
   engines and requires identical (receiver, time, bytes) delivery logs. *)
module Ref_bus = struct
  module Bus = Soda_net.Bus
  module Rng = Soda_sim.Rng

  type frame = { src : int; broadcast : bool; dst : int; wire : bytes }

  type t = {
    engine : Engine.t;
    mutable config : Bus.config;
    stations : (int, frame -> unit) Hashtbl.t;
    mutable busy_until : int;
    fault_rng : Rng.t;
    mutable partition : (int list * int list) option;
    mutable duplicate_pending : int;
    mutable jitter : (int * int) option;
  }

  let create ?(config = Bus.default_config) engine =
    {
      engine;
      config;
      stations = Hashtbl.create 16;
      busy_until = 0;
      fault_rng = Rng.split (Engine.rng engine);
      partition = None;
      duplicate_pending = 0;
      jitter = None;
    }

  let set_loss_rate t rate = t.config <- { t.config with Bus.loss_rate = rate }

  let set_corruption_rate t rate =
    t.config <- { t.config with Bus.corruption_rate = rate }

  let set_partition t (group_a, group_b) = t.partition <- Some (group_a, group_b)
  let heal t = t.partition <- None

  let separated t a b =
    match t.partition with
    | None -> false
    | Some (ga, gb) ->
      (List.mem a ga && List.mem b gb) || (List.mem a gb && List.mem b ga)

  let duplicate_next ?(count = 1) t = t.duplicate_pending <- t.duplicate_pending + count

  let set_delay_jitter t ~min_us ~max_us =
    t.jitter <- (if max_us = 0 then None else Some (min_us, max_us))

  let transmission_time_us t ~payload_bytes =
    let bytes = payload_bytes + t.config.Bus.frame_overhead_bytes + 2 in
    let bits = bytes * 8 in
    (bits * 1_000_000 + t.config.Bus.bandwidth_bps - 1) / t.config.Bus.bandwidth_bps

  let attach t ~mid ~rx = Hashtbl.replace t.stations mid rx

  let corrupt t wire =
    let copy = Bytes.copy wire in
    let idx = Rng.int t.fault_rng (Bytes.length copy) in
    let byte = Char.code (Bytes.get copy idx) in
    Bytes.set copy idx (Char.chr (byte lxor (1 + Rng.int t.fault_rng 255)));
    copy

  let deliver t frame =
    let deliver_to mid rx =
      if mid <> frame.src && (frame.broadcast || frame.dst = mid) then begin
        if separated t frame.src mid then ()
        else if Rng.chance t.fault_rng t.config.Bus.loss_rate then ()
        else begin
          let frame =
            if Rng.chance t.fault_rng t.config.Bus.corruption_rate then
              { frame with wire = corrupt t frame.wire }
            else frame
          in
          rx frame
        end
      end
    in
    Hashtbl.fold (fun mid rx acc -> (mid, rx) :: acc) t.stations []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (mid, rx) -> deliver_to mid rx)

  let send t ~src ~broadcast ~dst payload =
    let wire = Soda_net.Crc16.append payload in
    let frame = { src; broadcast; dst; wire } in
    let now = Engine.now t.engine in
    let start = max now t.busy_until in
    let tx = transmission_time_us t ~payload_bytes:(Bytes.length payload) in
    t.busy_until <- start + tx;
    let jitter_us =
      match t.jitter with
      | None -> 0
      | Some (min_us, max_us) -> min_us + Rng.int t.fault_rng (max_us - min_us + 1)
    in
    let arrival = start + tx + t.config.Bus.propagation_us + jitter_us - now in
    ignore (Engine.schedule ~tag:"bus" t.engine ~delay:arrival (fun () -> deliver t frame));
    if t.duplicate_pending > 0 then begin
      t.duplicate_pending <- t.duplicate_pending - 1;
      let slack = 1 + Rng.int t.fault_rng (max 1 t.config.Bus.propagation_us * 4) in
      ignore
        (Engine.schedule ~tag:"bus" t.engine ~delay:(arrival + tx + slack) (fun () ->
             deliver t frame))
    end
end

(* A server that advertises [pattern] and accepts every arriving request in
   its handler, echoing [reply] back on GET/EXCHANGE. *)
let echo_server ?(reply = "") kernel pattern =
  Sodal.attach kernel
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env pattern);
      on_request =
        (fun env info ->
          let into = Bytes.create info.Sodal.put_size in
          let data = bytes_of_string reply in
          ignore (Sodal.accept_current_exchange env ~arg:0 ~into ~data));
    }
