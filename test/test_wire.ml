module Wire = Soda_proto.Wire
module Pattern = Soda_base.Pattern

let b = Bytes.of_string

let roundtrip pkt =
  match Wire.decode (Wire.encode pkt) with
  | Ok pkt' -> pkt'
  | Error e -> Alcotest.failf "decode failed: %s" e

let mk ?(src = 3) ?(reliable = false) ?(seq = 0) ?ack ?(run = false) body =
  { Wire.src; reliable; seq; ack; run; body }

let check_rt name pkt = Alcotest.(check bool) name true (roundtrip pkt = pkt)

let test_roundtrip_request () =
  check_rt "request with data"
    (mk ~reliable:true ~seq:1 ~ack:0
       (Wire.Request
          {
            tid = 0xAB_0000_1234;
            pattern = Pattern.well_known 0o346;
            arg = -42;
            put_size = 5;
            get_size = 100;
            data = b "hello";
            retry = false;
          }));
  check_rt "dataless retry"
    (mk ~reliable:true
       (Wire.Request
          {
            tid = 1;
            pattern = Pattern.kill_pattern;
            arg = 0;
            put_size = 5;
            get_size = 0;
            data = Bytes.empty;
            retry = true;
          }))

let test_roundtrip_accept () =
  check_rt "accept with data + piggy ack"
    (mk ~reliable:true ~seq:0 ~ack:1
       (Wire.Accept
          { tid = 77; arg = 3; put_transferred = 10; need_put_data = false; data = b "reply" }));
  check_rt "accept needing data"
    (mk ~reliable:true
       (Wire.Accept
          { tid = 78; arg = -1; put_transferred = 64; need_put_data = true; data = Bytes.empty }))

let test_roundtrip_controls () =
  check_rt "ack" (mk ~ack:1 Wire.Ack);
  check_rt "busy" (mk (Wire.Busy { tid = 9 }));
  check_rt "error unadvertised" (mk (Wire.Error { tid = 9; code = Wire.Err_unadvertised }));
  check_rt "error crashed" (mk (Wire.Error { tid = 9; code = Wire.Err_crashed }));
  check_rt "error cancelled" (mk (Wire.Error { tid = 9; code = Wire.Err_cancelled }));
  check_rt "cancel" (mk ~reliable:true ~seq:5 (Wire.Cancel_request { tid = 5 }));
  check_rt "cancel reply" (mk (Wire.Cancel_reply { tid = 5; ok = true }));
  check_rt "probe" (mk (Wire.Probe { tid = 123456789 }));
  check_rt "probe reply" (mk (Wire.Probe_reply { tid = 123456789; alive = false }));
  check_rt "put data" (mk ~reliable:true (Wire.Put_data { tid = 4; data = b "payload" }));
  check_rt "discover"
    (mk (Wire.Discover { tid = 2; pattern = Pattern.well_known 0x1234 }));
  check_rt "discover reply" (mk (Wire.Discover_reply { tid = 2 }))

let test_decode_garbage () =
  (match Wire.decode (b "") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty decoded");
  (match Wire.decode (b "\xFF\x00\x00\x00") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad kind decoded");
  let good = Wire.encode (mk (Wire.Busy { tid = 1 })) in
  let truncated = Bytes.sub good 0 (Bytes.length good - 1) in
  (match Wire.decode truncated with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated decoded");
  let padded = Bytes.cat good (b "!") in
  match Wire.decode padded with
  | Error e -> Alcotest.(check string) "trailing" "trailing bytes" e
  | Ok _ -> Alcotest.fail "padded decoded"

let test_wide_seq_roundtrip () =
  (* Every 8-bit seq/ack combination survives the codec. Sizes tier with
     the values: 0/1 with a 0/1 ack keeps the seed's alternating-bit
     layout (no extension byte), 4-bit values add the first extension
     byte (the window<=8 format, byte for byte), and anything wider adds
     the second. *)
  let baseline = Bytes.length (Wire.encode (mk ~reliable:true (Wire.Busy { tid = 9 }))) in
  for seq = 0 to 255 do
    for ack = -1 to 255 do
      let pkt =
        mk ~reliable:true ~seq
          ?ack:(if ack < 0 then None else Some ack)
          (Wire.Busy { tid = 9 })
      in
      check_rt (Printf.sprintf "seq=%d ack=%d" seq ack) pkt;
      let len = Bytes.length (Wire.encode pkt) in
      if seq < 2 && ack < 2 then
        Alcotest.(check int)
          (Printf.sprintf "window-1 layout unchanged (seq=%d ack=%d)" seq ack)
          baseline len
      else if seq < 16 && ack < 16 then begin
        Alcotest.(check int)
          (Printf.sprintf "one extension byte (seq=%d ack=%d)" seq ack)
          (baseline + 1) len;
        (* the window<=8 format is untouched: the extension byte never
           carries the second-extension marker for 4-bit values *)
        Alcotest.(check int)
          (Printf.sprintf "no ext2 marker (seq=%d ack=%d)" seq ack)
          0
          (Char.code (Bytes.get (Wire.encode pkt) 4) land 0x40)
      end
      else
        Alcotest.(check int)
          (Printf.sprintf "two extension bytes (seq=%d ack=%d)" seq ack)
          (baseline + 2) len
    done
  done;
  (* the run flag is a flag bit: it survives the codec and costs no bytes *)
  let run_pkt = mk ~reliable:true ~run:true (Wire.Busy { tid = 9 }) in
  check_rt "run flag" run_pkt;
  Alcotest.(check int) "run flag adds no bytes" baseline
    (Bytes.length (Wire.encode run_pkt))

let test_data_bytes () =
  let pkt =
    mk (Wire.Put_data { tid = 1; data = Bytes.create 321 })
  in
  Alcotest.(check int) "data bytes" 321 (Wire.data_bytes pkt);
  Alcotest.(check int) "control has none" 0 (Wire.data_bytes (mk Wire.Ack))

(* qcheck: arbitrary packets roundtrip *)

let gen_pattern =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Pattern.well_known (abs i land 0xFFFF)) int;
        return Pattern.kill_pattern;
        return (Pattern.boot_pattern 3);
      ])

let gen_body =
  QCheck.Gen.(
    let tid = map (fun i -> abs i land 0xFF_FFFF_FFFF) int in
    let data = map Bytes.of_string (string_size (0 -- 200)) in
    let arg = map (fun i -> (i land 0xFFFFFFFF) - 0x80000000) int in
    let size = 0 -- 4096 in
    oneof
      [
        (fun st ->
          let retry = bool st in
          Wire.Request
            {
              tid = tid st;
              pattern = gen_pattern st;
              arg = arg st;
              put_size = size st;
              get_size = size st;
              data = (if retry then Bytes.empty else data st);
              retry;
            });
        (fun st ->
          Wire.Accept
            {
              tid = tid st;
              arg = arg st;
              put_transferred = size st;
              need_put_data = bool st;
              data = data st;
            });
        map2 (fun t d -> Wire.Put_data { tid = t; data = d }) tid data;
        return Wire.Ack;
        map (fun t -> Wire.Busy { tid = t }) tid;
        map2
          (fun t c ->
            Wire.Error
              {
                tid = t;
                code =
                  (match c mod 3 with
                   | 0 -> Wire.Err_unadvertised
                   | 1 -> Wire.Err_crashed
                   | _ -> Wire.Err_cancelled);
              })
          tid int;
        map (fun t -> Wire.Cancel_request { tid = t }) tid;
        map2 (fun t ok -> Wire.Cancel_reply { tid = t; ok }) tid bool;
        map (fun t -> Wire.Probe { tid = t }) tid;
        map2 (fun t alive -> Wire.Probe_reply { tid = t; alive }) tid bool;
        (fun st -> Wire.Discover { tid = tid st; pattern = gen_pattern st });
        map (fun t -> Wire.Discover_reply { tid = t }) tid;
      ])

let gen_packet =
  QCheck.Gen.(
    fun st ->
      let body = gen_body st in
      {
        Wire.src = int_bound 0xFFFF st;
        reliable = bool st;
        seq = int_bound 255 st;
        ack = (if bool st then Some (int_bound 255 st) else None);
        run = bool st;
        body;
      })

let arb_packet = QCheck.make ~print:Wire.describe gen_packet

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire codec roundtrips arbitrary packets" ~count:500 arb_packet
    (fun pkt -> roundtrip pkt = pkt)

(* The three encoders are one codec: the zero-copy [encode_into] and the
   Buffer-based [encode_buffer] produce byte-identical frames of exactly
   [encoded_size], for the full 8-bit seq/ack range. *)
let prop_encoders_agree =
  QCheck.Test.make ~name:"encode_into / encode_buffer / encoded_size agree" ~count:500
    arb_packet
    (fun pkt ->
      let size = Wire.encoded_size pkt in
      let buf = Bytes.make (size + 8) '\xAA' in
      let written = Wire.encode_into pkt buf ~off:3 in
      written = size
      && Bytes.sub buf 3 written = Wire.encode_buffer pkt
      && Bytes.sub buf 3 written = Wire.encode pkt)

(* Fuzz: decoding arbitrary bytes never raises; it returns Ok or Error. *)
let prop_decode_never_crashes =
  QCheck.Test.make ~name:"wire decode is total on arbitrary bytes" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 128))
    (fun junk ->
      match Wire.decode (Bytes.of_string junk) with Ok _ | Error _ -> true)

(* Fuzz: single-byte mutations of valid packets either decode to some
   packet or fail cleanly -- never an exception. *)
let prop_mutation_never_crashes =
  QCheck.Test.make ~name:"wire decode survives mutated packets" ~count:500
    QCheck.(triple arb_packet small_int small_int)
    (fun (pkt, pos, flip) ->
      let wire = Wire.encode pkt in
      if Bytes.length wire = 0 then true
      else begin
        let pos = pos mod Bytes.length wire in
        Bytes.set wire pos
          (Char.chr (Char.code (Bytes.get wire pos) lxor (1 + (flip mod 255))));
        match Wire.decode wire with Ok _ | Error _ -> true
      end)

(* Fuzz seeded from the bus's own [corrupt] mutation: the encoded packet
   rides the simulated medium with corruption_rate = 1.0, so the damage is
   exactly what a hostile wire produces. A NIC would CRC-screen every
   single-byte flip, so the property taps the raw frame below the CRC
   check and decodes the damaged payload directly: decode must be total
   (Ok or Error, never an exception) even on bytes the screen would have
   caught. *)
let prop_bus_corruption_decode_total =
  QCheck.Test.make ~name:"wire decode is total under bus corruption" ~count:300
    QCheck.(pair arb_packet small_int)
    (fun (pkt, seed) ->
      let module Engine = Soda_sim.Engine in
      let module Bus = Soda_net.Bus in
      let module Frame = Soda_net.Frame in
      let engine = Engine.create ~seed:(1 + abs seed) () in
      let config = { Bus.default_config with corruption_rate = 1.0 } in
      let bus = Bus.create ~config engine in
      let decoded = ref false in
      Bus.attach bus ~mid:1 ~rx:(fun frame ->
          let wire = frame.Frame.wire in
          (* strip the 2-byte CRC trailer without verifying it *)
          let payload = Bytes.sub wire 0 (max 0 (Bytes.length wire - 2)) in
          (match Wire.decode payload with Ok _ | Error _ -> ());
          decoded := true);
      Bus.send bus ~src:0 ~dst:(Frame.To 1) (Wire.encode pkt);
      ignore (Engine.run engine);
      !decoded
      && Soda_sim.Stats.counter (Bus.stats bus) "bus.frames_corrupted" = 1)

let suites =
  [
    ( "proto.wire",
      [
        Alcotest.test_case "request roundtrip" `Quick test_roundtrip_request;
        Alcotest.test_case "accept roundtrip" `Quick test_roundtrip_accept;
        Alcotest.test_case "control roundtrips" `Quick test_roundtrip_controls;
        Alcotest.test_case "wide sequence numbers" `Quick test_wide_seq_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
        Alcotest.test_case "data accounting" `Quick test_data_bytes;
        QCheck_alcotest.to_alcotest prop_wire_roundtrip;
        QCheck_alcotest.to_alcotest prop_encoders_agree;
        QCheck_alcotest.to_alcotest prop_decode_never_crashes;
        QCheck_alcotest.to_alcotest prop_mutation_never_crashes;
        QCheck_alcotest.to_alcotest prop_bus_corruption_decode_total;
      ] );
  ]
