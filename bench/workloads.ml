(* Benchmark workloads reproducing the measurement setups of §5.5:
   streaming requester->server transactions with MAXREQUESTS outstanding,
   the server ACCEPTing either immediately in its handler or from a
   task-side queue. *)

module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Stats = Soda_sim.Stats
module Bus = Soda_net.Bus

type op = Signal | Put | Get | Exchange

let op_name = function Signal -> "SIGNAL" | Put -> "PUT" | Get -> "GET" | Exchange -> "EXCHANGE"

type accept_mode = In_handler | Task_queue

type result = {
  per_op_ms : float;  (** steady-state virtual time per completed op *)
  packets_per_op : float;
  retransmissions : int;
  busy_nacks : int;
  ops_measured : int;
  breakdown_ms : (Cost.category * float) list;
      (** per-op time attributed to each §5.5 category *)
  recorder : Soda_obs.Recorder.t;
      (** the run's event recorder; holds typed events when [trace] was set *)
  warm_window : int * int;  (** virtual-us interval of the measured steady state *)
}

let patt = Pattern.well_known 0o640

let server_spec ~mode ~words =
  let reply = Bytes.make (words * 2) 'R' in
  let accept_op env asker put_size =
    let into = Bytes.create (max put_size 1) in
    ignore (Sodal.accept_exchange env asker ~arg:0 ~into ~data:reply)
  in
  match mode with
  | In_handler ->
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request =
        (fun env info ->
          let into = Bytes.create (max info.Sodal.put_size 1) in
          ignore (Sodal.accept_current_exchange env ~arg:0 ~into ~data:reply));
    }
  | Task_queue ->
    let queue = Queue.create () in
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request = (fun _ info -> Queue.push (info.Sodal.asker, info.Sodal.put_size) queue);
      task =
        (fun env ->
          while true do
            if Queue.is_empty queue then Sodal.idle env
            else begin
              let asker, put_size = Queue.pop queue in
              (* the paper charges ~0.7 ms of queueing overhead per
                 transaction on the PDP-11 (§5.5) *)
              Sodal.compute env 700;
              accept_op env asker put_size
            end
          done);
    }

(* Run [n] transactions of [op] with [outstanding] requests in flight;
   measure the steady state between the [warmup]-th and last completion. *)
let stream ?(cost = Cost.default) ?(loss = 0.0) ?(seed = 271) ~op ~words
    ?(mode = In_handler) ?(n = 40) ?(warmup = 8) ?(outstanding = 3) ?(trace = false)
    ?fault_plan () =
  let net = Network.create ~seed ~cost ~trace () in
  if loss > 0.0 then Bus.set_loss_rate (Network.bus net) loss;
  let server_kernel = Network.add_node net ~mid:0 in
  let client_kernel = Network.add_node net ~mid:1 in
  ignore (Sodal.attach server_kernel (server_spec ~mode ~words));
  (* Scripted faults run against the server node (mid 0); on reboot the
     fresh incarnation gets the same server program re-attached. *)
  (match fault_plan with
   | None -> ()
   | Some plan ->
     let on_reboot ~mid kernel =
       if mid = 0 then ignore (Sodal.attach kernel (server_spec ~mode ~words))
     in
     Soda_fault.Injector.install ~on_reboot net plan);
  let stats = Kernel.stats client_kernel in
  let server_stats = Kernel.stats server_kernel in
  let bus_stats = Bus.stats (Network.bus net) in
  let completions = ref 0 in
  let t_warm = ref 0 and frames_warm = ref 0 in
  let warm_breakdown = ref [] in
  let t_end = ref 0 and frames_end = ref 0 in
  let end_breakdown = ref [] in
  let retrans_warm = ref 0 and busy_warm = ref 0 in
  let retrans_end = ref 0 and busy_end = ref 0 in
  let snapshot_breakdown () =
    List.map
      (fun c ->
        ( c,
          Stats.time_us stats (Cost.label c)
          + Stats.time_us server_stats (Cost.label c) ))
      Cost.all_categories
  in
  let data = Bytes.make (words * 2) 'D' in
  let put_data = match op with Put | Exchange -> data | Signal | Get -> Bytes.empty in
  let get_size = match op with Get | Exchange -> max (words * 2) 0 | Signal | Put -> 0 in
  let note_completion env =
    incr completions;
    if !completions = warmup then begin
      t_warm := Sodal.now env;
      frames_warm := Stats.counter bus_stats "bus.frames_sent";
      warm_breakdown := snapshot_breakdown ();
      retrans_warm :=
        Stats.counter stats "pkt.retransmissions" + Stats.counter server_stats "pkt.retransmissions";
      busy_warm := Stats.counter server_stats "req.busy_nacked"
    end;
    if !completions = n then begin
      t_end := Sodal.now env;
      frames_end := Stats.counter bus_stats "bus.frames_sent";
      end_breakdown := snapshot_breakdown ();
      retrans_end :=
        Stats.counter stats "pkt.retransmissions" + Stats.counter server_stats "pkt.retransmissions";
      busy_end := Stats.counter server_stats "req.busy_nacked"
    end
  in
  ignore
    (Sodal.attach client_kernel
       {
         Sodal.default_spec with
         on_completion = (fun env _ -> note_completion env);
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let issued = ref 0 in
             let gets = Array.init outstanding (fun _ -> Bytes.create (max get_size 1)) in
             while !completions < n do
               while !issued < n && !issued - !completions < outstanding do
                 let get_buffer =
                   if get_size = 0 then Bytes.empty else gets.(!issued mod outstanding)
                 in
                 (try
                    ignore (Sodal.exchange env sv ~arg:0 put_data ~into:get_buffer);
                    incr issued
                  with Sodal.Too_many_requests -> Sodal.compute env 1000)
               done;
               Sodal.idle env
             done;
             Sodal.serve env);
       });
  ignore (Network.run ~until:1_200_000_000 net);
  let measured = n - warmup in
  if !completions < n then
    failwith
      (Printf.sprintf "workload %s/%d words did not finish: %d/%d" (op_name op) words
         !completions n);
  let per_op_ms = float_of_int (!t_end - !t_warm) /. float_of_int measured /. 1000.0 in
  let packets_per_op = float_of_int (!frames_end - !frames_warm) /. float_of_int measured in
  let breakdown_ms =
    List.map2
      (fun (c, e) (_, w) -> (c, float_of_int (e - w) /. float_of_int measured /. 1000.0))
      !end_breakdown !warm_breakdown
  in
  {
    per_op_ms;
    packets_per_op;
    retransmissions = !retrans_end - !retrans_warm;
    busy_nacks = !busy_end - !busy_warm;
    ops_measured = measured;
    breakdown_ms;
    recorder = Network.recorder net;
    warm_window = (!t_warm, !t_end);
  }

(* Open-loop Zipf workload at scale (SCALE section): thin wrapper over
   Soda_core.Openloop — see lib/core/openloop.ml and docs/PERFORMANCE.md
   for the methodology (open vs closed loop, Zipf parameters, sizing). *)
let scale ?(profile_gc = true) ~nodes ~requests () =
  let cfg = Soda_core.Openloop.config ~nodes ~requests in
  Soda_core.Openloop.run { cfg with Soda_core.Openloop.profile_gc }

(* Blocking SIGNAL latency (B_SIGNAL of §4.1.1): strictly sequential. *)
let blocking_signal ?(cost = Cost.default) ?(seed = 277) ?(mode = In_handler) ?(n = 30)
    ?(warmup = 5) () =
  let net = Network.create ~seed ~cost () in
  let server_kernel = Network.add_node net ~mid:0 in
  let client_kernel = Network.add_node net ~mid:1 in
  ignore (Sodal.attach server_kernel (server_spec ~mode ~words:0));
  let t_warm = ref 0 and t_end = ref 0 in
  let done_ = ref 0 in
  ignore
    (Sodal.attach client_kernel
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for i = 1 to n do
               if i = warmup + 1 then t_warm := Sodal.now env;
               let c = Sodal.b_signal env sv ~arg:0 in
               if c.Sodal.status <> Sodal.Comp_ok then failwith "blocking signal failed";
               incr done_
             done;
             t_end := Sodal.now env;
             Sodal.serve env);
       });
  ignore (Network.run ~until:1_200_000_000 net);
  if !done_ < n then failwith "blocking workload did not finish";
  float_of_int (!t_end - !t_warm) /. float_of_int (n - warmup) /. 1000.0
