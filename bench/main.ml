(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (chapter 5), paper value vs measured, plus the ablations
   called out in DESIGN.md, and finally a small Bechamel wall-clock suite
   (one Test.make per reproduced table).

   Run: dune exec bench/main.exe            (all sections)
        dune exec bench/main.exe T1 A3      (selected sections) *)

module Cost = Soda_base.Cost_model
module W = Workloads
module P = Paper_tables

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---- T1: "SODA Performance" -------------------------------------------------- *)

let t1_variant ~label ~cost ~op ~paper_ms ~paper_packets =
  Printf.printf "\n  Milliseconds per %s (%s)  —  paper: %.0f packets per op\n"
    (W.op_name op) label paper_packets;
  Printf.printf "    %6s  %10s  %10s  %9s\n" "words" "paper ms" "ours ms" "pkts/op";
  List.iter2
    (fun words paper ->
      let r = W.stream ~cost ~op ~words () in
      Printf.printf "    %6d  %10.0f  %10.1f  %9.2f\n" words paper r.W.per_op_ms
        r.W.packets_per_op)
    P.word_sizes paper_ms

let t1 () =
  hr "T1. SODA Performance (paper table, §5.5)";
  let np = Cost.non_pipelined and p = Cost.default in
  t1_variant ~label:"non-pipelined" ~cost:np ~op:W.Put ~paper_ms:P.put_non_pipelined
    ~paper_packets:(P.packets_per_op (`Put, `Non_pipelined));
  t1_variant ~label:"pipelined" ~cost:p ~op:W.Put ~paper_ms:P.put_pipelined
    ~paper_packets:(P.packets_per_op (`Put, `Pipelined));
  t1_variant ~label:"non-pipelined" ~cost:np ~op:W.Get ~paper_ms:P.get_non_pipelined
    ~paper_packets:(P.packets_per_op (`Get, `Non_pipelined));
  t1_variant ~label:"pipelined" ~cost:p ~op:W.Get ~paper_ms:P.get_pipelined
    ~paper_packets:(P.packets_per_op (`Get, `Pipelined));
  t1_variant ~label:"non-pipelined" ~cost:np ~op:W.Exchange
    ~paper_ms:P.exchange_non_pipelined
    ~paper_packets:(P.packets_per_op (`Exchange, `Non_pipelined));
  t1_variant ~label:"pipelined" ~cost:p ~op:W.Exchange ~paper_ms:P.exchange_pipelined
    ~paper_packets:(P.packets_per_op (`Exchange, `Pipelined))

(* ---- T2: breakdown of communications overhead --------------------------------- *)

let t2 () =
  hr "T2. Breakdown of Communications Overhead (per SIGNAL, §5.5)";
  let r = W.stream ~op:W.Signal ~words:0 () in
  Printf.printf "  (steady-state SIGNAL stream, %d ops, %.2f packets per SIGNAL)\n\n"
    r.W.ops_measured r.W.packets_per_op;
  Printf.printf "    %-22s %10s %10s\n" "category" "paper ms" "ours ms";
  let total = ref 0.0 in
  List.iter
    (fun (category, ours) ->
      let label = Cost.label category in
      let paper = List.assoc label P.breakdown in
      total := !total +. ours;
      Printf.printf "    %-22s %10.1f %10.2f\n" label paper ours)
    r.W.breakdown_ms;
  Printf.printf "    %-22s %10.1f %10.2f\n" "total (accounted)" P.breakdown_total !total;
  Printf.printf "    %-22s %10s %10.2f\n" "elapsed per SIGNAL" "7.1" r.W.per_op_ms

(* ---- T2S: span-derived lifecycle breakdown --------------------------------------- *)

(* The same steady-state SIGNAL stream as T2, but the per-phase times come
   from request-lifecycle spans derived from the typed event stream rather
   than from accounting calls placed by hand in the protocol code. With
   MAXREQUESTS outstanding the phases of concurrent requests overlap, so
   the per-op phase total exceeds the wall-clock per-op elapsed time. *)
let t2s () =
  hr "T2S. Request-lifecycle span breakdown (steady-state SIGNAL stream)";
  let module Span = Soda_obs.Span in
  let module Recorder = Soda_obs.Recorder in
  let r = W.stream ~op:W.Signal ~words:0 ~trace:true () in
  let w0, w1 = r.W.warm_window in
  let spans =
    Span.of_events (Recorder.events r.W.recorder)
    |> List.filter (fun s ->
           s.Span.mid = 1 && s.Span.start_us >= w0
           && match s.Span.end_us with Some e -> e <= w1 | None -> false)
  in
  let ops = List.length spans in
  Printf.printf "  (%d spans inside the measured window, from %d typed events)\n\n" ops
    (Recorder.length r.W.recorder);
  Printf.printf "    %-18s %12s %9s\n" "phase" "ms per op" "share";
  let breakdown = Span.breakdown spans in
  let total_us = List.fold_left (fun acc (_, us) -> acc + us) 0 breakdown in
  List.iter
    (fun phase ->
      let us = try List.assoc phase breakdown with Not_found -> 0 in
      Printf.printf "    %-18s %12.2f %8.1f%%\n" (Span.phase_name phase)
        (float_of_int us /. float_of_int (max ops 1) /. 1000.0)
        (100.0 *. float_of_int us /. float_of_int (max total_us 1)))
    Span.all_phases;
  Printf.printf "    %-18s %12.2f\n" "span total"
    (float_of_int total_us /. float_of_int (max ops 1) /. 1000.0);
  Printf.printf
    "\n    wall-clock per SIGNAL: %.2f ms ours vs %.1f ms paper (phases of\n\
     \    concurrent requests overlap, so the span total exceeds it)\n"
    r.W.per_op_ms P.breakdown_total

(* ---- TRACE: Chrome trace_event exports of the T1 workloads ------------------------ *)

(* Bench artifacts (Chrome traces, ...) land in _bench_out/ instead of
   littering the working directory; the directory is gitignored. *)
let bench_out file =
  let dir = "_bench_out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir file

let trace_section () =
  hr "TRACE. Chrome trace_event exports (PUT / GET / EXCHANGE, 100 words)";
  List.iter
    (fun (slug, op) ->
      let r = W.stream ~op ~words:100 ~n:12 ~warmup:3 ~trace:true () in
      let file = bench_out (Printf.sprintf "soda_trace_%s.json" slug) in
      let oc = open_out file in
      Soda_obs.Export.output_chrome oc (Soda_obs.Recorder.events r.W.recorder);
      close_out oc;
      Printf.printf "    %-10s %6d events -> %s\n" (W.op_name op)
        (Soda_obs.Recorder.length r.W.recorder)
        file)
    [ ("put", W.Put); ("get", W.Get); ("exchange", W.Exchange) ];
  Printf.printf "    load the files in Perfetto or about://tracing; one lane per node\n"

(* ---- T3: comparison with *MOD -------------------------------------------------- *)

let measure_starmod () =
  let engine = Soda_sim.Engine.create ~seed:99 () in
  let bus = Soda_net.Bus.create engine in
  let a = Soda_baseline.Starmod.create_node ~engine ~bus ~mid:0 () in
  let b = Soda_baseline.Starmod.create_node ~engine ~bus ~mid:1 () in
  Soda_baseline.Starmod.define_port b ~port:1 (fun _ -> Some (Bytes.create 2));
  Soda_baseline.Starmod.define_port b ~port:2 (fun _ -> None);
  ignore a;
  (* synchronous port calls, sequential *)
  let n = 25 and warmup = 5 in
  let t_warm = ref 0 and t_end = ref 0 in
  let rec sync_loop i =
    if i > n then t_end := Soda_sim.Engine.now engine
    else begin
      if i = warmup + 1 then t_warm := Soda_sim.Engine.now engine;
      Soda_baseline.Starmod.sync_call a ~dst:1 ~port:1 (Bytes.create 2)
        ~on_reply:(fun _ -> sync_loop (i + 1))
    end
  in
  sync_loop 1;
  ignore (Soda_sim.Engine.run ~until:10_000_000_000 engine);
  let sync_ms = float_of_int (!t_end - !t_warm) /. float_of_int (n - warmup) /. 1000.0 in
  (* asynchronous sends, sequential completion chain *)
  let t_warm = ref 0 and t_end = ref 0 in
  let rec async_loop i =
    if i > n then t_end := Soda_sim.Engine.now engine
    else begin
      if i = warmup + 1 then t_warm := Soda_sim.Engine.now engine;
      Soda_baseline.Starmod.async_send a ~dst:1 ~port:2 (Bytes.create 2)
        ~on_done:(fun () -> async_loop (i + 1))
    end
  in
  async_loop 1;
  ignore (Soda_sim.Engine.run ~until:20_000_000_000 engine);
  let async_ms = float_of_int (!t_end - !t_warm) /. float_of_int (n - warmup) /. 1000.0 in
  (sync_ms, async_ms)

let t3 () =
  hr "T3. SODA vs *MOD port calls (§5.5 comparison)";
  let b_handler = W.blocking_signal () in
  let b_queued = W.blocking_signal ~mode:W.Task_queue () in
  let nb_handler = W.stream ~op:W.Signal ~words:0 () in
  let nb_queued = W.stream ~op:W.Signal ~words:0 ~mode:W.Task_queue () in
  let sync_ms, async_ms = measure_starmod () in
  Printf.printf "    %-44s %10s %10s\n" "primitive" "paper ms" "ours ms";
  let row name paper ours = Printf.printf "    %-44s %10.1f %10.2f\n" name paper ours in
  row "B_SIGNAL, ACCEPT in handler" P.b_signal_handler_accept b_handler;
  row "B_SIGNAL, ACCEPT from task queue" P.b_signal_task_queue b_queued;
  row "*MOD synchronous remote port call" P.starmod_sync_port_call sync_ms;
  row "SIGNAL (non-blocking stream)" P.signal_non_blocking nb_handler.W.per_op_ms;
  row "SIGNAL (non-blocking, task queue)" P.signal_non_blocking_queued nb_queued.W.per_op_ms;
  row "*MOD asynchronous port call" P.starmod_async_port_call async_ms;
  Printf.printf "\n    speedups (paper -> ours): sync %.1fx -> %.1fx, async %.1fx -> %.1fx\n"
    (P.starmod_sync_port_call /. P.b_signal_handler_accept)
    (sync_ms /. b_handler)
    (P.starmod_async_port_call /. P.signal_non_blocking)
    (async_ms /. nb_handler.W.per_op_ms)

(* ---- F1: delta-t situations ------------------------------------------------------ *)

let f1 () =
  hr "F1. Typical Delta-t Situations (paper figure, §5.2.2)";
  Deltat_scenarios.run ()

(* ---- Ablations --------------------------------------------------------------------- *)

let a1 () =
  hr "A1. Ablation: acknowledgement piggybacking (delayed-ACK grace window)";
  Printf.printf "    %-26s %12s %10s\n" "configuration" "pkts/SIGNAL" "ms/SIGNAL";
  List.iter
    (fun (label, grace) ->
      let cost = { Cost.default with Cost.ack_grace_us = grace } in
      let r = W.stream ~cost ~op:W.Signal ~words:0 () in
      Printf.printf "    %-26s %12.2f %10.2f\n" label r.W.packets_per_op r.W.per_op_ms)
    [ ("no piggybacking (grace=0)", 0); ("default grace (2 ms)", 2000) ]

let a2 () =
  hr "A2. Ablation: MAXREQUESTS (paper: >1 all equal; =1 degrades to blocking)";
  Printf.printf "    %-14s %12s %12s\n" "MAXREQUESTS" "ms/SIGNAL" "pkts/SIGNAL";
  List.iter
    (fun m ->
      let cost = { Cost.default with Cost.maxrequests = m } in
      let r = W.stream ~cost ~op:W.Signal ~words:0 ~outstanding:m () in
      Printf.printf "    %-14d %12.2f %12.2f\n" m r.W.per_op_ms r.W.packets_per_op)
    [ 1; 2; 3; 4 ]

let a3 () =
  hr "A3. Ablation: packet-loss sweep (Delta-t reliability under fault injection)";
  Printf.printf "    %-10s %12s %14s %16s\n" "loss" "ms/PUT" "pkts/PUT" "retransmissions";
  List.iter
    (fun loss ->
      let r = W.stream ~op:W.Put ~words:100 ~loss ~n:60 ~warmup:10 () in
      Printf.printf "    %8.0f%% %12.2f %14.2f %16d\n" (loss *. 100.0) r.W.per_op_ms
        r.W.packets_per_op r.W.retransmissions)
    [ 0.0; 0.02; 0.05; 0.10 ]

let a4 () =
  hr "A4. Ablation: BUSY-retry backoff policy (§5.2.2 adaptive slowdown)";
  Printf.printf
    "    (EXCHANGE stream, 1000 words, non-pipelined: the handler stays busy\n\
     \     for a long data turnaround, so the retry policy matters)\n";
  Printf.printf "    %-24s %12s %14s %8s\n" "policy" "ms/EXCHANGE" "pkts/EXCHANGE" "busy";
  List.iter
    (fun (label, backoff) ->
      let cost = { Cost.non_pipelined with Cost.busy_retry_backoff = backoff } in
      let r = W.stream ~cost ~op:W.Exchange ~words:1000 () in
      Printf.printf "    %-24s %12.2f %14.2f %8d\n" label r.W.per_op_ms r.W.packets_per_op
        r.W.busy_nacks)
    [ ("fixed interval (x1.0)", 1.0); ("adaptive (x1.25)", 1.25); ("aggressive (x2.0)", 2.0) ]

let a5 () =
  hr "A5. Ablation: pattern table (ideal associative vs 256-slot of §5.4)";
  List.iter
    (fun (label, assoc) ->
      let cost = { Cost.default with Cost.associative_patterns = assoc } in
      let r = W.stream ~cost ~op:W.Signal ~words:0 () in
      Printf.printf "    %-26s %10.2f ms/SIGNAL (semantic difference only)\n" label
        r.W.per_op_ms)
    [ ("associative (§3.4)", true); ("256-slot overwrite (§5.4)", false) ]

let a6 () =
  hr "A6. Ablation: client-level multipacket streaming (§6.17.4 chunk size)";
  Printf.printf
    "    (20 KB block over Stream.send; raw 1 Mbit/s line rate is 125 KB/s)\n";
  Printf.printf "    %-12s %10s %14s\n" "chunk bytes" "total ms" "goodput KB/s";
  List.iter
    (fun chunk ->
      let module Pattern = Soda_base.Pattern in
      let module Network = Soda_core.Network in
      let module Sodal = Soda_runtime.Sodal in
      let module Stream = Soda_facilities.Stream in
      let patt = Pattern.well_known 0o644 in
      let net = Network.create ~seed:31 () in
      let k0 = Network.add_node net ~mid:0 in
      let k1 = Network.add_node net ~mid:1 in
      ignore (Sodal.attach k0 (Stream.sink ~pattern:patt ~on_block:(fun _ ~src:_ _ -> ()) ()));
      let elapsed = ref 0 in
      ignore
        (Sodal.attach k1
           {
             Sodal.default_spec with
             task =
               (fun env ->
                 let t0 = Sodal.now env in
                 (match
                    Stream.send env (Sodal.server ~mid:0 ~pattern:patt) ~chunk_bytes:chunk
                      (Bytes.create 20_480)
                  with
                  | Ok () -> elapsed := Sodal.now env - t0
                  | Error _ -> failwith "stream failed");
                 Sodal.serve env);
           });
      ignore (Network.run ~until:600_000_000 net);
      let ms = float_of_int !elapsed /. 1000.0 in
      Printf.printf "    %-12d %10.1f %14.1f\n" chunk ms (20_480.0 /. 1024.0 /. (ms /. 1000.0)))
    [ 256; 512; 1024; 2048; 4096 ]

(* ---- WINDOW: sliding-window sweep + regression gate --------------------------------- *)

(* Sweep the transport window W over the chunked STREAM workload and the
   steady-state SIGNAL stream, write the machine-readable BENCH_pr5.json,
   and enforce the two PR-5 regression gates:
     - the W=1 SIGNAL figure must not regress the seed's T2S wall-clock
       per SIGNAL (the window machinery must leave stop-and-wait alone);
     - W=8 stream goodput at zero loss must be >= 2x the W=1 figure
       (the window must actually pipeline the wire).
   CI runs this section on every push (see .github/workflows/ci.yml); a
   violated gate exits nonzero. *)

(* Seed figure: T2S "wall-clock per SIGNAL" of the stop-and-wait repo,
   measured in deterministic virtual time, so any drift is a real
   protocol change, not noise. The 5% headroom forgives accounting-level
   reshuffles (an extra stat sample shifting a context switch) without
   letting a serialisation bug through. *)
let seed_t2s_ms = 5.80
let t2s_tolerance = 1.05

let window_cost w =
  if w = 1 then Cost.default (* the exact seed configuration *)
  else { Cost.default with Cost.window = w; maxrequests = w + 1 }

(* 8 KB over Stream.send in 100-byte chunks: each chunk is a full
   REQUEST/ACCEPT transaction, so per-transaction latency dominates the
   line rate and the window has room to pipeline. *)
let window_stream_goodput ~window =
  let module Pattern = Soda_base.Pattern in
  let module Network = Soda_core.Network in
  let module Sodal = Soda_runtime.Sodal in
  let module Stream = Soda_facilities.Stream in
  let patt = Pattern.well_known 0o644 in
  let block = 8_192 and chunk = 100 in
  let net = Network.create ~seed:37 ~cost:(window_cost window) () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0 (Stream.sink ~pattern:patt ~on_block:(fun _ ~src:_ _ -> ()) ()));
  let elapsed = ref 0 in
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let t0 = Sodal.now env in
             (match
                Stream.send env (Sodal.server ~mid:0 ~pattern:patt) ~chunk_bytes:chunk
                  (Bytes.create block)
              with
              | Ok () -> elapsed := Sodal.now env - t0
              | Error _ -> failwith "window stream failed");
             Sodal.serve env);
       });
  ignore (Network.run ~until:600_000_000 net);
  let ms = float_of_int !elapsed /. 1000.0 in
  (ms, float_of_int block /. 1024.0 /. (ms /. 1000.0))

let window_section () =
  hr "WINDOW. Sliding-window sweep (W in {1,2,4,8}): STREAM goodput + SIGNAL stream";
  Printf.printf "    %-8s %12s %14s %14s %12s\n" "window" "stream ms" "goodput KB/s"
    "ms/SIGNAL" "pkts/SIGNAL";
  let rows =
    List.map
      (fun w ->
        let stream_ms, goodput = window_stream_goodput ~window:w in
        let r =
          W.stream ~cost:(window_cost w) ~op:W.Signal ~words:0
            ~outstanding:(max 3 (w + 1)) ()
        in
        Printf.printf "    %-8d %12.1f %14.1f %14.2f %12.2f\n" w stream_ms goodput
          r.W.per_op_ms r.W.packets_per_op;
        (w, stream_ms, goodput, r.W.per_op_ms, r.W.packets_per_op))
      [ 1; 2; 4; 8 ]
  in
  let find w = List.find (fun (w', _, _, _, _) -> w' = w) rows in
  let _, _, goodput1, signal1, _ = find 1 in
  let _, _, goodput8, _, _ = find 8 in
  (* machine-readable record of the sweep + the gate verdicts *)
  let w1_ok = signal1 <= seed_t2s_ms *. t2s_tolerance in
  let w8_ok = goodput8 >= 2.0 *. goodput1 in
  let oc = open_out "BENCH_pr5.json" in
  Printf.fprintf oc "{\n  \"seed_t2s_ms\": %.2f,\n  \"window_sweep\": [\n" seed_t2s_ms;
  List.iteri
    (fun i (w, stream_ms, goodput, signal_ms, pkts) ->
      Printf.fprintf oc
        "    { \"window\": %d, \"stream_ms\": %.1f, \"stream_goodput_kbs\": %.1f, \
         \"signal_ms_per_op\": %.2f, \"packets_per_signal\": %.2f }%s\n"
        w stream_ms goodput signal_ms pkts
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n  \"gates\": { \"w1_t2s_no_regression\": %b, \"w8_stream_2x\": %b }\n}\n"
    w1_ok w8_ok;
  close_out oc;
  Printf.printf "\n    wrote BENCH_pr5.json\n";
  if not w1_ok then
    Printf.printf
      "    GATE FAILED: W=1 SIGNAL %.2f ms/op exceeds seed T2S %.2f ms (+%.0f%% cap)\n"
      signal1 seed_t2s_ms ((t2s_tolerance -. 1.0) *. 100.0);
  if not w8_ok then
    Printf.printf "    GATE FAILED: W=8 goodput %.1f KB/s < 2x W=1 goodput %.1f KB/s\n"
      goodput8 goodput1;
  if not (w1_ok && w8_ok) then exit 1;
  Printf.printf "    gates OK: W=1 matches the stop-and-wait seed; W=8 >= 2x stream goodput\n"

(* ---- INCAST: many-to-one convergence, static vs adaptive RTO ------------------------ *)

(* M clients pour pipelined SIGNALs onto one server at once. The bus
   serialises the burst, so every packet's RTT inflates roughly M-fold
   past the quiet-wire figure; a sender on the static retransmission
   schedule reads the queueing delay as loss and storms the medium with
   spurious retransmissions, which inflate the queue further. The
   adaptive configuration (AIMD congestion window + Jacobson RTO floor,
   PR 10) must absorb the queueing instead.

   Both configurations carry the identical offered load (8 pipelined
   SIGNALs per client); only the transport differs:
     - static:   W=8, aimd off — PR-5 behaviour, fixed schedule;
     - adaptive: W=64, aimd on — 8-bit sequence space, cwnd + RTT floor.
   Gates (CI fails the push if either breaks):
     - adaptive goodput at 16 clients >= 2x the static figure;
     - adaptive retransmit ratio at 16 clients <= 15%.
   The ratio counts timer-expiry retransmissions only
   ("pkt.retransmissions.timer"): BUSY re-emissions are the handler's
   flow-control mechanism (unchanged since the seed) and say nothing
   about congestion, so mixing them in would mask what AIMD and the
   adaptive RTO actually control. *)

let incast_cost = function
  | `Static -> { Cost.default with Cost.window = 8; maxrequests = 9; aimd = false }
  | `Adaptive -> { Cost.default with Cost.window = 64; maxrequests = 65; aimd = true }

let incast_run ~clients ~ops mode =
  let module Pattern = Soda_base.Pattern in
  let module Network = Soda_core.Network in
  let module Kernel = Soda_core.Kernel in
  let module Sodal = Soda_runtime.Sodal in
  let module Stats = Soda_sim.Stats in
  let patt = Pattern.well_known 0o655 in
  let net = Network.create ~seed:73 ~cost:(incast_cost mode) () in
  let server = Network.add_node net ~mid:0 in
  ignore
    (Sodal.attach server
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let total = clients * ops in
  let done_count = ref 0 and finished_at = ref 0 in
  let kernels = ref [ server ] in
  for c = 1 to clients do
    let k = Network.add_node net ~mid:c in
    kernels := k :: !kernels;
    ignore
      (Sodal.attach k
         {
           Sodal.default_spec with
           task =
             (fun env ->
               let sv = Sodal.server ~mid:0 ~pattern:patt in
               let pending = ref 0 in
               for _ = 1 to ops do
                 while !pending >= 8 do
                   Sodal.idle env
                 done;
                 let tid = Sodal.signal env sv ~arg:0 in
                 incr pending;
                 Sodal.on_completion_of env tid (fun _ ->
                     decr pending;
                     incr done_count;
                     if !done_count = total then finished_at := Sodal.now env)
               done;
               while !pending > 0 do
                 Sodal.idle env
               done;
               Sodal.serve env);
         })
  done;
  ignore (Network.run ~until:600_000_000 net);
  if !done_count < total then failwith "incast run did not complete";
  let sum key =
    List.fold_left (fun n k -> n + Stats.counter (Kernel.stats k) key) 0 !kernels
  in
  let elapsed_s = float_of_int !finished_at /. 1e6 in
  let goodput = float_of_int total /. elapsed_s in
  let retrans_ratio =
    float_of_int (sum "pkt.retransmissions.timer")
    /. float_of_int (max 1 (sum "pkt.sent.total"))
  in
  (goodput, retrans_ratio)

let incast_section () =
  hr "INCAST. Many-to-one SIGNAL burst: static (W=8) vs adaptive (W=64 + AIMD)";
  Printf.printf "    %-8s %18s %18s %14s %14s\n" "clients" "static ops/s"
    "adaptive ops/s" "static rtx" "adaptive rtx";
  let rows =
    List.map
      (fun clients ->
        let ops = 32 in
        let sg, sr = incast_run ~clients ~ops `Static in
        let ag, ar = incast_run ~clients ~ops `Adaptive in
        Printf.printf "    %-8d %18.1f %18.1f %13.1f%% %13.1f%%\n" clients sg ag
          (100.0 *. sr) (100.0 *. ar);
        (clients, sg, sr, ag, ar))
      [ 8; 16; 64 ]
  in
  let _, static16, _, adaptive16, adaptive16_rtx =
    List.find (fun (c, _, _, _, _) -> c = 16) rows
  in
  let goodput_ok = adaptive16 >= 2.0 *. static16 in
  let rtx_ok = adaptive16_rtx <= 0.15 in
  let oc = open_out "BENCH_pr10.json" in
  Printf.fprintf oc "{\n  \"ops_per_client\": 32,\n  \"incast\": [\n";
  List.iteri
    (fun i (clients, sg, sr, ag, ar) ->
      Printf.fprintf oc
        "    { \"clients\": %d, \"static_goodput_ops\": %.1f, \
         \"static_retrans_ratio\": %.4f, \"adaptive_goodput_ops\": %.1f, \
         \"adaptive_retrans_ratio\": %.4f }%s\n"
        clients sg sr ag ar
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n  \"gates\": { \"adaptive16_goodput_2x\": %b, \
     \"adaptive16_retrans_le_15pct\": %b }\n}\n"
    goodput_ok rtx_ok;
  close_out oc;
  Printf.printf "\n    wrote BENCH_pr10.json\n";
  if not goodput_ok then
    Printf.printf
      "    GATE FAILED: adaptive 16-client goodput %.1f ops/s < 2x static %.1f ops/s\n"
      adaptive16 static16;
  if not rtx_ok then
    Printf.printf "    GATE FAILED: adaptive 16-client retransmit ratio %.1f%% > 15%%\n"
      (100.0 *. adaptive16_rtx);
  if not (goodput_ok && rtx_ok) then exit 1;
  Printf.printf
    "    gates OK: adaptive >= 2x static goodput at 16 clients; retransmit ratio <= 15%%\n"

(* ---- STORE: quorum-replicated KV store --------------------------------------------- *)

(* Read/write latency percentiles and quorum-round traffic of lib/store
   under its deterministic workload harness, for n in {3, 5} replicas:
   healthy medium, 2% frame loss, and one replica down for the whole
   run. Packet counts isolate the workload by subtracting an ops=0
   baseline run of the identical topology and schedule. *)
let store_section () =
  hr "STORE. Quorum-replicated KV store (lib/store): latency and quorum traffic";
  let module Harness = Soda_store.Harness in
  let module Metrics = Soda_obs.Metrics in
  let module Recorder = Soda_obs.Recorder in
  let module Network = Soda_core.Network in
  let module Stats = Soda_sim.Stats in
  let module FP = Soda_fault.Fault_plan in
  let frames net = Stats.counter (Soda_net.Bus.stats (Network.bus net)) "bus.frames_sent" in
  let clients = 2 and ops = 30 in
  List.iter
    (fun n ->
      Printf.printf
        "\n  n=%d replicas (quorum %d), %d clients x %d ops, think<=30 ms\n" n
        ((n / 2) + 1) clients ops;
      Printf.printf "    %-18s %6s  %-17s %-17s %8s %9s %8s\n" "configuration" "ok"
        "read p50/p95/p99" "write p50/p95/p99" "pkts/op" "rounds/op" "retries";
      List.iter
        (fun (label, loss, plan) ->
          let run ops =
            Harness.run ~n ~clients ~ops ~keys:4 ~seed:77 ~loss ~think_us:30_000 ?plan ()
          in
          let base = run 0 in
          let r = run ops in
          let m = Recorder.metrics (Network.recorder r.Harness.net) in
          let total = List.length r.Harness.history in
          let ok =
            List.length
              (List.filter (fun (o : Harness.op) -> o.outcome <> `No_quorum)
                 r.Harness.history)
          in
          let pct name =
            match Metrics.histogram m name with
            | Some h ->
              Printf.sprintf "%.1f/%.1f/%.1f"
                (float_of_int (Metrics.Histogram.percentile h 50.0) /. 1000.0)
                (float_of_int (Metrics.Histogram.percentile h 95.0) /. 1000.0)
                (float_of_int (Metrics.Histogram.percentile h 99.0) /. 1000.0)
            | None -> "-"
          in
          let per_op c = float_of_int c /. float_of_int (max total 1) in
          Printf.printf "    %-18s %3d/%2d  %-17s %-17s %8.1f %9.2f %8d\n" label ok total
            (pct "store.read.us") (pct "store.write.us")
            (per_op (frames r.Harness.net - frames base.Harness.net))
            (per_op (Metrics.counter m "store.rounds"))
            (Metrics.counter m "store.retries"))
        [
          ("healthy", 0.0, None);
          ("2% loss", 0.02, None);
          ("one replica down", 0.0, Some [ { FP.at_us = 0; action = FP.Crash (n - 1) } ]);
        ])
    [ 3; 5 ]

(* ---- SCD: set-constrained delivery broadcast --------------------------------------- *)

(* Message complexity and operation throughput of the lib/scd SCD-broadcast
   subsystem (docs/BROADCAST.md) for n in {8, 64} members: open-loop
   clients drive the snapshot object and counter, and the per-broadcast
   frame count is compared against the algorithm's analytic O(n^2) cost —
   every member echoes each application message once to each of its n-1
   peers, so a healthy run spends exactly n(n-1) FORWARD frames per
   scd-broadcast. Writes a machine-readable BENCH_pr8.json.

   Regression gate (CI runs this section on every push): at n=64 the
   measured frames-per-broadcast must stay within 1.2x of n(n-1). A
   violated gate exits nonzero — it means the echo path duplicates or
   leaks frames (retries are metered separately and healthy runs have
   none). The safety checkers also run on every row; a violation fails
   the section outright. *)

let scd_row ~n ~clients ~ops ~mean_interarrival_us =
  let module Harness = Soda_scd.Harness in
  let module Metrics = Soda_obs.Metrics in
  let module Recorder = Soda_obs.Recorder in
  let module Network = Soda_core.Network in
  let r = Harness.run ~n ~clients ~ops ~regs:4 ~seed:88 ~mean_interarrival_us () in
  (match Harness.check_delivery r with
   | Ok () -> ()
   | Error m -> Printf.printf "    SCD SAFETY VIOLATION (n=%d): %s\n" n m; exit 1);
  (match Harness.check_objects r with
   | Ok () -> ()
   | Error m -> Printf.printf "    SCD SAFETY VIOLATION (n=%d): %s\n" n m; exit 1);
  let m = Recorder.metrics (Network.recorder r.Harness.net) in
  let forwards = Metrics.counter m "scd.forwards" in
  let broadcasts = Metrics.counter m "scd.broadcasts" in
  let completed = List.length r.Harness.history in
  let frames_per_bcast =
    float_of_int forwards /. float_of_int (max broadcasts 1)
  in
  let frames_per_op = float_of_int forwards /. float_of_int (max completed 1) in
  let span_us =
    List.fold_left
      (fun (lo, hi) (o : Harness.op) -> (min lo o.start_us, max hi o.end_us))
      (max_int, 0) r.Harness.history
    |> fun (lo, hi) -> max 1 (hi - lo)
  in
  let ops_per_sec = float_of_int completed /. (float_of_int span_us /. 1e6) in
  let lat_sum, lat_n =
    List.fold_left
      (fun (s, k) (o : Harness.op) ->
        match o.outcome with
        | Harness.Failed -> (s, k)
        | _ -> (s + (o.end_us - o.start_us), k + 1))
      (0, 0) r.Harness.history
  in
  let lat_ms = float_of_int lat_sum /. float_of_int (max lat_n 1) /. 1000.0 in
  if lat_n < completed then begin
    Printf.printf "    SCD LIVENESS VIOLATION (n=%d): %d/%d client ops failed\n" n
      (completed - lat_n) completed;
    exit 1
  end;
  (n, completed, broadcasts, forwards, frames_per_bcast, frames_per_op, ops_per_sec, lat_ms)

let scd_section () =
  hr "SCD. Set-constrained delivery broadcast (lib/scd): O(n^2) message cost";
  let bound n = n * (n - 1) in
  let tolerance = 1.2 in
  Printf.printf
    "    (open-loop clients on the snapshot object + counter; analytic cost\n\
    \     is n(n-1) FORWARD frames per scd-broadcast)\n\n";
  Printf.printf "    %-6s %6s %7s %9s %11s %9s %9s %9s %8s\n" "n" "ops" "bcasts"
    "frames" "frames/bc" "bound" "frames/op" "ops/sec" "lat ms";
  let rows =
    List.map
      (fun (n, clients, ops, mean) ->
        let _, completed, broadcasts, forwards, fpb, fpo, ops_s, lat_ms =
          scd_row ~n ~clients ~ops ~mean_interarrival_us:mean
        in
        Printf.printf "    %-6d %6d %7d %9d %11.1f %9d %9.0f %9.1f %8.1f\n" n completed
          broadcasts forwards fpb (bound n) fpo ops_s lat_ms;
        (n, completed, broadcasts, forwards, fpb, fpo, ops_s, lat_ms))
      [ (8, 3, 8, 120_000); (64, 2, 5, 2_000_000) ]
  in
  let find n =
    List.find (fun (n', _, _, _, _, _, _, _) -> n' = n) rows
  in
  let _, _, _, _, fpb64, _, _, _ = find 64 in
  let gate_ok = fpb64 <= tolerance *. float_of_int (bound 64) in
  let oc = open_out "BENCH_pr8.json" in
  Printf.fprintf oc "{\n  \"analytic_frames_per_broadcast\": \"n*(n-1)\",\n";
  Printf.fprintf oc "  \"tolerance\": %.2f,\n  \"scd\": [\n" tolerance;
  List.iteri
    (fun i (n, completed, broadcasts, forwards, fpb, fpo, ops_s, lat_ms) ->
      Printf.fprintf oc
        "    { \"n\": %d, \"client_ops\": %d, \"broadcasts\": %d, \"forwards\": %d, \
         \"frames_per_broadcast\": %.1f, \"bound\": %d, \"frames_per_op\": %.0f, \
         \"ops_per_sec\": %.1f, \"mean_latency_ms\": %.1f }%s\n"
        n completed broadcasts forwards fpb (bound n) fpo ops_s lat_ms
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ],\n  \"gates\": { \"n64_quadratic_cost\": %b }\n}\n" gate_ok;
  close_out oc;
  Printf.printf "\n    wrote BENCH_pr8.json\n";
  if not gate_ok then begin
    Printf.printf
      "    GATE FAILED: n=64 frames/broadcast %.1f exceeds %.1fx analytic bound %d\n"
      fpb64 tolerance (bound 64);
    exit 1
  end;
  Printf.printf "    gate OK: n=64 frames/broadcast %.1f within %.1fx of n(n-1)=%d\n"
    fpb64 tolerance (bound 64)

(* ---- PROFILE: engine hot-path profiling --------------------------------------------- *)

(* N-node SIGNAL ring: every node advertises the well-known pattern and
   fires [ops] blocking SIGNALs at its successor while serving its own
   predecessor, so all N streams run concurrently and the engine's event
   rate and heap depth scale with N. Reports the engine's always-on
   profiling counters (wall-clock events/sec, heap high-water, callbacks
   by source tag) plus the opt-in GC allocation deltas, and writes the
   machine-readable BENCH_pr6.json. *)

let profile_ring ~nodes ~ops =
  let module Pattern = Soda_base.Pattern in
  let module Network = Soda_core.Network in
  let module Sodal = Soda_runtime.Sodal in
  let module Engine = Soda_sim.Engine in
  let patt = Pattern.well_known 0o640 in
  let net = Network.create ~seed:53 () in
  let engine = Network.engine net in
  Engine.set_profile_gc engine true;
  let finished = ref 0 in
  let spec ~next =
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env patt);
      on_request = (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
      task =
        (fun env ->
          (* let the whole ring advertise before the first SIGNAL *)
          Sodal.compute env 20_000;
          let sv = Sodal.server ~mid:next ~pattern:patt in
          for _ = 1 to ops do
            let c = Sodal.b_signal env sv ~arg:0 in
            if c.Sodal.status <> Sodal.Comp_ok then failwith "profile ring SIGNAL failed"
          done;
          incr finished;
          Sodal.serve env);
    }
  in
  let kernels = List.init nodes (fun mid -> Network.add_node net ~mid) in
  List.iteri
    (fun mid kernel -> ignore (Sodal.attach kernel (spec ~next:((mid + 1) mod nodes))))
    kernels;
  let virtual_us = Network.run ~until:3_600_000_000 net in
  if !finished < nodes then
    failwith (Printf.sprintf "profile ring n=%d: %d/%d nodes finished" nodes !finished nodes);
  (engine, virtual_us)

let profile_section () =
  hr "PROFILE. Engine hot-path profiling (N-node SIGNAL ring)";
  let module Engine = Soda_sim.Engine in
  let ops = 40 in
  let rows =
    List.map
      (fun nodes ->
        let engine, virtual_us = profile_ring ~nodes ~ops in
        (nodes, engine, virtual_us))
      [ 8; 64 ]
  in
  Printf.printf "    %-6s %10s %12s %12s %10s %14s\n" "nodes" "fired" "wall ms"
    "events/sec" "heap hw" "minor words";
  List.iter
    (fun (nodes, engine, _) ->
      let c = Engine.counters engine in
      let minor, _, _ = Engine.gc_words engine in
      Printf.printf "    %-6d %10d %12.1f %12.0f %10d %14.0f\n" nodes c.Engine.fired
        (Engine.wall_seconds engine *. 1e3)
        (Engine.events_per_sec engine)
        (Engine.heap_highwater engine) minor)
    rows;
  Printf.printf "\n    callbacks by source tag:\n";
  List.iter
    (fun (nodes, engine, _) ->
      Printf.printf "    n=%-4d %s\n" nodes
        (String.concat "  "
           (List.map
              (fun (tag, count) -> Printf.sprintf "%s=%d" tag count)
              (Engine.tag_counts engine))))
    rows;
  (* machine-readable record, uploaded by CI next to BENCH_pr5.json *)
  let oc = open_out "BENCH_pr6.json" in
  Printf.fprintf oc "{\n  \"signal_ring_ops_per_node\": %d,\n  \"profile\": [\n" ops;
  List.iteri
    (fun i (nodes, engine, virtual_us) ->
      let c = Engine.counters engine in
      let minor, promoted, major = Engine.gc_words engine in
      Printf.fprintf oc
        "    { \"nodes\": %d, \"fired\": %d, \"virtual_us\": %d, \"wall_us\": %d, \
         \"events_per_sec\": %.0f, \"heap_highwater\": %d, \"gc_minor_words\": %.0f, \
         \"gc_promoted_words\": %.0f, \"gc_major_words\": %.0f, \"tags\": { %s } }%s\n"
        nodes c.Engine.fired virtual_us
        (int_of_float (Engine.wall_seconds engine *. 1e6))
        (Engine.events_per_sec engine)
        (Engine.heap_highwater engine) minor promoted major
        (String.concat ", "
           (List.map
              (fun (tag, count) -> Printf.sprintf "\"%s\": %d" tag count)
              (Engine.tag_counts engine)))
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\n    wrote BENCH_pr6.json\n";
  let ok =
    List.for_all (fun (_, engine, _) -> Engine.events_per_sec engine > 0.0) rows
  in
  if not ok then begin
    Printf.printf "    GATE FAILED: events/sec not measured (wall clock did not advance)\n";
    exit 1
  end

(* ---- SCALE: open-loop Zipf workload at thousands of nodes --------------------------- *)

(* Sustain N nodes under the open-loop generator (lib/core/openloop.ml)
   and report simulator throughput: wall-clock events/sec, simulated
   requests per simulated second, and GC words per event. The request
   count scales with N so big runs stay long enough to measure
   (N=4096 -> 1,048,576 root requests). Node counts come from
   SODA_SCALE_NODES (comma-separated; default "8,64" for CI — the
   512/4096 points run in the nightly). Results land in BENCH_pr7.json.

   Regression gates: events/sec must be measurable at every N, and when
   both 8 and 64 run, N=64 throughput must hold >= 65% of N=8 (the seed's
   list-based bus decayed super-linearly with station count; this pins
   the array/pool rework). *)

let scale_requests nodes = max 16384 (nodes * 256)

let scale_nodes () =
  match Sys.getenv_opt "SODA_SCALE_NODES" with
  | None | Some "" -> [ 8; 64 ]
  | Some spec ->
    List.map
      (fun field ->
        match int_of_string_opt (String.trim field) with
        | Some n when n >= 2 -> n
        | _ ->
          Printf.eprintf "bench: SODA_SCALE_NODES: bad node count %S\n" field;
          exit 2)
      (String.split_on_char ',' spec)

let scale_section () =
  hr "SCALE. Open-loop Zipf workload at N nodes (see docs/PERFORMANCE.md)";
  let module Engine = Soda_sim.Engine in
  let module Network = Soda_core.Network in
  let module O = Soda_core.Openloop in
  let module Pool = Soda_net.Pool in
  let module Bus = Soda_net.Bus in
  let nodes_list = scale_nodes () in
  let rows =
    List.map
      (fun nodes ->
        let requests = scale_requests nodes in
        let r = W.scale ~nodes ~requests () in
        if r.O.offered < requests then
          failwith
            (Printf.sprintf "scale n=%d: offered only %d/%d arrivals before the horizon"
               nodes r.O.offered requests);
        (nodes, requests, r))
      nodes_list
  in
  Printf.printf "    %-6s %9s %10s %9s %11s %9s %11s %9s %8s\n" "nodes" "requests"
    "fired" "wall ms" "events/sec" "virt s" "req/sim-s" "words/ev" "shed";
  List.iter
    (fun (nodes, requests, r) ->
      let engine = Network.engine r.O.net in
      let c = Engine.counters engine in
      let minor, _, _ = Engine.gc_words engine in
      let words_per_event =
        if c.Engine.fired = 0 then 0.0 else minor /. float_of_int c.Engine.fired
      in
      let req_per_sim_s =
        float_of_int r.O.completed /. (float_of_int r.O.virtual_us /. 1e6)
      in
      Printf.printf "    %-6d %9d %10d %9.1f %11.0f %9.1f %11.0f %9.1f %8d\n" nodes
        requests c.Engine.fired
        (Engine.wall_seconds engine *. 1e3)
        (Engine.events_per_sec engine)
        (float_of_int r.O.virtual_us /. 1e6)
        req_per_sim_s words_per_event r.O.shed)
    rows;
  Printf.printf "\n    completions and scatter-gather:\n";
  List.iter
    (fun (nodes, _, r) ->
      let pool = Bus.pool (Network.bus r.O.net) in
      Printf.printf
        "    n=%-5d issued=%d completed=%d failed=%d gathers=%d pool: %d/%d reused\n"
        nodes r.O.issued r.O.completed r.O.failed r.O.gathers (Pool.reuses pool)
        (Pool.acquires pool))
    rows;
  (* machine-readable record, uploaded by CI next to BENCH_pr6.json *)
  let baseline_pr6_n64 = 432088.0 in
  let ev_s nodes =
    List.find_map
      (fun (n, _, r) ->
        if n = nodes then Some (Engine.events_per_sec (Network.engine r.O.net)) else None)
      rows
  in
  let oc = open_out "BENCH_pr7.json" in
  Printf.fprintf oc "{\n  \"baseline_pr6_n64_events_per_sec\": %.0f,\n" baseline_pr6_n64;
  (match ev_s 64 with
   | Some v -> Printf.fprintf oc "  \"n64_speedup_vs_pr6\": %.2f,\n" (v /. baseline_pr6_n64)
   | None -> ());
  Printf.fprintf oc "  \"scale\": [\n";
  List.iteri
    (fun i (nodes, requests, r) ->
      let engine = Network.engine r.O.net in
      let c = Engine.counters engine in
      let minor, promoted, major = Engine.gc_words engine in
      Printf.fprintf oc
        "    { \"nodes\": %d, \"requests\": %d, \"offered\": %d, \"issued\": %d, \
         \"completed\": %d, \"failed\": %d, \"shed\": %d, \"gathers\": %d, \
         \"fired\": %d, \"virtual_us\": %d, \"wall_us\": %d, \"events_per_sec\": %.0f, \
         \"heap_highwater\": %d, \"gc_minor_words\": %.0f, \"gc_promoted_words\": %.0f, \
         \"gc_major_words\": %.0f, \"gc_words_per_event\": %.1f, \"tags\": { %s } }%s\n"
        nodes requests r.O.offered r.O.issued r.O.completed r.O.failed r.O.shed
        r.O.gathers c.Engine.fired r.O.virtual_us
        (int_of_float (Engine.wall_seconds engine *. 1e6))
        (Engine.events_per_sec engine)
        (Engine.heap_highwater engine) minor promoted major
        (if c.Engine.fired = 0 then 0.0 else minor /. float_of_int c.Engine.fired)
        (String.concat ", "
           (List.map
              (fun (tag, count) -> Printf.sprintf "\"%s\": %d" tag count)
              (Engine.tag_counts engine)))
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\n    wrote BENCH_pr7.json\n";
  let ok_measured =
    List.for_all
      (fun (_, _, r) -> Engine.events_per_sec (Network.engine r.O.net) > 0.0)
      rows
  in
  if not ok_measured then begin
    Printf.printf "    GATE FAILED: events/sec not measured (wall clock did not advance)\n";
    exit 1
  end;
  match ev_s 8, ev_s 64 with
  | Some v8, Some v64 ->
    Printf.printf "    gate: N=64 at %.0f%% of N=8 throughput (floor 65%%)\n"
      (100.0 *. v64 /. v8);
    if v64 < 0.65 *. v8 then begin
      Printf.printf "    GATE FAILED: N=64 events/sec %.0f < 65%% of N=8 %.0f\n" v64 v8;
      exit 1
    end
  | _ -> ()

(* ---- FAULT: a workload under a scripted fault plan ---------------------------------- *)

(* Run the T1 PUT stream while a fault plan (--fault-plan FILE) executes
   against the server node. Demonstrates the robustness scenarios outside
   the test suite; the plan must let the workload finish (heal partitions,
   reboot crashed nodes). *)
let fault_section plan () =
  hr "FAULT. PUT stream (100 words) under a scripted fault plan";
  Printf.printf "%s"
    (String.concat ""
       (List.map
          (fun step -> "    " ^ Soda_fault.Fault_plan.step_to_string step ^ "\n")
          plan));
  let r = W.stream ~op:W.Put ~words:100 ~fault_plan:plan () in
  Printf.printf
    "\n    %.2f ms/PUT, %.2f pkts/PUT, %d retransmissions, %d busy NACKs\n"
    r.W.per_op_ms r.W.packets_per_op r.W.retransmissions r.W.busy_nacks

(* ---- Bechamel wall-clock suite ----------------------------------------------------- *)

let bechamel () =
  hr "Bechamel wall-clock micro-benchmarks of the harness (one per table)";
  let open Bechamel in
  let open Toolkit in
  let t1_test =
    Test.make ~name:"T1.put-stream-100w"
      (Staged.stage (fun () -> ignore (W.stream ~op:W.Put ~words:100 ~n:12 ~warmup:3 ())))
  in
  let t2_test =
    Test.make ~name:"T2.signal-breakdown"
      (Staged.stage (fun () -> ignore (W.stream ~op:W.Signal ~words:0 ~n:12 ~warmup:3 ())))
  in
  let t3_test =
    Test.make ~name:"T3.blocking-signal"
      (Staged.stage (fun () -> ignore (W.blocking_signal ~n:10 ~warmup:2 ())))
  in
  let tests = [ t1_test; t2_test; t3_test ] in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        (Instance.monotonic_clock :> Measure.witness)
        raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "    %-24s %12.3f ms wall-clock per run\n" name (est /. 1e6)
        | _ -> Printf.printf "    %-24s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* ---- driver -------------------------------------------------------------------------- *)

let sections =
  [
    ("T1", t1); ("T2", t2); ("T2S", t2s); ("T3", t3); ("F1", f1);
    ("TRACE", trace_section);
    ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4); ("A5", a5); ("A6", a6);
    ("WINDOW", window_section);
    ("INCAST", incast_section);
    ("PROFILE", profile_section);
    ("SCALE", scale_section);
    ("STORE", store_section);
    ("SCD", scd_section);
    ("BENCH", bechamel);
  ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  (* "--fault-plan FILE" adds a FAULT section driven by the plan file; any
     remaining arguments select sections by name as before. *)
  let rec split_args requested plan = function
    | "--fault-plan" :: file :: rest -> split_args requested (Some file) rest
    | "--fault-plan" :: [] ->
      prerr_endline "bench: --fault-plan needs a FILE argument";
      exit 2
    | arg :: rest -> split_args (arg :: requested) plan rest
    | [] -> (List.rev requested, plan)
  in
  let requested, plan_file = split_args [] None argv in
  let fault =
    match plan_file with
    | None -> None
    | Some file ->
      (match Soda_fault.Fault_plan.load file with
       | Ok plan -> Some ("FAULT", fault_section plan)
       | Error message ->
         Printf.eprintf "bench: %s: %s\n" file message;
         exit 2)
  in
  let selected =
    match fault, requested with
    | Some section, [] -> [ section ]  (* just the fault run *)
    | Some section, _ ->
      List.filter (fun (name, _) -> List.mem name requested) sections @ [ section ]
    | None, [] -> sections
    | None, _ -> List.filter (fun (name, _) -> List.mem name requested) sections
  in
  Printf.printf "SODA reproduction benchmark harness (virtual-time measurements)\n";
  Printf.printf "paper: Kepecs & Solomon, SODA, 1984; see EXPERIMENTS.md\n";
  List.iter (fun (_, f) -> f ()) selected
