(* sodal_check: the sodalint static protocol analyzer for SODAL programs.

   Checks every source on the command line, then the set as a whole
   (advertise/request matching, buffer shapes, wait cycles — pass all of
   a system's programs together to enable those rules). Rule ids and
   their paper citations are catalogued in docs/ANALYSIS.md.

     dune exec bin/sodal_check.exe -- examples/sodal/*.sodal
     dune exec bin/sodal_check.exe -- --format json server.sodal

   Exit status: 0 clean (or warnings only), 1 if any error — or any
   diagnostic at all under --strict. *)

module Sodalint = Soda_analysis.Sodalint
module Diagnostic = Soda_analysis.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run format strict no_cross files =
  if files = [] then `Error (true, "at least one SODAL source file is required")
  else begin
    let sources =
      List.map (fun path -> { Sodalint.path; text = read_file path }) files
    in
    let diags = Sodalint.analyze ~cross:(not no_cross) sources in
    (match format with
     | `Human ->
       List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
       let errors, warnings =
         List.fold_left
           (fun (e, w) (d : Diagnostic.t) ->
             match d.Diagnostic.severity with
             | Diagnostic.Error -> (e + 1, w)
             | Diagnostic.Warning -> (e, w + 1))
           (0, 0) diags
       in
       if errors + warnings > 0 then
         Format.printf "%d error%s, %d warning%s@." errors
           (if errors = 1 then "" else "s")
           warnings
           (if warnings = 1 then "" else "s")
       else
         Format.printf "%d file%s checked, no diagnostics@." (List.length files)
           (if List.length files = 1 then "" else "s")
     | `Json -> List.iter (fun d -> print_endline (Diagnostic.to_json d)) diags);
    `Ok (Sodalint.exit_status ~strict diags)
  end

open Cmdliner

let format =
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,human) prints file:line:col: severity: [rule] \
           message; $(b,json) prints one JSON object per diagnostic.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit non-zero on warnings too, not just errors.")

let no_cross =
  Arg.(
    value & flag
    & info [ "no-cross" ]
        ~doc:
          "Skip the cross-program rules (SL05x); check each file in isolation.")

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.sodal" ~doc:"SODAL source files.")

let cmd =
  let doc = "statically check SODAL programs for protocol errors" in
  Cmd.v
    (Cmd.info "sodal_check" ~doc)
    Term.(ret (const run $ format $ strict $ no_cross $ files))

let () = exit (Cmd.eval' cmd)
