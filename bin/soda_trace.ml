(* soda_trace: offline analyzer for exported JSONL protocol traces.

   Ingest a trace recorded with `sodal_run --trace FILE` (or written by
   the test/bench harnesses), print the latency / per-pair / causal-tree
   report, and optionally re-export the causal forest as Graphviz DOT or
   the whole trace as Chrome trace_event JSON.

     dune exec bin/soda_trace.exe -- run.jsonl
     dune exec bin/soda_trace.exe -- run.jsonl --dot trees.dot --chrome run.json *)

module Analyze = Soda_obs.Analyze

let read_events = function
  | "-" -> Analyze.events_of_channel stdin
  | file ->
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        Analyze.events_of_channel ic)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let run paths dot chrome quiet file =
  match read_events file with
  | exception Sys_error message -> `Error (false, message)
  | exception Analyze.Parse_error message ->
    `Error (false, Printf.sprintf "%s: %s" file message)
  | events ->
    if not quiet then Analyze.report ~max_paths:paths Format.std_formatter events;
    let trees = lazy (Analyze.causal_trees events) in
    (match dot with
     | Some path ->
       write_file path (Analyze.dot (Lazy.force trees));
       Printf.printf "-- wrote DOT causal forest (%d traces) to %s\n"
         (List.length (Lazy.force trees))
         path
     | None -> ());
    (match chrome with
     | Some path ->
       write_file path (Soda_obs.Export.chrome events);
       Printf.printf "-- wrote Chrome trace (%d events) to %s\n" (List.length events)
         path
     | None -> ());
    `Ok ()

open Cmdliner

let paths =
  Arg.(
    value & opt int 5
    & info [ "paths" ] ~docv:"N"
        ~doc:"Print the critical paths of the $(docv) slowest causal trees.")

let dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the causal forest as Graphviz DOT to $(docv) (one cluster per \
           trace; render with `dot -Tsvg`).")

let chrome =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Re-export the parsed trace as Chrome trace_event JSON to $(docv) \
           (openable in Perfetto or about://tracing).")

let quiet =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the text report (exports still run).")

let file =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace file ('-' reads stdin).")

let cmd =
  let doc = "analyze an exported SODA JSONL protocol trace" in
  Cmd.v
    (Cmd.info "soda_trace" ~doc)
    Term.(ret (const run $ paths $ dot $ chrome $ quiet $ file))

let () = exit (Cmd.eval cmd)
