(* sodal_run: host SODAL programs (§4.1) on a simulated SODA network.

   Each source file becomes one node's client, machine ids assigned in
   argument order. PRINT output is prefixed with the printing machine and
   the virtual time.

     dune exec bin/sodal_run.exe -- server.sodal client.sodal
     dune exec bin/sodal_run.exe -- --seconds 10 --seed 3 a.sodal b.sodal *)

module Network = Soda_core.Network
module Interp = Soda_sodal_lang.Interp
module Parser = Soda_sodal_lang.Parser
module Lexer = Soda_sodal_lang.Lexer

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Pick an export format from the --trace argument: "-" means the human
   timeline on stdout; a .json path gets Chrome trace_event format (load it
   in Perfetto or about://tracing); anything else gets JSONL. *)
let export_trace net dest =
  let events = Soda_obs.Recorder.events (Network.recorder net) in
  match dest with
  | "-" -> Format.printf "%a@." Soda_obs.Export.pp_timeline events
  | file when Filename.check_suffix file ".json" ->
    let oc = open_out file in
    Soda_obs.Export.output_chrome oc events;
    close_out oc;
    Printf.printf "-- wrote Chrome trace (%d events) to %s\n" (List.length events) file
  | file ->
    let oc = open_out file in
    Soda_obs.Export.output_jsonl oc events;
    close_out oc;
    Printf.printf "-- wrote JSONL trace (%d events) to %s\n" (List.length events) file

let print_metrics net =
  let engine_metrics = Soda_obs.Metrics.create () in
  Soda_sim.Engine.export_metrics (Network.engine net) engine_metrics ~prefix:"engine";
  Format.printf "@.== engine ==@.%a" Soda_obs.Metrics.pp engine_metrics;
  Format.printf "@.== bus ==@.%a" Soda_sim.Stats.pp
    (Soda_net.Bus.stats (Network.bus net));
  List.iter
    (fun (mid, kernel) ->
      Format.printf "@.== node %d ==@.%a" mid Soda_sim.Stats.pp
        (Soda_core.Kernel.stats kernel))
    (Network.nodes net);
  Format.printf "@."

(* --metrics-json: every registry the run touched — engine profiling
   gauges, bus stats, per-node kernel stats and the recorder's own
   metrics (store latency histograms etc.) — as one JSON object. *)
let export_metrics_json net file =
  let engine_metrics = Soda_obs.Metrics.create () in
  Soda_sim.Engine.export_metrics (Network.engine net) engine_metrics ~prefix:"engine";
  let sections =
    (("engine", engine_metrics)
     :: ("bus", Soda_sim.Stats.registry (Soda_net.Bus.stats (Network.bus net)))
     :: ("recorder", Soda_obs.Recorder.metrics (Network.recorder net))
     :: List.map
          (fun (mid, kernel) ->
            ( Printf.sprintf "node.%d" mid,
              Soda_sim.Stats.registry (Soda_core.Kernel.stats kernel) ))
          (Network.nodes net))
  in
  let oc = open_out file in
  output_string oc (Soda_obs.Export.metrics_sections_json sections);
  close_out oc;
  Printf.printf "-- wrote metrics JSON (%d registries) to %s\n" (List.length sections)
    file

(* --store N: run the deterministic store workload harness instead of
   SODAL sources — the same harness the linearizability suite uses, so a
   (seed, fault plan) pair printed by a failing qcheck case replays its
   exact schedule here (see docs/STORE.md). *)
let run_store ~seed ~seconds ~trace ~metrics ~metrics_json ~fault_plan ~n ~clients ~ops
    ~keys ~think_us ~nameserver =
  let module Harness = Soda_store.Harness in
  let plan =
    match fault_plan with
    | None -> Ok None
    | Some path ->
      (match Soda_fault.Fault_plan.load path with
       | Ok plan -> Ok (Some plan)
       | Error message -> Error (Printf.sprintf "%s: %s" path message))
  in
  match plan with
  | Error message -> `Error (false, message)
  | Ok plan ->
    let r =
      Harness.run ~n ~clients ~ops ~keys ~seed ~think_us ?plan
        ~use_nameserver:nameserver
        ~trace:(trace <> None)
        ~horizon_us:(int_of_float (seconds *. 1e6))
        ()
    in
    Format.printf "%a" Harness.pp_history r.Harness.history;
    let ok, no_quorum =
      List.fold_left
        (fun (ok, nq) (op : Harness.op) ->
          match op.outcome with `No_quorum -> (ok, nq + 1) | _ -> (ok + 1, nq))
        (0, 0) r.Harness.history
    in
    Printf.printf
      "-- store: n=%d, %d/%d clients finished, %d ops (%d ok, %d no-quorum)\n" n
      r.Harness.clients_done r.Harness.clients_total
      (List.length r.Harness.history)
      ok no_quorum;
    (match trace with Some dest -> export_trace r.Harness.net dest | None -> ());
    if metrics then print_metrics r.Harness.net;
    (match metrics_json with
     | Some file -> export_metrics_json r.Harness.net file
     | None -> ());
    `Ok ()

(* --scd N: run the SCD-broadcast workload harness (snapshot object +
   counter on an N-member cluster) instead of SODAL sources. Like
   --store, a (seed, fault plan) pair printed by a failing qcheck case
   replays its exact schedule here (see docs/BROADCAST.md). *)
let run_scd ~seed ~seconds ~trace ~metrics ~metrics_json ~fault_plan ~n ~clients ~ops
    ~regs ~think_us =
  let module Harness = Soda_scd.Harness in
  let plan =
    match fault_plan with
    | None -> Ok None
    | Some path ->
      (match Soda_fault.Fault_plan.load path with
       | Ok plan -> Ok (Some plan)
       | Error message -> Error (Printf.sprintf "%s: %s" path message))
  in
  match plan with
  | Error message -> `Error (false, message)
  | Ok plan ->
    let r =
      Harness.run ~n ~clients ~ops ~regs ~seed ~think_us ?plan
        ~trace:(trace <> None)
        ~horizon_us:(int_of_float (seconds *. 1e6))
        ()
    in
    Format.printf "%a" Harness.pp_history r.Harness.history;
    let ok, failed =
      List.fold_left
        (fun (ok, failed) (op : Harness.op) ->
          match op.outcome with
          | Harness.Failed -> (ok, failed + 1)
          | _ -> (ok + 1, failed))
        (0, 0) r.Harness.history
    in
    Printf.printf
      "-- scd: n=%d, %d/%d clients finished, %d ops (%d ok, %d unreachable)\n" n
      r.Harness.clients_done r.Harness.clients_total
      (List.length r.Harness.history)
      ok failed;
    let report name = function
      | Ok () ->
        Printf.printf "-- scd: %s OK\n" name;
        true
      | Error message ->
        Printf.printf "-- scd: %s VIOLATED: %s\n" name message;
        false
    in
    let delivery_ok = report "delivery (set-constrained)" (Harness.check_delivery r) in
    let objects_ok = report "objects (snapshot/counter)" (Harness.check_objects r) in
    (* convergence is a liveness property; a plan may legitimately leave
       members crashed or partitioned, so only check the healthy case *)
    (match plan with
     | None -> ignore (report "convergence" (Harness.check_convergence r))
     | Some _ -> ());
    (match trace with Some dest -> export_trace r.Harness.net dest | None -> ());
    if metrics then print_metrics r.Harness.net;
    (match metrics_json with
     | Some file -> export_metrics_json r.Harness.net file
     | None -> ());
    if delivery_ok && objects_ok then `Ok ()
    else `Error (false, "scd safety checkers found violations")

(* --check: run the sodalint static analyzer and the whole-system model
   checker (same rules as bin/sodal_check.exe --model-check) and stop
   instead of executing. *)
let run_check files =
  let module An = Soda_analysis in
  let sources =
    List.map (fun path -> { An.Sodalint.path; text = read_file path }) files
  in
  let diags = An.Sodalint.analyze sources in
  let programs, parse_diags = An.Sodalint.parse_programs sources in
  let diags, mc =
    if parse_diags <> [] then (diags, None)
    else
      let r = An.Modelcheck.run (An.Automata.extract programs) in
      ( List.sort_uniq An.Diagnostic.compare
          (diags @ An.Modelcheck.diagnostics_of r),
        Some r )
  in
  List.iter (fun d -> Format.printf "%a@." An.Diagnostic.pp d) diags;
  if An.Diagnostic.has_errors diags then
    `Error (false, "static analysis found errors; not running")
  else begin
    (match mc with
     | Some r ->
       Printf.printf "-- model check: %d configuration(s) explored%s\n"
         r.An.Modelcheck.configs_explored
         (if r.An.Modelcheck.exhausted then "" else " (bounded)")
     | None -> ());
    Printf.printf "-- %d file(s) pass sodalint\n" (List.length files);
    `Ok ()
  end

let run seed seconds trace metrics metrics_json fault_plan store store_clients store_ops
    store_keys store_think_us store_nameserver scd scd_clients scd_ops scd_regs
    scd_think_us scd_members check files =
  if store > 0 then
    run_store ~seed ~seconds ~trace ~metrics ~metrics_json ~fault_plan ~n:store
      ~clients:store_clients ~ops:store_ops ~keys:store_keys ~think_us:store_think_us
      ~nameserver:store_nameserver
  else if scd > 0 then
    run_scd ~seed ~seconds ~trace ~metrics ~metrics_json ~fault_plan ~n:scd
      ~clients:scd_clients ~ops:scd_ops ~regs:scd_regs ~think_us:scd_think_us
  else if files = [] then `Error (true, "at least one SODAL source file is required")
  else if check then run_check files
  else begin
    (* Tracing implies causal, as in the store harness: an exported trace
       should carry the cross-node tree ids soda_trace reconstructs. *)
    let cost =
      (* SCD members juggle one outstanding echo per peer channel plus the
         client-facing accept, so give them the harness's request budget. *)
      if scd_members > 0 then
        { Soda_base.Cost_model.default with maxrequests = scd_members + 2 }
      else Soda_base.Cost_model.default
    in
    let net = Network.create ~seed ~cost ~trace:(trace <> None) ~causal:(trace <> None) () in
    let ok = ref true in
    let attachers = Hashtbl.create 8 in
    (* --scd-members K hosts the K members of SCD cluster "sodal" on
       machines 0..K-1, so the programs (on machines K..) can
       SCD_JOIN(K, regs) them — see examples/sodal/scd_demo.sodal. *)
    let module Scd = Soda_scd.Scd in
    for index = 0 to scd_members - 1 do
      let kernel = Network.add_node net ~mid:index in
      let member =
        Scd.member ~cluster:"sodal" ~index ~mids:(List.init scd_members Fun.id)
          ~regs:scd_regs
      in
      let attach kernel =
        ignore (Soda_runtime.Sodal.attach kernel (Scd.member_spec member))
      in
      Hashtbl.replace attachers index attach;
      attach kernel
    done;
    List.iteri
      (fun i path ->
        let mid = scd_members + i in
        let kernel = Network.add_node net ~mid in
        let source = read_file path in
        match Parser.parse source with
        | program ->
          let print line =
            Printf.printf "[mid %d @%8.1f ms] %s\n%!" mid
              (float_of_int (Network.now net) /. 1000.0)
              line
          in
          let attach kernel =
            ignore
              (Soda_runtime.Sodal.attach kernel (Interp.spec_of_program ~print program))
          in
          Hashtbl.replace attachers mid attach;
          attach kernel
        | exception Parser.Parse_error (message, p) ->
          Printf.eprintf "%s:%d:%d: parse error: %s\n" path p.Soda_sodal_lang.Ast.line
            p.Soda_sodal_lang.Ast.col message;
          ok := false
        | exception Lexer.Lex_error (message, p) ->
          Printf.eprintf "%s:%d:%d: lexical error: %s\n" path p.Soda_sodal_lang.Ast.line
            p.Soda_sodal_lang.Ast.col message;
          ok := false)
      files;
    let plan_error = ref None in
    (match fault_plan with
     | None -> ()
     | Some path ->
       (match Soda_fault.Fault_plan.load path with
        | Ok plan ->
          (* A rebooted node gets its SODAL program re-attached: a fresh
             interpreter on a fresh kernel incarnation. *)
          let on_reboot ~mid kernel =
            match Hashtbl.find_opt attachers mid with
            | Some attach -> attach kernel
            | None -> ()
          in
          Soda_fault.Injector.install ~on_reboot net plan
        | Error message ->
          plan_error := Some (Printf.sprintf "%s: %s" path message)));
    if not !ok then `Error (false, "aborted: source errors")
    else match !plan_error with
    | Some message -> `Error (false, message)
    | None -> begin
      let final = Network.run ~until:(int_of_float (seconds *. 1e6)) net in
      Printf.printf "-- network quiescent/stopped at %.1f ms of virtual time\n"
        (float_of_int final /. 1000.0);
      (match trace with Some dest -> export_trace net dest | None -> ());
      if metrics then print_metrics net;
      (match metrics_json with Some file -> export_metrics_json net file | None -> ());
      `Ok ()
    end
  end

open Cmdliner

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")

let seconds =
  Arg.(
    value
    & opt float 60.0
    & info [ "seconds" ] ~docv:"S" ~doc:"Virtual-time horizon in seconds.")

let trace =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the protocol event trace. Without $(docv) (or with '-') the \
           human-readable timeline is printed on stdout; a $(docv) ending in .json \
           receives Chrome trace_event JSON (openable in Perfetto); any other \
           $(docv) receives one JSON object per line (JSONL).")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the engine, bus and per-node metrics registries at the end.")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write every metrics registry of the run (engine profiling gauges, bus, \
           recorder, one per node) as a single JSON object to $(docv).")

let fault_plan =
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Execute the fault plan in $(docv) during the run: scripted partitions, \
           node crash/reboot, frame duplication, delivery jitter and loss bursts, \
           all at fixed virtual times (see docs/TESTING.md for the format).")

let store =
  Arg.(
    value & opt int 0
    & info [ "store" ] ~docv:"N"
        ~doc:
          "Run the quorum-replicated store workload harness with $(docv) replicas \
           instead of SODAL sources (see docs/STORE.md). Combine with --seed and \
           --fault-plan to replay a failing linearizability case bit-for-bit.")

let store_clients =
  Arg.(
    value & opt int 2
    & info [ "store-clients" ] ~docv:"N" ~doc:"Concurrent store clients (with --store).")

let store_ops =
  Arg.(
    value & opt int 8
    & info [ "store-ops" ] ~docv:"N" ~doc:"Operations per store client (with --store).")

let store_keys =
  Arg.(
    value & opt int 2
    & info [ "store-keys" ] ~docv:"N" ~doc:"Distinct keys in the workload (with --store).")

let store_think_us =
  Arg.(
    value & opt int 250_000
    & info [ "store-think-us" ] ~docv:"US"
        ~doc:"Upper bound on per-op client think time in µs (with --store).")

let store_nameserver =
  Arg.(
    value & flag
    & info [ "store-nameserver" ]
        ~doc:
          "Resolve store replicas through the switchboard (register/rebind path) \
           instead of their stable patterns (with --store).")

let scd =
  Arg.(
    value & opt int 0
    & info [ "scd" ] ~docv:"N"
        ~doc:
          "Run the SCD-broadcast workload harness (multi-writer snapshot object \
           and counter) with $(docv) members instead of SODAL sources (see \
           docs/BROADCAST.md). Combine with --seed and --fault-plan to replay a \
           failing qcheck case bit-for-bit; the safety checkers run at the end \
           and a violation exits non-zero.")

let scd_clients =
  Arg.(
    value & opt int 2
    & info [ "scd-clients" ] ~docv:"N" ~doc:"Concurrent SCD clients (with --scd).")

let scd_ops =
  Arg.(
    value & opt int 6
    & info [ "scd-ops" ] ~docv:"N" ~doc:"Operations per SCD client (with --scd).")

let scd_regs =
  Arg.(
    value & opt int 2
    & info [ "scd-regs" ] ~docv:"N"
        ~doc:"Snapshot-object registers (with --scd).")

let scd_think_us =
  Arg.(
    value & opt int 100_000
    & info [ "scd-think-us" ] ~docv:"US"
        ~doc:"Upper bound on per-op client think time in µs (with --scd).")

let scd_members =
  Arg.(
    value & opt int 0
    & info [ "scd-members" ] ~docv:"K"
        ~doc:
          "Host the $(docv) members of SCD cluster \"sodal\" on machines 0..K-1 \
           alongside the SODAL programs (which then occupy machines K..); the \
           programs reach them with SCD_JOIN(K, regs). Register count comes from \
           $(b,--scd-regs).")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Statically check the programs (sodalint plus the whole-system model \
           checker, see docs/ANALYSIS.md) instead of running them; non-zero \
           exit if any rule reports an error.")

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.sodal" ~doc:"SODAL source files.")

let cmd =
  let doc = "run SODAL programs on a simulated SODA network" in
  Cmd.v
    (Cmd.info "sodal_run" ~doc)
    Term.(
      ret
        (const run $ seed $ seconds $ trace $ metrics $ metrics_json $ fault_plan
        $ store $ store_clients $ store_ops $ store_keys $ store_think_us
        $ store_nameserver $ scd $ scd_clients $ scd_ops $ scd_regs $ scd_think_us
        $ scd_members
        $ check $ files))

let () = exit (Cmd.eval cmd)
