(* Request-lifecycle spans, derived from the typed event stream.

   A span opens at the requester's REQUEST trap and closes at its
   completion interrupt. In between, requester-side events drive a phase
   machine; the resulting segments attribute every microsecond of the
   request's life to one protocol phase, which is how the paper's
   "Breakdown of Communications Overhead" is re-derived without
   hand-placed accounting calls. *)

type phase =
  | Queued  (** trapped, waiting behind the connection's stop-and-wait queue *)
  | On_wire  (** REQUEST transmitted, awaiting acknowledgement *)
  | Busy_backoff  (** BUSY-nacked, parked between retries *)
  | Awaiting_accept  (** delivered (acked); server handler has it *)
  | Accept_transfer  (** ACCEPT arrived; data exchange finishing *)

let phase_name = function
  | Queued -> "queued"
  | On_wire -> "on-wire"
  | Busy_backoff -> "busy-backoff"
  | Awaiting_accept -> "awaiting-accept"
  | Accept_transfer -> "accept-transfer"

let all_phases = [ Queued; On_wire; Busy_backoff; Awaiting_accept; Accept_transfer ]

(* Forward progress rank; BUSY cycles with the wire before delivery. *)
let rank = function
  | Queued -> 0
  | On_wire | Busy_backoff -> 1
  | Awaiting_accept -> 2
  | Accept_transfer -> 3

type segment = { phase : phase; seg_start_us : int; seg_end_us : int }

type t = {
  tid : int;
  mid : int;  (** requester machine *)
  dst : int;
  pattern : int;
  start_us : int;
  end_us : int option;  (** [None] while the request was still live at capture *)
  status : string option;
  segments : segment list;
}

type building = {
  mutable b_phase : phase;
  mutable b_phase_start : int;
  mutable b_segments : segment list;  (* reverse *)
  b_span : t;
}

let of_events events =
  let open Event in
  let live : (int, building) Hashtbl.t = Hashtbl.create 32 in
  let finished = ref [] in
  let close_segment b at =
    if at > b.b_phase_start then
      b.b_segments <-
        { phase = b.b_phase; seg_start_us = b.b_phase_start; seg_end_us = at }
        :: b.b_segments
  in
  let transition b at phase =
    if phase <> b.b_phase then begin
      close_segment b at;
      b.b_phase <- phase;
      b.b_phase_start <- at
    end
  in
  List.iter
    (fun ev ->
      match ev.kind with
      | Trap { tid; dst; pattern; put_size = _; get_size = _ } ->
        let span =
          { tid; mid = ev.mid; dst; pattern; start_us = ev.time_us; end_us = None;
            status = None; segments = [] }
        in
        Hashtbl.replace live tid
          { b_phase = Queued; b_phase_start = ev.time_us; b_segments = []; b_span = span }
      | Tx { tid; pkt = P_request; _ } ->
        (match Hashtbl.find_opt live tid with
         | Some b when b.b_span.mid = ev.mid && rank b.b_phase < 2 ->
           transition b ev.time_us On_wire
         | _ -> ())
      | Rx { tid; pkt = P_busy; _ } ->
        (match Hashtbl.find_opt live tid with
         | Some b when b.b_span.mid = ev.mid && rank b.b_phase < 2 ->
           transition b ev.time_us Busy_backoff
         | _ -> ())
      | Acked { tid; pkt = P_request; _ } ->
        (match Hashtbl.find_opt live tid with
         | Some b when b.b_span.mid = ev.mid && rank b.b_phase < 2 ->
           transition b ev.time_us Awaiting_accept
         | _ -> ())
      | Rx { tid; pkt = P_accept; _ } ->
        (match Hashtbl.find_opt live tid with
         | Some b when b.b_span.mid = ev.mid -> transition b ev.time_us Accept_transfer
         | _ -> ())
      | Complete { tid; status } ->
        (match Hashtbl.find_opt live tid with
         | Some b when b.b_span.mid = ev.mid ->
           close_segment b ev.time_us;
           Hashtbl.remove live tid;
           finished :=
             { b.b_span with end_us = Some ev.time_us; status = Some status;
               segments = List.rev b.b_segments }
             :: !finished
         | _ -> ())
      | _ -> ())
    events;
  (* Requests still open at capture time: emit with whatever segments have
     closed so far. *)
  Hashtbl.iter
    (fun _ b -> finished := { b.b_span with segments = List.rev b.b_segments } :: !finished)
    live;
  List.sort (fun a b -> compare (a.start_us, a.tid) (b.start_us, b.tid)) !finished

let duration_us span =
  match span.end_us with Some e -> Some (e - span.start_us) | None -> None

(* Total microseconds per phase across the given spans. *)
let breakdown spans =
  let totals = List.map (fun p -> (p, ref 0)) all_phases in
  List.iter
    (fun span ->
      List.iter
        (fun seg ->
          let r = List.assoc seg.phase totals in
          r := !r + (seg.seg_end_us - seg.seg_start_us))
        span.segments)
    spans;
  List.map (fun (p, r) -> (p, !r)) totals

let pp ppf span =
  Format.fprintf ppf "span #%d %d->%d [%d..%s]%s" span.tid span.mid span.dst span.start_us
    (match span.end_us with Some e -> string_of_int e | None -> "open")
    (match span.status with Some s -> " " ^ s | None -> "");
  List.iter
    (fun seg ->
      Format.fprintf ppf "@.  %-16s %8d..%8d (%d us)" (phase_name seg.phase)
        seg.seg_start_us seg.seg_end_us
        (seg.seg_end_us - seg.seg_start_us))
    span.segments
