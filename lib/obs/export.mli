(** Exporters for recorded event streams.

    Three formats: the human-readable timeline (the old [Trace.pp]
    rendering), JSONL (one object per event; used by the golden trace
    test), and Chrome [trace_event] JSON that loads in about://tracing or
    Perfetto with one process lane per node plus a bus-medium lane. *)

val pp_timeline : Format.formatter -> Event.t list -> unit

val jsonl : Event.t list -> string
val output_jsonl : out_channel -> Event.t list -> unit

val chrome : Event.t list -> string
val output_chrome : out_channel -> Event.t list -> unit
