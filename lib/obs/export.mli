(** Exporters for recorded event streams.

    Three formats: the human-readable timeline (the old [Trace.pp]
    rendering), JSONL (one object per event; used by the golden trace
    test), and Chrome [trace_event] JSON that loads in about://tracing or
    Perfetto with one process lane per node plus a bus-medium lane. *)

val pp_timeline : Format.formatter -> Event.t list -> unit

val jsonl : Event.t list -> string
val output_jsonl : out_channel -> Event.t list -> unit

val chrome : Event.t list -> string
val output_chrome : out_channel -> Event.t list -> unit

(** {2 Metrics registries}

    Machine-readable dump of a {!Metrics} registry: counters and gauges
    verbatim, histograms as their summary statistics
    ([count]/[sum]/[min]/[max]/[mean]/[p50]/[p90]/[p95]/[p99]). *)

val metrics_json : Metrics.t -> string

(** One top-level object with a member per named registry, e.g.
    [{"engine":{...},"bus":{...},"node.0":{...}}]. *)
val metrics_sections_json : (string * Metrics.t) list -> string
