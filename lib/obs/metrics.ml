(* Counters, gauges and log-scale histograms.

   Histograms use exact unit buckets below [linear_max] and 32 sub-buckets
   per power-of-two octave above it (HdrHistogram-style), so percentile
   estimates carry at most ~3% relative error while small integer samples
   (packet counts, microsecond costs of cheap operations) stay exact. *)

let linear_max = 64
let sub_buckets = 32

(* Octaves cover bit lengths 7..63 on 64-bit ints. *)
let bucket_count = linear_max + ((63 - 6) * sub_buckets)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
}

let bit_length v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  if v < linear_max then v
  else begin
    let k = bit_length v in
    let base = 1 lsl (k - 1) in
    let sub = (v - base) * sub_buckets / base in
    linear_max + ((k - 7) * sub_buckets) + sub
  end

(* Upper bound of the bucket at [idx]: the value reported for percentiles
   falling inside it (clamped to the observed min/max). *)
let bucket_upper idx =
  if idx < linear_max then idx
  else begin
    let octave = (idx - linear_max) / sub_buckets in
    let sub = (idx - linear_max) mod sub_buckets in
    let base = 1 lsl (octave + 6) in
    base + ((sub + 1) * base / sub_buckets) - 1
  end

module Histogram = struct
  type t = histogram

  let create () =
    { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
      buckets = Array.make bucket_count 0 }

  let observe h v =
    let v = max 0 v in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let idx = bucket_index v in
    h.buckets.(idx) <- h.buckets.(idx) + 1

  let count h = h.h_count
  let sum h = h.h_sum
  let min_value h = if h.h_count = 0 then 0 else h.h_min
  let max_value h = if h.h_count = 0 then 0 else h.h_max

  let mean h =
    if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

  let percentile h p =
    if h.h_count = 0 then 0
    else begin
      let p = if Float.is_nan p then 0.0 else Float.max 0.0 (Float.min 100.0 p) in
      if p <= 0.0 then min_value h
      else if p >= 100.0 then max_value h
      else begin
        let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
        let rank = max 1 (min h.h_count rank) in
        let rec walk idx cum =
          if idx >= bucket_count then max_value h
          else begin
            let cum = cum + h.buckets.(idx) in
            if cum >= rank then min (max (bucket_upper idx) h.h_min) h.h_max
            else walk (idx + 1) cum
          end
        in
        walk 0 0
      end
    end
end

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8 }

(* Exception-based lookups throughout this module: [Hashtbl.find_opt]
   allocates a [Some] per hit, and counter bumps sit on the simulator's
   per-packet hot path (several per packet), so the option garbage was
   measurable at scale. *)
let cell table name =
  match Hashtbl.find table name with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.replace table name r;
    r

let counter_cell t name = cell t.counters name

let incr t name = Stdlib.incr (cell t.counters name)

let add t name n =
  let r = cell t.counters name in
  r := !r + n

let counter t name =
  match Hashtbl.find t.counters name with r -> !r | exception Not_found -> 0

let set_gauge t name v = cell t.gauges name := v

let gauge t name =
  match Hashtbl.find t.gauges name with r -> !r | exception Not_found -> 0

let histogram_cell t name =
  match Hashtbl.find t.histograms name with
  | h -> h
  | exception Not_found ->
    let h = Histogram.create () in
    Hashtbl.replace t.histograms name h;
    h

let observe t name v = Histogram.observe (histogram_cell t name) v

let histogram t name = Hashtbl.find_opt t.histograms name

let names table = Hashtbl.fold (fun name _ acc -> name :: acc) table [] |> List.sort compare

let counter_names t = names t.counters
let gauge_names t = names t.gauges
let histogram_names t = names t.histograms

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let pp ppf t =
  List.iter
    (fun name -> Format.fprintf ppf "counter %s: %d@." name (counter t name))
    (counter_names t);
  List.iter
    (fun name -> Format.fprintf ppf "gauge %s: %d@." name (gauge t name))
    (gauge_names t);
  List.iter
    (fun name ->
      match histogram t name with
      | None -> ()
      | Some h ->
        Format.fprintf ppf
          "histogram %s: n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d@." name
          (Histogram.count h) (Histogram.mean h) (Histogram.percentile h 50.0)
          (Histogram.percentile h 95.0) (Histogram.percentile h 99.0)
          (Histogram.max_value h))
    (histogram_names t)
