type pkt =
  | P_request
  | P_accept
  | P_put_data
  | P_ack
  | P_busy
  | P_error
  | P_cancel
  | P_cancel_reply
  | P_probe
  | P_probe_reply
  | P_discover
  | P_discover_reply

let pkt_name = function
  | P_request -> "REQ"
  | P_accept -> "ACCEPT"
  | P_put_data -> "DATA"
  | P_ack -> "ACK"
  | P_busy -> "BUSY"
  | P_error -> "ERR"
  | P_cancel -> "CANCEL"
  | P_cancel_reply -> "CANCEL_R"
  | P_probe -> "PROBE"
  | P_probe_reply -> "PROBE_R"
  | P_discover -> "DISCOVER"
  | P_discover_reply -> "DISCOVER_R"

(* [tid = no_tid] marks packets that carry no transaction id (bare ACKs);
   [peer = broadcast_peer] marks broadcast destinations. *)
let no_tid = -1
let broadcast_peer = -1

type kind =
  | Trap of { tid : int; dst : int; pattern : int; put_size : int; get_size : int }
      (** REQUEST trap on the requester: the span's birth. *)
  | Enqueue of { tid : int; peer : int; pkt : pkt }
      (** A reliable message joined the per-connection stop-and-wait queue. *)
  | Tx of { tid : int; peer : int; pkt : pkt; bytes : int; seq : int; retry : bool }
  | Rx of { tid : int; peer : int; pkt : pkt; bytes : int; seq : int }
  | Acked of { tid : int; peer : int; pkt : pkt }
      (** The peer acknowledged our in-flight reliable message. *)
  | Busy_nack of { tid : int; peer : int }
      (** Server side: handler busy, REQUEST nacked. *)
  | Retransmit of { tid : int; peer : int; pkt : pkt; attempt : int }
  | Window_advance of { peer : int; base : int; in_flight : int }
      (** Sender side: a cumulative ack moved the send window base
          (emitted only when the configured window exceeds 1). *)
  | Window_buffer of { tid : int; peer : int; seq : int; expected : int }
      (** Receiver side: an out-of-order packet parked in the receive
          window until the gap at [expected] fills. *)
  | Cwnd_change of { peer : int; cwnd : int; in_flight : int; reason : string }
      (** Congestion window moved: [reason] is ["ack"] (additive
          increase) or ["loss"] (multiplicative decrease on
          retransmission-timer expiry). Windowed transports only. *)
  | Rtt_sample of { peer : int; sample_us : int; srtt_us : int; rttvar_us : int }
      (** One Karn-clean RTT measurement folded into the estimator
          (smoothed mean + variance after the update). *)
  | Probe of { tid : int; peer : int; misses : int }
  | Deliver of { tid : int; src : int; pattern : int; put_size : int; get_size : int;
                 from_buffer : bool }
      (** Server side: REQUEST handed to the advertisement match. *)
  | Handler_invoke
  | Endhandler
  | Complete of { tid : int; status : string }
      (** Requester side: completion interrupt queued; the span's death. *)
  | Bus_frame of { src : int; dst : int; bytes : int; start_us : int; end_us : int }
      (** Medium occupancy of one frame ([dst = broadcast_peer] for broadcast). *)
  | Bus_drop of { src : int; dst : int; reason : string }
  | Fault_partition of { group_a : int list; group_b : int list }
      (** Injected network split: frames crossing the cut are dropped. *)
  | Fault_heal
  | Fault_crash of { mid : int }  (** Injected hardware crash of one node. *)
  | Fault_reboot of { mid : int }
      (** Node re-created with a fresh boot epoch (then quarantined, §5.4). *)
  | Fault_duplicate of { count : int }  (** Next [count] frames delivered twice. *)
  | Fault_jitter of { min_us : int; max_us : int }
      (** Per-frame delivery jitter enabled (frames may reorder). *)
  | Fault_loss_burst of { rate_pct : int; duration_us : int }
      (** Temporary elevated loss rate. *)
  | Store_phase of
      { op : string; phase : string; key : int; acks : int; quorum : int; elapsed_us : int }
      (** One quorum round of a replicated-store operation. *)
  | Store_retry of { op : string; phase : string; key : int; attempt : int }
      (** A quorum round failed to assemble a majority and is retried. *)
  | Store_complete of { op : string; key : int; ok : bool; rounds : int; elapsed_us : int }
      (** A store operation finished ([ok = false]: no quorum reachable). *)
  | Scd_broadcast of { sd : int; sn : int; payload : string }
      (** An SCD member started a broadcast (first FORWARD of a message). *)
  | Scd_deliver of { size : int; pending : int }
      (** An SCD member delivered a message set of [size] messages
          ([pending] quadruplets remain buffered). *)
  | Scd_op of { op : string; origin : int; oseq : int; ok : bool; elapsed_us : int }
      (** An SCD client operation (write/snapshot/incr/cread) finished. *)
  | Note of string  (** Free-form text from the legacy [Trace.record] shim. *)

type t = {
  time_us : int;
  mid : int;
  actor : string;
  kind : kind;
  ctx : Causal.ctx option;
      (** Causal identity, present only when the recorder mints contexts
          (off by default, so legacy traces are unchanged). *)
}

let kind_label = function
  | Trap _ -> "trap"
  | Enqueue _ -> "enqueue"
  | Tx _ -> "tx"
  | Rx _ -> "rx"
  | Acked _ -> "ack"
  | Busy_nack _ -> "busy-nack"
  | Retransmit _ -> "retransmit"
  | Window_advance _ -> "window-advance"
  | Window_buffer _ -> "window-buffer"
  | Cwnd_change _ -> "cwnd-change"
  | Rtt_sample _ -> "rtt-sample"
  | Probe _ -> "probe"
  | Deliver _ -> "deliver"
  | Handler_invoke -> "handler-invoke"
  | Endhandler -> "endhandler"
  | Complete _ -> "complete"
  | Bus_frame _ -> "bus-frame"
  | Bus_drop _ -> "bus-drop"
  | Fault_partition _ -> "fault-partition"
  | Fault_heal -> "fault-heal"
  | Fault_crash _ -> "fault-crash"
  | Fault_reboot _ -> "fault-reboot"
  | Fault_duplicate _ -> "fault-duplicate"
  | Fault_jitter _ -> "fault-jitter"
  | Fault_loss_burst _ -> "fault-loss-burst"
  | Store_phase _ -> "store-phase"
  | Store_retry _ -> "store-retry"
  | Store_complete _ -> "store-complete"
  | Scd_broadcast _ -> "scd-broadcast"
  | Scd_deliver _ -> "scd-deliver"
  | Scd_op _ -> "scd-op"
  | Note _ -> "note"

let peer_name p = if p = broadcast_peer then "*" else string_of_int p

let mids_string mids = String.concat "," (List.map string_of_int mids)

(* Human rendering, used by the timeline exporter and the [Trace.entries]
   compatibility view. *)
let message = function
  | Trap { tid; dst; pattern; put_size; get_size } ->
    Printf.sprintf "trap REQUEST #%d to %s pattern=%06o put=%dB get=%dB" tid
      (peer_name dst) pattern put_size get_size
  | Enqueue { tid; peer; pkt } ->
    Printf.sprintf "enqueue %s#%d for %d" (pkt_name pkt) tid peer
  | Tx { tid; peer; pkt; bytes; seq; retry } ->
    Printf.sprintf "send %s#%d+%dB sn=%d%s to %s" (pkt_name pkt) tid bytes seq
      (if retry then " retry" else "")
      (peer_name peer)
  | Rx { tid; peer; pkt; bytes; seq } ->
    Printf.sprintf "recv %s#%d+%dB sn=%d from %d" (pkt_name pkt) tid bytes seq peer
  | Acked { tid; peer; pkt } -> Printf.sprintf "%s#%d acked by %d" (pkt_name pkt) tid peer
  | Busy_nack { tid; peer } -> Printf.sprintf "busy: nacking REQ#%d from %d" tid peer
  | Retransmit { tid; peer; pkt; attempt } ->
    Printf.sprintf "retransmit %s#%d to %d (attempt %d)" (pkt_name pkt) tid peer attempt
  | Window_advance { peer; base; in_flight } ->
    Printf.sprintf "send window to %d advanced to base sn=%d (%d in flight)" peer base
      in_flight
  | Window_buffer { tid; peer; seq; expected } ->
    Printf.sprintf "hold #%d sn=%d from %d in receive window (expecting sn=%d)" tid seq
      peer expected
  | Cwnd_change { peer; cwnd; in_flight; reason } ->
    Printf.sprintf "cwnd to %d now %d on %s (%d in flight)" peer cwnd reason in_flight
  | Rtt_sample { peer; sample_us; srtt_us; rttvar_us } ->
    Printf.sprintf "rtt to %d sample %d us (srtt %d us, rttvar %d us)" peer sample_us
      srtt_us rttvar_us
  | Probe { tid; peer; misses } ->
    Printf.sprintf "probe #%d at %d (misses %d)" tid peer misses
  | Deliver { tid; src; pattern; put_size; get_size; from_buffer } ->
    Printf.sprintf "deliver REQ#%d from %d pattern=%06o put=%dB get=%dB%s" tid src pattern
      put_size get_size
      (if from_buffer then " (from pipeline buffer)" else "")
  | Handler_invoke -> "handler invoked"
  | Endhandler -> "endhandler"
  | Complete { tid; status } -> Printf.sprintf "complete #%d %s" tid status
  | Bus_frame { src; dst; bytes; start_us; end_us } ->
    Printf.sprintf "frame %d->%s %dB on wire %d..%d us" src (peer_name dst) bytes start_us
      end_us
  | Bus_drop { src; dst; reason } -> Printf.sprintf "frame %d->%d %s" src dst reason
  | Fault_partition { group_a; group_b } ->
    Printf.sprintf "fault: partition {%s} | {%s}" (mids_string group_a) (mids_string group_b)
  | Fault_heal -> "fault: partition healed"
  | Fault_crash { mid } -> Printf.sprintf "fault: crash node %d" mid
  | Fault_reboot { mid } -> Printf.sprintf "fault: reboot node %d" mid
  | Fault_duplicate { count } -> Printf.sprintf "fault: duplicate next %d frame(s)" count
  | Fault_jitter { min_us; max_us } ->
    Printf.sprintf "fault: delivery jitter %d..%d us" min_us max_us
  | Fault_loss_burst { rate_pct; duration_us } ->
    Printf.sprintf "fault: loss burst %d%% for %d us" rate_pct duration_us
  | Store_phase { op; phase; key; acks; quorum; elapsed_us } ->
    Printf.sprintf "store %s key=%d %s %d/%d acks in %d us" op key phase acks quorum
      elapsed_us
  | Store_retry { op; phase; key; attempt } ->
    Printf.sprintf "store %s key=%d %s retry (attempt %d)" op key phase attempt
  | Store_complete { op; key; ok; rounds; elapsed_us } ->
    Printf.sprintf "store %s key=%d %s after %d round(s) in %d us" op key
      (if ok then "ok" else "NO QUORUM")
      rounds elapsed_us
  | Scd_broadcast { sd; sn; payload } ->
    Printf.sprintf "scd broadcast (%d,%d) %s" sd sn payload
  | Scd_deliver { size; pending } ->
    Printf.sprintf "scd deliver set of %d message(s), %d buffered" size pending
  | Scd_op { op; origin; oseq; ok; elapsed_us } ->
    Printf.sprintf "scd %s op#%d.%d %s in %d us" op origin oseq
      (if ok then "ok" else "FAILED")
      elapsed_us
  | Note text -> text

(* tid carried by an event, if any (for span grouping). *)
let tid = function
  | Trap { tid; _ } | Enqueue { tid; _ } | Tx { tid; _ } | Rx { tid; _ }
  | Acked { tid; _ } | Busy_nack { tid; _ } | Retransmit { tid; _ } | Probe { tid; _ }
  | Deliver { tid; _ } | Complete { tid; _ } | Window_buffer { tid; _ } ->
    if tid = no_tid then None else Some tid
  | Window_advance _ | Cwnd_change _ | Rtt_sample _ -> None
  | Handler_invoke | Endhandler | Bus_frame _ | Bus_drop _ | Note _ | Fault_partition _
  | Fault_heal | Fault_crash _ | Fault_reboot _ | Fault_duplicate _ | Fault_jitter _
  | Fault_loss_burst _ | Store_phase _ | Store_retry _ | Store_complete _
  | Scd_broadcast _ | Scd_deliver _ | Scd_op _ ->
    None
