(** The per-network event sink shared by every layer.

    When tracing is disabled, [emit] is one branch; hot call sites guard
    with [tracing] before building the event payload so a disabled
    recorder costs neither time nor allocation. The recorder also owns a
    {!Metrics.t} registry for network-global measurements. *)

type t

val create : ?tracing:bool -> unit -> t

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val metrics : t -> Metrics.t

val emit : t -> time_us:int -> mid:int -> actor:string -> Event.kind -> unit

(** Events in chronological order (same-instant events keep emission
    order). *)
val events : t -> Event.t list

val length : t -> int
val clear : t -> unit
