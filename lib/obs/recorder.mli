(** The per-network event sink shared by every layer.

    When tracing is disabled, [emit] is one branch; hot call sites guard
    with [tracing] before building the event payload so a disabled
    recorder costs neither time nor allocation. The recorder also owns a
    {!Metrics.t} registry for network-global measurements. *)

type t

val create : ?tracing:bool -> unit -> t

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val metrics : t -> Metrics.t

(** Causal-context minting (off by default). When off, [mint_root] and
    [mint_child] return [None], so instrumentation sites stamp nothing
    and the event stream is identical to a pre-causal recorder's. *)
val causal : t -> bool

val set_causal : t -> bool -> unit

(** Fresh trace id + root span for a client-visible operation. *)
val mint_root : t -> Causal.ctx option

(** Fresh span under [parent] (same trace id). *)
val mint_child : t -> Causal.ctx -> Causal.ctx option

val emit :
  t -> ?ctx:Causal.ctx -> time_us:int -> mid:int -> actor:string -> Event.kind -> unit

(** Events in chronological order (same-instant events keep emission
    order). *)
val events : t -> Event.t list

val length : t -> int
val clear : t -> unit
