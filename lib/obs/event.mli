(** Typed observability events.

    One constructor per protocol-visible moment of a request's life (trap,
    enqueue, tx, rx, ack, busy-nack, retransmit, probe, deliver,
    handler-invoke, endhandler, complete), plus bus-level frame events and
    a [Note] carrying legacy free-form trace text. Every packet-shaped
    event records the transaction id, peer, packet kind, byte count and
    sequence bit, so phase breakdowns are derived from data instead of
    grepped out of format strings. *)

type pkt =
  | P_request
  | P_accept
  | P_put_data
  | P_ack
  | P_busy
  | P_error
  | P_cancel
  | P_cancel_reply
  | P_probe
  | P_probe_reply
  | P_discover
  | P_discover_reply

val pkt_name : pkt -> string

(** Sentinel for events that carry no transaction id. *)
val no_tid : int

(** Sentinel destination for broadcast. *)
val broadcast_peer : int

type kind =
  | Trap of { tid : int; dst : int; pattern : int; put_size : int; get_size : int }
  | Enqueue of { tid : int; peer : int; pkt : pkt }
  | Tx of { tid : int; peer : int; pkt : pkt; bytes : int; seq : int; retry : bool }
  | Rx of { tid : int; peer : int; pkt : pkt; bytes : int; seq : int }
  | Acked of { tid : int; peer : int; pkt : pkt }
  | Busy_nack of { tid : int; peer : int }
  | Retransmit of { tid : int; peer : int; pkt : pkt; attempt : int }
  | Window_advance of { peer : int; base : int; in_flight : int }
      (** Sender side: a cumulative ack moved the send window base
          (emitted only when the configured window exceeds 1, so the
          window-1 event stream stays identical to the seed's). *)
  | Window_buffer of { tid : int; peer : int; seq : int; expected : int }
      (** Receiver side: an out-of-order packet parked in the receive
          window until the gap at [expected] fills. *)
  | Cwnd_change of { peer : int; cwnd : int; in_flight : int; reason : string }
      (** Congestion window moved: [reason] is ["ack"] (additive
          increase on a clean cumulative ack) or ["loss"]
          (multiplicative decrease on retransmission-timer expiry).
          Emitted only by windowed (> 1) transports with AIMD on. *)
  | Rtt_sample of { peer : int; sample_us : int; srtt_us : int; rttvar_us : int }
      (** One RTT measurement accepted by the estimator (Karn's rule:
          retransmitted packets never sample); [srtt_us]/[rttvar_us]
          are the post-update smoothed mean and variance. *)
  | Probe of { tid : int; peer : int; misses : int }
  | Deliver of { tid : int; src : int; pattern : int; put_size : int; get_size : int;
                 from_buffer : bool }
  | Handler_invoke
  | Endhandler
  | Complete of { tid : int; status : string }
  | Bus_frame of { src : int; dst : int; bytes : int; start_us : int; end_us : int }
  | Bus_drop of { src : int; dst : int; reason : string }
  | Fault_partition of { group_a : int list; group_b : int list }
      (** Injected network split: frames crossing the cut are dropped. *)
  | Fault_heal
  | Fault_crash of { mid : int }  (** Injected hardware crash of one node. *)
  | Fault_reboot of { mid : int }
      (** Node re-created with a fresh boot epoch (then quarantined, §5.4). *)
  | Fault_duplicate of { count : int }  (** Next [count] frames delivered twice. *)
  | Fault_jitter of { min_us : int; max_us : int }
      (** Per-frame delivery jitter enabled (frames may reorder). *)
  | Fault_loss_burst of { rate_pct : int; duration_us : int }
      (** Temporary elevated loss rate. *)
  | Store_phase of
      { op : string; phase : string; key : int; acks : int; quorum : int; elapsed_us : int }
      (** One quorum round of a replicated-store operation: [phase] is
          ["query"] or ["propagate"], [acks] of [quorum] needed answered. *)
  | Store_retry of { op : string; phase : string; key : int; attempt : int }
      (** A quorum round failed to assemble a majority and is retried. *)
  | Store_complete of { op : string; key : int; ok : bool; rounds : int; elapsed_us : int }
      (** A store operation finished ([ok = false]: no quorum reachable). *)
  | Scd_broadcast of { sd : int; sn : int; payload : string }
      (** An SCD member started a broadcast (first FORWARD of a message). *)
  | Scd_deliver of { size : int; pending : int }
      (** An SCD member delivered a message set of [size] messages
          ([pending] quadruplets remain buffered). *)
  | Scd_op of { op : string; origin : int; oseq : int; ok : bool; elapsed_us : int }
      (** An SCD client operation (write/snapshot/incr/cread) finished. *)
  | Note of string

type t = {
  time_us : int;
  mid : int;
  actor : string;
  kind : kind;
  ctx : Causal.ctx option;
      (** Causal identity, present only when the recorder mints contexts
          (off by default, so legacy traces are unchanged). *)
}

(** Short machine-readable label ("tx", "busy-nack", ...). *)
val kind_label : kind -> string

val peer_name : int -> string

(** Comma-joined mid list ("0,1,2"), used when rendering partition groups. *)
val mids_string : int list -> string

(** Human one-line rendering, used by the timeline exporter and the legacy
    [Trace.entries] view. *)
val message : kind -> string

(** Transaction id carried by the event, if any. *)
val tid : kind -> int option
