(** Metrics registry: named counters, gauges and log-scale histograms.

    Histograms store exact unit buckets for values below 64 and 32
    sub-buckets per power-of-two octave above (≤ ~3% relative error on
    percentiles), with exact count/sum/min/max. This replaces the raw
    sample lists the old [Stats] kept: memory is O(buckets), not O(n). *)

type t
type histogram

val create : unit -> t

(** Counters (monotonic). *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int

(** [counter_cell t name] is the counter's backing cell (created at zero
    on first use): hot paths bump the ref directly instead of paying a
    string hash + table probe per increment. Cells obtained before a
    {!reset} are detached by it — re-fetch afterwards. *)
val counter_cell : t -> string -> int ref

(** Gauges (set to the latest value). *)

val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int

(** Histograms. [observe] clamps negative values to 0. *)

val observe : t -> string -> int -> unit
val histogram : t -> string -> histogram option

(** The histogram's backing cell (created empty on first use); same
    hot-path/reset contract as {!counter_cell}. *)
val histogram_cell : t -> string -> histogram

module Histogram : sig
  type t = histogram

  val create : unit -> t
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  (** Nearest-rank percentile from the log-scale buckets, clamped to the
      observed [min, max]. [p] is clamped to [0, 100]; empty → 0. *)
  val percentile : t -> float -> int
end

val counter_names : t -> string list
val gauge_names : t -> string list
val histogram_names : t -> string list

val reset : t -> unit
val pp : Format.formatter -> t -> unit
