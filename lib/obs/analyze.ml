(* Offline trace analysis: the inverse of [Export.jsonl] plus the reports
   built on it (latency percentiles, per-pair retransmit/BUSY/goodput
   accounting, causal-tree reconstruction and critical paths).

   The parser is hand-rolled for the same reason the exporter is: the
   image carries no JSON library. It reads exactly the flat one-object-
   per-line shape [Export.event_fields] emits — each field an int, a
   string or a bool — and rebuilds the typed [Event.t], including the
   window-1 seq-as-bool rendering and the optional tr/sp/pa causal
   fields. *)

exception Parse_error of string

type json = J_int of int | J_str of string | J_bool of bool

(* ---- one-line JSON object parser ---------------------------------------- *)

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at column %d" msg !pos)) in
  let peek () = if !pos < n then line.[!pos] else fail "unexpected end of line" in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let expect c =
    let got = next () in
    if got <> c then fail (Printf.sprintf "expected '%c', got '%c'" c got)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_str () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           (* bind each digit: argument evaluation order is unspecified *)
           let d1 = hex (next ()) in
           let d2 = hex (next ()) in
           let d3 = hex (next ()) in
           let d4 = hex (next ()) in
           let code = (d1 lsl 12) lor (d2 lsl 8) lor (d3 lsl 4) lor d4 in
           (* The exporter only \u-escapes control characters; anything
              larger is kept literal so a foreign trace still parses. *)
           if code < 0x100 then Buffer.add_char b (Char.chr code)
           else Buffer.add_char b '?'
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_value () =
    match peek () with
    | '"' -> J_str (parse_str ())
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        J_bool true
      end
      else fail "bad literal"
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        J_bool false
      end
      else fail "bad literal"
    | '-' | '0' .. '9' ->
      let start = !pos in
      if peek () = '-' then incr pos;
      while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start || (!pos = start + 1 && line.[start] = '-') then fail "bad number";
      J_int (int_of_string (String.sub line start (!pos - start)))
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  expect '{';
  if !pos < n && peek () = '}' then begin
    incr pos;
    []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      let k = parse_str () in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      match next () with ',' -> go () | '}' -> () | _ -> fail "expected ',' or '}'"
    in
    go ();
    List.rev !fields
  end

(* ---- field accessors ------------------------------------------------------ *)

let int_f fields k =
  match List.assoc_opt k fields with
  | Some (J_int v) -> v
  | Some (J_bool b) -> if b then 1 else 0
  | Some (J_str _) | None -> raise (Parse_error (Printf.sprintf "missing int %S" k))

let str_f fields k =
  match List.assoc_opt k fields with
  | Some (J_str s) -> s
  | _ -> raise (Parse_error (Printf.sprintf "missing string %S" k))

let bool_f fields k =
  match List.assoc_opt k fields with
  | Some (J_bool b) -> b
  | _ -> raise (Parse_error (Printf.sprintf "missing bool %S" k))

(* Inverse of the exporter's window-1 booleanised sequence numbers. *)
let seq_f fields =
  match List.assoc_opt "seq" fields with
  | Some (J_bool b) -> if b then 1 else 0
  | Some (J_int v) -> v
  | _ -> raise (Parse_error "missing seq")

let pkt_of_name = function
  | "REQ" -> Event.P_request
  | "ACCEPT" -> Event.P_accept
  | "DATA" -> Event.P_put_data
  | "ACK" -> Event.P_ack
  | "BUSY" -> Event.P_busy
  | "ERR" -> Event.P_error
  | "CANCEL" -> Event.P_cancel
  | "CANCEL_R" -> Event.P_cancel_reply
  | "PROBE" -> Event.P_probe
  | "PROBE_R" -> Event.P_probe_reply
  | "DISCOVER" -> Event.P_discover
  | "DISCOVER_R" -> Event.P_discover_reply
  | s -> raise (Parse_error (Printf.sprintf "unknown packet kind %S" s))

let pkt_f fields = pkt_of_name (str_f fields "pkt")

let mids_of_string s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let kind_of_fields fields =
  let open Event in
  match str_f fields "ev" with
  | "trap" ->
    Trap
      { tid = int_f fields "tid"; dst = int_f fields "dst";
        pattern = int_f fields "pattern"; put_size = int_f fields "put";
        get_size = int_f fields "get" }
  | "enqueue" ->
    Enqueue { tid = int_f fields "tid"; peer = int_f fields "peer"; pkt = pkt_f fields }
  | "tx" ->
    Tx
      { tid = int_f fields "tid"; peer = int_f fields "peer"; pkt = pkt_f fields;
        bytes = int_f fields "bytes"; seq = seq_f fields; retry = bool_f fields "retry" }
  | "rx" ->
    Rx
      { tid = int_f fields "tid"; peer = int_f fields "peer"; pkt = pkt_f fields;
        bytes = int_f fields "bytes"; seq = seq_f fields }
  | "ack" ->
    Acked { tid = int_f fields "tid"; peer = int_f fields "peer"; pkt = pkt_f fields }
  | "busy-nack" -> Busy_nack { tid = int_f fields "tid"; peer = int_f fields "peer" }
  | "retransmit" ->
    Retransmit
      { tid = int_f fields "tid"; peer = int_f fields "peer"; pkt = pkt_f fields;
        attempt = int_f fields "attempt" }
  | "window-advance" ->
    Window_advance
      { peer = int_f fields "peer"; base = int_f fields "base";
        in_flight = int_f fields "in_flight" }
  | "window-buffer" ->
    Window_buffer
      { tid = int_f fields "tid"; peer = int_f fields "peer"; seq = int_f fields "seq";
        expected = int_f fields "expected" }
  | "cwnd-change" ->
    Cwnd_change
      { peer = int_f fields "peer"; cwnd = int_f fields "cwnd";
        in_flight = int_f fields "in_flight"; reason = str_f fields "reason" }
  | "rtt-sample" ->
    Rtt_sample
      { peer = int_f fields "peer"; sample_us = int_f fields "sample";
        srtt_us = int_f fields "srtt"; rttvar_us = int_f fields "rttvar" }
  | "probe" ->
    Probe
      { tid = int_f fields "tid"; peer = int_f fields "peer";
        misses = int_f fields "misses" }
  | "deliver" ->
    Deliver
      { tid = int_f fields "tid"; src = int_f fields "src";
        pattern = int_f fields "pattern"; put_size = int_f fields "put";
        get_size = int_f fields "get"; from_buffer = bool_f fields "buffered" }
  | "handler-invoke" -> Handler_invoke
  | "endhandler" -> Endhandler
  | "complete" -> Complete { tid = int_f fields "tid"; status = str_f fields "status" }
  | "bus-frame" ->
    Bus_frame
      { src = int_f fields "src"; dst = int_f fields "dst"; bytes = int_f fields "bytes";
        start_us = int_f fields "start"; end_us = int_f fields "end" }
  | "bus-drop" ->
    Bus_drop
      { src = int_f fields "src"; dst = int_f fields "dst";
        reason = str_f fields "reason" }
  | "fault-partition" ->
    Fault_partition
      { group_a = mids_of_string (str_f fields "a");
        group_b = mids_of_string (str_f fields "b") }
  | "fault-heal" -> Fault_heal
  | "fault-crash" -> Fault_crash { mid = int_f fields "node" }
  | "fault-reboot" -> Fault_reboot { mid = int_f fields "node" }
  | "fault-duplicate" -> Fault_duplicate { count = int_f fields "count" }
  | "fault-jitter" ->
    Fault_jitter { min_us = int_f fields "min"; max_us = int_f fields "max" }
  | "fault-loss-burst" ->
    Fault_loss_burst
      { rate_pct = int_f fields "rate_pct"; duration_us = int_f fields "duration" }
  | "store-phase" ->
    Store_phase
      { op = str_f fields "op"; phase = str_f fields "phase"; key = int_f fields "key";
        acks = int_f fields "acks"; quorum = int_f fields "quorum";
        elapsed_us = int_f fields "elapsed" }
  | "store-retry" ->
    Store_retry
      { op = str_f fields "op"; phase = str_f fields "phase"; key = int_f fields "key";
        attempt = int_f fields "attempt" }
  | "store-complete" ->
    Store_complete
      { op = str_f fields "op"; key = int_f fields "key"; ok = bool_f fields "ok";
        rounds = int_f fields "rounds"; elapsed_us = int_f fields "elapsed" }
  | "scd-broadcast" ->
    Scd_broadcast
      { sd = int_f fields "sd"; sn = int_f fields "sn";
        payload = str_f fields "payload" }
  | "scd-deliver" ->
    Scd_deliver { size = int_f fields "size"; pending = int_f fields "pending" }
  | "scd-op" ->
    Scd_op
      { op = str_f fields "op"; origin = int_f fields "origin";
        oseq = int_f fields "oseq"; ok = bool_f fields "ok";
        elapsed_us = int_f fields "elapsed" }
  | "note" -> Note (str_f fields "text")
  | s -> raise (Parse_error (Printf.sprintf "unknown event kind %S" s))

let event_of_line line =
  let fields = parse_line line in
  let kind = kind_of_fields fields in
  let actor = match kind with Event.Note _ -> str_f fields "actor" | _ -> "" in
  let ctx =
    match List.assoc_opt "tr" fields with
    | Some (J_int trace) ->
      Some
        {
          Causal.trace;
          span = int_f fields "sp";
          parent =
            (match List.assoc_opt "pa" fields with
             | Some (J_int p) -> p
             | _ -> Causal.no_parent);
        }
    | _ -> None
  in
  { Event.time_us = int_f fields "t"; mid = int_f fields "mid"; actor; kind; ctx }

let events_of_string s =
  let lines = String.split_on_char '\n' s in
  let i = ref 0 in
  List.filter_map
    (fun line ->
      incr i;
      if String.trim line = "" then None
      else
        try Some (event_of_line line)
        with Parse_error msg ->
          raise (Parse_error (Printf.sprintf "line %d: %s" !i msg)))
    lines

let events_of_channel ic =
  let b = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel b ic 65536
     done
   with End_of_file -> ());
  events_of_string (Buffer.contents b)

(* ---- latency percentiles -------------------------------------------------- *)

(* Closed request spans folded into the shared log-scale histogram, so
   offline percentiles carry exactly the in-memory error bounds. *)
let latency_histogram events =
  let h = Metrics.Histogram.create () in
  List.iter
    (fun span ->
      match Span.duration_us span with
      | Some d -> Metrics.Histogram.observe h d
      | None -> ())
    (Span.of_events events);
  h

(* ---- per-pair accounting -------------------------------------------------- *)

type pair_stats = {
  p_src : int;
  p_dst : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable rx_pkts : int;
  mutable rx_bytes : int;
  mutable retransmits : int;
  mutable busy_nacks : int;
}

(* Directional (src -> dst) accounting. Tx is charged at the sender,
   Rx credited at the receiver, so [rx_bytes / tx_bytes] is the pair's
   goodput: the fraction of transmitted bytes that arrived and were
   processed (loss, CRC drops and partition cuts open the gap;
   retransmissions that do arrive count on both sides). *)
let pair_accounting events =
  let pairs : (int * int, pair_stats) Hashtbl.t = Hashtbl.create 16 in
  let get src dst =
    match Hashtbl.find_opt pairs (src, dst) with
    | Some p -> p
    | None ->
      let p =
        { p_src = src; p_dst = dst; tx_pkts = 0; tx_bytes = 0; rx_pkts = 0;
          rx_bytes = 0; retransmits = 0; busy_nacks = 0 }
      in
      Hashtbl.replace pairs (src, dst) p;
      p
  in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Tx { peer; bytes; _ } ->
        let p = get e.Event.mid peer in
        p.tx_pkts <- p.tx_pkts + 1;
        p.tx_bytes <- p.tx_bytes + bytes
      | Event.Rx { peer; bytes; _ } ->
        let p = get peer e.Event.mid in
        p.rx_pkts <- p.rx_pkts + 1;
        p.rx_bytes <- p.rx_bytes + bytes
      | Event.Retransmit { peer; _ } ->
        let p = get e.Event.mid peer in
        p.retransmits <- p.retransmits + 1
      | Event.Busy_nack { peer; _ } ->
        (* Emitted by the server nacking [peer]'s REQUEST: count it
           against the requester->server direction the REQUEST travelled. *)
        let p = get peer e.Event.mid in
        p.busy_nacks <- p.busy_nacks + 1
      | _ -> ())
    events;
  Hashtbl.fold (fun _ p acc -> p :: acc) pairs []
  |> List.sort (fun a b -> compare (a.p_src, a.p_dst) (b.p_src, b.p_dst))

let goodput_pct p =
  if p.tx_bytes = 0 then 100.0
  else 100.0 *. float_of_int p.rx_bytes /. float_of_int p.tx_bytes

(* ---- causal trees --------------------------------------------------------- *)

type span_node = {
  sn_trace : int;
  sn_span : int;
  sn_parent : int;  (* [Causal.no_parent] for roots *)
  mutable sn_mids : int list;  (* ascending, deduped *)
  mutable sn_first_us : int;
  mutable sn_last_us : int;
  mutable sn_events : int;
  mutable sn_label : string;
  mutable sn_label_rank : int;
  mutable sn_children : span_node list;  (* ascending span id *)
}

type tree = {
  t_trace : int;
  t_roots : span_node list;  (* >1 only if a parent span emitted no events *)
  t_spans : int;
  t_mids : int list;  (* ascending, deduped: every node the tree touches *)
  t_first_us : int;
  t_last_us : int;
}

(* Label preference: a span named by what it *is* beats one named by the
   first packet that happened to mention it. *)
let label_of_kind mid kind =
  let open Event in
  match kind with
  | Store_complete { op; key; ok; _ } ->
    (4, Printf.sprintf "store %s key=%d%s" op key (if ok then "" else " NO-QUORUM"))
  | Store_phase { op; key; _ } | Store_retry { op; key; _ } ->
    (3, Printf.sprintf "store %s key=%d" op key)
  | Scd_op { op; origin; oseq; ok; _ } ->
    (4, Printf.sprintf "scd %s op#%d.%d%s" op origin oseq (if ok then "" else " FAILED"))
  | Trap { tid; dst; _ } -> (3, Printf.sprintf "req#%d %d->%s" tid mid (peer_name dst))
  | Deliver { tid; src; _ } -> (2, Printf.sprintf "serve#%d @%d from %d" tid mid src)
  | Complete { tid; status } -> (1, Printf.sprintf "req#%d %s" tid status)
  | k -> (0, Printf.sprintf "%s @%d" (kind_label k) mid)

let causal_trees events =
  let nodes : (int, span_node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.Event.ctx with
      | None -> ()
      | Some ctx ->
        let node =
          match Hashtbl.find_opt nodes ctx.Causal.span with
          | Some node -> node
          | None ->
            let node =
              { sn_trace = ctx.Causal.trace; sn_span = ctx.Causal.span;
                sn_parent = ctx.Causal.parent; sn_mids = []; sn_first_us = e.Event.time_us;
                sn_last_us = e.Event.time_us; sn_events = 0; sn_label = "";
                sn_label_rank = -1; sn_children = [] }
            in
            Hashtbl.replace nodes ctx.Causal.span node;
            node
        in
        node.sn_events <- node.sn_events + 1;
        if e.Event.time_us < node.sn_first_us then node.sn_first_us <- e.Event.time_us;
        if e.Event.time_us > node.sn_last_us then node.sn_last_us <- e.Event.time_us;
        if e.Event.mid >= 0 && not (List.mem e.Event.mid node.sn_mids) then
          node.sn_mids <- List.sort compare (e.Event.mid :: node.sn_mids);
        let rank, label = label_of_kind e.Event.mid e.Event.kind in
        if rank > node.sn_label_rank then begin
          node.sn_label_rank <- rank;
          node.sn_label <- label
        end)
    events;
  (* Link children; orphans (parent span never emitted) become roots. *)
  let by_trace : (int, span_node list ref) Hashtbl.t = Hashtbl.create 16 in
  let roots_of trace =
    match Hashtbl.find_opt by_trace trace with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace by_trace trace r;
      r
  in
  Hashtbl.iter
    (fun _ node ->
      match
        if node.sn_parent = Causal.no_parent then None
        else Hashtbl.find_opt nodes node.sn_parent
      with
      | Some parent -> parent.sn_children <- node :: parent.sn_children
      | None ->
        let r = roots_of node.sn_trace in
        r := node :: !r)
    nodes;
  Hashtbl.iter
    (fun _ node ->
      node.sn_children <-
        List.sort (fun a b -> compare a.sn_span b.sn_span) node.sn_children)
    nodes;
  Hashtbl.fold
    (fun trace roots acc ->
      let rec fold f acc node = List.fold_left (fold f) (f acc node) node.sn_children in
      let roots = List.sort (fun a b -> compare a.sn_span b.sn_span) !roots in
      let spans = List.fold_left (fold (fun n _ -> n + 1)) 0 roots in
      let mids =
        List.fold_left
          (fold (fun acc node ->
               List.fold_left
                 (fun acc m -> if List.mem m acc then acc else m :: acc)
                 acc node.sn_mids))
          [] roots
        |> List.sort compare
      in
      let first =
        List.fold_left (fold (fun acc n -> min acc n.sn_first_us)) max_int roots
      in
      let last = List.fold_left (fold (fun acc n -> max acc n.sn_last_us)) 0 roots in
      { t_trace = trace; t_roots = roots; t_spans = spans; t_mids = mids;
        t_first_us = first; t_last_us = last }
      :: acc)
    by_trace []
  |> List.sort (fun a b -> compare a.t_trace b.t_trace)

let cross_node tree = List.length tree.t_mids > 1

(* The chain of spans that bounds the tree's end-to-end time: from each
   node, descend into the child that finished last. *)
let critical_path tree =
  let rec down node =
    match node.sn_children with
    | [] -> [ node ]
    | children ->
      let last =
        List.fold_left
          (fun best c -> if c.sn_last_us > best.sn_last_us then c else best)
          (List.hd children) (List.tl children)
      in
      if last.sn_last_us > node.sn_last_us then node :: down last else [ node ]
  in
  match tree.t_roots with
  | [] -> []
  | root :: rest ->
    let root =
      List.fold_left (fun b r -> if r.sn_last_us > b.sn_last_us then r else b) root rest
    in
    down root

(* ---- DOT export ----------------------------------------------------------- *)

let dot trees =
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph causal {\n  rankdir=LR;\n  node [shape=box,fontsize=10];\n";
  List.iter
    (fun tree ->
      Buffer.add_string b
        (Printf.sprintf "  subgraph cluster_tr%d {\n    label=\"trace %d (%d us)\";\n"
           tree.t_trace tree.t_trace (tree.t_last_us - tree.t_first_us));
      let rec emit node =
        Buffer.add_string b
          (Printf.sprintf "    sp%d [label=\"%s\\nmid %s  %d..%d us\"];\n" node.sn_span
             (String.concat ""
                (List.map
                   (fun c ->
                     match c with
                     | '"' -> "\\\""
                     | '\\' -> "\\\\"
                     | c -> String.make 1 c)
                   (List.init (String.length node.sn_label) (String.get node.sn_label))))
             (Event.mids_string node.sn_mids)
             node.sn_first_us node.sn_last_us);
        List.iter
          (fun child ->
            Buffer.add_string b
              (Printf.sprintf "    sp%d -> sp%d;\n" node.sn_span child.sn_span);
            emit child)
          node.sn_children
      in
      List.iter emit tree.t_roots;
      Buffer.add_string b "  }\n")
    trees;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ---- text report ----------------------------------------------------------- *)

let pp_pairs ppf pairs =
  Format.fprintf ppf "  %-9s %8s %10s %8s %10s %7s %6s %9s@." "pair" "tx-pkts"
    "tx-bytes" "rx-pkts" "rx-bytes" "retrans" "busy" "goodput";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %3s -> %-3s %7d %10d %8d %10d %7d %6d %8.1f%%@."
        (Event.peer_name p.p_src) (Event.peer_name p.p_dst) p.tx_pkts p.tx_bytes
        p.rx_pkts p.rx_bytes p.retransmits p.busy_nacks (goodput_pct p))
    pairs

let pp_critical_path ppf tree =
  Format.fprintf ppf "  trace %d: %d spans over mids {%s}, %d us@." tree.t_trace
    tree.t_spans
    (Event.mids_string tree.t_mids)
    (tree.t_last_us - tree.t_first_us);
  List.iter
    (fun node ->
      Format.fprintf ppf "    %8d..%-8d mid %-5s %s@." node.sn_first_us node.sn_last_us
        (Event.mids_string node.sn_mids)
        node.sn_label)
    (critical_path tree)

let report ?(max_paths = 5) ppf events =
  let n = List.length events in
  let mids =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if e.Event.mid >= 0 then Some e.Event.mid else None)
         events)
  in
  let t_min = List.fold_left (fun a e -> min a e.Event.time_us) max_int events in
  let t_max = List.fold_left (fun a e -> max a e.Event.time_us) 0 events in
  Format.fprintf ppf "== SUMMARY ==@.";
  if n = 0 then Format.fprintf ppf "  empty trace@."
  else
    Format.fprintf ppf "  %d events, %d nodes, %d..%d us (%d us)@." n (List.length mids)
      t_min t_max (t_max - t_min);
  (* requests *)
  let spans = Span.of_events events in
  let closed = List.filter (fun s -> s.Span.end_us <> None) spans in
  let h = latency_histogram events in
  Format.fprintf ppf "@.== REQUESTS ==@.";
  Format.fprintf ppf "  %d spans (%d closed, %d still open at capture)@."
    (List.length spans) (List.length closed)
    (List.length spans - List.length closed);
  if Metrics.Histogram.count h > 0 then begin
    Format.fprintf ppf "  latency p50=%d us  p90=%d us  p99=%d us  max=%d us@."
      (Metrics.Histogram.percentile h 50.0)
      (Metrics.Histogram.percentile h 90.0)
      (Metrics.Histogram.percentile h 99.0)
      (Metrics.Histogram.max_value h);
    let bd = Span.breakdown closed in
    let total = List.fold_left (fun a (_, us) -> a + us) 0 bd in
    if total > 0 then
      List.iter
        (fun (phase, us) ->
          if us > 0 then
            Format.fprintf ppf "  phase %-16s %10d us (%4.1f%%)@." (Span.phase_name phase)
              us
              (100.0 *. float_of_int us /. float_of_int total))
        bd
  end;
  (* per-pair accounting *)
  let pairs = pair_accounting events in
  if pairs <> [] then begin
    Format.fprintf ppf "@.== NODE PAIRS ==@.";
    pp_pairs ppf pairs
  end;
  (* causal trees *)
  let trees = causal_trees events in
  Format.fprintf ppf "@.== CAUSAL TREES ==@.";
  if trees = [] then
    Format.fprintf ppf
      "  no causal contexts in trace (record with causal tracing enabled)@."
  else begin
    let cross = List.filter cross_node trees in
    let spans_total = List.fold_left (fun a t -> a + t.t_spans) 0 trees in
    Format.fprintf ppf "  %d traces, %d spans, %d cross-node trees@." (List.length trees)
      spans_total (List.length cross);
    let slowest =
      List.sort
        (fun a b -> compare (b.t_last_us - b.t_first_us) (a.t_last_us - a.t_first_us))
        trees
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    Format.fprintf ppf "@.  critical paths of the %d slowest:@."
      (min max_paths (List.length slowest));
    List.iter (pp_critical_path ppf) (take max_paths slowest)
  end
