(** Request-lifecycle spans derived from the typed event stream.

    A span runs from the requester's REQUEST trap ({!Event.Trap}) to its
    completion interrupt ({!Event.Complete}), divided into phase segments:
    queued → on-wire ↔ busy-backoff → awaiting-accept → accept-transfer.
    The paper's per-phase overhead breakdown (§5.5 T2) is computed from
    these segments rather than hand-placed accounting calls. *)

type phase = Queued | On_wire | Busy_backoff | Awaiting_accept | Accept_transfer

val phase_name : phase -> string
val all_phases : phase list

type segment = { phase : phase; seg_start_us : int; seg_end_us : int }

type t = {
  tid : int;
  mid : int;
  dst : int;
  pattern : int;
  start_us : int;
  end_us : int option;
  status : string option;
  segments : segment list;
}

(** Derive spans from a chronological event stream. Spans still open at
    the end of the stream are returned with [end_us = None]. *)
val of_events : Event.t list -> t list

val duration_us : t -> int option

(** Total microseconds attributed to each phase across [spans]. *)
val breakdown : t list -> (phase * int) list

val pp : Format.formatter -> t -> unit
