(** Causal identity for cross-node tracing.

    A [ctx] names one node of a per-request causal tree: [trace] groups
    every span born from one client-visible operation (a store op, a
    REQUEST trap), [span] identifies this node and [parent] its parent
    span ([no_parent] at the root). Contexts are minted through
    {!Recorder.mint_root} and {!Recorder.mint_child} so ids are unique
    within a network, and are carried out of band on simulated frame
    metadata — never in wire bytes — so causal tracing is invisible to
    protocol timing and to the golden window-1 trace. *)

type ctx = { trace : int; span : int; parent : int }

(** Parent sentinel of a tree root. *)
val no_parent : int

val root : trace:int -> span:int -> ctx

(** [child parent ~span] keeps [parent]'s trace id and hangs the new span
    under [parent.span]. *)
val child : ctx -> span:int -> ctx

val is_root : ctx -> bool

(** "tr7/sp12<sp3" (root contexts omit the parent). *)
val pp : Format.formatter -> ctx -> unit
