(* Exporters for the recorded event stream.

   - [pp_timeline]: the human-readable "%8d us  actor  message" rendering
     the old string trace printed;
   - JSONL: one JSON object per event, for machine diffing (golden tests)
     and ad-hoc jq analysis;
   - Chrome trace_event JSON: loads in about://tracing or Perfetto with
     one process lane per node (requests track + packets track) and a
     separate lane for bus medium occupancy. *)

let pp_timeline ppf events =
  List.iter
    (fun e ->
      Format.fprintf ppf "%8d us  %-12s %s@." e.Event.time_us e.Event.actor
        (Event.message e.Event.kind))
    events

(* ---- JSON plumbing (hand-rolled: no json dependency in the image) ------- *)

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type json_field = string * [ `Int of int | `Str of string | `Bool of bool ]

let add_object b (fields : json_field list) =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b k;
      Buffer.add_string b "\":";
      match v with
      | `Int n -> Buffer.add_string b (string_of_int n)
      | `Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape_json s);
        Buffer.add_char b '"'
      | `Bool flag -> Buffer.add_string b (if flag then "true" else "false"))
    fields;
  Buffer.add_char b '}'

(* ---- JSONL -------------------------------------------------------------- *)

let event_fields (e : Event.t) : json_field list =
  let open Event in
  let base = [ ("t", `Int e.time_us); ("mid", `Int e.mid); ("ev", `Str (kind_label e.kind)) ] in
  (* Window-1 traffic only uses sequence numbers 0/1, which are rendered as
     the booleans the alternating-bit seed emitted so the golden JSONL
     trace stays byte-identical; wider windows render the number. *)
  let seq_field seq : [ `Int of int | `Str of string | `Bool of bool ] =
    if seq < 2 then `Bool (seq = 1) else `Int seq
  in
  let extra =
    match e.kind with
    | Trap { tid; dst; pattern; put_size; get_size } ->
      [ ("tid", `Int tid); ("dst", `Int dst); ("pattern", `Int pattern);
        ("put", `Int put_size); ("get", `Int get_size) ]
    | Enqueue { tid; peer; pkt } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("pkt", `Str (pkt_name pkt)) ]
    | Tx { tid; peer; pkt; bytes; seq; retry } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("pkt", `Str (pkt_name pkt));
        ("bytes", `Int bytes); ("seq", seq_field seq); ("retry", `Bool retry) ]
    | Rx { tid; peer; pkt; bytes; seq } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("pkt", `Str (pkt_name pkt));
        ("bytes", `Int bytes); ("seq", seq_field seq) ]
    | Acked { tid; peer; pkt } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("pkt", `Str (pkt_name pkt)) ]
    | Busy_nack { tid; peer } -> [ ("tid", `Int tid); ("peer", `Int peer) ]
    | Retransmit { tid; peer; pkt; attempt } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("pkt", `Str (pkt_name pkt));
        ("attempt", `Int attempt) ]
    | Window_advance { peer; base; in_flight } ->
      [ ("peer", `Int peer); ("base", `Int base); ("in_flight", `Int in_flight) ]
    | Window_buffer { tid; peer; seq; expected } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("seq", `Int seq);
        ("expected", `Int expected) ]
    | Cwnd_change { peer; cwnd; in_flight; reason } ->
      [ ("peer", `Int peer); ("cwnd", `Int cwnd); ("in_flight", `Int in_flight);
        ("reason", `Str reason) ]
    | Rtt_sample { peer; sample_us; srtt_us; rttvar_us } ->
      [ ("peer", `Int peer); ("sample", `Int sample_us); ("srtt", `Int srtt_us);
        ("rttvar", `Int rttvar_us) ]
    | Probe { tid; peer; misses } ->
      [ ("tid", `Int tid); ("peer", `Int peer); ("misses", `Int misses) ]
    | Deliver { tid; src; pattern; put_size; get_size; from_buffer } ->
      [ ("tid", `Int tid); ("src", `Int src); ("pattern", `Int pattern);
        ("put", `Int put_size); ("get", `Int get_size); ("buffered", `Bool from_buffer) ]
    | Handler_invoke | Endhandler -> []
    | Complete { tid; status } -> [ ("tid", `Int tid); ("status", `Str status) ]
    | Bus_frame { src; dst; bytes; start_us; end_us } ->
      [ ("src", `Int src); ("dst", `Int dst); ("bytes", `Int bytes);
        ("start", `Int start_us); ("end", `Int end_us) ]
    | Bus_drop { src; dst; reason } ->
      [ ("src", `Int src); ("dst", `Int dst); ("reason", `Str reason) ]
    | Fault_partition { group_a; group_b } ->
      [ ("a", `Str (mids_string group_a)); ("b", `Str (mids_string group_b)) ]
    | Fault_heal -> []
    | Fault_crash { mid } -> [ ("node", `Int mid) ]
    | Fault_reboot { mid } -> [ ("node", `Int mid) ]
    | Fault_duplicate { count } -> [ ("count", `Int count) ]
    | Fault_jitter { min_us; max_us } -> [ ("min", `Int min_us); ("max", `Int max_us) ]
    | Fault_loss_burst { rate_pct; duration_us } ->
      [ ("rate_pct", `Int rate_pct); ("duration", `Int duration_us) ]
    | Store_phase { op; phase; key; acks; quorum; elapsed_us } ->
      [ ("op", `Str op); ("phase", `Str phase); ("key", `Int key); ("acks", `Int acks);
        ("quorum", `Int quorum); ("elapsed", `Int elapsed_us) ]
    | Store_retry { op; phase; key; attempt } ->
      [ ("op", `Str op); ("phase", `Str phase); ("key", `Int key);
        ("attempt", `Int attempt) ]
    | Store_complete { op; key; ok; rounds; elapsed_us } ->
      [ ("op", `Str op); ("key", `Int key); ("ok", `Bool ok); ("rounds", `Int rounds);
        ("elapsed", `Int elapsed_us) ]
    | Scd_broadcast { sd; sn; payload } ->
      [ ("sd", `Int sd); ("sn", `Int sn); ("payload", `Str payload) ]
    | Scd_deliver { size; pending } -> [ ("size", `Int size); ("pending", `Int pending) ]
    | Scd_op { op; origin; oseq; ok; elapsed_us } ->
      [ ("op", `Str op); ("origin", `Int origin); ("oseq", `Int oseq); ("ok", `Bool ok);
        ("elapsed", `Int elapsed_us) ]
    | Note text -> [ ("actor", `Str e.actor); ("text", `Str text) ]
  in
  (* Causal identity trails the event's own fields; absent when the
     recorder minted no contexts, so pre-causal traces (and the golden
     pingpong trace) are byte-identical. *)
  let causal =
    match e.ctx with
    | None -> []
    | Some c ->
      ("tr", `Int c.Causal.trace) :: ("sp", `Int c.Causal.span)
      ::
      (if c.Causal.parent = Causal.no_parent then []
       else [ ("pa", `Int c.Causal.parent) ])
  in
  base @ extra @ causal

let jsonl_to_buffer b events =
  List.iter
    (fun e ->
      add_object b (event_fields e);
      Buffer.add_char b '\n')
    events

let jsonl events =
  let b = Buffer.create 4096 in
  jsonl_to_buffer b events;
  Buffer.contents b

let output_jsonl oc events =
  let b = Buffer.create 4096 in
  jsonl_to_buffer b events;
  Buffer.output_buffer oc b

(* ---- Metrics registry JSON ---------------------------------------------- *)

(* Machine-readable dump of one registry: counters and gauges verbatim,
   histograms as their summary statistics (the log-scale buckets are an
   implementation detail; percentiles carry the documented ≤ ~3% error).
   [add_object] cannot nest, so the object is written textually. *)
let metrics_to_buffer b m =
  let named_ints close names value =
    List.iteri
      (fun i name ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape_json name) (value name)))
      names;
    Buffer.add_string b close
  in
  Buffer.add_string b "{\"counters\":{";
  named_ints "},\"gauges\":{" (Metrics.counter_names m) (Metrics.counter m);
  named_ints "},\"histograms\":{" (Metrics.gauge_names m) (Metrics.gauge m);
  List.iteri
    (fun i name ->
      match Metrics.histogram m name with
      | None -> ()
      | Some h ->
        if i > 0 then Buffer.add_char b ',';
        let module H = Metrics.Histogram in
        Buffer.add_string b
          (Printf.sprintf
             "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.1f,\
              \"p50\":%d,\"p90\":%d,\"p95\":%d,\"p99\":%d}"
             (escape_json name) (H.count h) (H.sum h) (H.min_value h) (H.max_value h)
             (H.mean h) (H.percentile h 50.0) (H.percentile h 90.0) (H.percentile h 95.0)
             (H.percentile h 99.0)))
    (Metrics.histogram_names m);
  Buffer.add_string b "}}"

let metrics_json m =
  let b = Buffer.create 1024 in
  metrics_to_buffer b m;
  Buffer.contents b

(* [sections] pairs a name with a registry; the result is one top-level
   object, e.g. {"engine":{...},"bus":{...},"node.0":{...}}. *)
let metrics_sections_json sections =
  let b = Buffer.create 4096 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (escape_json name));
      metrics_to_buffer b m)
    sections;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ---- Chrome trace_event ------------------------------------------------- *)

(* Track ids within each node's process lane. *)
let track_requests = 0
let track_packets = 1
let track_client = 2

(* The shared medium gets its own process lane. *)
let bus_pid = 1_000

let chrome_to_buffer b events =
  let spans = Span.of_events events in
  let first = ref true in
  let emit fields =
    if !first then first := false else Buffer.add_string b ",\n ";
    add_object b fields
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n ";
  (* Process / thread name metadata: one lane per node. [add_object] cannot
     nest, so metadata args objects are written textually. *)
  let emit_meta ~pid ~tid name =
    if !first then first := false else Buffer.add_string b ",\n ";
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         (if tid < 0 then "process_name" else "thread_name")
         pid (max tid 0) (escape_json name))
  in
  let mids =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> if e.Event.mid >= 0 then Some e.Event.mid else None)
         events)
  in
  List.iter
    (fun mid ->
      emit_meta ~pid:mid ~tid:(-1) (Printf.sprintf "node-%d" mid);
      emit_meta ~pid:mid ~tid:track_requests "requests";
      emit_meta ~pid:mid ~tid:track_packets "packets";
      emit_meta ~pid:mid ~tid:track_client "client")
    mids;
  emit_meta ~pid:bus_pid ~tid:(-1) "bus";
  emit_meta ~pid:bus_pid ~tid:0 "medium";
  (* Spans and their phase segments: complete ("X") events on the
     requester's requests track. Nested X events render as a flame. *)
  List.iter
    (fun span ->
      (match Span.duration_us span with
       | Some dur ->
         emit
           [ ("name", `Str (Printf.sprintf "REQ#%d" span.Span.tid));
             ("cat", `Str "span"); ("ph", `Str "X"); ("pid", `Int span.Span.mid);
             ("tid", `Int track_requests); ("ts", `Int span.Span.start_us);
             ("dur", `Int dur) ]
       | None -> ());
      List.iter
        (fun seg ->
          emit
            [ ("name", `Str (Span.phase_name seg.Span.phase)); ("cat", `Str "phase");
              ("ph", `Str "X"); ("pid", `Int span.Span.mid);
              ("tid", `Int track_requests); ("ts", `Int seg.Span.seg_start_us);
              ("dur", `Int (seg.Span.seg_end_us - seg.Span.seg_start_us)) ])
        span.Span.segments)
    spans;
  (* Point events on the packets / client tracks; bus frames as X events
     on the medium lane. *)
  List.iter
    (fun e ->
      let open Event in
      match e.kind with
      | Bus_frame { src; dst; bytes; start_us; end_us } ->
        emit
          [ ("name", `Str (Printf.sprintf "%d->%s %dB" src (peer_name dst) bytes));
            ("cat", `Str "bus"); ("ph", `Str "X"); ("pid", `Int bus_pid);
            ("tid", `Int 0); ("ts", `Int start_us); ("dur", `Int (end_us - start_us)) ]
      | Trap _ | Handler_invoke | Endhandler | Complete _
      | Store_phase _ | Store_retry _ | Store_complete _
      | Scd_broadcast _ | Scd_deliver _ | Scd_op _ ->
        emit
          [ ("name", `Str (message e.kind)); ("cat", `Str "client"); ("ph", `Str "i");
            ("pid", `Int e.mid); ("tid", `Int track_client); ("ts", `Int e.time_us);
            ("s", `Str "t") ]
      | Tx _ | Rx _ | Acked _ | Busy_nack _ | Retransmit _ | Probe _ | Deliver _
      | Enqueue _ | Bus_drop _ | Window_advance _ | Window_buffer _ | Cwnd_change _
      | Rtt_sample _ ->
        emit
          [ ("name", `Str (message e.kind)); ("cat", `Str (kind_label e.kind));
            ("ph", `Str "i"); ("pid", `Int e.mid); ("tid", `Int track_packets);
            ("ts", `Int e.time_us); ("s", `Str "t") ]
      | Fault_partition _ | Fault_heal | Fault_crash _ | Fault_reboot _
      | Fault_duplicate _ | Fault_jitter _ | Fault_loss_burst _ ->
        (* Injected faults render on the bus lane: they shape what every
           node experiences, so they belong next to the medium timeline. *)
        emit
          [ ("name", `Str (message e.kind)); ("cat", `Str "fault"); ("ph", `Str "i");
            ("pid", `Int bus_pid); ("tid", `Int 0); ("ts", `Int e.time_us);
            ("s", `Str "g") ]
      | Note _ ->
        emit
          [ ("name", `Str (message e.kind)); ("cat", `Str "note"); ("ph", `Str "i");
            ("pid", `Int (max e.mid 0)); ("tid", `Int track_client);
            ("ts", `Int e.time_us); ("s", `Str "t") ])
    events;
  Buffer.add_string b "\n]}\n"

let chrome events =
  let b = Buffer.create 8192 in
  chrome_to_buffer b events;
  Buffer.contents b

let output_chrome oc events =
  let b = Buffer.create 8192 in
  chrome_to_buffer b events;
  Buffer.output_buffer oc b
