(* Causal identity for cross-node tracing.

   A context names one node in a per-request causal tree: [trace] groups
   every span born from one client-visible operation, [span] is this
   node's id and [parent] its parent's span id ([no_parent] at the
   root). Contexts are minted by the recorder (see
   {!Recorder.mint_root}/{!Recorder.mint_child}) so ids are unique per
   network, and travel *out of band* on simulated frame metadata — never
   inside wire bytes — so enabling causal tracing perturbs neither
   protocol timing nor packet encoding. *)

type ctx = { trace : int; span : int; parent : int }

let no_parent = -1

let root ~trace ~span = { trace; span; parent = no_parent }

(* A child keeps the trace id and hangs under [parent]'s span. *)
let child parent ~span = { trace = parent.trace; span; parent = parent.span }

let is_root ctx = ctx.parent = no_parent

let pp ppf ctx =
  if is_root ctx then Format.fprintf ppf "tr%d/sp%d" ctx.trace ctx.span
  else Format.fprintf ppf "tr%d/sp%d<sp%d" ctx.trace ctx.span ctx.parent
