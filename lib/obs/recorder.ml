(* The per-network event sink. All layers share one recorder; when tracing
   is off an [emit] is a single branch (call sites in hot paths test
   [tracing] before building the event payload, so nothing allocates). *)

type t = {
  mutable tracing : bool;
  mutable events : Event.t list;  (* newest first *)
  mutable n_events : int;
  metrics : Metrics.t;
}

let create ?(tracing = false) () =
  { tracing; events = []; n_events = 0; metrics = Metrics.create () }

let tracing t = t.tracing
let set_tracing t flag = t.tracing <- flag

let metrics t = t.metrics

let emit t ~time_us ~mid ~actor kind =
  if t.tracing then begin
    t.events <- { Event.time_us; mid; actor; kind } :: t.events;
    t.n_events <- t.n_events + 1
  end

(* Events in chronological order. Same-instant events keep emission order. *)
let events t = List.rev t.events

let length t = t.n_events

let clear t =
  t.events <- [];
  t.n_events <- 0
