(* The per-network event sink. All layers share one recorder; when tracing
   is off an [emit] is a single branch (call sites in hot paths test
   [tracing] before building the event payload, so nothing allocates). *)

type t = {
  mutable tracing : bool;
  mutable causal : bool;
  mutable next_trace : int;  (* trace-id mint *)
  mutable next_span : int;  (* span-id mint, shared by every node *)
  mutable events : Event.t list;  (* newest first *)
  mutable n_events : int;
  metrics : Metrics.t;
}

let create ?(tracing = false) () =
  { tracing; causal = false; next_trace = 0; next_span = 0; events = [];
    n_events = 0; metrics = Metrics.create () }

let tracing t = t.tracing
let set_tracing t flag = t.tracing <- flag

let causal t = t.causal
let set_causal t flag = t.causal <- flag

(* Minting only increments two counters: enabling causal tracing never
   schedules engine work, so simulated timing is byte-identical with it
   on or off (the ids just ride events and frame metadata). *)
let mint_root t =
  if not t.causal then None
  else begin
    let trace = t.next_trace and span = t.next_span in
    t.next_trace <- trace + 1;
    t.next_span <- span + 1;
    Some (Causal.root ~trace ~span)
  end

let mint_child t parent =
  if not t.causal then None
  else begin
    let span = t.next_span in
    t.next_span <- span + 1;
    Some (Causal.child parent ~span)
  end

let metrics t = t.metrics

let emit t ?ctx ~time_us ~mid ~actor kind =
  if t.tracing then begin
    t.events <- { Event.time_us; mid; actor; kind; ctx } :: t.events;
    t.n_events <- t.n_events + 1
  end

(* Events in chronological order. Same-instant events keep emission order. *)
let events t = List.rev t.events

let length t = t.n_events

let clear t =
  t.events <- [];
  t.n_events <- 0
