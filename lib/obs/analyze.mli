(** Offline analysis of exported JSONL traces.

    The parser is the exact inverse of {!Export.jsonl}: it reads the flat
    one-object-per-line format (including the window-1 seq-as-bool
    rendering and the optional [tr]/[sp]/[pa] causal fields) back into
    typed {!Event.t} values, and the reports built on top — latency
    percentiles through the shared log-scale histograms, per-node-pair
    retransmit/BUSY/goodput accounting, and causal-tree reconstruction —
    are shared by the [soda_trace] CLI, the benchmarks and the tests. *)

exception Parse_error of string

(** {1 Parsing} *)

(** [event_of_line line] parses one JSONL line.
    @raise Parse_error on malformed input or an unknown event kind. *)
val event_of_line : string -> Event.t

(** Parse a whole JSONL document; blank lines are skipped. Errors are
    re-raised with a ["line N:"] prefix. *)
val events_of_string : string -> Event.t list

val events_of_channel : in_channel -> Event.t list

(** {1 Latency} *)

(** Closed request spans ({!Span.of_events}) folded into a fresh
    log-scale histogram, so offline percentiles match the in-memory
    {!Metrics} error bounds. *)
val latency_histogram : Event.t list -> Metrics.Histogram.t

(** {1 Per-pair accounting} *)

type pair_stats = {
  p_src : int;
  p_dst : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable rx_pkts : int;
  mutable rx_bytes : int;
  mutable retransmits : int;
  mutable busy_nacks : int;
}

(** Directional (src → dst) accounting, sorted by pair. Tx is charged at
    the sender and Rx credited at the receiver, so the ratio is the
    pair's goodput; BUSY nacks count against the direction the nacked
    REQUEST travelled. *)
val pair_accounting : Event.t list -> pair_stats list

(** [rx_bytes / tx_bytes] as a percentage (100 when nothing was sent). *)
val goodput_pct : pair_stats -> float

(** {1 Causal trees} *)

type span_node = {
  sn_trace : int;
  sn_span : int;
  sn_parent : int;  (** [Causal.no_parent] for roots. *)
  mutable sn_mids : int list;  (** Ascending, deduped. *)
  mutable sn_first_us : int;
  mutable sn_last_us : int;
  mutable sn_events : int;
  mutable sn_label : string;
  mutable sn_label_rank : int;
  mutable sn_children : span_node list;  (** Ascending span id. *)
}

type tree = {
  t_trace : int;
  t_roots : span_node list;
      (** More than one only when a parent span emitted no events (its
          orphaned children are promoted to roots). *)
  t_spans : int;
  t_mids : int list;  (** Every node the tree touches; ascending. *)
  t_first_us : int;
  t_last_us : int;
}

(** Group ctx-stamped events by trace id and rebuild the span forest,
    sorted by trace id. Events without a context are ignored. *)
val causal_trees : Event.t list -> tree list

(** A tree that touches more than one node. *)
val cross_node : tree -> bool

(** The root-to-leaf chain bounding the tree's end-to-end time: from
    each span, descend into the child that finished last. *)
val critical_path : tree -> span_node list

(** {1 Rendering} *)

(** Graphviz DOT rendering of the causal forest, one cluster per trace. *)
val dot : tree list -> string

(** Full text report: summary, request latency percentiles and phase
    breakdown, per-pair accounting, causal-tree statistics and the
    critical paths of the [max_paths] (default 5) slowest trees. *)
val report : ?max_paths:int -> Format.formatter -> Event.t list -> unit
