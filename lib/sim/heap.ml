(* Structure-of-arrays binary min-heap.

   The event queue is the single hottest data structure in the simulator:
   every scheduled callback passes through one push and one pop. The
   previous implementation boxed each element in a {key; seq; value}
   record, costing four words of minor allocation per schedule; at
   hundreds of thousands of events per simulated second that garbage
   dominated the GC profile (see docs/PERFORMANCE.md). Keys, sequence
   numbers and values now live in three parallel arrays, so steady-state
   push/pop allocates nothing (array growth is amortised), and the
   [min_key]/[min_seq]/[min_value]/[drop_min] accessors let the engine
   drain the queue without materialising option/tuple results. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let initial_capacity = 64

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0 }

let length heap = heap.size

let is_empty heap = heap.size = 0

let less heap i j =
  let ki = heap.keys.(i) and kj = heap.keys.(j) in
  ki < kj || (ki = kj && heap.seqs.(i) < heap.seqs.(j))

(* The value array cannot be allocated before the first push (no witness
   for ['a]); the first pushed value seeds it as filler. *)
let grow heap value =
  let capacity = Array.length heap.vals in
  if heap.size = capacity then begin
    let next = if capacity = 0 then initial_capacity else capacity * 2 in
    let keys = Array.make next 0 in
    let seqs = Array.make next 0 in
    let vals = Array.make next value in
    Array.blit heap.keys 0 keys 0 heap.size;
    Array.blit heap.seqs 0 seqs 0 heap.size;
    Array.blit heap.vals 0 vals 0 heap.size;
    heap.keys <- keys;
    heap.seqs <- seqs;
    heap.vals <- vals
  end

let swap heap i j =
  let k = heap.keys.(i) in
  heap.keys.(i) <- heap.keys.(j);
  heap.keys.(j) <- k;
  let s = heap.seqs.(i) in
  heap.seqs.(i) <- heap.seqs.(j);
  heap.seqs.(j) <- s;
  let v = heap.vals.(i) in
  heap.vals.(i) <- heap.vals.(j);
  heap.vals.(j) <- v

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less heap i parent then begin
      swap heap i parent;
      sift_up heap parent
    end
  end

let rec sift_down heap i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < heap.size && less heap left !smallest then smallest := left;
  if right < heap.size && less heap right !smallest then smallest := right;
  if !smallest <> i then begin
    swap heap i !smallest;
    sift_down heap !smallest
  end

let push heap ~key ~seq value =
  grow heap value;
  let i = heap.size in
  heap.keys.(i) <- key;
  heap.seqs.(i) <- seq;
  heap.vals.(i) <- value;
  heap.size <- heap.size + 1;
  sift_up heap i

let min_key heap =
  if heap.size = 0 then invalid_arg "Heap.min_key: empty heap";
  heap.keys.(0)

let min_seq heap =
  if heap.size = 0 then invalid_arg "Heap.min_seq: empty heap";
  heap.seqs.(0)

let min_value heap =
  if heap.size = 0 then invalid_arg "Heap.min_value: empty heap";
  heap.vals.(0)

let drop_min heap =
  if heap.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  let last = heap.size - 1 in
  heap.size <- last;
  if last > 0 then begin
    heap.keys.(0) <- heap.keys.(last);
    heap.seqs.(0) <- heap.seqs.(last);
    heap.vals.(0) <- heap.vals.(last);
    (* Drop the stale duplicate so the popped slot does not pin a dead
       callback (and whatever its closure captures) past its pop. *)
    heap.vals.(last) <- heap.vals.(0);
    sift_down heap 0
  end

(* Allocating convenience wrappers over the accessors above; kept for
   callers outside the event loop (tests, tooling). *)

let pop_min heap =
  if heap.size = 0 then None
  else begin
    let key = heap.keys.(0) and seq = heap.seqs.(0) and value = heap.vals.(0) in
    drop_min heap;
    Some (key, seq, value)
  end

let peek_key heap = if heap.size = 0 then None else Some heap.keys.(0)
