(** Binary min-heap specialised for the event queue.

    Elements are ordered by an integer key (the event time) with a
    monotonically increasing sequence number as a tie-breaker, so that two
    events scheduled for the same instant pop in insertion order.

    Keys, sequence numbers and values live in parallel arrays
    (structure-of-arrays): steady-state push/pop allocates nothing, which
    matters because every simulated callback crosses this heap once in
    each direction. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push heap ~key ~seq value] inserts [value] with priority
    [(key, seq)]. *)
val push : 'a t -> key:int -> seq:int -> 'a -> unit

(** {2 Allocation-free draining}

    The four accessors below are the event loop's interface: check
    {!is_empty}, read the minimum with [min_key]/[min_seq]/[min_value],
    then [drop_min]. All raise [Invalid_argument] on an empty heap. *)

val min_key : 'a t -> int
val min_seq : 'a t -> int
val min_value : 'a t -> 'a
val drop_min : 'a t -> unit

(** {2 Allocating conveniences} *)

(** [pop_min heap] removes and returns the element with the smallest
    [(key, seq)], or [None] if the heap is empty. *)
val pop_min : 'a t -> (int * int * 'a) option

(** [peek_key heap] returns the smallest key without removing it. *)
val peek_key : 'a t -> int option
