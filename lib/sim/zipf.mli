(** Zipf-distributed key sampler for workload generators.

    Key [i] (0-based, of [n]) is drawn with probability proportional to
    [(i+1) ** -theta]: [theta = 0] is uniform, [theta ~ 0.99] the classic
    YCSB-style skew where a handful of hot keys dominate. Draws cost one
    RNG float and a binary search — no allocation after {!create}. *)

type t

(** @raise Invalid_argument when [n <= 0] or [theta < 0] (or NaN). *)
val create : n:int -> theta:float -> t

val size : t -> int

(** [sample t rng] draws a key in [0 .. size t - 1]. Consumes exactly one
    [Rng.float] draw. *)
val sample : t -> Rng.t -> int
