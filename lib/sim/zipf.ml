(* Zipf-distributed key sampler.

   Key i (0-based) gets weight (i+1)^-theta; theta = 0 degenerates to
   uniform, theta around 0.99 is the classic YCSB-style skew. Sampling is
   a binary search over the normalized cumulative weights: O(log n) per
   draw, no allocation after [create]. *)

type t = { cum : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: need at least one key";
  if not (theta >= 0.0) then invalid_arg "Zipf.create: theta must be >= 0";
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (float_of_int (i + 1) ** -.theta);
    cum.(i) <- !total
  done;
  let total = !total in
  for i = 0 to n - 1 do
    cum.(i) <- cum.(i) /. total
  done;
  (* Guard against rounding leaving the last slot a hair under 1. *)
  cum.(n - 1) <- 1.0;
  { cum }

let size t = Array.length t.cum

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* First index whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
