(* Compatibility shim over the structured recorder in [Soda_obs].

   [Trace.t] *is* the network's event recorder: layers that still use the
   free-form [record] API append [Note] events, while instrumented layers
   emit typed events through the same handle. [entries] renders both back
   into the old (time, actor, message) triples, so existing consumers
   (timeline printing, substring assertions) keep working unchanged. *)

module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

type t = Recorder.t

type entry = { time_us : int; actor : string; message : string }

let create ?(enabled = false) () = Recorder.create ~tracing:enabled ()

let set_enabled t flag = Recorder.set_tracing t flag
let enabled t = Recorder.tracing t
let recorder t = t

let record t ~now ~actor fmt =
  if Recorder.tracing t then
    Format.kasprintf
      (fun message ->
        Recorder.emit t ~time_us:now ~mid:(-1) ~actor (Event.Note message))
      fmt
  else
    (* Consume the format arguments without building the string: a
       disabled trace costs one branch and no allocation. *)
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  List.map
    (fun e ->
      { time_us = e.Event.time_us; actor = e.Event.actor;
        message = Event.message e.Event.kind })
    (Recorder.events t)

let clear t = Recorder.clear t

let contains ~substring s =
  let n = String.length substring and m = String.length s in
  if n = 0 then true
  else begin
    let rec scan i = i + n <= m && (String.sub s i n = substring || scan (i + 1)) in
    scan 0
  end

let find t ~substring =
  List.filter (fun e -> contains ~substring e.message) (entries t)

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%8d us  %-12s %s@." e.time_us e.actor e.message)
    (entries t)
