(* Per-node measurement bag, backed by the [Soda_obs.Metrics] registry.

   Counters and latency series live in the registry (series as log-scale
   histograms — O(buckets) memory instead of the raw sample lists this
   module used to keep). Microsecond accumulators keep their own table so
   [counter_names] still lists only true counters, as callers expect. *)

module Metrics = Soda_obs.Metrics

type t = {
  metrics : Metrics.t;
  times : (string, int ref) Hashtbl.t;
}

let create () = { metrics = Metrics.create (); times = Hashtbl.create 32 }

let registry t = t.metrics

let incr t name = Metrics.incr t.metrics name
let add t name n = Metrics.add t.metrics name n
let counter t name = Metrics.counter t.metrics name
let counter_cell t name = Metrics.counter_cell t.metrics name
let histogram_cell t name = Metrics.histogram_cell t.metrics name

(* Exception-based lookup: [find_opt] would allocate a [Some] per
   accounting call, and [add_time] runs several times per packet. *)
let time_cell t name =
  match Hashtbl.find t.times name with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.replace t.times name r;
    r

let time_ref = time_cell

let add_time t name us =
  let r = time_cell t name in
  r := !r + us

let time_us t name = match Hashtbl.find_opt t.times name with Some r -> !r | None -> 0
let time_ms t name = float_of_int (time_us t name) /. 1000.0

let sample t name v = Metrics.observe t.metrics name v

let histogram t name = Metrics.histogram t.metrics name

let count t name =
  match histogram t name with Some h -> Metrics.Histogram.count h | None -> 0

let mean_us t name =
  match histogram t name with Some h -> Metrics.Histogram.mean h | None -> 0.0

let mean_ms t name = mean_us t name /. 1000.0

let max_us t name =
  match histogram t name with Some h -> Metrics.Histogram.max_value h | None -> 0

let percentile_us t name p =
  match histogram t name with Some h -> Metrics.Histogram.percentile h p | None -> 0

let reset t =
  Metrics.reset t.metrics;
  Hashtbl.reset t.times

let counter_names t = Metrics.counter_names t.metrics

let pp ppf t =
  let names = counter_names t in
  List.iter (fun name -> Format.fprintf ppf "%s: %d@." name (counter t name)) names;
  Hashtbl.iter
    (fun name r -> Format.fprintf ppf "%s: %.3f ms@." name (float_of_int !r /. 1000.0))
    t.times
