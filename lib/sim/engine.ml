type event_id = int

type counters = { scheduled : int; fired : int; cancelled : int; pending : int }

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable live : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  (* Callbacks ride the heap directly; the heap's tie-break sequence
     number doubles as the event id, so a schedule allocates no per-event
     record at all (the heap itself is structure-of-arrays). *)
  queue : (unit -> unit) Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  root_rng : Rng.t;
  (* Hot-path profiling. The always-on part is integer bumps and one
     hashtable hit per *tagged* schedule; wall-clock is read once per
     [run] call, never inside the event loop, and never feeds back into
     scheduling, so determinism is untouched. *)
  mutable heap_highwater : int;
  tag_counts : (string, int ref) Hashtbl.t;
  mutable wall_s : float;  (* wall time accrued inside [run] *)
  mutable profile_gc : bool;
  mutable gc_minor_words : float;
  mutable gc_major_words : float;
  mutable gc_promoted_words : float;
}

exception Stop

let create ?(seed = 42) () =
  {
    clock = 0;
    next_seq = 0;
    live = 0;
    n_fired = 0;
    n_cancelled = 0;
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    root_rng = Rng.create ~seed;
    heap_highwater = 0;
    tag_counts = Hashtbl.create 8;
    wall_s = 0.0;
    profile_gc = false;
    gc_minor_words = 0.0;
    gc_major_words = 0.0;
    gc_promoted_words = 0.0;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule ?tag t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  (match tag with
   | None -> ()
   | Some tag ->
     (* exception-based lookup: [find_opt] would allocate a [Some] per
        tagged schedule *)
     (match Hashtbl.find t.tag_counts tag with
      | r -> incr r
      | exception Not_found -> Hashtbl.replace t.tag_counts tag (ref 1)));
  Heap.push t.queue ~key:(t.clock + delay) ~seq fn;
  let depth = Heap.length t.queue in
  if depth > t.heap_highwater then t.heap_highwater <- depth;
  seq

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1;
    t.n_cancelled <- t.n_cancelled + 1
  end

let pending t = t.live

let counters t =
  { scheduled = t.next_seq; fired = t.n_fired; cancelled = t.n_cancelled;
    pending = t.live }

let heap_highwater t = t.heap_highwater

let wall_seconds t = t.wall_s

let events_per_sec t =
  if t.wall_s > 0.0 then float_of_int t.n_fired /. t.wall_s else 0.0

let tag_counts t =
  Hashtbl.fold (fun tag r acc -> (tag, !r) :: acc) t.tag_counts []
  |> List.sort compare

let set_profile_gc t on = t.profile_gc <- on

let gc_words t = (t.gc_minor_words, t.gc_promoted_words, t.gc_major_words)

(* Publish the counters as gauges into a metrics registry. *)
let export_metrics t m ~prefix =
  Soda_obs.Metrics.set_gauge m (prefix ^ ".scheduled") t.next_seq;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".fired") t.n_fired;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".cancelled") t.n_cancelled;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".pending") t.live;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".clock_us") t.clock;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".heap_highwater") t.heap_highwater;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".wall_us") (int_of_float (t.wall_s *. 1e6));
  Soda_obs.Metrics.set_gauge m (prefix ^ ".events_per_sec")
    (int_of_float (events_per_sec t));
  Hashtbl.iter
    (fun tag r -> Soda_obs.Metrics.set_gauge m (prefix ^ ".tag." ^ tag) !r)
    t.tag_counts;
  if t.profile_gc then begin
    Soda_obs.Metrics.set_gauge m (prefix ^ ".gc_minor_words")
      (int_of_float t.gc_minor_words);
    Soda_obs.Metrics.set_gauge m (prefix ^ ".gc_promoted_words")
      (int_of_float t.gc_promoted_words);
    Soda_obs.Metrics.set_gauge m (prefix ^ ".gc_major_words")
      (int_of_float t.gc_major_words)
  end

let stop _t = raise Stop

let step t ~until =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.min_key t.queue in
    if time > until then false
    else begin
      let id = Heap.min_seq t.queue in
      let fn = Heap.min_value t.queue in
      Heap.drop_min t.queue;
      if Hashtbl.mem t.cancelled id then begin
        Hashtbl.remove t.cancelled id;
        true
      end
      else begin
        t.clock <- time;
        t.live <- t.live - 1;
        t.n_fired <- t.n_fired + 1;
        fn ();
        true
      end
    end
  end

let run ?(until = max_int) t =
  let wall0 = Unix.gettimeofday () in
  let gc0 = if t.profile_gc then Some (Gc.quick_stat ()) else None in
  (try
     while step t ~until do
       ()
     done
   with Stop -> ());
  t.wall_s <- t.wall_s +. (Unix.gettimeofday () -. wall0);
  (match gc0 with
   | None -> ()
   | Some g0 ->
     let g1 = Gc.quick_stat () in
     t.gc_minor_words <- t.gc_minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
     t.gc_promoted_words <-
       t.gc_promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
     t.gc_major_words <- t.gc_major_words +. (g1.Gc.major_words -. g0.Gc.major_words));
  (* If we stopped on the time horizon rather than queue exhaustion, the
     clock still reflects the last executed event; advance it to the horizon
     so that back-to-back [run_for] calls cover contiguous intervals. *)
  if until <> max_int && t.clock < until then t.clock <- until;
  t.clock

let run_for t ~duration = run ~until:(t.clock + duration) t
