type event = { id : int; fn : unit -> unit }

type event_id = int

type counters = { scheduled : int; fired : int; cancelled : int; pending : int }

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable live : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  queue : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  root_rng : Rng.t;
}

exception Stop

let create ?(seed = 42) () =
  {
    clock = 0;
    next_seq = 0;
    live = 0;
    n_fired = 0;
    n_cancelled = 0;
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ~key:(t.clock + delay) ~seq { id = seq; fn };
  seq

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1;
    t.n_cancelled <- t.n_cancelled + 1
  end

let pending t = t.live

let counters t =
  { scheduled = t.next_seq; fired = t.n_fired; cancelled = t.n_cancelled;
    pending = t.live }

(* Publish the counters as gauges into a metrics registry. *)
let export_metrics t m ~prefix =
  Soda_obs.Metrics.set_gauge m (prefix ^ ".scheduled") t.next_seq;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".fired") t.n_fired;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".cancelled") t.n_cancelled;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".pending") t.live;
  Soda_obs.Metrics.set_gauge m (prefix ^ ".clock_us") t.clock

let stop _t = raise Stop

let step t ~until =
  match Heap.peek_key t.queue with
  | None -> false
  | Some key when key > until -> false
  | Some _ ->
    (match Heap.pop_min t.queue with
     | None -> false
     | Some (time, _seq, event) ->
       if Hashtbl.mem t.cancelled event.id then begin
         Hashtbl.remove t.cancelled event.id;
         true
       end
       else begin
         t.clock <- time;
         t.live <- t.live - 1;
         t.n_fired <- t.n_fired + 1;
         event.fn ();
         true
       end)

let run ?(until = max_int) t =
  (try
     while step t ~until do
       ()
     done
   with Stop -> ());
  (* If we stopped on the time horizon rather than queue exhaustion, the
     clock still reflects the last executed event; advance it to the horizon
     so that back-to-back [run_for] calls cover contiguous intervals. *)
  if until <> max_int && t.clock < until then t.clock <- until;
  t.clock

let run_for t ~duration = run ~until:(t.clock + duration) t
