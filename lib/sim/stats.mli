(** Named counters and accumulators for simulation measurements.

    A [Stats.t] is a bag of named integer counters (packet counts, retries)
    and named microsecond accumulators (time attributed to a protocol
    category, as in the paper's "Breakdown of Communications Overhead"
    table), plus latency series with mean/percentile summaries. Backed by
    a {!Soda_obs.Metrics} registry; series are log-scale histograms, so
    percentiles above 64 us carry ≤ ~3% relative bucketing error and
    memory stays constant regardless of sample count. *)

type t

val create : unit -> t

(** The backing metrics registry (counters and sample histograms). *)
val registry : t -> Soda_obs.Metrics.t

(** Counters. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int

(** Backing cells for hot paths: fetch once, bump the ref/histogram
    directly, skipping the per-call string hash + table probe. Cells
    obtained before a {!reset} are detached by it — re-fetch afterwards.
    (Nothing in the simulator resets stats mid-run.) *)

val counter_cell : t -> string -> int ref
val time_ref : t -> string -> int ref
val histogram_cell : t -> string -> Soda_obs.Metrics.histogram

(** Microsecond accumulators, reported in milliseconds. *)

val add_time : t -> string -> int -> unit
val time_us : t -> string -> int
val time_ms : t -> string -> float

(** Latency samples (microseconds). *)

val sample : t -> string -> int -> unit
val histogram : t -> string -> Soda_obs.Metrics.histogram option
val count : t -> string -> int
val mean_us : t -> string -> float
val mean_ms : t -> string -> float
val max_us : t -> string -> int

(** Nearest-rank percentile; [p] is clamped to [0, 100], [p <= 0] returns
    the minimum sample, [p >= 100] the maximum, empty series 0. *)
val percentile_us : t -> string -> float -> int

(** [reset t] clears everything. *)
val reset : t -> unit

(** All counter names currently present, sorted. *)
val counter_names : t -> string list

val pp : Format.formatter -> t -> unit
