(** Timestamped event trace (compatibility shim).

    A [Trace.t] is an alias for {!Soda_obs.Recorder.t}: the structured
    event sink shared by every layer of a simulated network. This module
    keeps the historical free-form API — [record] appends a
    {!Soda_obs.Event.Note}, [entries] renders all events (typed and
    free-form) back into [(time_us, actor, message)] rows. New
    instrumentation should emit typed events through {!recorder} instead.

    Tracing is off by default; a disabled trace costs one branch per call
    and performs no allocation or formatting. *)

type t = Soda_obs.Recorder.t

type entry = { time_us : int; actor : string; message : string }

val create : ?enabled:bool -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** The underlying structured recorder (identity). *)
val recorder : t -> Soda_obs.Recorder.t

(** [record t ~now ~actor fmt ...] appends a free-form entry when
    enabled. *)
val record : t -> now:int -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> entry list
val clear : t -> unit

(** [find t ~substring] returns entries whose rendered message contains
    [substring]. *)
val find : t -> substring:string -> entry list

(** Renders "  12345 us  actor     message" lines. *)
val pp : Format.formatter -> t -> unit
