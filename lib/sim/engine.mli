(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock in integer microseconds and a queue of
    timestamped callbacks. Everything in the SODA reproduction — network
    transmission, kernel protocol timers, client CPU time — advances this
    clock; no wall-clock time is ever consulted, so a run is a pure
    function of its seed and workload. *)

type t

(** Handle to a scheduled event; used to cancel pending timers. *)
type event_id

val create : ?seed:int -> unit -> t

(** Current virtual time in microseconds. *)
val now : t -> int

(** The engine's root random stream (split it rather than sharing). *)
val rng : t -> Rng.t

(** [schedule t ~delay f] runs [f] at [now t + delay] ([delay >= 0]).
    Events scheduled for the same instant run in scheduling order. *)
val schedule : t -> delay:int -> (unit -> unit) -> event_id

(** [cancel t id] prevents a pending event from firing; cancelling an
    already-fired or already-cancelled event is a no-op. *)
val cancel : t -> event_id -> unit

(** [pending t] is the number of live (not cancelled, not fired) events. *)
val pending : t -> int

(** Lifetime scheduling counters (always on; plain integer increments). *)
type counters = { scheduled : int; fired : int; cancelled : int; pending : int }

val counters : t -> counters

(** [export_metrics t m ~prefix] publishes the counters (and the current
    clock) as gauges named [prefix ^ ".scheduled"] etc. into [m]. *)
val export_metrics : t -> Soda_obs.Metrics.t -> prefix:string -> unit

(** [run t] processes events until the queue is empty or [until] virtual
    microseconds is reached. Returns the final virtual time. *)
val run : ?until:int -> t -> int

(** [run_for t ~duration] runs until [now t + duration]. *)
val run_for : t -> duration:int -> int

exception Stop

(** [stop t] aborts the current [run] from inside an event callback. *)
val stop : t -> 'a
