(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock in integer microseconds and a queue of
    timestamped callbacks. Everything in the SODA reproduction — network
    transmission, kernel protocol timers, client CPU time — advances this
    clock; no wall-clock time is ever consulted, so a run is a pure
    function of its seed and workload. *)

type t

(** Handle to a scheduled event; used to cancel pending timers. *)
type event_id

val create : ?seed:int -> unit -> t

(** Current virtual time in microseconds. *)
val now : t -> int

(** The engine's root random stream (split it rather than sharing). *)
val rng : t -> Rng.t

(** [schedule t ~delay f] runs [f] at [now t + delay] ([delay >= 0]).
    Events scheduled for the same instant run in scheduling order.
    [tag] attributes the callback to a subsystem ("kernel", "bus", ...)
    in the per-tag profiling counters; untagged schedules cost nothing
    extra. *)
val schedule : ?tag:string -> t -> delay:int -> (unit -> unit) -> event_id

(** [cancel t id] prevents a pending event from firing; cancelling an
    already-fired or already-cancelled event is a no-op. *)
val cancel : t -> event_id -> unit

(** [pending t] is the number of live (not cancelled, not fired) events. *)
val pending : t -> int

(** Lifetime scheduling counters (always on; plain integer increments). *)
type counters = { scheduled : int; fired : int; cancelled : int; pending : int }

val counters : t -> counters

(** {2 Hot-path profiling}

    Always-on and deterministic: the event loop itself never reads the
    wall clock — [run] samples it once on entry and once on exit, and the
    result feeds no scheduling decision. *)

(** Deepest the event heap has ever been (includes cancelled-but-not-yet
    popped entries, i.e. real memory pressure). *)
val heap_highwater : t -> int

(** Wall-clock seconds accrued inside [run]/[run_for] calls. *)
val wall_seconds : t -> float

(** Callbacks fired per wall-clock second over the engine's lifetime
    (0 before the first [run] returns). *)
val events_per_sec : t -> float

(** Scheduled-callback counts per source tag, sorted by tag. *)
val tag_counts : t -> (string * int) list

(** Opt-in GC profiling: when enabled, each [run] call accumulates the
    [Gc.quick_stat] allocation deltas it spans. Off by default — a
    [Gc.quick_stat] pair per [run] is cheap but not free. *)
val set_profile_gc : t -> bool -> unit

(** Accumulated [(minor, promoted, major)] allocated words while
    profiling was on. *)
val gc_words : t -> float * float * float

(** [export_metrics t m ~prefix] publishes the counters (and the current
    clock) as gauges named [prefix ^ ".scheduled"] etc. into [m], plus
    the profiling gauges [".heap_highwater"], [".wall_us"],
    [".events_per_sec"], one [".tag.<tag>"] gauge per source tag, and —
    when GC profiling is on — the [".gc_*_words"] allocation deltas. *)
val export_metrics : t -> Soda_obs.Metrics.t -> prefix:string -> unit

(** [run t] processes events until the queue is empty or [until] virtual
    microseconds is reached. Returns the final virtual time. *)
val run : ?until:int -> t -> int

(** [run_for t ~duration] runs until [now t + duration]. *)
val run_for : t -> duration:int -> int

exception Stop

(** [stop t] aborts the current [run] from inside an event callback. *)
val stop : t -> 'a
