(** A name-server client: the switchboard of §4.3.1 / §6.14.

    SODA's kernel naming is deliberately flat (fixed-length patterns, exact
    match); "more complex naming strategies (such as name hierarchies...)
    can be provided by a name server client". This is that client: a
    registry mapping string names to SERVER SIGNATURES, supporting
    hierarchical lookup by prefix, interrogated at run time (run-time
    interconnection). The switchboard itself is found with DISCOVER. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** The well-known switchboard pattern. *)
val switchboard_pattern : Soda_base.Pattern.t

(** The switchboard server program. *)
val spec : unit -> Sodal.spec

(** {1 Client operations} *)

type error =
  | Not_found
  | Already_registered
  | Unreachable

(** [register env sb ~name signature] binds [name]; names are unique. *)
val register :
  Sodal.env -> Types.server_signature -> name:string -> Types.server_signature ->
  (unit, error) result

(** [rebind env sb ~name signature] binds [name] unconditionally
    (last-wins), replacing any existing binding: how a rebooted
    incarnation reclaims a name its dead predecessor still holds.
    [Already_registered] means a concurrent rebind won the race. *)
val rebind :
  Sodal.env -> Types.server_signature -> name:string -> Types.server_signature ->
  (unit, error) result

(** [unregister env sb ~name] — only removes existing bindings. *)
val unregister : Sodal.env -> Types.server_signature -> name:string -> (unit, error) result

(** [lookup env sb ~name] resolves an exact name. *)
val lookup :
  Sodal.env -> Types.server_signature -> name:string -> (Types.server_signature, error) result

(** [list env sb ~prefix] returns names below a hierarchical prefix
    (["/fs"] matches ["/fs/home"], ["/fs/tmp"], ...). *)
val list : Sodal.env -> Types.server_signature -> prefix:string -> (string list, error) result

(** [find env ~name] — convenience: DISCOVER the switchboard, then look
    [name] up. *)
val find : Sodal.env -> name:string -> (Types.server_signature, error) result
