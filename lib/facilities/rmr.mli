(** Remote memory reference: PEEK and POKE (§4.2.3, §6.17.2).

    The server exposes a word-addressed memory behind a well-known RMR
    entry point. PEEK is a GET and POKE is a PUT; the REQUEST argument is
    the word address and the buffer size gives the extent. The server
    accepts directly in its handler; OPEN/CLOSE give mutual exclusion for
    compound updates. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** [spec ~pattern ~words] serves a zero-initialised memory of [words]
    16-bit words. The same memory is returned so a co-resident task can
    observe it. *)
val spec : pattern:Soda_base.Pattern.t -> words:int -> Sodal.spec * bytes

type error =
  | Out_of_range  (** address/extent beyond the served memory *)
  | Unreachable

(** [peek env server ~addr ~words] fetches [words] 16-bit words. *)
val peek :
  Sodal.env -> Types.server_signature -> addr:int -> words:int -> (bytes, error) result

(** [poke env server ~addr data] stores [data] at word address [addr]. *)
val poke : Sodal.env -> Types.server_signature -> addr:int -> bytes -> (unit, error) result

(** [test_and_set env server ~addr value] atomically swaps the word at
    [addr] with [value] and returns the old word — the synchronization
    primitive §4.2.3 calls for, built from a single EXCHANGE (atomic
    because the server handler completes it in one invocation). *)
val test_and_set :
  Sodal.env -> Types.server_signature -> addr:int -> int -> (int, error) result

(** [lock env server ~addr] retries {!test_and_set} until the word at
    [addr] was 0 and is now 1; [unlock] clears it. Retries back off
    exponentially from [base_us] to [cap_us], each wait doubled by a
    random jitter drawn from a split of the engine RNG, so contenders
    desynchronise instead of colliding in lockstep. With [?timeserver]
    (a §6.16 timeserver signature) the wait is an alarm-backed
    {!Timeserver.sleep}; otherwise it is local compute. Every
    TEST-AND-SET round increments the ["rmr.lock.attempts"] counter of
    the kernel's metrics registry. *)
val lock :
  ?timeserver:Types.server_signature ->
  ?base_us:int ->
  ?cap_us:int ->
  Sodal.env ->
  Types.server_signature ->
  addr:int ->
  (unit, error) result

val unlock : Sodal.env -> Types.server_signature -> addr:int -> (unit, error) result
