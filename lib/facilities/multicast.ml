module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal
module Cost = Soda_base.Cost_model
module Kernel = Soda_core.Kernel

type outcome = { mid : int; status : Sodal.comp_status; reply_arg : int }

let transfer env ?window ~group ~pattern ~arg payload =
  let members = List.sort_uniq compare group in
  let total = List.length members in
  let window =
    match window with
    | Some w -> max 1 w
    | None -> Cost.client_window (Kernel.cost (Sodal.kernel env))
  in
  let in_flight = ref 0 in
  let outcomes = ref [] in
  let launch mid =
    let sv = Sodal.server ~mid ~pattern in
    let tid =
      match payload with
      | Some data -> Sodal.put env sv ~arg data
      | None -> Sodal.signal env sv ~arg
    in
    incr in_flight;
    (* The collector runs in interrupt context: record and return; the idle
       wait below is woken automatically. *)
    Sodal.on_completion_of env tid (fun completion ->
        decr in_flight;
        outcomes :=
          { mid; status = completion.Sodal.status; reply_arg = completion.Sodal.reply_arg }
          :: !outcomes)
  in
  List.iter
    (fun mid ->
      while !in_flight >= window do
        Sodal.idle env
      done;
      launch mid)
    members;
  while List.length !outcomes < total do
    Sodal.idle env
  done;
  (* stable member order *)
  List.map (fun mid -> List.find (fun o -> o.mid = mid) !outcomes) members

let put env ?window ~group ~pattern ?(arg = 0) data =
  transfer env ?window ~group ~pattern ~arg (Some data)

let signal env ?window ~group ~pattern ?(arg = 0) () =
  transfer env ?window ~group ~pattern ~arg None

let put_discovered env ~pattern ?(arg = 0) ?(max_group = 32) data =
  let group = Sodal.discover_list env pattern ~max:max_group in
  put env ~group ~pattern ~arg data
