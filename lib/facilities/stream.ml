module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal
module Cost = Soda_base.Cost_model
module Kernel = Soda_core.Kernel

type error = Receiver_gone | Rejected

(* The REQUEST argument carries the chunk index; the end of the stream is a
   zero-length PUT (SIGNAL) whose argument is the total chunk count. *)

type assembly = { mutable chunks : bytes list; mutable next_index : int }

let sink_hook ~pattern ~on_block =
  let assemblies : (int, assembly) Hashtbl.t = Hashtbl.create 4 in
  fun env info ->
    if not (Pattern.equal info.Sodal.pattern pattern) then false
    else begin
      let src = info.Sodal.asker.Types.rq_mid in
      let assembly =
        match Hashtbl.find_opt assemblies src with
        | Some a -> a
        | None ->
          let a = { chunks = []; next_index = 0 } in
          Hashtbl.replace assemblies src a;
          a
      in
      if info.Sodal.put_size = 0 then begin
        (* end marker: argument = expected chunk count *)
        ignore (Sodal.accept_current_signal env ~arg:0);
        Hashtbl.remove assemblies src;
        if info.Sodal.arg = assembly.next_index then begin
          let total =
            List.fold_left (fun n c -> n + Bytes.length c) 0 assembly.chunks
          in
          let block = Bytes.create total in
          let _ =
            List.fold_left
              (fun at chunk ->
                let at = at - Bytes.length chunk in
                Bytes.blit chunk 0 block at (Bytes.length chunk);
                at)
              total assembly.chunks
          in
          on_block env ~src block
        end
        (* count mismatch: protocol misuse; drop the stream *)
      end
      else if info.Sodal.arg = assembly.next_index then begin
        let into = Bytes.create info.Sodal.put_size in
        let status, got = Sodal.accept_current_put env ~arg:0 ~into in
        match status with
        | Types.Accept_success ->
          assembly.chunks <- Bytes.sub into 0 got :: assembly.chunks;
          assembly.next_index <- assembly.next_index + 1
        | Types.Accept_cancelled | Types.Accept_crashed -> ()
      end
      else begin
        (* out-of-order chunk: impossible under SODA's ordering unless the
           sender restarted; reject so it learns *)
        Hashtbl.remove assemblies src;
        Sodal.reject env
      end;
      true
    end

let sink ~pattern ~on_block () =
  let hook = sink_hook ~pattern ~on_block in
  {
    Sodal.default_spec with
    init = (fun env ~parent:_ -> Sodal.advertise env pattern);
    on_request = (fun env info -> ignore (hook env info));
  }

let send env dst ?chunk_bytes data =
  let cost = Kernel.cost (Sodal.kernel env) in
  let chunk_bytes =
    match chunk_bytes with
    | Some c -> min (max 1 c) cost.Cost.max_data_bytes
    | None -> cost.Cost.max_data_bytes
  in
  let total = Bytes.length data in
  let chunk_count = (total + chunk_bytes - 1) / chunk_bytes in
  let failed = ref None in
  let completed = ref 0 in
  let in_flight = ref 0 in
  (* double buffering (§4.4.1): keep the pipe full up to MAXREQUESTS-1 *)
  let window = Cost.client_window cost in
  let launch index =
    let offset = index * chunk_bytes in
    let len = min chunk_bytes (total - offset) in
    let tid = Sodal.put env dst ~arg:index (Bytes.sub data offset len) in
    incr in_flight;
    Sodal.on_completion_of env tid (fun c ->
        decr in_flight;
        incr completed;
        match c.Sodal.status with
        | Sodal.Comp_ok -> ()
        | Sodal.Comp_rejected -> if !failed = None then failed := Some Rejected
        | Sodal.Comp_crashed | Sodal.Comp_unadvertised ->
          if !failed = None then failed := Some Receiver_gone)
  in
  let index = ref 0 in
  while !index < chunk_count && !failed = None do
    while !in_flight >= window && !failed = None do
      Sodal.idle env
    done;
    if !failed = None then begin
      launch !index;
      incr index
    end
  done;
  while !in_flight > 0 do
    Sodal.idle env
  done;
  match !failed with
  | Some e -> Error e
  | None ->
    (* end marker *)
    let c = Sodal.b_signal env dst ~arg:chunk_count in
    (match c.Sodal.status with
     | Sodal.Comp_ok -> Ok ()
     | Sodal.Comp_rejected -> Error Rejected
     | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Receiver_gone)
