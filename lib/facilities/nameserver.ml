module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

let switchboard_pattern = Pattern.well_known 0o7070

type error = Not_found | Already_registered | Unreachable

(* Operations, carried in the REQUEST argument. SODA offers no way to
   inspect a request's data before ACCEPTing it (§3.3.2 rule 2), so query
   operations are two-phase: a PUT carrying the question, then a GET (+100)
   fetching the remembered answer. *)
let op_register = 1
let op_unregister = 2
let op_lookup = 3
let op_list = 4
let op_rebind = 5
let op_fetch = 100  (* added to the query op for the follow-up GET *)

(* request payload: name_len(1) name [mid(2) pattern(6)] *)

let encode_request ~name ?signature () =
  let buf = Buffer.create 32 in
  Buffer.add_char buf (Char.chr (String.length name land 0xFF));
  Buffer.add_string buf name;
  (match signature with
   | Some { Types.sv_mid = Types.Mid mid; sv_pattern } ->
     Buffer.add_char buf (Char.chr ((mid lsr 8) land 0xFF));
     Buffer.add_char buf (Char.chr (mid land 0xFF));
     let v = Pattern.to_int sv_pattern in
     for i = 0 to 5 do
       Buffer.add_char buf (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
     done
   | Some { Types.sv_mid = Types.Broadcast_mid; _ } ->
     invalid_arg "Nameserver: cannot register a broadcast signature"
   | None -> ());
  Buffer.to_bytes buf

let decode_request b =
  try
    let len = Char.code (Bytes.get b 0) in
    let name = Bytes.sub_string b 1 len in
    if Bytes.length b >= 1 + len + 8 then begin
      let at = 1 + len in
      let mid = (Char.code (Bytes.get b at) lsl 8) lor Char.code (Bytes.get b (at + 1)) in
      let v = ref 0 in
      for i = 0 to 5 do
        v := (!v lsl 8) lor Char.code (Bytes.get b (at + 2 + i))
      done;
      Some (name, Some { Types.sv_mid = Types.Mid mid; sv_pattern = Pattern.of_int !v })
    end
    else Some (name, None)
  with Invalid_argument _ -> None

let encode_signature { Types.sv_mid; sv_pattern } =
  let mid = match sv_mid with Types.Mid m -> m | Types.Broadcast_mid -> 0xFFFF in
  let b = Bytes.create 8 in
  Bytes.set b 0 (Char.chr ((mid lsr 8) land 0xFF));
  Bytes.set b 1 (Char.chr (mid land 0xFF));
  let v = Pattern.to_int sv_pattern in
  for i = 0 to 5 do
    Bytes.set b (2 + i) (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  done;
  b

let decode_signature b =
  if Bytes.length b < 8 then None
  else begin
    let mid = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1) in
    let v = ref 0 in
    for i = 0 to 5 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (2 + i))
    done;
    match Pattern.of_int !v with
    | p -> Some { Types.sv_mid = Types.Mid mid; sv_pattern = p }
    | exception Invalid_argument _ -> None
  end

let has_prefix ~prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* ---- server ---------------------------------------------------------------- *)

let spec () =
  let table : (string, Types.server_signature) Hashtbl.t = Hashtbl.create 32 in
  (* Per-requester remembered answers for the two-phase queries. *)
  let pending_lookup : (int, Types.server_signature option) Hashtbl.t = Hashtbl.create 8 in
  let pending_list : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let receive_request env info =
    let into = Bytes.create (max info.Sodal.put_size 1) in
    let status, got = Sodal.accept_current_put env ~arg:0 ~into in
    match status with
    | Types.Accept_success -> decode_request (Bytes.sub into 0 got)
    | Types.Accept_cancelled | Types.Accept_crashed -> None
  in
  {
    Sodal.default_spec with
    init = (fun env ~parent:_ -> Sodal.advertise env switchboard_pattern);
    on_request =
      (fun env info ->
        let asker = info.Sodal.asker.Types.rq_mid in
        let op = info.Sodal.arg in
        if op = op_register then begin
          match receive_request env info with
          | Some (name, Some signature) when not (Hashtbl.mem table name) ->
            Hashtbl.replace table name signature
          | Some _ | None -> ()
        end
        else if op = op_rebind then begin
          (* last-wins: a rebooted incarnation reclaims its name *)
          match receive_request env info with
          | Some (name, Some signature) -> Hashtbl.replace table name signature
          | Some _ | None -> ()
        end
        else if op = op_unregister then begin
          match receive_request env info with
          | Some (name, _) -> Hashtbl.remove table name
          | None -> ()
        end
        else if op = op_lookup then begin
          match receive_request env info with
          | Some (name, _) -> Hashtbl.replace pending_lookup asker (Hashtbl.find_opt table name)
          | None -> ()
        end
        else if op = op_list then begin
          match receive_request env info with
          | Some (prefix, _) ->
            let names =
              Hashtbl.fold
                (fun name _ acc -> if has_prefix ~prefix name then name :: acc else acc)
                table []
              |> List.sort compare
            in
            Hashtbl.replace pending_list asker (String.concat "\n" names)
          | None -> ()
        end
        else if op = op_lookup + op_fetch then begin
          match Hashtbl.find_opt pending_lookup asker with
          | Some (Some signature) ->
            Hashtbl.remove pending_lookup asker;
            ignore (Sodal.accept_current_get env ~arg:0 ~data:(encode_signature signature))
          | Some None ->
            Hashtbl.remove pending_lookup asker;
            Sodal.reject env
          | None -> Sodal.reject env
        end
        else if op = op_list + op_fetch then begin
          match Hashtbl.find_opt pending_list asker with
          | Some listing ->
            Hashtbl.remove pending_list asker;
            ignore (Sodal.accept_current_get env ~arg:0 ~data:(Bytes.of_string listing))
          | None -> Sodal.reject env
        end
        else Sodal.reject env);
  }

(* ---- client ------------------------------------------------------------------ *)

let one_way env sb ~op payload =
  let c = Sodal.b_put env sb ~arg:op payload in
  match c.Sodal.status with
  | Sodal.Comp_ok -> Ok ()
  | Sodal.Comp_rejected -> Error Not_found
  | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable

let rec register env sb ~name signature =
  match one_way env sb ~op:op_register (encode_request ~name ~signature ()) with
  | Error _ as e -> e
  | Ok () ->
    (* Registration is first-wins at the server; verify we got the slot. *)
    (match lookup env sb ~name with
     | Ok bound when bound = signature -> Ok ()
     | Ok _ -> Error Already_registered
     | Error e -> Error e)

and rebind env sb ~name signature =
  match one_way env sb ~op:op_rebind (encode_request ~name ~signature ()) with
  | Error _ as e -> e
  | Ok () ->
    (* Rebind is last-wins; verify our binding landed (a concurrent
       rebind may have raced us — surface that as Already_registered). *)
    (match lookup env sb ~name with
     | Ok bound when bound = signature -> Ok ()
     | Ok _ -> Error Already_registered
     | Error e -> Error e)

and unregister env sb ~name = one_way env sb ~op:op_unregister (encode_request ~name ())

and lookup env sb ~name =
  match one_way env sb ~op:op_lookup (encode_request ~name ()) with
  | Error e -> Error e
  | Ok () ->
    let into = Bytes.create 8 in
    let c = Sodal.b_get env sb ~arg:(op_lookup + op_fetch) ~into in
    (match c.Sodal.status with
     | Sodal.Comp_ok ->
       (match decode_signature into with
        | Some signature -> Ok signature
        | None -> Error Not_found)
     | Sodal.Comp_rejected -> Error Not_found
     | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable)

let list env sb ~prefix =
  match one_way env sb ~op:op_list (encode_request ~name:prefix ()) with
  | Error e -> Error e
  | Ok () ->
    let into = Bytes.create 2048 in
    let c = Sodal.b_get env sb ~arg:(op_list + op_fetch) ~into in
    (match c.Sodal.status with
     | Sodal.Comp_ok ->
       let text = Bytes.sub_string into 0 c.Sodal.get_transferred in
       Ok (if text = "" then [] else String.split_on_char '\n' text)
     | Sodal.Comp_rejected -> Error Not_found
     | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable)

let find env ~name =
  let sb = Sodal.discover env switchboard_pattern in
  lookup env sb ~name
