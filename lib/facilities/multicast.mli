(** Reliable multicast as a library (§6.17.1).

    SODA deliberately has no reliable-broadcast primitive: "if a client
    wishes to send a message reliably to several sites in a group, it must
    issue a separate REQUEST to each site". This module packages that —
    the requests go out concurrently (non-blocking REQUESTs, bounded by
    MAXREQUESTS) and the caller gets a per-member outcome. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

type outcome = {
  mid : int;
  status : Sodal.comp_status;
  reply_arg : int;
}

(** [put env ~group ~pattern data] reliably delivers [data] to every
    machine in [group]; blocks until every member has completed (or
    failed). At most [window] transfers are in flight at a time
    (default: MAXREQUESTS - 1). Large fan-outs on the shared bus should
    pass a small [window]: every in-flight transfer queues a frame on
    the bus, and sojourn beyond the retransmission budget draws spurious
    crash verdicts. *)
val put :
  Sodal.env -> ?window:int -> group:int list -> pattern:Soda_base.Pattern.t ->
  ?arg:int -> bytes -> outcome list

(** [signal env ~group ~pattern] — dataless variant. *)
val signal :
  Sodal.env -> ?window:int -> group:int list -> pattern:Soda_base.Pattern.t ->
  ?arg:int -> unit -> outcome list

(** [put_discovered env ~pattern data] multicasts to every current
    advertiser of [pattern] (one DISCOVER round). *)
val put_discovered :
  Sodal.env -> pattern:Soda_base.Pattern.t -> ?arg:int -> ?max_group:int -> bytes ->
  outcome list
