module Types = Soda_base.Types
module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Recorder = Soda_obs.Recorder
module Metrics = Soda_obs.Metrics

type error = Out_of_range | Unreachable

let word_bytes = 2

let spec ~pattern ~words =
  let memory = Bytes.make (words * word_bytes) '\000' in
  let spec =
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env pattern);
      on_request =
        (fun env info ->
          let addr = info.Sodal.arg in
          let extent_bytes = max info.Sodal.put_size info.Sodal.get_size in
          let in_range =
            addr >= 0 && (addr * word_bytes) + extent_bytes <= Bytes.length memory
          in
          if not in_range then Sodal.reject env
          else if info.Sodal.put_size > 0 && info.Sodal.get_size > 0 then begin
            (* TEST-AND-SET: an EXCHANGE atomically swaps the addressed
               word and returns its previous contents; atomicity is the
               handler invocation's (§6.10: ACCEPT is atomic wrt us). *)
            let old = Bytes.sub memory (addr * word_bytes) info.Sodal.get_size in
            let into = Bytes.create info.Sodal.put_size in
            let status, got = Sodal.accept_current_exchange env ~arg:0 ~into ~data:old in
            match status with
            | Types.Accept_success -> Bytes.blit into 0 memory (addr * word_bytes) got
            | Types.Accept_cancelled | Types.Accept_crashed -> ()
          end
          else if info.Sodal.put_size > 0 then begin
            (* POKE *)
            let into = Bytes.create info.Sodal.put_size in
            let status, got = Sodal.accept_current_put env ~arg:0 ~into in
            match status with
            | Types.Accept_success -> Bytes.blit into 0 memory (addr * word_bytes) got
            | Types.Accept_cancelled | Types.Accept_crashed -> ()
          end
          else begin
            (* PEEK *)
            let data = Bytes.sub memory (addr * word_bytes) info.Sodal.get_size in
            ignore (Sodal.accept_current_get env ~arg:0 ~data)
          end);
    }
  in
  (spec, memory)

let peek env server ~addr ~words =
  let into = Bytes.create (words * word_bytes) in
  let c = Sodal.b_get env server ~arg:addr ~into in
  match c.Sodal.status with
  | Sodal.Comp_ok -> Ok (Bytes.sub into 0 c.Sodal.get_transferred)
  | Sodal.Comp_rejected -> Error Out_of_range
  | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable

let poke env server ~addr data =
  let c = Sodal.b_put env server ~arg:addr data in
  match c.Sodal.status with
  | Sodal.Comp_ok -> Ok ()
  | Sodal.Comp_rejected -> Error Out_of_range
  | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable

let encode_word v =
  let b = Bytes.create word_bytes in
  Bytes.set b 0 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 1 (Char.chr (v land 0xFF));
  b

let decode_word b = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1)

let test_and_set env server ~addr value =
  let into = Bytes.create word_bytes in
  let c = Sodal.b_exchange env server ~arg:addr (encode_word value) ~into in
  match c.Sodal.status with
  | Sodal.Comp_ok when c.Sodal.get_transferred = word_bytes -> Ok (decode_word into)
  | Sodal.Comp_ok | Sodal.Comp_rejected -> Error Out_of_range
  | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Unreachable

(* Contended TEST-AND-SET retries back off exponentially (capped, with
   jitter from a split of the engine RNG so co-resident contenders
   desynchronise) instead of hammering the memory server in lockstep.
   With [?timeserver] the wait is a §6.16 alarm-backed sleep — the
   client stays responsive to its handler — otherwise local compute. *)
let lock ?timeserver ?(base_us = 1_000) ?(cap_us = 64_000) env server ~addr =
  let rng = Rng.split (Engine.rng (Kernel.engine (Sodal.kernel env))) in
  let metrics = Recorder.metrics (Kernel.recorder (Sodal.kernel env)) in
  let rec go k =
    Metrics.incr metrics "rmr.lock.attempts";
    match test_and_set env server ~addr 1 with
    | Ok 0 -> Ok ()
    | Ok _ ->
      let d = min cap_us (base_us lsl min k 20) in
      let d = d + Rng.int rng (max d 1) in
      (match timeserver with
       | Some ts -> Timeserver.sleep env ts ~delay_us:d
       | None -> Sodal.compute env d);
      go (k + 1)
    | Error e -> Error e
  in
  go 0

let unlock env server ~addr =
  match test_and_set env server ~addr 0 with Ok _ -> Ok () | Error e -> Error e
