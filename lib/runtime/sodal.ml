module Engine = Soda_sim.Engine
module Stats = Soda_sim.Stats
module Pattern = Soda_base.Pattern
module Types = Soda_base.Types
module Cost = Soda_base.Cost_model
module Kernel = Soda_core.Kernel

exception Sodal_error of string
exception Too_many_requests

type request_info = {
  asker : Types.requester_signature;
  pattern : Pattern.t;
  arg : int;
  put_size : int;
  get_size : int;
}

type comp_status = Comp_ok | Comp_rejected | Comp_crashed | Comp_unadvertised

type completion_info = {
  tid : Types.tid;
  status : comp_status;
  reply_arg : int;
  put_transferred : int;
  get_transferred : int;
}

type env = {
  kernel : Kernel.t;
  engine : Engine.t;
  cost : Cost.t;
  mutable generation : int;
  mutable idle_waiters : (unit -> unit) list;
  block_waits : (int, completion_info -> unit) Hashtbl.t;
  mutable context : fiber_context;
  mutable current_request : Types.requester_signature option;
  mutable spec : spec;
}

and fiber_context = Task_context | Handler_context

and spec = {
  init : env -> parent:int -> unit;
  on_request : env -> request_info -> unit;
  on_completion : env -> completion_info -> unit;
  task : env -> unit;
}

let rec serve env =
  Fiber.await (fun resume -> env.idle_waiters <- resume :: env.idle_waiters);
  serve env

let default_spec =
  {
    init = (fun _ ~parent:_ -> ());
    on_request = (fun _ _ -> ());
    on_completion = (fun _ _ -> ());
    (* A client with no Task section is a pure server: it idles forever
       rather than falling off the end into the implicit DIE. *)
    task = serve;
  }

(* ---- environment helpers --------------------------------------------- *)

let my_mid env = Kernel.mid env.kernel
let kernel env = env.kernel
let now env = Engine.now env.engine
let in_handler env = env.context = Handler_context

(* Suspend the calling fiber; the resume is voided if the client is killed
   meanwhile (its processor was reset). The fiber's context (task vs
   handler) is restored on resumption: the task may run while the handler
   fiber is suspended in an ACCEPT, so the flag is per-fiber state saved
   across every suspension. *)
let await env f =
  let gen = env.generation in
  let context = env.context in
  Fiber.await (fun resume ->
      f (fun v ->
          if env.generation = gen then begin
            env.context <- context;
            resume v
          end))

(* Model the client-side cost of invoking a primitive (TRAP + descriptor
   pool management, §5.2.1), then run [k] on the other side of the trap. *)
let trap env us k =
  Stats.add_time (Kernel.stats env.kernel) (Cost.label Cost.Client_overhead) us;
  await env (fun resume -> ignore (Engine.schedule ~tag:"client" env.engine ~delay:us resume));
  k ()

let wake_idlers env =
  let waiters = env.idle_waiters in
  env.idle_waiters <- [];
  List.iter (fun w -> w ()) waiters

let idle env = await env (fun resume -> env.idle_waiters <- resume :: env.idle_waiters)

let compute env us =
  if us > 0 then await env (fun resume -> ignore (Engine.schedule ~tag:"client" env.engine ~delay:us resume))

(* ---- handler machinery ------------------------------------------------ *)

let completion_of_event ~tid ~status ~arg ~put_transferred ~get_transferred =
  let status =
    match status with
    | Types.Completed -> if arg < 0 then Comp_rejected else Comp_ok
    | Types.Crashed -> Comp_crashed
    | Types.Unadvertised -> Comp_unadvertised
  in
  { tid; status; reply_arg = arg; put_transferred; get_transferred }

let run_handler_fiber env body =
  Fiber.spawn
    ~on_exit:(fun () ->
      env.context <- Task_context;
      env.current_request <- None;
      Kernel.endhandler env.kernel;
      wake_idlers env)
    (fun () ->
      env.context <- Handler_context;
      Stats.add_time (Kernel.stats env.kernel)
        (Cost.label Cost.Client_overhead)
        env.cost.Cost.handler_client_us;
      compute env env.cost.Cost.handler_client_us;
      body ())

let start_task env =
  Fiber.spawn
    ~on_exit:(fun () ->
      (* Implicit DIE at the end of the Task section (§4.1). *)
      if Kernel.client_alive env.kernel then Kernel.die env.kernel)
    (fun () -> env.spec.task env)

let handle_event env event =
  match event with
  | Types.Booting { parent } ->
    Fiber.spawn
      ~on_exit:(fun () ->
        env.context <- Task_context;
        Kernel.endhandler env.kernel;
        start_task env)
      (fun () ->
        env.context <- Handler_context;
        env.spec.init env ~parent)
  | Types.Request_arrival { requester; pattern; arg; put_size; get_size } ->
    run_handler_fiber env (fun () ->
        env.current_request <- Some requester;
        env.spec.on_request env { asker = requester; pattern; arg; put_size; get_size })
  | Types.Request_completion { requester; status; arg; put_transferred; get_transferred } ->
    let info =
      completion_of_event ~tid:requester.Types.rq_tid ~status ~arg ~put_transferred
        ~get_transferred
    in
    (match Hashtbl.find_opt env.block_waits info.tid with
     | Some k ->
       (* A blocking REQUEST is waiting on this completion: consume the
          interrupt with a minimal handler (the saved-PC trick of §4.1.1)
          and resume the task. *)
       Hashtbl.remove env.block_waits info.tid;
       Kernel.endhandler env.kernel;
       k info;
       wake_idlers env
     | None -> run_handler_fiber env (fun () -> env.spec.on_completion env info))

let make_client kernel spec =
  let env =
    {
      kernel;
      engine = Kernel.engine kernel;
      cost = Kernel.cost kernel;
      generation = 0;
      idle_waiters = [];
      block_waits = Hashtbl.create 8;
      context = Task_context;
      current_request = None;
      spec;
    }
  in
  let client =
    {
      Kernel.invoke_handler = (fun event -> handle_event env event);
      on_kill =
        (fun () ->
          env.generation <- env.generation + 1;
          env.idle_waiters <- [];
          Hashtbl.reset env.block_waits;
          env.context <- Task_context;
          env.current_request <- None);
    }
  in
  (env, client)

let attach ?(parent = 0) kernel spec =
  let env, client = make_client kernel spec in
  Kernel.attach_client kernel ~parent client;
  env

let bootable kernel spec =
  Kernel.set_boot_program kernel (fun ~parent:_ ~image:_ ->
      let _env, client = make_client kernel spec in
      client)

let bootable_dynamic kernel make_spec =
  Kernel.set_boot_program kernel (fun ~parent ~image ->
      let _env, client = make_client kernel (make_spec ~parent ~image) in
      client)

(* ---- naming ------------------------------------------------------------ *)

let fail_reserved = function
  | Ok () -> ()
  | Error `Reserved_pattern -> raise (Sodal_error "reserved patterns cannot be (un)advertised")

let advertise env pattern =
  trap env env.cost.Cost.small_trap_us (fun () ->
      fail_reserved (Kernel.advertise env.kernel pattern))

let unadvertise env pattern =
  trap env env.cost.Cost.small_trap_us (fun () ->
      fail_reserved (Kernel.unadvertise env.kernel pattern))

let getuniqueid env =
  trap env env.cost.Cost.small_trap_us (fun () -> Kernel.getuniqueid env.kernel)

(* ---- requests ------------------------------------------------------------ *)

let request_raw env ~server ~arg ~put ~get_buffer =
  trap env env.cost.Cost.request_trap_us (fun () ->
      match Kernel.request env.kernel ~server ~arg ~put ~get_buffer with
      | Ok tid -> tid
      | Error Kernel.Too_many_requests -> raise Too_many_requests
      | Error Kernel.Request_to_self -> raise (Sodal_error "REQUEST to own machine")
      | Error Kernel.Data_too_large -> raise (Sodal_error "message exceeds kernel buffer")
      | Error Kernel.Client_dead -> raise Fiber.Stop)

let signal env server ~arg = request_raw env ~server ~arg ~put:Bytes.empty ~get_buffer:Bytes.empty
let put env server ~arg data = request_raw env ~server ~arg ~put:data ~get_buffer:Bytes.empty
let get env server ~arg ~into = request_raw env ~server ~arg ~put:Bytes.empty ~get_buffer:into

let exchange env server ~arg data ~into =
  request_raw env ~server ~arg ~put:data ~get_buffer:into

let await_completion env tid =
  if in_handler env then
    raise (Sodal_error "blocking REQUEST within the handler would deadlock (§4.1.1)");
  await env (fun resume -> Hashtbl.replace env.block_waits tid resume)

let b_request env ~server ~arg ~put ~get_buffer =
  let tid = request_raw env ~server ~arg ~put ~get_buffer in
  await_completion env tid

let b_signal env server ~arg = b_request env ~server ~arg ~put:Bytes.empty ~get_buffer:Bytes.empty
let b_put env server ~arg data = b_request env ~server ~arg ~put:data ~get_buffer:Bytes.empty
let b_get env server ~arg ~into = b_request env ~server ~arg ~put:Bytes.empty ~get_buffer:into

let b_exchange env server ~arg data ~into =
  b_request env ~server ~arg ~put:data ~get_buffer:into

let await_first env tids =
  if in_handler env then
    raise (Sodal_error "blocking wait within the handler would deadlock (§4.1.1)");
  if tids = [] then invalid_arg "Sodal.await_first: empty tid list";
  await env (fun resume ->
      let fired = ref false in
      List.iter
        (fun tid ->
          Hashtbl.replace env.block_waits tid (fun info ->
              if not !fired then begin
                fired := true;
                List.iter (fun t -> Hashtbl.remove env.block_waits t) tids;
                resume info
              end))
        tids)

let await_completion env tid = await_first env [ tid ]

let swallow_completion env tid = Hashtbl.replace env.block_waits tid (fun _ -> ())

let on_completion_of env tid k = Hashtbl.replace env.block_waits tid k

(* ---- accepts --------------------------------------------------------------- *)

let accept_raw env ~requester ~arg ~get_buffer ~put =
  trap env env.cost.Cost.accept_trap_us (fun () ->
      await env (fun resume ->
          Kernel.accept env.kernel ~requester ~arg ~get_buffer ~put ~on_done:resume))

let accept_signal env requester ~arg =
  fst (accept_raw env ~requester ~arg ~get_buffer:Bytes.empty ~put:Bytes.empty)

let accept_put env requester ~arg ~into =
  accept_raw env ~requester ~arg ~get_buffer:into ~put:Bytes.empty

let accept_get env requester ~arg ~data =
  fst (accept_raw env ~requester ~arg ~get_buffer:Bytes.empty ~put:data)

let accept_exchange env requester ~arg ~into ~data =
  accept_raw env ~requester ~arg ~get_buffer:into ~put:data

let current env =
  match env.current_request with
  | Some requester when in_handler env -> requester
  | Some _ | None -> raise (Sodal_error "ACCEPT_CURRENT outside the handler (§4.1.2)")

let accept_current_signal env ~arg = accept_signal env (current env) ~arg
let accept_current_put env ~arg ~into = accept_put env (current env) ~arg ~into
let accept_current_get env ~arg ~data = accept_get env (current env) ~arg ~data

let accept_current_exchange env ~arg ~into ~data =
  accept_exchange env (current env) ~arg ~into ~data

let reject_request env requester = ignore (accept_signal env requester ~arg:(-1))

let reject env = reject_request env (current env)

(* ---- cancel, handler control, process control -------------------------------- *)

let cancel env tid =
  trap env env.cost.Cost.small_trap_us (fun () ->
      await env (fun resume ->
          Kernel.cancel env.kernel ~requester:{ Types.rq_mid = my_mid env; rq_tid = tid }
            ~on_done:resume))

let open_handler env =
  trap env env.cost.Cost.small_trap_us (fun () -> Kernel.open_handler env.kernel)

let close_handler env =
  trap env env.cost.Cost.small_trap_us (fun () -> Kernel.close_handler env.kernel)

let die env =
  Kernel.die env.kernel;
  raise Fiber.Stop

(* ---- discover ------------------------------------------------------------------ *)

let decode_mids buffer count =
  List.init count (fun i ->
      (Char.code (Bytes.get buffer (2 * i)) lsl 8) lor Char.code (Bytes.get buffer ((2 * i) + 1)))

let discover_list env pattern ~max =
  if max < 1 then invalid_arg "Sodal.discover_list: max >= 1";
  let buffer = Bytes.create (2 * max) in
  let server = { Types.sv_mid = Types.Broadcast_mid; sv_pattern = pattern } in
  let completion = b_request env ~server ~arg:0 ~put:Bytes.empty ~get_buffer:buffer in
  match completion.status with
  | Comp_ok -> decode_mids buffer (completion.get_transferred / 2)
  | Comp_rejected | Comp_crashed | Comp_unadvertised -> []

let discover env pattern =
  let rec search () =
    match discover_list env pattern ~max:1 with
    | mid :: _ -> { Types.sv_mid = Types.Mid mid; sv_pattern = pattern }
    | [] ->
      (* DISCOVER blocks until a response is obtained (§4.1.3). *)
      compute env 10_000;
      search ()
  in
  search ()

(* ---- casts ----------------------------------------------------------------------- *)

let self_signature env ~tid = { Types.rq_mid = my_mid env; rq_tid = tid }

let server ~mid ~pattern = { Types.sv_mid = Types.Mid mid; sv_pattern = pattern }

let server_broadcast ~pattern = { Types.sv_mid = Types.Broadcast_mid; sv_pattern = pattern }
