(* Open-loop workload generator for scale runs.

   Unlike the closed-loop §5.5 workloads (bench/workloads.ml), where a
   client issues the next request only after a completion, arrivals here
   come from independent per-node Poisson processes that do NOT slow down
   when the system falls behind — the defining property of an open-loop
   generator. Overload shows up as shed requests (MAXREQUESTS exhausted at
   the issuing kernel) and growing completion latency, not as a silently
   reduced offered rate.

   Every node is both a server (advertising one well-known pattern,
   accepting every arrival SIGNAL-style) and a client. Arrival n at a node
   picks a key from a Zipf distribution and SIGNALs the key's home node
   (key mod nodes, skipping itself); every [fanout_every]-th arrival
   additionally scatters [fanout] sub-requests to the following nodes and
   counts a gather when all of them complete.

   Determinism: per-node RNGs are split off the engine RNG at setup in mid
   order, all mutable state lives in arrays indexed by node or in
   hashtables that are never iterated, so a run is a pure function of the
   config — the replay regression in test/test_scale.ml holds the SCALE
   bench to that. *)

module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Zipf = Soda_sim.Zipf
module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Bus = Soda_net.Bus

type config = {
  nodes : int;
  requests : int;  (** root arrivals to offer across the whole network *)
  mean_interarrival_us : int;  (** per-node Poisson mean *)
  zipf_theta : float;
  keys : int;
  fanout : int;  (** scatter width; 0 disables scatter-gather *)
  fanout_every : int;  (** every n-th root arrival scatters *)
  seed : int;
  profile_gc : bool;
}

let config ~nodes ~requests =
  {
    nodes;
    requests;
    (* Per-node mean scaling with the node count keeps the AGGREGATE
       offered rate constant (~1000 req/s of simulated time) as N grows:
       the Zipf-hot node stays below its handler-serialization capacity,
       so runs measure simulator throughput rather than queueing collapse. *)
    mean_interarrival_us = 1000 * nodes;
    zipf_theta = 0.99;
    keys = 4 * nodes;
    fanout = 4;
    fanout_every = 16;
    seed = 97;
    profile_gc = false;
  }

type result = {
  offered : int;  (** root arrival events fired *)
  issued : int;  (** requests the kernels actually admitted (roots + scatters) *)
  completed : int;
  failed : int;  (** completions with CRASHED/UNADVERTISED status *)
  shed : int;  (** open-loop arrivals refused with MAXREQUESTS exhausted *)
  gathers : int;  (** scatter groups whose every sub-request completed *)
  virtual_us : int;  (** final virtual clock *)
  net : Network.t;  (** the run's network, for engine/bus/pool introspection *)
}

let patt = Pattern.well_known 0o644

(* First arrivals wait out node boot (the Booting handler must run and
   advertise before traffic lands, or early SIGNALs complete UNADVERTISED). *)
let start_us = 50_000

let run cfg =
  if cfg.nodes < 2 then invalid_arg "Openloop.run: need at least two nodes";
  if cfg.requests < 0 then invalid_arg "Openloop.run: negative request count";
  if cfg.mean_interarrival_us < 1 then
    invalid_arg "Openloop.run: mean interarrival must be >= 1us";
  if cfg.fanout < 0 || cfg.fanout_every < 1 then
    invalid_arg "Openloop.run: bad fanout config";
  let cost = { Cost.default with Cost.maxrequests = max 8 (cfg.fanout + 1) } in
  (* A 1 Gbps medium: at thousands of stations the default 1 Mbps Megalink
     saturates immediately and the run measures medium queueing, not the
     simulator. The protocol stack is bandwidth-agnostic. *)
  let bus_config = { Bus.default_config with Bus.bandwidth_bps = 1_000_000_000 } in
  let net = Network.create ~seed:cfg.seed ~cost ~bus_config () in
  let engine = Network.engine net in
  let zipf = Zipf.create ~n:cfg.keys ~theta:cfg.zipf_theta in
  let offered = ref 0 in
  let issued = ref 0 in
  let completed = ref 0 in
  let failed = ref 0 in
  let shed = ref 0 in
  let gathers = ref 0 in
  let kernels = Array.make cfg.nodes None in
  (* tid -> shared countdown of its scatter group (per issuing node; only
     ever probed and removed by tid, never iterated). *)
  let gather_of = Array.init cfg.nodes (fun _ -> Hashtbl.create 16) in
  for i = 0 to cfg.nodes - 1 do
    let kernel = Network.add_node net ~mid:i in
    kernels.(i) <- Some kernel;
    let invoke_handler event =
      match event with
      | Types.Booting _ ->
        ignore (Kernel.advertise kernel patt);
        Kernel.endhandler kernel
      | Types.Request_arrival { requester; _ } ->
        (* SIGNAL service: accept with no data either way; the handler
           stays busy until the accept completes (as in the runtime's
           handler fibers), which is what serializes a hot node. *)
        Kernel.accept kernel ~requester ~arg:0 ~get_buffer:Bytes.empty ~put:Bytes.empty
          ~on_done:(fun _ -> Kernel.endhandler kernel)
      | Types.Request_completion { requester; status; _ } ->
        (match status with
         | Types.Completed -> incr completed
         | Types.Crashed | Types.Unadvertised -> incr failed);
        let tbl = gather_of.(i) in
        (match Hashtbl.find tbl requester.Types.rq_tid with
         | remaining ->
           Hashtbl.remove tbl requester.Types.rq_tid;
           decr remaining;
           if !remaining = 0 then incr gathers
         | exception Not_found -> ());
        Kernel.endhandler kernel
    in
    Kernel.attach_client kernel ~parent:0 { Kernel.invoke_handler; on_kill = ignore }
  done;
  let kernel_of i = match kernels.(i) with Some k -> k | None -> assert false in
  (* One RNG per node, split in mid order after node setup: arrival timing
     and key choice are independent of every other node's stream. *)
  let rngs = Array.init cfg.nodes (fun _ -> Rng.split (Engine.rng engine)) in
  let issue src dst =
    let kernel = kernel_of src in
    let server = { Types.sv_mid = Types.Mid dst; Types.sv_pattern = patt } in
    match Kernel.request kernel ~server ~arg:0 ~put:Bytes.empty ~get_buffer:Bytes.empty with
    | Ok tid ->
      incr issued;
      Some tid
    | Error Kernel.Too_many_requests ->
      (* The open-loop generator does not wait: the arrival is shed and
         the process keeps its schedule. *)
      incr shed;
      None
    | Error (Kernel.Request_to_self | Kernel.Data_too_large | Kernel.Client_dead) ->
      failwith "Openloop.issue: unexpected request error"
  in
  (* dst for key as seen from node [src]: the key's home node, skipping
     [src] itself (no local messages, §3.3). *)
  let home src key =
    let dst = key mod cfg.nodes in
    if dst = src then (dst + 1) mod cfg.nodes else dst
  in
  let arrival src =
    let n = !offered in
    offered := n + 1;
    let rng = rngs.(src) in
    let key = Zipf.sample zipf rng in
    ignore (issue src (home src key));
    if cfg.fanout > 0 && n mod cfg.fanout_every = 0 then begin
      (* Scatter: sub-requests to the nodes following the key's home. *)
      let remaining = ref 0 in
      let tbl = gather_of.(src) in
      for j = 1 to cfg.fanout do
        match issue src (home src (key + j)) with
        | Some tid ->
          incr remaining;
          Hashtbl.replace tbl tid remaining
        | None -> ()
      done
      (* a fully-shed scatter registers nothing and never gathers *)
    end
  in
  let next_delay rng =
    let u = Rng.float rng 1.0 in
    max 1 (int_of_float (-.float_of_int cfg.mean_interarrival_us *. log (1.0 -. u)))
  in
  let rec arrive src () =
    if !offered < cfg.requests then begin
      arrival src;
      if !offered < cfg.requests then
        ignore
          (Engine.schedule ~tag:"client" engine ~delay:(next_delay rngs.(src)) (arrive src))
    end
  in
  for i = 0 to cfg.nodes - 1 do
    ignore
      (Engine.schedule ~tag:"client" engine ~delay:(start_us + next_delay rngs.(i))
         (arrive i))
  done;
  if cfg.profile_gc then Engine.set_profile_gc engine true;
  (* Horizon: generous multiple of the expected arrival span plus drain
     slack; quiescence normally ends the run well before. *)
  let span = cfg.requests / cfg.nodes * cfg.mean_interarrival_us in
  let horizon = start_us + (span * 4) + 60_000_000 in
  let virtual_us = Network.run ~until:horizon net in
  {
    offered = !offered;
    issued = !issued;
    completed = !completed;
    failed = !failed;
    shed = !shed;
    gathers = !gathers;
    virtual_us;
    net;
  }
