module Engine = Soda_sim.Engine
module Trace = Soda_sim.Trace
module Bus = Soda_net.Bus
module Cost = Soda_base.Cost_model

type t = {
  engine : Engine.t;
  bus : Bus.t;
  trace : Trace.t;
  cost : Cost.t;
  nodes : (int, Kernel.t) Hashtbl.t;
}

let create ?(seed = 42) ?(cost = Cost.default) ?bus_config ?(trace = false) () =
  let engine = Engine.create ~seed () in
  let tr = Trace.create ~enabled:trace () in
  let bus = Bus.create ?config:bus_config ~obs:(Trace.recorder tr) engine in
  { engine; bus; trace = tr; cost; nodes = Hashtbl.create 8 }

let engine t = t.engine
let bus t = t.bus
let trace t = t.trace
let recorder t = Trace.recorder t.trace
let cost t = t.cost

let add_node ?(boot_kinds = [ 0 ]) t ~mid =
  if Hashtbl.mem t.nodes mid then
    invalid_arg (Printf.sprintf "Network.add_node: mid %d exists" mid);
  let kernel =
    Kernel.create ~engine:t.engine ~bus:t.bus ~trace:t.trace ~cost:t.cost ~mid ~boot_kinds
  in
  Hashtbl.replace t.nodes mid kernel;
  kernel

let node t ~mid =
  match Hashtbl.find_opt t.nodes mid with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Network.node: no mid %d" mid)

let nodes t =
  Hashtbl.fold (fun mid k acc -> (mid, k) :: acc) t.nodes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run ?until t = Engine.run ?until t.engine

let run_for t ~duration = Engine.run_for t.engine ~duration

let now t = Engine.now t.engine
