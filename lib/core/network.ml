module Engine = Soda_sim.Engine
module Trace = Soda_sim.Trace
module Bus = Soda_net.Bus
module Cost = Soda_base.Cost_model
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

type t = {
  engine : Engine.t;
  bus : Bus.t;
  trace : Trace.t;
  cost : Cost.t;
  nodes : (int, Kernel.t) Hashtbl.t;
  node_boot_kinds : (int, int list) Hashtbl.t;  (* survives crash_node for reboots *)
}

let create ?(seed = 42) ?(cost = Cost.default) ?bus_config ?(trace = false)
    ?(causal = false) () =
  let engine = Engine.create ~seed () in
  let tr = Trace.create ~enabled:trace () in
  Recorder.set_causal (Trace.recorder tr) causal;
  let bus = Bus.create ?config:bus_config ~obs:(Trace.recorder tr) engine in
  {
    engine;
    bus;
    trace = tr;
    cost;
    nodes = Hashtbl.create 8;
    node_boot_kinds = Hashtbl.create 8;
  }

let engine t = t.engine
let bus t = t.bus
let trace t = t.trace
let recorder t = Trace.recorder t.trace
let cost t = t.cost

let emit_fault t kind =
  let r = recorder t in
  if Recorder.tracing r then
    Recorder.emit r ~time_us:(Engine.now t.engine) ~mid:(-1) ~actor:"fault" kind

let add_node ?(boot_kinds = [ 0 ]) t ~mid =
  if Hashtbl.mem t.nodes mid then
    invalid_arg (Printf.sprintf "Network.add_node: mid %d exists" mid);
  let kernel =
    Kernel.create ~engine:t.engine ~bus:t.bus ~trace:t.trace ~cost:t.cost ~mid ~boot_kinds
  in
  Hashtbl.replace t.nodes mid kernel;
  Hashtbl.replace t.node_boot_kinds mid boot_kinds;
  kernel

let node t ~mid =
  match Hashtbl.find_opt t.nodes mid with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Network.node: no mid %d" mid)

let nodes t =
  Hashtbl.fold (fun mid k acc -> (mid, k) :: acc) t.nodes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- fault injection: whole-node crash and reboot ------------------------- *)

let crash_node t ~mid =
  let kernel = node t ~mid in
  emit_fault t (Event.Fault_crash { mid });
  Kernel.destroy kernel;
  Hashtbl.remove t.nodes mid

let reboot_node ?(quarantine = true) t ~mid =
  if Hashtbl.mem t.nodes mid then
    invalid_arg
      (Printf.sprintf "Network.reboot_node: mid %d still running (crash it first)" mid);
  let boot_kinds =
    match Hashtbl.find_opt t.node_boot_kinds mid with Some ks -> ks | None -> [ 0 ]
  in
  emit_fault t (Event.Fault_reboot { mid });
  (* A fresh [Kernel.create] is a fresh boot epoch: the new mint starts
     empty, so TIDs minted by the previous incarnation classify as stale
     and late ACCEPTs are answered CRASHED (§5.4). *)
  let kernel =
    Kernel.create ~engine:t.engine ~bus:t.bus ~trace:t.trace ~cost:t.cost ~mid ~boot_kinds
  in
  Hashtbl.replace t.nodes mid kernel;
  if quarantine then Kernel.quarantine kernel;
  kernel

let run ?until t = Engine.run ?until t.engine

let run_for t ~duration = Engine.run_for t.engine ~duration

let now t = Engine.now t.engine
