(** Open-loop workload generator for scale runs.

    Arrivals come from independent per-node Poisson processes that do not
    slow down when the system falls behind (unlike the closed-loop §5.5
    workloads): overload surfaces as shed requests and latency, never as a
    reduced offered rate. Every node is both a server and a client; keys
    follow a Zipf distribution, and a configurable fraction of arrivals
    scatter-gather across several nodes. Runs are a pure function of the
    config — the deterministic-replay regression in test/test_scale.ml
    depends on it. See docs/PERFORMANCE.md for methodology. *)

type config = {
  nodes : int;
  requests : int;  (** root arrivals to offer across the whole network *)
  mean_interarrival_us : int;  (** per-node Poisson mean *)
  zipf_theta : float;
  keys : int;
  fanout : int;  (** scatter width; 0 disables scatter-gather *)
  fanout_every : int;  (** every n-th root arrival scatters *)
  seed : int;
  profile_gc : bool;  (** enable the engine's GC word-delta profiling *)
}

(** Default configuration at a given scale: per-node interarrival mean
    grows with [nodes] so the aggregate offered rate stays ~1000 req/s of
    simulated time (the Zipf-hot node stays below its handler capacity),
    theta 0.99, 4 keys per node, fanout 4 every 16th arrival. *)
val config : nodes:int -> requests:int -> config

type result = {
  offered : int;  (** root arrival events fired *)
  issued : int;  (** requests the kernels admitted (roots + scatters) *)
  completed : int;
  failed : int;  (** completions with CRASHED/UNADVERTISED status *)
  shed : int;  (** arrivals refused with MAXREQUESTS exhausted *)
  gathers : int;  (** scatter groups whose every sub-request completed *)
  virtual_us : int;  (** final virtual clock *)
  net : Network.t;  (** the run's network, for engine/bus introspection *)
}

(** @raise Invalid_argument on fewer than two nodes, a negative request
    count, a sub-microsecond interarrival mean, or bad fanout settings. *)
val run : config -> result
