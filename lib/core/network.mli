(** Builder for a simulated SODA network: the engine, the broadcast bus and
    a set of nodes, each a kernel processor awaiting (or running) a client.

    Typical use:
    {[
      let net = Network.create ~seed:1 () in
      let server = Network.add_node net ~mid:1 in
      let client = Network.add_node net ~mid:2 in
      (* attach clients via Soda_runtime.Node *)
      Network.run_for net ~duration:1_000_000
    ]} *)

type t

(** [causal] turns on causal-context minting in the shared recorder:
    traps and deliveries are stamped with trace/span/parent ids that
    cross nodes on frame metadata. Off by default; minting never
    schedules engine work, so enabling it changes no simulated timing. *)
val create :
  ?seed:int ->
  ?cost:Soda_base.Cost_model.t ->
  ?bus_config:Soda_net.Bus.config ->
  ?trace:bool ->
  ?causal:bool ->
  unit ->
  t

val engine : t -> Soda_sim.Engine.t
val bus : t -> Soda_net.Bus.t
val trace : t -> Soda_sim.Trace.t

(** The structured-event recorder shared by every node and the bus (the
    same value as [trace t]; see {!Soda_sim.Trace.recorder}). *)
val recorder : t -> Soda_obs.Recorder.t

val cost : t -> Soda_base.Cost_model.t

(** [add_node t ~mid] creates a node with the network's cost model.
    [boot_kinds] describes the client processor type for the BOOT patterns
    (§3.5.2); defaults to [[0]].
    @raise Invalid_argument on duplicate mid. *)
val add_node : ?boot_kinds:int list -> t -> mid:int -> Kernel.t

val node : t -> mid:int -> Kernel.t
val nodes : t -> (int * Kernel.t) list

(** {2 Fault injection}

    Whole-node crash/reboot, driven mid-workload by fault plans
    ([Soda_fault]). [crash_node] permanently tears a node down — client
    killed, kernel state lost, bus station released — and removes it from
    {!nodes}. [reboot_node] then creates a *fresh* kernel incarnation under
    the same mid with a fresh boot epoch, so §5.4 staleness classification
    answers pre-crash TIDs with CRASHED. By default the new incarnation
    observes the 2·MPL + Delta-t reboot quarantine before rejoining;
    [~quarantine:false] skips it (useful in deterministic regressions).
    Emits {!Soda_obs.Event.Fault_crash} / [Fault_reboot] when tracing. *)

(** @raise Invalid_argument if [mid] does not exist. *)
val crash_node : t -> mid:int -> unit

(** @raise Invalid_argument if [mid] is still running. *)
val reboot_node : ?quarantine:bool -> t -> mid:int -> Kernel.t

(** [run t] processes events until quiescence (or [until], virtual us). *)
val run : ?until:int -> t -> int

val run_for : t -> duration:int -> int

val now : t -> int
