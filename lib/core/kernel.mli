(** The SODA kernel: client-facing semantics of the ten primitives (§3).

    One [Kernel.t] per node. The kernel owns the advertisement table, the
    handler state machine (OPEN/CLOSED x BUSY/IDLE plus the queued
    completion interrupts of §3.7.5), MAXREQUESTS accounting, the reserved
    patterns (KILL / BOOT / LOAD / SYSTEM) and the boot state machine of
    §3.5; the network state machines live in [Soda_proto.Transport].

    The client processor is represented by a {!client} record of hooks;
    [Soda_runtime] builds one from effect-based task/handler fibers. *)

module Types = Soda_base.Types
module Pattern = Soda_base.Pattern

type t

(** Hooks into the attached client processor. *)
type client = {
  invoke_handler : Types.handler_event -> unit;
      (** Run the client handler. The client must eventually call
          {!endhandler}. The kernel guarantees no overlapping invocations. *)
  on_kill : unit -> unit;
      (** The client was terminated (KILL/LOAD signal or DIE); stop all
          client activity immediately. *)
}

val create :
  engine:Soda_sim.Engine.t ->
  bus:Soda_net.Bus.t ->
  trace:Soda_sim.Trace.t ->
  cost:Soda_base.Cost_model.t ->
  mid:int ->
  boot_kinds:int list ->
  t

val mid : t -> int
val engine : t -> Soda_sim.Engine.t
val cost : t -> Soda_base.Cost_model.t
val stats : t -> Soda_sim.Stats.t

(** The network-shared structured-event recorder, for client-level
    facilities that emit typed events (e.g. the replicated store). *)
val recorder : t -> Soda_obs.Recorder.t

val client_alive : t -> bool

(** [attach_client t ~parent client] installs a resident client (ROM boot,
    §3.5.3) and schedules its [Booting] handler invocation. Boot patterns
    are withdrawn while a client runs.
    @raise Invalid_argument if a client is already attached. *)
val attach_client : t -> parent:int -> client -> unit

(** [set_boot_program t f] registers the program started when a remote
    parent boots this node over the network: after the LOAD-pattern SIGNAL,
    [f ~parent ~image] must return the client hooks. *)
val set_boot_program : t -> (parent:int -> image:bytes -> client) -> unit

(** {1 The ten primitives} *)

type request_error =
  | Too_many_requests  (** MAXREQUESTS uncompleted requests (§3.3.2) *)
  | Request_to_self  (** no local messages (§3.3) *)
  | Data_too_large  (** exceeds the kernel buffer; no multipackets (§6.17.4) *)
  | Client_dead

(** [request t ~server ~arg ~put ~get_buffer] — non-blocking REQUEST.
    [put] is copied out at trap time; the kernel fills [get_buffer] before
    the completion interrupt. A [Broadcast_mid] target performs DISCOVER:
    matching mids are stored in [get_buffer] as big-endian 16-bit words. *)
val request :
  t ->
  server:Types.server_signature ->
  arg:int ->
  put:bytes ->
  get_buffer:bytes ->
  (Types.tid, request_error) result

(** [accept t ~requester ~arg ~get_buffer ~put ~on_done] — blocking ACCEPT
    (bounded time). Requester put-data lands in [get_buffer]; [on_done]
    receives the status and the byte count received. *)
val accept :
  t ->
  requester:Types.requester_signature ->
  arg:int ->
  get_buffer:bytes ->
  put:bytes ->
  on_done:(Types.accept_status * int -> unit) ->
  unit

(** [cancel t ~requester ~on_done] — CANCEL one of our own requests.
    [on_done true] iff no completion will ever be delivered for it. *)
val cancel : t -> requester:Types.requester_signature -> on_done:(bool -> unit) -> unit

val advertise : t -> Pattern.t -> (unit, [ `Reserved_pattern ]) result
val unadvertise : t -> Pattern.t -> (unit, [ `Reserved_pattern ]) result
val advertised : t -> Pattern.t -> bool
val getuniqueid : t -> Pattern.t

val open_handler : t -> unit
val close_handler : t -> unit

(** The client handler returned; deliver queued completion interrupts and
    re-offer any pipeline-buffered request. *)
val endhandler : t -> unit

(** DIE (§3.5.1): reset kernel state, clear advertisements, fail remote
    requests, re-advertise boot patterns. *)
val die : t -> unit

(** {1 Fault injection} *)

(** [crash t] — undetectable-by-software hardware death: the NIC goes
    silent, all kernel state is lost. After the Delta-t quarantine
    (2 MPL + Delta-t) the node rejoins with boot patterns advertised. *)
val crash : t -> unit

(** [destroy t] — permanent teardown: like {!crash} but the node never
    rejoins and its bus station is released, so [Network.reboot_node] can
    attach a fresh incarnation under the same mid. *)
val destroy : t -> unit

(** [quarantine t] — hold a freshly created incarnation silent for the
    §5.4 reboot quarantine (2 MPL + Delta-t), then rejoin. *)
val quarantine : t -> unit

(** Number of uncompleted requests issued by this client. *)
val outstanding : t -> int

(** {1 Causal identity}

    All of these are inert (return [None] / store [None]) unless the
    network's recorder was created with causal tracing on; minting only
    bumps counters, so simulated timing is identical either way. *)

(** Root span for a client-visible operation (e.g. one store op). *)
val mint_causal_root : t -> Soda_obs.Causal.ctx option

(** [set_causal_parent t ctx] makes every subsequent REQUEST trap mint
    its span as a child of [ctx] instead of a fresh root — this is how a
    multi-request operation (quorum fan-out, retries, failover) hangs
    under one tree. Pass [None] to restore per-trap roots. *)
val set_causal_parent : t -> Soda_obs.Causal.ctx option -> unit

val causal_parent : t -> Soda_obs.Causal.ctx option
