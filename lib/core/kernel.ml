module Engine = Soda_sim.Engine
module Stats = Soda_sim.Stats
module Trace = Soda_sim.Trace
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic
module Pattern = Soda_base.Pattern
module Types = Soda_base.Types
module Cost = Soda_base.Cost_model
module Transport = Soda_proto.Transport
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event
module Causal = Soda_obs.Causal

type client = {
  invoke_handler : Types.handler_event -> unit;
  on_kill : unit -> unit;
}

type boot_state =
  | No_client  (** boot patterns advertised; waiting for a parent *)
  | Loading of { parent : int; load_pattern : Pattern.t; image : Buffer.t }
  | Running of { load_pattern : Pattern.t option }
      (** [load_pattern] is retained so the parent can kill us (§3.5.2) *)

type pending_request = { pr_get_buffer : bytes }

type t = {
  engine : Engine.t;
  trace : Trace.t;
  actor_name : string;
  cost : Cost.t;
  mid : int;
  transport : Transport.t;
  nic : Nic.t;
  mutable mint : Pattern.Mint.t;
  (* advertisement table: both representations kept in sync with config *)
  assoc_table : (int, Pattern.t) Hashtbl.t;  (* pattern int -> pattern *)
  slot_table : Pattern.t option array;  (* 256-slot table of §5.4 *)
  mutable boot_kinds : int list;
  mutable kill_pattern : Pattern.t;
  mutable boot : boot_state;
  mutable client : client option;
  mutable boot_program : (parent:int -> image:bytes -> client) option;
  (* handler state machine *)
  mutable hs_open : bool;
  mutable hs_busy : bool;
  completions : Types.handler_event Queue.t;
  pending : (int, pending_request) Hashtbl.t;  (* tid -> requester bookkeeping *)
  mutable crashed : bool;
  (* Ambient causal parent: a client-visible operation (a store op, a
     multi-request facility call) sets this so every REQUEST trapped
     under it becomes a child span of the operation rather than a fresh
     root. [None] (the default): each trap roots its own trace. *)
  mutable causal_parent : Causal.ctx option;
}

let mid t = t.mid
let engine t = t.engine
let cost t = t.cost
let stats t = Transport.stats t.transport
let recorder t = Trace.recorder t.trace
let client_alive t = t.client <> None

let outstanding t = Hashtbl.length t.pending

let actor t = t.actor_name

let trace t fmt = Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t) fmt

(* Typed observability events: guarded so a disabled trace costs one branch. *)
let tracing t = Recorder.tracing t.trace

let emit_event t ?ctx kind =
  Recorder.emit t.trace ?ctx ~time_us:(Engine.now t.engine) ~mid:t.mid
    ~actor:t.actor_name kind

(* ---- causal identity ------------------------------------------------------ *)

let set_causal_parent t ctx = t.causal_parent <- ctx
let causal_parent t = t.causal_parent

(* Root span for a client-visible operation (None unless the network was
   created with causal tracing on). *)
let mint_causal_root t = Recorder.mint_root (Trace.recorder t.trace)

(* Context for a trap: child of the ambient operation if one is set,
   otherwise a fresh root. Minting is two counter bumps — it never
   schedules engine work, so timing is unchanged by causal tracing. *)
let mint_trap_ctx t =
  match t.causal_parent with
  | Some parent -> Recorder.mint_child (Trace.recorder t.trace) parent
  | None -> mint_causal_root t

(* Causal identity of a handler event, resolved through the transport's
   per-tid table (requester-side requests and server-side adoptions). *)
let handler_event_ctx t = function
  | Types.Request_arrival { requester = { Types.rq_tid; _ }; _ }
  | Types.Request_completion { requester = { Types.rq_tid; _ }; _ } ->
    Transport.causal_ctx t.transport ~tid:rq_tid
  | _ -> None

(* ---- advertisement table ------------------------------------------------- *)

let advertise_raw t pattern =
  if t.cost.Cost.associative_patterns then
    Hashtbl.replace t.assoc_table (Pattern.to_int pattern) pattern
  else t.slot_table.(Pattern.slot pattern) <- Some pattern

let unadvertise_raw t pattern =
  if t.cost.Cost.associative_patterns then
    Hashtbl.remove t.assoc_table (Pattern.to_int pattern)
  else begin
    match t.slot_table.(Pattern.slot pattern) with
    | Some p when Pattern.equal p pattern -> t.slot_table.(Pattern.slot pattern) <- None
    | Some _ | None -> ()
  end

let advertised_raw t pattern =
  if t.cost.Cost.associative_patterns then
    Hashtbl.mem t.assoc_table (Pattern.to_int pattern)
  else
    match t.slot_table.(Pattern.slot pattern) with
    | Some p -> Pattern.equal p pattern
    | None -> false

let clear_advertisements t =
  Hashtbl.reset t.assoc_table;
  Array.fill t.slot_table 0 (Array.length t.slot_table) None

(* ---- reserved patterns ---------------------------------------------------- *)

let load_pattern t =
  match t.boot with
  | Loading { load_pattern; _ } -> Some load_pattern
  | Running { load_pattern } -> load_pattern
  | No_client -> None

let boot_patterns_active t = match t.boot with No_client -> true | _ -> false

let reserved_pattern_active t pattern =
  (Pattern.equal pattern t.kill_pattern)
  || Pattern.equal pattern Pattern.system_pattern
  || (boot_patterns_active t
      && List.exists (fun k -> Pattern.equal pattern (Pattern.boot_pattern k)) t.boot_kinds)
  || (match load_pattern t with
      | Some lp -> Pattern.equal pattern lp
      | None -> false)

(* ---- handler dispatch ------------------------------------------------------ *)

let handler_available t =
  t.client <> None && t.hs_open && (not t.hs_busy) && Queue.is_empty t.completions

let invoke_client_handler t event =
  match t.client with
  | None -> ()
  | Some client ->
    t.hs_busy <- true;
    if tracing t then emit_event t ?ctx:(handler_event_ctx t event) Event.Handler_invoke;
    Stats.add_time (stats t) (Cost.label Cost.Context_switch) t.cost.Cost.context_switch_us;
    let epoch_client = client in
    ignore
      (Engine.schedule ~tag:"kernel" t.engine ~delay:t.cost.Cost.context_switch_us (fun () ->
           (* The client may have died between scheduling and delivery. *)
           match t.client with
           | Some c when c == epoch_client -> c.invoke_handler event
           | Some _ | None -> ()))

let rec dispatch_completions t =
  if t.client <> None && t.hs_open && (not t.hs_busy) && not (Queue.is_empty t.completions)
  then begin
    let event = Queue.pop t.completions in
    invoke_client_handler t event
  end
  else if t.client <> None && t.hs_open && not t.hs_busy then
    (* Handler free and no queued completions: a pipeline-buffered request
       may now be delivered (the transport calls back into
       [deliver_request], which invokes the handler). *)
    Transport.flush_buffered t.transport

and enqueue_completion t event =
  Queue.push event t.completions;
  dispatch_completions t

(* ---- internal (reserved-pattern) request handling -------------------------- *)

let encode_load_pattern pattern =
  let v = Pattern.to_int pattern in
  let b = Bytes.create 6 in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  done;
  b

let decode_pattern_bytes b =
  if Bytes.length b < 6 then None
  else begin
    let v = ref 0 in
    for i = 0 to 5 do
      v := (!v lsl 8) lor Char.code (Bytes.get b i)
    done;
    match Pattern.of_int !v with p -> Some p | exception Invalid_argument _ -> None
  end

let internal_accept t ~src ~tid ~arg ~get_capacity ~data_out ~k =
  (* Kernel-internal accepts run off the event loop, never the client
     handler; reserved-pattern routines "cannot be impeded by the client
     handler state" (§3.4.3). *)
  ignore
    (Engine.schedule ~tag:"kernel" t.engine ~delay:t.cost.Cost.packet_protocol_us (fun () ->
         Transport.accept t.transport ~requester_mid:src ~requester_tid:tid ~arg
           ~get_capacity ~data_out ~on_done:k))

(* Terminate the client. Client-visible state (handler, advertisements,
   pending completions) vanishes at once; when [drain] is set — DIE and the
   KILL patterns, where the kernel processor itself is healthy — the
   transport keeps running briefly so that owed acknowledgements and
   in-flight completions settle before the reset, as a real kernel would.
   A hardware [crash] resets abruptly. *)
let kill_client t ~readvertise_boot ~drain =
  (match t.client with
   | Some client ->
     t.client <- None;
     client.on_kill ()
   | None -> ());
  t.hs_open <- false;
  t.hs_busy <- false;
  Queue.clear t.completions;
  Hashtbl.reset t.pending;
  clear_advertisements t;
  let reset () =
    Transport.reset t.transport;
    (* A dead client's TIDs must classify as stale so that late ACCEPTs are
       answered CRASHED rather than CANCELLED (§3.6.1). *)
    t.mint <-
      Pattern.Mint.create ~serial:(t.mid land 0xFF) ~boot_clock:(Engine.now t.engine)
  in
  if drain then begin
    let drain_us = (2 * t.cost.Cost.ack_grace_us) + t.cost.Cost.retrans_interval_us in
    let generation = t.boot in
    ignore
      (Engine.schedule ~tag:"kernel" t.engine ~delay:drain_us (fun () ->
           (* Skip the reset if a new client booted during the drain. *)
           if t.boot == generation || t.boot = No_client then reset ()))
  end
  else reset ();
  if readvertise_boot then t.boot <- No_client

let start_loaded_client t ~parent =
  match t.boot with
  | Loading { parent = _; load_pattern; image } ->
    let image_bytes = Buffer.to_bytes image in
    t.boot <- Running { load_pattern = Some load_pattern };
    (* Fresh mint per client incarnation (§5.4): ACCEPTs of pre-boot TIDs
       must be detectably stale. *)
    t.mint <- Pattern.Mint.create ~serial:(t.mid land 0xFF) ~boot_clock:(Engine.now t.engine);
    (match t.boot_program with
     | Some program ->
       let client = program ~parent ~image:image_bytes in
       t.client <- Some client;
       t.hs_open <- true;
       trace t "booted client (image %d bytes) for parent %d" (Bytes.length image_bytes) parent;
       invoke_client_handler t (Types.Booting { parent })
     | None ->
       trace t "boot signal accepted but no boot program registered";
       t.client <- None)
  | No_client | Running _ -> ()

(* Handle a delivered request addressed to a reserved pattern. *)
let handle_reserved t ~src ~tid ~pattern ~arg ~put_size ~get_size =
  let nothing = Bytes.empty in
  if Pattern.equal pattern t.kill_pattern then begin
    trace t "KILL pattern signalled by %d" src;
    internal_accept t ~src ~tid ~arg:0 ~get_capacity:0 ~data_out:nothing ~k:(fun _ ->
        ());
    (* Give the accept a moment to reach the wire before state is torn
       down; the requester sees completion, then we die. *)
    ignore
      (Engine.schedule ~tag:"kernel" t.engine ~delay:(2 * t.cost.Cost.ack_grace_us) (fun () ->
           kill_client t ~readvertise_boot:true ~drain:true))
  end
  else if Pattern.equal pattern Pattern.system_pattern then begin
    if src <> 0 then
      (* Only machine 0 may alter reserved patterns (§3.5.4); refuse by
         never accepting -- the requester can CANCEL. We REJECT instead so
         the requester learns promptly. *)
      internal_accept t ~src ~tid ~arg:(-1) ~get_capacity:0 ~data_out:nothing ~k:(fun _ -> ())
    else begin
      let buf = Bytes.create (max put_size 6) in
      internal_accept t ~src ~tid ~arg:0 ~get_capacity:put_size ~data_out:nothing
        ~k:(fun outcome ->
          match outcome with
          | Transport.Acc_success data ->
            Bytes.blit data 0 buf 0 (Bytes.length data);
            (match decode_pattern_bytes data, arg with
             | Some p, 1 ->
               (* add boot pattern: encoded as a kind byte in the low bits *)
               t.boot_kinds <- (Pattern.to_int p land 0xFF) :: t.boot_kinds;
               trace t "SYSTEM: added boot kind %d" (Pattern.to_int p land 0xFF)
             | Some p, 2 ->
               t.boot_kinds <-
                 List.filter (fun k -> k <> Pattern.to_int p land 0xFF) t.boot_kinds;
               trace t "SYSTEM: removed boot kind %d" (Pattern.to_int p land 0xFF)
             | Some p, 3 ->
               t.kill_pattern <- p;
               trace t "SYSTEM: kill pattern replaced"
             | _ -> trace t "SYSTEM: malformed request ignored")
          | Transport.Acc_cancelled | Transport.Acc_crashed -> ())
    end
  end
  else if
    boot_patterns_active t
    && List.exists (fun k -> Pattern.equal pattern (Pattern.boot_pattern k)) t.boot_kinds
  then begin
    (* GET <mid, BOOT_PATTERN>: withdraw boot patterns, mint a LOAD
       pattern, return it (§3.5.2). *)
    if get_size >= 6 then begin
      let lp = Pattern.Mint.fresh_reserved t.mint in
      t.boot <- Loading { parent = src; load_pattern = lp; image = Buffer.create 256 };
      trace t "boot: parent %d granted load pattern %a" src Pattern.pp lp;
      internal_accept t ~src ~tid ~arg:0 ~get_capacity:0
        ~data_out:(encode_load_pattern lp) ~k:(fun _ -> ())
    end
    else
      internal_accept t ~src ~tid ~arg:(-1) ~get_capacity:0 ~data_out:nothing ~k:(fun _ -> ())
  end
  else begin
    match load_pattern t with
    | Some lp when Pattern.equal pattern lp ->
      (match t.boot with
       | Loading ({ image; _ } as _l) ->
         if put_size > 0 then
           (* PUT: another chunk of the core image. *)
           internal_accept t ~src ~tid ~arg:0 ~get_capacity:put_size ~data_out:nothing
             ~k:(fun outcome ->
               match outcome with
               | Transport.Acc_success data -> Buffer.add_bytes image data
               | Transport.Acc_cancelled | Transport.Acc_crashed -> ())
         else begin
           (* SIGNAL: start the new client executing in its handler. *)
           internal_accept t ~src ~tid ~arg:0 ~get_capacity:0 ~data_out:nothing
             ~k:(fun _ -> ());
           ignore
             (Engine.schedule ~tag:"kernel" t.engine ~delay:t.cost.Cost.context_switch_us (fun () ->
                  start_loaded_client t ~parent:src))
         end
       | Running _ ->
         if put_size = 0 && get_size = 0 then begin
           (* Second SIGNAL on the load pattern kills the child (§3.5.2). *)
           trace t "LOAD pattern kill signalled by %d" src;
           internal_accept t ~src ~tid ~arg:0 ~get_capacity:0 ~data_out:nothing
             ~k:(fun _ -> ());
           ignore
             (Engine.schedule ~tag:"kernel" t.engine ~delay:(2 * t.cost.Cost.ack_grace_us) (fun () ->
                  kill_client t ~readvertise_boot:true ~drain:true))
         end
         else
           internal_accept t ~src ~tid ~arg:(-1) ~get_capacity:0 ~data_out:nothing
             ~k:(fun _ -> ())
       | No_client -> ())
    | Some _ | None -> ()
  end

(* ---- transport callbacks ---------------------------------------------------- *)

let deliver_request t ~src ~tid ~pattern ~arg ~put_size ~get_size =
  if t.crashed then `Busy
  else if
    (* The SYSTEM operation may install any pattern as the kill action
       (§3.5.4), so the dispatch matches the current kill pattern by value,
       not only by the reserved bit. *)
    Pattern.is_reserved pattern || Pattern.equal pattern t.kill_pattern
  then begin
    if reserved_pattern_active t pattern then begin
      (* Reserved patterns bypass the client handler entirely. *)
      ignore
        (Engine.schedule ~tag:"kernel" t.engine ~delay:0 (fun () ->
             handle_reserved t ~src ~tid ~pattern ~arg ~put_size ~get_size));
      `Deliver
    end
    else `Unadvertised
  end
  else if not (advertised_raw t pattern) then `Unadvertised
  else if handler_available t then begin
    invoke_client_handler t
      (Types.Request_arrival
         { requester = { Types.rq_mid = src; rq_tid = tid }; pattern; arg; put_size; get_size });
    `Deliver
  end
  else `Busy

let complete_request t ~tid completion =
  match Hashtbl.find_opt t.pending tid with
  | None -> ()
  | Some pr ->
    Hashtbl.remove t.pending tid;
    let self requester_tid = { Types.rq_mid = t.mid; rq_tid = requester_tid } in
    let event =
      match completion with
      | Transport.Comp_accepted { arg; put_transferred; get_data } ->
        let len = min (Bytes.length get_data) (Bytes.length pr.pr_get_buffer) in
        Bytes.blit get_data 0 pr.pr_get_buffer 0 len;
        Types.Request_completion
          {
            requester = self tid;
            status = Types.Completed;
            arg;
            put_transferred;
            get_transferred = len;
          }
      | Transport.Comp_unadvertised ->
        Types.Request_completion
          { requester = self tid; status = Types.Unadvertised; arg = 0;
            put_transferred = 0; get_transferred = 0 }
      | Transport.Comp_crashed ->
        Types.Request_completion
          { requester = self tid; status = Types.Crashed; arg = 0; put_transferred = 0;
            get_transferred = 0 }
      | Transport.Comp_discovered mids ->
        (* DISCOVER is a GET: matching mids land in the get buffer as
           16-bit big-endian words (§3.4.4). *)
        let capacity = Bytes.length pr.pr_get_buffer / 2 in
        let mids = List.filteri (fun i _ -> i < capacity) mids in
        List.iteri
          (fun i m ->
            Bytes.set pr.pr_get_buffer (2 * i) (Char.chr ((m lsr 8) land 0xFF));
            Bytes.set pr.pr_get_buffer ((2 * i) + 1) (Char.chr (m land 0xFF)))
          mids;
        Types.Request_completion
          {
            requester = self tid;
            status = Types.Completed;
            arg = List.length mids;
            put_transferred = 0;
            get_transferred = 2 * List.length mids;
          }
    in
    enqueue_completion t event

let classify_unknown_tid t tid =
  let serial = (tid lsr 32) land 0xFF in
  let counter = tid land 0xFFFFFFFF in
  if
    serial = t.mid land 0xFF
    && counter >= Pattern.Mint.boot_floor t.mint
    && counter < Pattern.Mint.ceiling t.mint
  then `Completed
  else `Stale

(* ---- construction ------------------------------------------------------------ *)

let create ~engine ~bus ~trace:tr ~cost ~mid ~boot_kinds =
  let transport = Transport.create ~engine ~bus ~mid ~cost ~trace:tr in
  let nic = Transport.attach_nic transport in
  let t =
    {
      engine;
      trace = tr;
      actor_name = Printf.sprintf "kern-%d" mid;
      cost;
      mid;
      transport;
      nic;
      mint = Pattern.Mint.create ~serial:(mid land 0xFF) ~boot_clock:0;
      assoc_table = Hashtbl.create 32;
      slot_table = Array.make 256 None;
      boot_kinds;
      kill_pattern = Pattern.kill_pattern;
      boot = No_client;
      client = None;
      boot_program = None;
      hs_open = false;
      hs_busy = false;
      completions = Queue.create ();
      pending = Hashtbl.create 16;
      crashed = false;
      causal_parent = None;
    }
  in
  Transport.set_callbacks transport
    {
      Transport.deliver_request =
        (fun ~src ~tid ~pattern ~arg ~put_size ~get_size ->
          deliver_request t ~src ~tid ~pattern ~arg ~put_size ~get_size);
      complete_request = (fun ~tid completion -> complete_request t ~tid completion);
      advertised =
        (fun pattern ->
          (* DISCOVER matches client advertisements and active reserved
             patterns (a free machine answers for its BOOT patterns,
             §3.5.2). *)
          (not t.crashed)
          &&
          if Pattern.is_reserved pattern then reserved_pattern_active t pattern
          else advertised_raw t pattern);
      classify_unknown_tid = (fun tid -> classify_unknown_tid t tid);
    };
  t

let attach_client t ~parent client =
  if t.client <> None then invalid_arg "Kernel.attach_client: client already attached";
  t.boot <- Running { load_pattern = None };
  t.mint <- Pattern.Mint.create ~serial:(t.mid land 0xFF) ~boot_clock:(Engine.now t.engine);
  t.client <- Some client;
  t.hs_open <- true;
  t.hs_busy <- false;
  invoke_client_handler t (Types.Booting { parent })

let set_boot_program t f = t.boot_program <- Some f

(* ---- primitives ----------------------------------------------------------------- *)

type request_error = Too_many_requests | Request_to_self | Data_too_large | Client_dead

let request t ~server ~arg ~put ~get_buffer =
  if t.client = None || t.crashed then Error Client_dead
  else if Transport.outstanding_requests t.transport >= t.cost.Cost.maxrequests then
    Error Too_many_requests
  else if
    Bytes.length put > t.cost.Cost.max_data_bytes
    || Bytes.length get_buffer > t.cost.Cost.max_data_bytes
  then Error Data_too_large
  else begin
    match server.Types.sv_mid with
    | Types.Mid dst when dst = t.mid -> Error Request_to_self
    | Types.Mid dst ->
      let tid = Pattern.Mint.fresh_tid t.mint in
      Hashtbl.replace t.pending tid { pr_get_buffer = get_buffer };
      let ctx = mint_trap_ctx t in
      (match ctx with
       | Some c -> Transport.register_causal t.transport ~tid c
       | None -> ());
      if tracing t then
        emit_event t ?ctx
          (Event.Trap
             { tid; dst; pattern = Pattern.to_int server.Types.sv_pattern;
               put_size = Bytes.length put; get_size = Bytes.length get_buffer });
      (* Copy the put data at trap time; the client must not touch its
         buffer until completion anyway (§3.3.2 rule 1). *)
      let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length put) in
      Stats.add_time (stats t) (Cost.label Cost.Protocol) copy_us;
      let put = Bytes.copy put in
      Transport.submit_request t.transport ~dst ~tid ~pattern:server.Types.sv_pattern ~arg
        ~put_data:put ~get_size:(Bytes.length get_buffer);
      Ok tid
    | Types.Broadcast_mid ->
      let tid = Pattern.Mint.fresh_tid t.mint in
      Hashtbl.replace t.pending tid { pr_get_buffer = get_buffer };
      let ctx = mint_trap_ctx t in
      (match ctx with
       | Some c -> Transport.register_causal t.transport ~tid c
       | None -> ());
      if tracing t then
        emit_event t ?ctx
          (Event.Trap
             { tid; dst = Event.broadcast_peer;
               pattern = Pattern.to_int server.Types.sv_pattern; put_size = 0;
               get_size = Bytes.length get_buffer });
      Transport.submit_discover t.transport ~tid ~pattern:server.Types.sv_pattern
        ~max_mids:(Bytes.length get_buffer / 2);
      Ok tid
  end

let accept t ~requester ~arg ~get_buffer ~put ~on_done =
  let data_out = Bytes.copy put in
  (* The return from the ACCEPT trap is not instantaneous: the client is
     unblocked a beat after the data exchange completes, so a request
     arriving at that exact instant still finds the handler BUSY (this is
     what produces the paper's BUSY-NACK traces, §5.2.3). The cost is part
     of the accept trap overhead charged by the runtime. *)
  let on_done outcome =
    ignore (Engine.schedule ~tag:"kernel" t.engine ~delay:100 (fun () -> on_done outcome))
  in
  Transport.accept t.transport ~requester_mid:requester.Types.rq_mid
    ~requester_tid:requester.Types.rq_tid ~arg ~get_capacity:(Bytes.length get_buffer)
    ~data_out ~on_done:(fun outcome ->
      match outcome with
      | Transport.Acc_success data ->
        let len = min (Bytes.length data) (Bytes.length get_buffer) in
        Bytes.blit data 0 get_buffer 0 len;
        on_done (Types.Accept_success, len)
      | Transport.Acc_cancelled -> on_done (Types.Accept_cancelled, 0)
      | Transport.Acc_crashed -> on_done (Types.Accept_crashed, 0))

let cancel t ~requester ~on_done =
  if requester.Types.rq_mid <> t.mid then on_done false
  else Transport.cancel t.transport ~tid:requester.Types.rq_tid ~on_done

let advertise t pattern =
  if Pattern.is_reserved pattern then Error `Reserved_pattern
  else begin
    advertise_raw t pattern;
    Ok ()
  end

let unadvertise t pattern =
  if Pattern.is_reserved pattern then Error `Reserved_pattern
  else begin
    unadvertise_raw t pattern;
    Ok ()
  end

let advertised t pattern = advertised_raw t pattern

let getuniqueid t = Pattern.Mint.fresh_pattern t.mint

let open_handler t =
  t.hs_open <- true;
  if not t.hs_busy then dispatch_completions t

let close_handler t = t.hs_open <- false

let endhandler t =
  t.hs_busy <- false;
  if tracing t then emit_event t Event.Endhandler;
  dispatch_completions t

let die t =
  trace t "client executed DIE";
  kill_client t ~readvertise_boot:true ~drain:true

let crash t =
  trace t "hardware crash: going silent";
  t.crashed <- true;
  Nic.disable t.nic;
  kill_client t ~readvertise_boot:true ~drain:false;
  let quarantine = Cost.crash_quarantine_us t.cost in
  ignore
    (Engine.schedule ~tag:"kernel" t.engine ~delay:quarantine (fun () ->
         t.crashed <- false;
         Nic.enable t.nic;
         trace t "quarantine over (2*MPL + delta-t); rejoining network"))

(* Unlike [crash], [destroy] is permanent: the bus station is released so a
   replacement incarnation (a fresh [create] under the same mid) can attach.
   [Network.crash_node] / [reboot_node] drive this. *)
let destroy t =
  trace t "hardware crash: node torn down";
  t.crashed <- true;
  Nic.disable t.nic;
  kill_client t ~readvertise_boot:true ~drain:false;
  Transport.shutdown t.transport

(* Post-reboot quarantine of §5.4: the fresh incarnation stays silent for
   2*MPL + delta-t so every packet addressed to the previous incarnation
   has either died of old age or been answered by the void. *)
let quarantine t =
  t.crashed <- true;
  Nic.disable t.nic;
  let quarantine_us = Cost.crash_quarantine_us t.cost in
  ignore
    (Engine.schedule ~tag:"kernel" t.engine ~delay:quarantine_us (fun () ->
         t.crashed <- false;
         Nic.enable t.nic;
         trace t "reboot quarantine over (2*MPL + delta-t); rejoining network"))
