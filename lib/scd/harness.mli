(** Deterministic SCD workload harness: a member cluster plus scripted
    clients driving the snapshot object and counter, with the SCD-level
    and object-level checkers the qcheck suite, [sodal_run --scd] and the
    bench SCD section all share. *)

module Network = Soda_core.Network
module Fault_plan = Soda_fault.Fault_plan

type op_kind = Write of int * int | Snapshot | Incr of int | Cread

type outcome =
  | Wrote of Scd.ts
  | Snap of (int * Scd.ts) array
  | Incred
  | Counted of int
  | Failed  (** every member exhausted the client's failover attempts *)

type op = {
  client : int;  (** client mid *)
  index : int;  (** position in that client's script *)
  kind : op_kind;
  start_us : int;
  end_us : int;
  outcome : outcome;
}

type result = {
  net : Network.t;
  members : Scd.member array;
  history : op list;  (** completed operations, invocation order per client *)
  clients_total : int;
  clients_done : int;
  elapsed_us : int;
  issued : (int * op_kind) list;
      (** every invocation [(client mid, kind)], recorded at start — includes
          operations still in flight when the horizon cut the run *)
}

(** [script rng ~mid ~ops ~regs ~think_us] draws a client workload. Write
    values and increment deltas are unique per (client, index), which the
    checkers rely on. *)
val script :
  Soda_sim.Rng.t -> mid:int -> ops:int -> regs:int -> think_us:int ->
  (int * op_kind * int) list

(** [run ()] builds a network with [n] members on mids [0..n-1] and
    [clients] clients on mids [n..n+clients-1], runs every script to
    quiescence (or [horizon_us]), and returns histories plus final member
    states. [mean_interarrival_us] switches the clients from closed-loop
    think times to an open-loop Poisson arrival schedule (a backlog
    forms when the cluster falls behind; the offered rate never drops).
    [plan] installs a fault plan via {!Soda_fault.Injector} (members are
    re-attached with preserved state on reboot). *)
val run :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?regs:int ->
  ?seed:int ->
  ?think_us:int ->
  ?mean_interarrival_us:int ->
  ?plan:Fault_plan.t ->
  ?trace:bool ->
  ?horizon_us:int ->
  unit ->
  result

(** {1 Checkers}

    Each returns [Error msg] naming the first violated property. *)

(** SCD-broadcast properties over the members' delivery logs: validity
    (every delivered identity was broadcast), integrity (no identity
    delivered twice by one member), and set-constrained delivery — no two
    members deliver two messages in opposite orders, equivalently all
    cumulative delivered unions are pairwise comparable. *)
val check_delivery : result -> (unit, string) Stdlib.result

(** Snapshot-object and counter consistency over the client histories:
    snapshot values trace back to issued writes, all snapshots are
    mutually comparable (by register timestamp vectors), real-time order
    is respected between non-overlapping operations (write -> snapshot,
    snapshot -> snapshot, incr -> cread), counter reads are bounded by
    issued increments, and per-client reads are monotone. *)
val check_objects : result -> (unit, string) Stdlib.result

(** All members converged to identical registers, counters and delivered
    unions. Only meaningful for runs whose fault plan ended fully healed
    with no crashed members (liveness). *)
val check_convergence : result -> (unit, string) Stdlib.result

val pp_history : Format.formatter -> op list -> unit
