module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Cost = Soda_base.Cost_model
module Scd_wire = Soda_proto.Scd_wire
module Recorder = Soda_obs.Recorder
module Metrics = Soda_obs.Metrics
module Event = Soda_obs.Event

let infinity_clock = max_int

(* ---- patterns ----------------------------------------------------------- *)

(* Stable per-(cluster, index) well-known patterns: an scd tag in the top
   bits, a cluster hash in the middle, the member index in the low byte.
   Each member advertises two entry points — its own pattern for client
   operations and the shared cluster pattern for peer FORWARD frames —
   and the handler branches on which one the request used. *)
let cluster_hash cluster = Hashtbl.hash cluster land 0x3FFFFFF

let member_pattern ~cluster ~index =
  Pattern.well_known ((0o6 lsl 37) lor (cluster_hash cluster lsl 8) lor (index land 0xFF))

let cluster_pattern ~cluster =
  Pattern.well_known ((0o6 lsl 37) lor (1 lsl 36) lor (cluster_hash cluster lsl 8))

(* ---- observability ------------------------------------------------------ *)

let recorder env = Kernel.recorder (Sodal.kernel env)
let metrics env = Recorder.metrics (recorder env)

let emit env kind =
  let r = recorder env in
  if Recorder.tracing r then
    Recorder.emit r
      ?ctx:(Kernel.causal_parent (Sodal.kernel env))
      ~time_us:(Sodal.now env) ~mid:(Sodal.my_mid env) ~actor:"scd" kind

(* ---- operation codec ---------------------------------------------------- *)

(* Client -> member submit payload:
   [kind:1][origin:4][oseq:4][a:8][b:8]. *)

let op_write = 0
let op_snapshot = 1
let op_incr = 2
let op_cread = 3
let op_request_size = 25

let op_label = function
  | 0 -> "write"
  | 1 -> "snapshot"
  | 2 -> "incr"
  | _ -> "cread"

let encode_op ~kind ~origin ~oseq ~a ~b =
  let buf = Bytes.create op_request_size in
  Bytes.set buf 0 (Char.chr (kind land 0xFF));
  Bytes.set_int32_be buf 1 (Int32.of_int origin);
  Bytes.set_int32_be buf 5 (Int32.of_int oseq);
  Bytes.set_int64_be buf 9 (Int64.of_int a);
  Bytes.set_int64_be buf 17 (Int64.of_int b);
  buf

let decode_op buf =
  if Bytes.length buf <> op_request_size then None
  else
    Some
      ( Char.code (Bytes.get buf 0),
        Int32.to_int (Bytes.get_int32_be buf 1),
        Int32.to_int (Bytes.get_int32_be buf 5),
        Int64.to_int (Bytes.get_int64_be buf 9),
        Int64.to_int (Bytes.get_int64_be buf 17) )

(* Results: write -> applied timestamp (date, sd, sn); snapshot -> one
   (value, date, sd, sn) entry per register; incr -> 8-byte ack;
   cread -> the counter. *)

let write_result_size = 12
let reg_entry_size = 20
let int_result_size = 8

let encode_write_result ~date ~sd ~sn =
  let b = Bytes.create write_result_size in
  Bytes.set_int32_be b 0 (Int32.of_int date);
  Bytes.set_int32_be b 4 (Int32.of_int sd);
  Bytes.set_int32_be b 8 (Int32.of_int sn);
  b

let decode_write_result b =
  ( Int32.to_int (Bytes.get_int32_be b 0),
    Int32.to_int (Bytes.get_int32_be b 4),
    Int32.to_int (Bytes.get_int32_be b 8) )

let encode_int_result v =
  let b = Bytes.create int_result_size in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  b

let decode_int_result b = Int64.to_int (Bytes.get_int64_be b 0)

(* ---- member ------------------------------------------------------------- *)

(* One outgoing FORWARD frame; [of_attempts] counts launches, so a frame
   is dropped after [retry_cap] crash verdicts. *)
type out_frame = { of_frame : bytes; mutable of_attempts : int }

(* The per-peer send channel: a FIFO of FORWARD frames with at most one
   transfer in flight and a backoff deadline after a failed attempt. *)
type channel = {
  ch_mid : int;
  ch_q : out_frame Queue.t;
  mutable ch_in_flight : bool;
  mutable ch_ready_at : int;
}

(* A buffered quadruplet: one application message plus the clock vector
   built from peer FORWARDs ([infinity_clock] = not heard yet). *)
type quad = {
  q_sd : int;
  q_sn : int;
  q_payload : Scd_wire.payload;
  q_cl : int array;
}

(* A client operation this member proxies: created at submit (ticket
   handed out in the accept's reply argument), broadcast by the task,
   completed when its own message is delivered and applied here. *)
type pending = {
  p_ticket : int;
  p_kind : int;
  p_origin : int;
  p_oseq : int;
  p_a : int;
  p_b : int;
  (* Writes are two scd-broadcasts: a SYNC round first (so the proxy has
     applied every write that completed before this one started — its
     register date is then provably high enough), then the WRITE round.
     [p_phase] is 1 during the sync round, 2 during the write round, 0
     for single-round operations. *)
  mutable p_phase : int;
  mutable p_date : int;  (* write timestamp date, fixed at broadcast *)
  mutable p_msg : (int * int) option;
  mutable p_result : bytes option;
  mutable p_waiter : Types.requester_signature option;  (* parked collect GET *)
  p_start_us : int;
}

type member = {
  cluster : string;
  index : int;
  n : int;
  regs : int;
  mids : int array;
  peer_mids : int list;  (* everyone but us: the FORWARD multicast group *)
  mutable clock : int;  (* sn of the next FORWARD this member sends *)
  buffer : (int * int, quad) Hashtbl.t;
  delivered : (int * int, unit) Hashtbl.t;
  (* snapshot object *)
  reg_v : int array;
  reg_ts : (int * int * int) array;  (* (date, sd, sn), lexicographic *)
  (* counter *)
  mutable counter : int;
  applied_incrs : (int * int, unit) Hashtbl.t;  (* (origin, oseq) *)
  (* proxied client operations *)
  mutable next_ticket : int;
  ops : (int, pending) Hashtbl.t;
  by_msg : (int * int, pending) Hashtbl.t;
  (* work queues filled by the handler, drained by the task *)
  inbox : Scd_wire.forward Queue.t;
  op_inbox : int Queue.t;
  (* per-peer outgoing FORWARD channels (see the echo path below) *)
  chans : channel array;
  mutable pump_cursor : int;
  mutable next_launch_at : int;
  mutable delivery_log : (int * int) list list;  (* newest first *)
  mutable nbroadcasts : int;
  mutable bcast_sns : int list;  (* sn of every broadcast we initiated *)
  mutable boots : int;
}

let member ~cluster ~index ~mids ~regs =
  let n = List.length mids in
  if n = 0 then invalid_arg "Scd.member: empty cluster";
  if index < 0 || index >= n then invalid_arg "Scd.member: index out of range";
  if regs < 1 then invalid_arg "Scd.member: need at least one register";
  {
    cluster;
    index;
    n;
    regs;
    mids = Array.of_list mids;
    peer_mids = List.filteri (fun i _ -> i <> index) mids;
    clock = 0;
    buffer = Hashtbl.create 32;
    delivered = Hashtbl.create 64;
    reg_v = Array.make regs 0;
    reg_ts = Array.make regs (0, -1, -1);
    counter = 0;
    applied_incrs = Hashtbl.create 32;
    next_ticket = 1;
    ops = Hashtbl.create 16;
    by_msg = Hashtbl.create 16;
    inbox = Queue.create ();
    op_inbox = Queue.create ();
    chans =
      Array.of_list
        (List.filteri (fun i _ -> i <> index) mids
        |> List.map (fun mid ->
               { ch_mid = mid; ch_q = Queue.create (); ch_in_flight = false;
                 ch_ready_at = 0 }));
    pump_cursor = 0;
    next_launch_at = 0;
    delivery_log = [];
    nbroadcasts = 0;
    bcast_sns = [];
    boots = 0;
  }

let deliveries m = List.rev m.delivery_log
let registers m = Array.init m.regs (fun r -> (m.reg_v.(r), m.reg_ts.(r)))
let counter_value m = m.counter
let broadcasts_made m = m.nbroadcasts
let broadcast_sns m = List.rev m.bcast_sns
let buffered m = Hashtbl.length m.buffer
let inbox_depth m = Queue.length m.inbox + Queue.length m.op_inbox
let retry_depth m = Array.fold_left (fun acc ch -> acc + Queue.length ch.ch_q) 0 m.chans

let majority m = (m.n / 2) + 1

(* ---- echo path ---------------------------------------------------------- *)

(* The delivery condition reasons about per-sender clocks, so the FORWARD
   stream from one member to one peer must stay FIFO. Every send therefore
   goes through the peer's channel: [echo] only enqueues, and [pump]
   launches at most one non-blocking REQUEST per peer, advancing the queue
   from the completion interrupt — a crashed or partitioned peer is
   retried with jittered backoff (dropped after [retry_cap] verdicts) and
   never stalls the other peers or the member task.

   [pump] also enforces a global in-flight cap that shrinks with the
   cluster size: all n members echo every message concurrently, and past
   roughly 128 in-flight transfers cluster-wide the shared bus's queueing
   delay exceeds the transport's retransmission budget, so healthy peers
   start drawing spurious crash verdicts (congestion collapse). *)

let retry_cap = 25
let retry_spacing_us = 200_000

(* Aggregate launch pacing: the 1 Mbit/s bus carries roughly 400 full
   FORWARD transactions per second, and all n members send concurrently,
   so each member spaces its launches n * 4 ms apart (cluster-wide ~250
   frames/s, ~70% line utilisation) to keep the bus queue — and with it
   every transfer's sojourn — under the retransmission crash budget. *)
let launch_gap_us m = m.n * 4_000

let echo m (fwd : Scd_wire.forward) =
  if m.chans <> [||] then begin
    let frame = Scd_wire.encode fwd in
    Array.iter
      (fun ch -> Queue.add { of_frame = frame; of_attempts = 0 } ch.ch_q)
      m.chans
  end

let pump env m rng =
  let len = Array.length m.chans in
  if len > 0 then begin
    (* Cluster fair share of the bus: n members each launching at most
       bus_capacity_pkts/n keeps the aggregate in-flight FORWARDs within
       what the medium absorbs — the same cap the transport's AIMD layer
       models (Cost_model.fair_share_window), not a parallel mechanism. *)
    let cap = Cost.fair_share_window (Kernel.cost (Sodal.kernel env)) ~stations:m.n in
    let in_flight = ref 0 in
    Array.iter (fun ch -> if ch.ch_in_flight then incr in_flight) m.chans;
    let pat = cluster_pattern ~cluster:m.cluster in
    let slots_full = ref false in
    let i = ref 0 in
    while (not !slots_full) && !in_flight < cap && !i < len do
      let ch = m.chans.((m.pump_cursor + !i) mod len) in
      incr i;
      if
        (not ch.ch_in_flight)
        && (not (Queue.is_empty ch.ch_q))
        &&
        let now = Sodal.now env in
        now >= ch.ch_ready_at && now >= m.next_launch_at
      then begin
        let f = Queue.peek ch.ch_q in
        match Sodal.put env (Sodal.server ~mid:ch.ch_mid ~pattern:pat) ~arg:0 f.of_frame with
        | exception Sodal.Too_many_requests -> slots_full := true
        | tid ->
          ch.ch_in_flight <- true;
          incr in_flight;
          m.next_launch_at <- Sodal.now env + launch_gap_us m;
          f.of_attempts <- f.of_attempts + 1;
          Metrics.incr (metrics env) "scd.forwards";
          if f.of_attempts > 1 then Metrics.incr (metrics env) "scd.retry_frames";
          Sodal.on_completion_of env tid (fun c ->
              ch.ch_in_flight <- false;
              match c.Sodal.status with
              | Sodal.Comp_ok | Sodal.Comp_rejected ->
                ignore (Queue.pop ch.ch_q);
                ch.ch_ready_at <- 0
              | Sodal.Comp_crashed | Sodal.Comp_unadvertised ->
                if f.of_attempts >= retry_cap then begin
                  ignore (Queue.pop ch.ch_q);
                  Metrics.incr (metrics env) "scd.retry_dropped"
                end
                else
                  ch.ch_ready_at <-
                    Sodal.now env + retry_spacing_us
                    + Rng.int rng (retry_spacing_us / 2))
      end
    done;
    m.pump_cursor <- (m.pump_cursor + 1) mod len
  end

(* A queued frame not yet in flight waits on a timer (retry backoff or
   the launch pacer), not on handler activity, so the task must poll. *)
let sends_parked m =
  Array.exists
    (fun ch -> (not ch.ch_in_flight) && not (Queue.is_empty ch.ch_q))
    m.chans

(* ---- the SCD algorithm -------------------------------------------------- *)

(* First sight of a message: buffer it with a fresh clock vector and echo
   our own FORWARD. Repeat sights only lower the forwarder's clock entry
   (min), which makes bus-duplicated or retried FORWARDs idempotent — an
   echo is never double-counted. *)
let process_forward env m (fwd : Scd_wire.forward) =
  if fwd.sd < 0 || fwd.sd >= m.n || fwd.f < 0 || fwd.f >= m.n then
    Metrics.incr (metrics env) "scd.bad_frame"
  else begin
    let key = (fwd.sd, fwd.sn) in
    if Hashtbl.mem m.delivered key then Metrics.incr (metrics env) "scd.stale_forward"
    else
      match Hashtbl.find_opt m.buffer key with
      | Some q -> q.q_cl.(fwd.f) <- min q.q_cl.(fwd.f) fwd.snf
      | None ->
        let q =
          { q_sd = fwd.sd; q_sn = fwd.sn; q_payload = fwd.payload;
            q_cl = Array.make m.n infinity_clock }
        in
        q.q_cl.(fwd.f) <- fwd.snf;
        Hashtbl.replace m.buffer key q;
        let snf = m.clock in
        m.clock <- m.clock + 1;
        q.q_cl.(m.index) <- min q.q_cl.(m.index) snf;
        echo m { fwd with f = m.index; snf }
  end

let apply m (q : quad) =
  match q.q_payload with
  | Scd_wire.Write { reg; value; date; writer = _ } ->
    if reg >= 0 && reg < m.regs then begin
      (* max-wins on (date, sd, sn): commutative, so the order of applies
         inside one delivered set does not matter *)
      let ts = (date, q.q_sd, q.q_sn) in
      if ts > m.reg_ts.(reg) then begin
        m.reg_ts.(reg) <- ts;
        m.reg_v.(reg) <- value
      end
    end
  | Scd_wire.Incr { delta; origin; oseq } ->
    if not (Hashtbl.mem m.applied_incrs (origin, oseq)) then begin
      Hashtbl.replace m.applied_incrs (origin, oseq) ();
      m.counter <- m.counter + delta
    end
  | Scd_wire.Sync -> ()

let result_of_op m (p : pending) =
  if p.p_kind = op_write then
    let sd, sn = match p.p_msg with Some (sd, sn) -> (sd, sn) | None -> (m.index, -1) in
    encode_write_result ~date:p.p_date ~sd ~sn
  else if p.p_kind = op_snapshot then begin
    let b = Bytes.create (m.regs * reg_entry_size) in
    for r = 0 to m.regs - 1 do
      let date, sd, sn = m.reg_ts.(r) in
      let off = r * reg_entry_size in
      Bytes.set_int64_be b off (Int64.of_int m.reg_v.(r));
      Bytes.set_int32_be b (off + 8) (Int32.of_int date);
      Bytes.set_int32_be b (off + 12) (Int32.of_int sd);
      Bytes.set_int32_be b (off + 16) (Int32.of_int sn)
    done;
    b
  end
  else if p.p_kind = op_cread then encode_int_result m.counter
  else encode_int_result 0

let drop_op m (p : pending) =
  Hashtbl.remove m.ops p.p_ticket;
  match p.p_msg with Some key -> Hashtbl.remove m.by_msg key | None -> ()

(* The operation's message was delivered (or an increment was recognised
   as already applied): compute the reply from the just-updated local
   state and complete a parked collect GET if one is waiting. *)
let complete_op env m (p : pending) =
  p.p_result <- Some (result_of_op m p);
  let ms = metrics env in
  Metrics.incr ms "scd.ops";
  Metrics.observe ms "scd.op.us" (Sodal.now env - p.p_start_us);
  emit env
    (Event.Scd_op
       { op = op_label p.p_kind; origin = p.p_origin; oseq = p.p_oseq; ok = true;
         elapsed_us = Sodal.now env - p.p_start_us });
  match (p.p_waiter, p.p_result) with
  | Some asker, Some data -> (
    p.p_waiter <- None;
    match Sodal.accept_get env asker ~arg:0 ~data with
    | Types.Accept_success -> drop_op m p
    | Types.Accept_cancelled | Types.Accept_crashed ->
      (* asker died; keep the result for a failover re-collect *)
      ())
  | _ -> ()

let deliver_set env m quads =
  let quads =
    List.sort (fun a b -> compare (a.q_sd, a.q_sn) (b.q_sd, b.q_sn)) quads
  in
  let ids = List.map (fun q -> (q.q_sd, q.q_sn)) quads in
  List.iter
    (fun q ->
      Hashtbl.remove m.buffer (q.q_sd, q.q_sn);
      Hashtbl.replace m.delivered (q.q_sd, q.q_sn) ())
    quads;
  m.delivery_log <- ids :: m.delivery_log;
  List.iter (fun q -> apply m q) quads;
  let ms = metrics env in
  Metrics.incr ms "scd.deliveries";
  Metrics.observe ms "scd.set_size" (List.length ids);
  emit env (Event.Scd_deliver { size = List.length ids; pending = Hashtbl.length m.buffer });
  (* complete operations whose own message is in this set (after every
     apply, so a snapshot/read sees the whole set's effect) *)
  List.iter
    (fun key ->
      match Hashtbl.find_opt m.by_msg key with
      | Some p when p.p_result = None ->
        if p.p_kind = op_write && p.p_phase = 1 then begin
          (* sync round done: the proxy is now up to date; run the write
             round with a provably fresh date *)
          p.p_phase <- 2;
          Hashtbl.remove m.by_msg key;
          p.p_msg <- None;
          Queue.add p.p_ticket m.op_inbox
        end
        else complete_op env m p
      | _ -> ())
    ids

(* Delivery condition: a buffered message whose clock is known for a
   majority is a candidate; a candidate q must wait while some buffered
   non-candidate q' is not provably after it (it might still have to join
   q's set or precede it). [q < q'] iff a majority of clock entries are
   strictly smaller; unknown entries (infinity on both sides) never count. *)
let rec try_deliver env m =
  let maj = majority m in
  let known q =
    Array.fold_left (fun acc v -> if v <> infinity_clock then acc + 1 else acc) 0 q.q_cl
  in
  let prec q q' =
    let c = ref 0 in
    for x = 0 to m.n - 1 do
      if q.q_cl.(x) < q'.q_cl.(x) then incr c
    done;
    !c >= maj
  in
  let all = Hashtbl.fold (fun _ q acc -> q :: acc) m.buffer [] in
  let cands, rest = List.partition (fun q -> known q >= maj) all in
  let cands = ref cands in
  let rest = ref rest in
  let progress = ref true in
  while !progress do
    progress := false;
    let blocked, ready =
      List.partition (fun q -> List.exists (fun q' -> not (prec q q')) !rest) !cands
    in
    if blocked <> [] then begin
      cands := ready;
      rest := blocked @ !rest;
      progress := true
    end
  done;
  if !cands <> [] then begin
    deliver_set env m !cands;
    try_deliver env m
  end

(* ---- proxied operations ------------------------------------------------- *)

let start_op env m ticket =
  match Hashtbl.find_opt m.ops ticket with
  | None -> ()
  | Some p ->
    if p.p_kind = op_incr && Hashtbl.mem m.applied_incrs (p.p_origin, p.p_oseq) then
      (* failover retry of an increment that already went through: ack
         without broadcasting a second application *)
      complete_op env m p
    else begin
      let payload =
        if p.p_kind = op_write && p.p_phase = 2 then begin
          let date, _, _ = m.reg_ts.(p.p_a) in
          p.p_date <- date + 1;
          Scd_wire.Write { reg = p.p_a; value = p.p_b; date = date + 1; writer = m.index }
        end
        else if p.p_kind = op_incr then
          Scd_wire.Incr { delta = p.p_a; origin = p.p_origin; oseq = p.p_oseq }
        else Scd_wire.Sync
      in
      let sn = m.clock in
      m.clock <- m.clock + 1;
      let key = (m.index, sn) in
      let q =
        { q_sd = m.index; q_sn = sn; q_payload = payload;
          q_cl = Array.make m.n infinity_clock }
      in
      q.q_cl.(m.index) <- sn;
      Hashtbl.replace m.buffer key q;
      p.p_msg <- Some key;
      Hashtbl.replace m.by_msg key p;
      m.nbroadcasts <- m.nbroadcasts + 1;
      m.bcast_sns <- sn :: m.bcast_sns;
      Metrics.incr (metrics env) "scd.broadcasts";
      emit env
        (Event.Scd_broadcast { sd = m.index; sn; payload = Scd_wire.payload_label payload });
      echo m { Scd_wire.sd = m.index; sn; f = m.index; snf = sn; payload }
    end

(* ---- spec --------------------------------------------------------------- *)

let valid_op m kind a = kind >= op_write && kind <= op_cread
                        && (kind <> op_write || (a >= 0 && a < m.regs))

let handle_request m env info =
  if Pattern.equal info.Sodal.pattern (cluster_pattern ~cluster:m.cluster) then
    (* peer FORWARD: accept in the handler (bounded) so a peer's blocking
       multicast never waits on our task; the task drains the inbox *)
    if info.Sodal.put_size > 0 && info.Sodal.get_size = 0 then begin
      let into = Bytes.create info.Sodal.put_size in
      let status, got = Sodal.accept_current_put env ~arg:0 ~into in
      match status with
      | Types.Accept_success -> (
        let frame = if got = Bytes.length into then into else Bytes.sub into 0 got in
        match Scd_wire.decode frame with
        | Ok fwd -> Queue.add fwd m.inbox
        | Error _ -> Metrics.incr (metrics env) "scd.bad_frame")
      | Types.Accept_cancelled | Types.Accept_crashed -> ()
    end
    else Sodal.reject env
  else if info.Sodal.put_size = op_request_size && info.Sodal.get_size = 0 then begin
    (* submit: hand out a ticket in the accept's reply argument; the task
       broadcasts the operation *)
    let ticket = m.next_ticket in
    m.next_ticket <- m.next_ticket + 1;
    let into = Bytes.create op_request_size in
    let status, got = Sodal.accept_current_put env ~arg:ticket ~into in
    match status with
    | Types.Accept_success when got = op_request_size -> (
      match decode_op into with
      | Some (kind, origin, oseq, a, b) when valid_op m kind a ->
        let p =
          { p_ticket = ticket; p_kind = kind; p_origin = origin; p_oseq = oseq; p_a = a;
            p_b = b; p_phase = (if kind = op_write then 1 else 0); p_date = 0;
            p_msg = None; p_result = None; p_waiter = None; p_start_us = Sodal.now env }
        in
        Hashtbl.replace m.ops ticket p;
        Queue.add ticket m.op_inbox
      | Some _ | None -> Metrics.incr (metrics env) "scd.bad_op")
    | Types.Accept_success | Types.Accept_cancelled | Types.Accept_crashed -> ()
  end
  else if info.Sodal.get_size > 0 && info.Sodal.put_size = 0 then begin
    (* collect: answer now if the operation is done, else park the asker
       until its message is scd-delivered *)
    match Hashtbl.find_opt m.ops info.Sodal.arg with
    | Some p -> (
      match p.p_result with
      | Some data -> (
        match Sodal.accept_current_get env ~arg:0 ~data with
        | Types.Accept_success -> drop_op m p
        | Types.Accept_cancelled | Types.Accept_crashed -> ())
      | None -> p.p_waiter <- Some info.Sodal.asker)
    | None -> Sodal.reject env
  end
  else Sodal.reject env

let member_task m env =
  let rng = Rng.split (Engine.rng (Kernel.engine (Sodal.kernel env))) in
  while true do
    let worked = ref false in
    while not (Queue.is_empty m.inbox) do
      worked := true;
      process_forward env m (Queue.pop m.inbox)
    done;
    while not (Queue.is_empty m.op_inbox) do
      worked := true;
      start_op env m (Queue.pop m.op_inbox)
    done;
    try_deliver env m;
    pump env m rng;
    (* Re-check the inboxes before sleeping: [pump] awaits inside
       [Sodal.put]'s trap, during which the handler may have accepted new
       frames — their wake fired while we were blocked, not idle, so
       sleeping on the stale [worked] flag would strand them (a lost
       wakeup). *)
    if (not !worked) && Queue.is_empty m.inbox && Queue.is_empty m.op_inbox then
      if sends_parked m then Sodal.compute env 50_000 else Sodal.idle env
  done

let member_spec m =
  let member_pat = member_pattern ~cluster:m.cluster ~index:m.index in
  let cluster_pat = cluster_pattern ~cluster:m.cluster in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        m.boots <- m.boots + 1;
        (* completions registered by the previous incarnation died with
           its env: clear the in-flight marks so the heads are re-sent
           (duplicate FORWARDs are idempotent at the receiver) *)
        Array.iter
          (fun ch ->
            ch.ch_in_flight <- false;
            ch.ch_ready_at <- 0)
          m.chans;
        Sodal.advertise env member_pat;
        Sodal.advertise env cluster_pat);
    on_request = (fun env info -> handle_request m env info);
    task = (fun env -> member_task m env);
  }

(* ---- client ------------------------------------------------------------- *)

type t = {
  cluster : string;
  n : int;
  c_regs : int;
  members : Types.server_signature array;
  mutable cur : int;
  origin : int;
  mutable oseq : int;
  attempts : int;
  backoff_base_us : int;
  backoff_cap_us : int;
  rng : Rng.t;
}

type error = Unreachable

type ts = int * int * int

let handle ?(attempts = 12) ?(backoff_base_us = 20_000) ?(backoff_cap_us = 500_000) env
    ~cluster ~mids ~regs =
  let n = List.length mids in
  if n = 0 then invalid_arg "Scd.handle: empty cluster";
  let members =
    Array.of_list
      (List.mapi
         (fun i mid -> Sodal.server ~mid ~pattern:(member_pattern ~cluster ~index:i))
         mids)
  in
  {
    cluster;
    n;
    c_regs = regs;
    members;
    cur = Sodal.my_mid env mod n;
    origin = Sodal.my_mid env;
    oseq = 0;
    attempts;
    backoff_base_us;
    backoff_cap_us;
    rng = Rng.split (Engine.rng (Kernel.engine (Sodal.kernel env)));
  }

(* One operation: submit (PUT, accepted immediately with a ticket), then
   collect (GET with the ticket, parked at the member until the
   operation's message is delivered). Crashed/unadvertised members cause
   a failover to the next member with capped jittered backoff; increments
   stay exactly-once because members dedupe them by (origin, oseq). *)
let do_op env t ~kind ~a ~b ~get_size =
  t.oseq <- t.oseq + 1;
  let oseq = t.oseq in
  let t0 = Sodal.now env in
  let req = encode_op ~kind ~origin:t.origin ~oseq ~a ~b in
  let rec attempt k =
    let sv = t.members.(t.cur) in
    let fail_over () =
      if k >= t.attempts then begin
        Metrics.incr (metrics env) "scd.unreachable";
        emit env
          (Event.Scd_op
             { op = op_label kind; origin = t.origin; oseq; ok = false;
               elapsed_us = Sodal.now env - t0 });
        Error Unreachable
      end
      else begin
        Metrics.incr (metrics env) "scd.failovers";
        t.cur <- (t.cur + 1) mod t.n;
        let d = min t.backoff_cap_us (t.backoff_base_us lsl min (k - 1) 16) in
        Sodal.compute env (d + Rng.int t.rng (max d 1));
        attempt (k + 1)
      end
    in
    let c = Sodal.b_put env sv ~arg:0 req in
    match c.Sodal.status with
    | Sodal.Comp_ok ->
      let ticket = c.Sodal.reply_arg in
      let into = Bytes.create get_size in
      let rec collect j =
        let g = Sodal.b_get env sv ~arg:ticket ~into in
        match g.Sodal.status with
        | Sodal.Comp_ok when g.Sodal.get_transferred = get_size ->
          Metrics.incr (metrics env) "scd.client_ops";
          Ok into
        | Sodal.Comp_crashed when j < t.attempts ->
          (* A collect parked past the transport's Delta-t draws a crash
             verdict even when the member is alive and the operation
             merely slow (large clusters: one broadcast is n(n-1) frames
             on the shared bus). Re-collect the same ticket — the member
             keeps the result when a parked asker's transaction aborts —
             and only fail over to a fresh submit when the ticket is
             really gone (rejected) or the retries run out. *)
          Metrics.incr (metrics env) "scd.recollects";
          Sodal.compute env (t.backoff_base_us + Rng.int t.rng t.backoff_base_us);
          collect (j + 1)
        | Sodal.Comp_ok | Sodal.Comp_rejected | Sodal.Comp_crashed
        | Sodal.Comp_unadvertised ->
          fail_over ()
      in
      collect 1
    | Sodal.Comp_rejected | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> fail_over ()
  in
  attempt 1

let write env t ~reg v =
  if reg < 0 || reg >= t.c_regs then invalid_arg "Scd.write: register out of range";
  match do_op env t ~kind:op_write ~a:reg ~b:v ~get_size:write_result_size with
  | Ok b -> Ok (decode_write_result b)
  | Error e -> Error e

let snapshot env t =
  match do_op env t ~kind:op_snapshot ~a:0 ~b:0 ~get_size:(t.c_regs * reg_entry_size) with
  | Ok b ->
    Ok
      (Array.init t.c_regs (fun r ->
           let off = r * reg_entry_size in
           ( Int64.to_int (Bytes.get_int64_be b off),
             ( Int32.to_int (Bytes.get_int32_be b (off + 8)),
               Int32.to_int (Bytes.get_int32_be b (off + 12)),
               Int32.to_int (Bytes.get_int32_be b (off + 16)) ) )))
  | Error e -> Error e

let incr env t ~delta =
  match do_op env t ~kind:op_incr ~a:delta ~b:0 ~get_size:int_result_size with
  | Ok _ -> Ok ()
  | Error e -> Error e

let cread env t =
  match do_op env t ~kind:op_cread ~a:0 ~b:0 ~get_size:int_result_size with
  | Ok b -> Ok (decode_int_result b)
  | Error e -> Error e
