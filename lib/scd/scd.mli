(** SCD-broadcast and its derived shared objects.

    Set-Constrained Delivery broadcast (Imbs, Mostéfaoui, Perrin, Raynal,
    arXiv:1706.05267) is a communication abstraction strictly weaker than
    total-order broadcast: processes scd-broadcast messages and deliver
    {e sets} of messages, such that no two processes deliver two messages
    in opposite orders (two sets delivered by different processes are
    never "crossed"). That is exactly strong enough to build a
    multi-writer atomic snapshot object and an increment/read counter
    with O(n²) messages per operation and no consensus.

    The implementation follows the paper's single-message-type algorithm:
    the first time a member sees an application message it FORWARDs it to
    every peer stamped with its local clock; a message becomes deliverable
    once a majority of clocks are known, and the clock vectors decide
    which buffered messages must go into the same delivered set. FORWARD
    frames are {!Soda_proto.Scd_wire} payloads sent peer-to-peer over
    per-peer FIFO channels: each member keeps one outgoing queue per
    peer with at most one frame in flight, so a peer always sees a
    member's clock stamps in order, and a pump paces launches across all
    channels (bounded cluster-wide in-flight count plus an aggregate
    launch-rate gap) so the quadratic frame storm never drives the shared
    bus's queueing delay past the retransmission crash budget. See
    [docs/BROADCAST.md].

    Members expose the two derived objects to clients over a two-phase
    ticket protocol: a PUT of the encoded operation is accepted
    immediately with a fresh ticket in the reply argument, and a GET with
    the ticket as argument blocks (parks the asker) until the operation's
    own message has been scd-delivered and applied at that member —
    which is the paper's termination condition for writes, snapshots,
    increments and reads. Clients fail over to the next member when their
    proxy crashes. *)

module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

(** {1 Members} *)

type member

(** [member ~cluster ~index ~mids ~regs] creates the resident state of
    member [index] of an [n = List.length mids] member cluster whose
    member [j] runs on machine [List.nth mids j]. State survives reboots
    of the hosting node (like a store replica's stable storage). [regs]
    is the number of snapshot-object registers. *)
val member : cluster:string -> index:int -> mids:int list -> regs:int -> member

(** Stable well-known pattern of member [index]: the entry point for
    client operations. *)
val member_pattern : cluster:string -> index:int -> Pattern.t

(** Stable well-known pattern every member of [cluster] also advertises:
    the entry point for peer FORWARD frames. *)
val cluster_pattern : cluster:string -> Pattern.t

val member_spec : member -> Sodal.spec

(** {2 Introspection (tests, checkers)} *)

(** Delivered sets, oldest first; each set is the sorted list of message
    identities [(sd, sn)] it contained. *)
val deliveries : member -> (int * int) list list

(** Snapshot registers: [(value, (date, sd, sn))] per register. *)
val registers : member -> (int * (int * int * int)) array

val counter_value : member -> int

(** Number of scd-broadcasts this member initiated (as a proxy). *)
val broadcasts_made : member -> int

(** Sequence numbers of the broadcasts this member initiated — with the
    member index these are the valid message identities, used by the
    validity checker. *)
val broadcast_sns : member -> int list

(** Messages currently buffered (received, not yet delivered). *)
val buffered : member -> int

(** Frames accepted by the handler but not yet drained by the task. *)
val inbox_depth : member -> int

(** FORWARD frames waiting in the per-peer retry queues. *)
val retry_depth : member -> int

(** {1 Clients} *)

type t

type error = Unreachable  (** every member failed over [attempts] tries *)

(** [handle env ~cluster ~mids ~regs] binds a client to the cluster.
    Operations start at a member picked from the client's mid and fail
    over round-robin on crash. *)
val handle :
  ?attempts:int ->
  ?backoff_base_us:int ->
  ?backoff_cap_us:int ->
  Sodal.env ->
  cluster:string ->
  mids:int list ->
  regs:int ->
  t

(** Timestamp of an applied write: [(date, sd, sn)] — lexicographic order,
    [sd]/[sn] the identity of the scd-broadcast message that carried it. *)
type ts = int * int * int

(** [write env t ~reg v] writes register [reg] of the snapshot object;
    returns the timestamp the write was applied with. *)
val write : Sodal.env -> t -> reg:int -> int -> (ts, error) result

(** [snapshot env t] returns an atomic view of all registers:
    [(value, ts)] per register. *)
val snapshot : Sodal.env -> t -> ((int * ts) array, error) result

(** [incr env t ~delta] adds [delta] to the counter. Applied exactly once
    even when the client fails over mid-operation. *)
val incr : Sodal.env -> t -> delta:int -> (unit, error) result

(** [cread env t] reads the counter. *)
val cread : Sodal.env -> t -> (int, error) result
