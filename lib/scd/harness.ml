module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Cost = Soda_base.Cost_model
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Fault_plan = Soda_fault.Fault_plan
module Injector = Soda_fault.Injector

type op_kind = Write of int * int | Snapshot | Incr of int | Cread

type outcome =
  | Wrote of Scd.ts
  | Snap of (int * Scd.ts) array
  | Incred
  | Counted of int
  | Failed

type op = {
  client : int;
  index : int;
  kind : op_kind;
  start_us : int;
  end_us : int;
  outcome : outcome;
}

type result = {
  net : Network.t;
  members : Scd.member array;
  history : op list;
  clients_total : int;
  clients_done : int;
  elapsed_us : int;
  issued : (int * op_kind) list;  (* every invocation, even unfinished ones *)
}

let cluster = "h"

(* Write values and increment deltas are injective in (client mid, script
   index): the checkers use that to trace every observed value back to
   the operation that produced it. *)
let write_value ~mid ~index = (mid * 1_000_000) + index
let incr_delta ~mid ~index = (mid * 1_000) + index + 1

let script rng ~mid ~ops ~regs ~think_us =
  List.init ops (fun i ->
      let think = if think_us > 0 then Rng.int rng think_us else 0 in
      let kind =
        match Rng.int rng 4 with
        | 0 -> Write (Rng.int rng (max regs 1), write_value ~mid ~index:i)
        | 1 -> Snapshot
        | 2 -> Incr (incr_delta ~mid ~index:i)
        | _ -> Cread
      in
      (i, kind, think))

let client_spec ~n ~regs ~script ~arrivals ~record ~issued ~done_count =
  {
    Sodal.default_spec with
    task =
      (fun env ->
        (* let members boot and advertise *)
        Sodal.compute env 50_000;
        (* collect patience scales with the cluster: one scd-broadcast is
           n(n-1) frames on the shared bus, so delivery latency — and with
           it the number of Delta-t collect rounds a live operation needs —
           grows quadratically with n *)
        let h =
          Scd.handle env ~attempts:(max 12 (2 * n)) ~cluster
            ~mids:(List.init n Fun.id) ~regs
        in
        List.iter
          (fun (index, kind, think) ->
            (match arrivals with
             | None -> if think > 0 then Sodal.compute env think
             | Some at ->
               (* open-loop: the arrival clock never waits for the
                  cluster, so a backlog forms under overload *)
               let due = at.(index) in
               let now = Sodal.now env in
               if now < due then Sodal.compute env (due - now));
            let start_us = Sodal.now env in
            issued (Sodal.my_mid env, kind);
            let outcome =
              match kind with
              | Write (reg, v) -> (
                match Scd.write env h ~reg v with
                | Ok ts -> Wrote ts
                | Error Scd.Unreachable -> Failed)
              | Snapshot -> (
                match Scd.snapshot env h with
                | Ok arr -> Snap arr
                | Error Scd.Unreachable -> Failed)
              | Incr delta -> (
                match Scd.incr env h ~delta with
                | Ok () -> Incred
                | Error Scd.Unreachable -> Failed)
              | Cread -> (
                match Scd.cread env h with
                | Ok v -> Counted v
                | Error Scd.Unreachable -> Failed)
            in
            record
              {
                client = Sodal.my_mid env;
                index;
                kind;
                start_us;
                end_us = Sodal.now env;
                outcome;
              })
          script;
        incr done_count);
  }

let run ?(n = 3) ?(clients = 2) ?(ops = 6) ?(regs = 2) ?(seed = 1) ?(think_us = 100_000)
    ?mean_interarrival_us ?plan ?trace ?(horizon_us = 600_000_000) () =
  (* echo fan-out plus a client op can pin n+1 slots through a Delta-t
     verdict on a crashed peer; give everyone headroom *)
  let cost = { Cost.default with maxrequests = n + 2 } in
  let net = Network.create ~seed ~cost ?trace ?causal:trace () in
  let mids = List.init n Fun.id in
  let members =
    Array.init n (fun index -> Scd.member ~cluster ~index ~mids ~regs)
  in
  for mid = 0 to n - 1 do
    let kernel = Network.add_node net ~mid in
    ignore (Sodal.attach kernel (Scd.member_spec members.(mid)))
  done;
  let history = ref [] in
  let issued_log = ref [] in
  let record op = history := op :: !history in
  let issued inv = issued_log := inv :: !issued_log in
  let done_count = ref 0 in
  let rng = Rng.split (Engine.rng (Network.engine net)) in
  for c = 0 to clients - 1 do
    let mid = n + c in
    let kernel = Network.add_node net ~mid in
    let crng = Rng.split rng in
    let script = script crng ~mid ~ops ~regs ~think_us in
    let arrivals =
      match mean_interarrival_us with
      | None -> None
      | Some mean ->
        let at = Array.make ops 0 in
        let t = ref 100_000 in
        for i = 0 to ops - 1 do
          let u = Rng.float crng 1.0 in
          t := !t + max 1 (int_of_float (-.float_of_int mean *. log (1.0 -. u)));
          at.(i) <- !t
        done;
        Some at
    in
    ignore
      (Sodal.attach kernel
         (client_spec ~n ~regs ~script ~arrivals ~record ~issued ~done_count))
  done;
  (match plan with
   | Some plan ->
     (* preserved-state reboot: re-attach the same member value *)
     Injector.install net plan ~on_reboot:(fun ~mid kernel ->
         if mid < n then ignore (Sodal.attach kernel (Scd.member_spec members.(mid))))
   | None -> ());
  let elapsed_us = Network.run ~until:horizon_us net in
  {
    net;
    members;
    history = List.rev !history;
    clients_total = clients;
    clients_done = !done_count;
    elapsed_us;
    issued = List.rev !issued_log;
  }

(* ---- checkers ----------------------------------------------------------- *)

module Id_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let check_delivery r =
  let exception Violation of string in
  try
    (* every identity any member may deliver: the broadcasts that were
       actually made *)
    let valid =
      Array.to_seq r.members
      |> Seq.fold_lefti
           (fun acc i m ->
             List.fold_left (fun acc sn -> Id_set.add (i, sn) acc) acc
               (Scd.broadcast_sns m))
           Id_set.empty
    in
    (* validity + integrity, and the cumulative delivered unions *)
    let unions =
      Array.mapi
        (fun i m ->
          let seen = ref Id_set.empty in
          let us =
            List.map
              (fun set ->
                List.iter
                  (fun id ->
                    if Id_set.mem id !seen then
                      raise
                        (Violation
                           (Printf.sprintf "integrity: member %d delivered (%d,%d) twice"
                              i (fst id) (snd id)));
                    if not (Id_set.mem id valid) then
                      raise
                        (Violation
                           (Printf.sprintf
                              "validity: member %d delivered (%d,%d) never broadcast" i
                              (fst id) (snd id)));
                    seen := Id_set.add id !seen)
                  set;
                !seen)
              (Scd.deliveries m)
          in
          us)
        r.members
    in
    (* set-constrained delivery / containment: all cumulative unions of
       any two members are comparable — no two messages are ever
       delivered in opposite orders *)
    Array.iteri
      (fun i ui ->
        Array.iteri
          (fun j uj ->
            if i < j then
              List.iter
                (fun a ->
                  List.iter
                    (fun b ->
                      if not (Id_set.subset a b || Id_set.subset b a) then
                        raise
                          (Violation
                             (Printf.sprintf
                                "containment: members %d and %d have incomparable \
                                 delivered prefixes"
                                i j)))
                    uj)
                ui)
          unions)
      unions;
    Ok ()
  with Violation msg -> Error msg

let ts_leq (a : Scd.ts) (b : Scd.ts) = compare a b <= 0
let ts_zero : Scd.ts = (0, -1, -1)

let snap_leq a b =
  Array.for_all2 (fun (_, ta) (_, tb) -> ts_leq ta tb) a b

let check_objects r =
  let exception Violation of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in
  try
    let acked_writes =
      List.filter_map
        (fun op ->
          match (op.kind, op.outcome) with
          | Write (reg, v), Wrote ts -> Some (ts, reg, v, op)
          | _ -> None)
        r.history
    in
    (* unique timestamps: each write applied (visibly) once *)
    let by_ts = Hashtbl.create 64 in
    List.iter
      (fun (ts, reg, v, _) ->
        (match Hashtbl.find_opt by_ts ts with
         | Some _ ->
           let d, s, q = ts in
           fail "two acked writes share timestamp (%d,%d,%d)" d s q
         | None -> ());
        Hashtbl.replace by_ts ts (reg, v))
      acked_writes;
    let issued_writes =
      List.filter_map
        (fun (_, k) -> match k with Write (reg, v) -> Some (reg, v) | _ -> None)
        r.issued
    in
    let snaps =
      List.filter_map
        (fun op -> match op.outcome with Snap arr -> Some (arr, op) | _ -> None)
        r.history
    in
    (* snapshot values trace back to issued writes; a known timestamp must
       carry that write's register and value *)
    List.iter
      (fun (arr, op) ->
        Array.iteri
          (fun reg (v, ts) ->
            if ts = ts_zero then begin
              if v <> 0 then
                fail "c%d#%d snapshot: reg %d unwritten but value %d" op.client op.index
                  reg v
            end
            else begin
              if not (List.mem (reg, v) issued_writes) then
                fail "c%d#%d snapshot: reg %d holds %d, never written there" op.client
                  op.index reg v;
              match Hashtbl.find_opt by_ts ts with
              | Some (reg', v') when reg' <> reg || v' <> v ->
                fail "c%d#%d snapshot: reg %d timestamp belongs to another write"
                  op.client op.index reg
              | _ -> ()
            end)
          arr)
      snaps;
    (* atomicity: snapshots are totally ordered by their timestamp
       vectors, and that order respects real time *)
    List.iteri
      (fun i (a, oa) ->
        List.iteri
          (fun j (b, ob) ->
            if i < j then begin
              if not (snap_leq a b || snap_leq b a) then
                fail "snapshots c%d#%d and c%d#%d are incomparable" oa.client oa.index
                  ob.client ob.index;
              if oa.end_us < ob.start_us && not (snap_leq a b) then
                fail "snapshot c%d#%d finished before c%d#%d started but is newer"
                  oa.client oa.index ob.client ob.index;
              if ob.end_us < oa.start_us && not (snap_leq b a) then
                fail "snapshot c%d#%d finished before c%d#%d started but is newer"
                  ob.client ob.index oa.client oa.index
            end)
          snaps)
      snaps;
    (* real-time between writes and snapshots *)
    List.iter
      (fun (ts, reg, _, w) ->
        List.iter
          (fun (arr, s) ->
            let _, sts = arr.(reg) in
            if w.end_us < s.start_us && not (ts_leq ts sts) then
              fail "write c%d#%d acked before snapshot c%d#%d but is missing from it"
                w.client w.index s.client s.index;
            if s.end_us < w.start_us && ts_leq ts sts then
              fail "snapshot c%d#%d finished before write c%d#%d started yet shows it"
                s.client s.index w.client w.index)
          snaps)
      acked_writes;
    (* counter: reads bounded by issued increments, monotone per client,
       and at least the sum of increments acked before the read began *)
    let total_issued =
      List.fold_left
        (fun acc (_, k) -> match k with Incr d -> acc + d | _ -> acc)
        0 r.issued
    in
    let acked_incrs =
      List.filter_map
        (fun op ->
          match (op.kind, op.outcome) with
          | Incr d, Incred -> Some (d, op.end_us)
          | _ -> None)
        r.history
    in
    let last_read = Hashtbl.create 8 in
    List.iter
      (fun op ->
        match op.outcome with
        | Counted c ->
          if c < 0 || c > total_issued then
            fail "c%d#%d counter read %d outside [0, %d issued]" op.client op.index c
              total_issued;
          let floor =
            List.fold_left
              (fun acc (d, end_us) -> if end_us < op.start_us then acc + d else acc)
              0 acked_incrs
          in
          if c < floor then
            fail "c%d#%d counter read %d below %d (increments acked before it)" op.client
              op.index c floor;
          (match Hashtbl.find_opt last_read op.client with
           | Some prev when c < prev ->
             fail "c%d#%d counter read %d went backwards (saw %d)" op.client op.index c
               prev
           | _ -> ());
          Hashtbl.replace last_read op.client c
        | _ -> ())
      r.history;
    Ok ()
  with Violation msg -> Error msg

let check_convergence r =
  let exception Violation of string in
  try
    let m0 = r.members.(0) in
    let union m =
      List.fold_left
        (fun acc set -> List.fold_left (fun acc id -> Id_set.add id acc) acc set)
        Id_set.empty (Scd.deliveries m)
    in
    let u0 = union m0 in
    Array.iteri
      (fun i m ->
        if i > 0 then begin
          if not (Id_set.equal (union m) u0) then
            raise (Violation (Printf.sprintf "member %d delivered a different set" i));
          if Scd.registers m <> Scd.registers m0 then
            raise (Violation (Printf.sprintf "member %d registers diverge" i));
          if Scd.counter_value m <> Scd.counter_value m0 then
            raise (Violation (Printf.sprintf "member %d counter diverges" i))
        end)
      r.members;
    Ok ()
  with Violation msg -> Error msg

let pp_history ppf history =
  let pp_ts ppf (d, sd, sn) = Format.fprintf ppf "(%d,%d,%d)" d sd sn in
  List.iter
    (fun op ->
      let kind =
        match op.kind with
        | Write (reg, v) -> Printf.sprintf "write r%d=%d" reg v
        | Snapshot -> "snapshot"
        | Incr d -> Printf.sprintf "incr +%d" d
        | Cread -> "cread"
      in
      Format.fprintf ppf "c%d#%d [%d..%d] %s " op.client op.index op.start_us op.end_us
        kind;
      (match op.outcome with
       | Wrote ts -> Format.fprintf ppf "-> ts%a" pp_ts ts
       | Snap arr ->
         Format.fprintf ppf "-> {";
         Array.iteri
           (fun r (v, ts) -> Format.fprintf ppf "%sr%d=%d@%a" (if r > 0 then " " else "") r v pp_ts ts)
           arr;
         Format.fprintf ppf "}"
       | Incred -> Format.fprintf ppf "-> ok"
       | Counted c -> Format.fprintf ppf "-> %d" c
       | Failed -> Format.fprintf ppf "-> UNREACHABLE");
      Format.fprintf ppf "@.")
    history
