(** Reusable frame-buffer pool (exact-length free lists).

    Hot-path senders acquire a buffer of the exact frame size, encode and
    CRC-seal in place, and hand ownership to the bus ({!Bus.send_wire});
    the bus releases the buffer back here after the frame's final
    delivery event. Receivers must copy anything they keep — a released
    buffer is recycled for a later frame of the same size.

    The pool is a cache, not an accounting authority: a buffer that is
    never released (a send closure squashed by a kernel reset, a run cut
    off at the horizon) is reclaimed by the GC and the pool simply mints
    a fresh one next time. See docs/PERFORMANCE.md for the full ownership
    rules. *)

type t

val create : unit -> t

(** [acquire t len] returns a buffer of exactly [len] bytes: a recycled
    one when the [len]-bucket is non-empty, freshly allocated otherwise.
    Contents are unspecified (recycled buffers carry stale bytes).
    @raise Invalid_argument on negative [len]. *)
val acquire : t -> int -> bytes

(** [release t buf] returns [buf] to its exact-length bucket. The caller
    must not touch [buf] afterwards. Releasing a buffer twice, or one
    still referenced elsewhere, aliases a live frame — the property
    suite checks the bus discipline never does. *)
val release : t -> bytes -> unit

(** Buffers acquired and not yet released. *)
val live : t -> int

(** Lifetime acquire count. *)
val acquires : t -> int

(** Acquires satisfied by recycling rather than fresh allocation. *)
val reuses : t -> int
