module Stats = Soda_sim.Stats

type t = {
  bus : Bus.t;
  mid : int;
  stats : Stats.t option;
  mutable crc_drops : int;
  mutable enabled : bool;
}

let attach ?stats bus ~mid ~rx =
  let t = { bus; mid; stats; crc_drops = 0; enabled = true } in
  Bus.attach bus ~mid ~rx:(fun frame ->
      if t.enabled then begin
        match Crc16.check frame.Frame.wire with
        | None ->
          t.crc_drops <- t.crc_drops + 1;
          (match t.stats with
           | Some s -> Stats.incr s "nic.crc_drops"
           | None -> ())
        | Some payload ->
          let broadcast = match frame.Frame.dst with Frame.Broadcast -> true | Frame.To _ -> false in
          rx ~src:frame.Frame.src ~broadcast ~ctx:frame.Frame.ctx payload
      end);
  t

let mid t = t.mid

let send t ?ctx ~dst payload = Bus.send t.bus ?ctx ~src:t.mid ~dst:(Frame.To dst) payload

let broadcast t ?ctx payload = Bus.send t.bus ?ctx ~src:t.mid ~dst:Frame.Broadcast payload

let crc_drops t = t.crc_drops

let disable t = t.enabled <- false
let enable t = t.enabled <- true
