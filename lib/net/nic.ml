module Stats = Soda_sim.Stats

type t = {
  bus : Bus.t;
  mid : int;
  stats : Stats.t option;
  mutable crc_drops : int;
  mutable enabled : bool;
}

(* Shared CRC screen: [deliver frame len] is called with the in-place
   payload length after the trailer verified, or len = -1 on mismatch
   handled here. *)
let make ?stats bus ~mid ~deliver =
  let t = { bus; mid; stats; crc_drops = 0; enabled = true } in
  Bus.attach bus ~mid ~rx:(fun frame ->
      if t.enabled then begin
        let len = Crc16.payload_len frame.Frame.wire in
        if len < 0 then begin
          t.crc_drops <- t.crc_drops + 1;
          match t.stats with
          | Some s -> Stats.incr s "nic.crc_drops"
          | None -> ()
        end
        else deliver frame len
      end);
  t

let attach ?stats bus ~mid ~rx =
  make ?stats bus ~mid ~deliver:(fun frame len ->
      let payload = Bytes.sub frame.Frame.wire 0 len in
      let broadcast =
        match frame.Frame.dst with Frame.Broadcast -> true | Frame.To _ -> false
      in
      rx ~src:frame.Frame.src ~broadcast ~ctx:frame.Frame.ctx payload)

let attach_view ?stats bus ~mid ~rx =
  make ?stats bus ~mid ~deliver:(fun frame len ->
      let broadcast =
        match frame.Frame.dst with Frame.Broadcast -> true | Frame.To _ -> false
      in
      rx ~src:frame.Frame.src ~broadcast ~ctx:frame.Frame.ctx ~wire:frame.Frame.wire
        ~len)

let mid t = t.mid

let send t ?ctx ~dst payload = Bus.send t.bus ?ctx ~src:t.mid ~dst:(Frame.To dst) payload

let broadcast t ?ctx payload = Bus.send t.bus ?ctx ~src:t.mid ~dst:Frame.Broadcast payload

let send_wire t ?ctx ~dst wire = Bus.send_wire t.bus ?ctx ~src:t.mid ~dst:(Frame.To dst) wire

let broadcast_wire t ?ctx wire = Bus.send_wire t.bus ?ctx ~src:t.mid ~dst:Frame.Broadcast wire

let crc_drops t = t.crc_drops

let disable t = t.enabled <- false
let enable t = t.enabled <- true
