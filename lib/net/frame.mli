(** Link-layer frames on the simulated broadcast bus. *)

type dst =
  | To of int  (** a specific machine id *)
  | Broadcast  (** the special broadcast identifier recognised by all NICs *)

type t = {
  src : int;  (** sending machine id *)
  dst : dst;
  wire : bytes;  (** payload plus CRC trailer, possibly corrupted in flight *)
  ctx : Soda_obs.Causal.ctx option;
      (** Causal identity of the sending span, carried out of band (frame
          metadata, not wire bytes): invisible to CRC, corruption and the
          golden byte-level trace. *)
}

val dst_matches : dst -> mid:int -> bool

val pp_dst : Format.formatter -> dst -> unit
