(* Reusable frame-buffer pool.

   Buffers are keyed by their EXACT length: a frame's [Bytes.length] is
   load-bearing all over the net layer (CRC trailer position, the bus's
   transmission-time computation, the NIC's payload-length recovery), so
   handing out an oversized buffer would silently change wire semantics.
   Packet sizes repeat heavily (an ACK is always the same size, data
   packets cluster on the workload's record sizes), so exact-size free
   lists hit almost always once a workload reaches steady state.

   Ownership discipline (see docs/PERFORMANCE.md): the sender acquires,
   encodes and seals a buffer, then transfers ownership to the bus via
   [Bus.send_wire]; the bus releases it after the frame's final delivery
   event. Nobody may retain a reference past that point — receivers copy
   what they need while decoding. Losing a buffer (e.g. a send closure
   invalidated by a kernel reset) is safe: the pool is a cache, not an
   accounting authority, and unreleased buffers are simply reclaimed by
   the GC. *)

type bucket = { mutable store : bytes array; mutable n : int }

type t = {
  buckets : (int, bucket) Hashtbl.t;
  mutable live : int;  (* acquired and not yet released *)
  mutable acquires : int;
  mutable reuses : int;
}

let create () = { buckets = Hashtbl.create 32; live = 0; acquires = 0; reuses = 0 }

let acquire t len =
  if len < 0 then invalid_arg "Pool.acquire: negative length";
  t.acquires <- t.acquires + 1;
  t.live <- t.live + 1;
  match Hashtbl.find t.buckets len with
  | bucket when bucket.n > 0 ->
    bucket.n <- bucket.n - 1;
    let buf = bucket.store.(bucket.n) in
    bucket.store.(bucket.n) <- Bytes.empty;
    t.reuses <- t.reuses + 1;
    buf
  | _ -> Bytes.create len
  | exception Not_found -> Bytes.create len

let release t buf =
  let len = Bytes.length buf in
  t.live <- t.live - 1;
  let bucket =
    match Hashtbl.find t.buckets len with
    | bucket -> bucket
    | exception Not_found ->
      let bucket = { store = Array.make 8 Bytes.empty; n = 0 } in
      Hashtbl.replace t.buckets len bucket;
      bucket
  in
  if bucket.n = Array.length bucket.store then begin
    let next = Array.make (2 * bucket.n) Bytes.empty in
    Array.blit bucket.store 0 next 0 bucket.n;
    bucket.store <- next
  end;
  bucket.store.(bucket.n) <- buf;
  bucket.n <- bucket.n + 1

let live t = t.live
let acquires t = t.acquires
let reuses t = t.reuses
