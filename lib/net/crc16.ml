let table =
  lazy
    (Array.init 256 (fun byte ->
         let crc = ref (byte lsl 8) in
         for _ = 0 to 7 do
           if !crc land 0x8000 <> 0 then crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
           else crc := (!crc lsl 1) land 0xFFFF
         done;
         !crc))

let compute bytes ~off ~len =
  let table = Lazy.force table in
  let crc = ref 0xFFFF in
  for i = off to off + len - 1 do
    let byte = Char.code (Bytes.get bytes i) in
    crc := ((!crc lsl 8) lxor table.(((!crc lsr 8) lxor byte) land 0xFF)) land 0xFFFF
  done;
  !crc

let append payload =
  let len = Bytes.length payload in
  let wire = Bytes.create (len + 2) in
  Bytes.blit payload 0 wire 0 len;
  let crc = compute payload ~off:0 ~len in
  Bytes.set wire len (Char.chr (crc lsr 8));
  Bytes.set wire (len + 1) (Char.chr (crc land 0xFF));
  wire

let seal wire ~len =
  if len < 0 || Bytes.length wire < len + 2 then
    invalid_arg "Crc16.seal: buffer too small for payload + trailer";
  let crc = compute wire ~off:0 ~len in
  Bytes.set wire len (Char.chr (crc lsr 8));
  Bytes.set wire (len + 1) (Char.chr (crc land 0xFF))

let payload_len wire =
  let total = Bytes.length wire in
  if total < 2 then -1
  else begin
    let len = total - 2 in
    let expected = compute wire ~off:0 ~len in
    let stored =
      (Char.code (Bytes.get wire len) lsl 8) lor Char.code (Bytes.get wire (len + 1))
    in
    if expected = stored then len else -1
  end

let check wire =
  match payload_len wire with
  | -1 -> None
  | len -> Some (Bytes.sub wire 0 len)
