(** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), as computed by the
    simulated Megalink interface to detect transmission errors. A frame
    whose CRC does not match is silently discarded by the receiving NIC,
    exactly as in §5.2.2 of the paper. *)

(** [compute bytes ~off ~len] returns the 16-bit checksum. *)
val compute : bytes -> off:int -> len:int -> int

(** [append payload] returns [payload] with its 2-byte big-endian CRC
    appended. *)
val append : bytes -> bytes

(** [check wire] verifies a frame produced by [append]; returns the payload
    without the trailer on success. Allocates a copy — hot paths use
    {!payload_len} and read the payload in place. *)
val check : bytes -> bytes option

(** [seal wire ~len] computes the CRC of [wire.[0 .. len-1]] and writes
    the 2-byte big-endian trailer in place at [len]; the zero-copy
    equivalent of [append] for pooled buffers of exactly [len + 2] bytes.
    @raise Invalid_argument when the buffer lacks room for the trailer. *)
val seal : bytes -> len:int -> unit

(** [payload_len wire] verifies the trailer in place and returns the
    payload length, or [-1] on CRC mismatch (no option allocation; this
    runs once per delivered frame). *)
val payload_len : bytes -> int
