(** Simulated broadcast bus (CompuNet Megalink, §5).

    The bus is a shared serial medium: one transmission at a time, a
    bandwidth-determined transmission delay, and a small propagation delay.
    Queued senders acquire the medium in request order, which stands in for
    the Megalink's fair line-access discipline (§6.10 relies on line access
    completing in bounded time).

    Fault injection: frames may be lost outright or have a byte corrupted
    in flight; corrupted frames are later discarded by the receiving NIC's
    CRC check, so both faults look like loss to the transport, exercising
    the alternating-bit retransmission machinery. *)

type t

type config = {
  bandwidth_bps : int;  (** 1_000_000 for the Megalink *)
  propagation_us : int;  (** per-hop propagation delay *)
  frame_overhead_bytes : int;  (** preamble + link header, charged per frame *)
  loss_rate : float;  (** probability a frame vanishes *)
  corruption_rate : float;  (** probability a frame is damaged in flight *)
}

val default_config : config

val create : ?config:config -> ?obs:Soda_obs.Recorder.t -> Soda_sim.Engine.t -> t

val engine : t -> Soda_sim.Engine.t
val stats : t -> Soda_sim.Stats.t

(** The medium's shared frame-buffer pool. Hot-path senders acquire
    exactly-sized buffers here, seal them ({!Crc16.seal}) and hand them to
    {!send_wire}; the bus releases each buffer after the frame's final
    delivery event. See docs/PERFORMANCE.md for the ownership rules. *)
val pool : t -> Pool.t

(** Current configuration (fault-rate setters mutate it in place). *)
val config : t -> config

(** Attach a structured-event recorder; when its tracing is enabled the
    bus emits {!Soda_obs.Event.Bus_frame} (medium occupancy) and
    {!Soda_obs.Event.Bus_drop} events. *)
val set_obs : t -> Soda_obs.Recorder.t -> unit

(** Every station on one medium must use the same reliable-protocol send
    window: the receive-side sequence arithmetic is derived from the local
    window, so stations with different windows — and hence possibly
    different sequence-space widths (2 at window 1, 16 up to window 8,
    256 above) — cannot interoperate. The first claim pins the medium's
    window.
    @raise Invalid_argument when a later claim disagrees; the message
    names both stations' windows and derived sequence spaces. *)
val claim_seq_window : t -> window:int -> unit

(** Set the per-delivery frame-loss probability.
    @raise Invalid_argument unless the rate is within [0, 1]. *)
val set_loss_rate : t -> float -> unit

(** Set the per-delivery corruption probability.
    @raise Invalid_argument unless the rate is within [0, 1]. *)
val set_corruption_rate : t -> float -> unit

(** {2 Fault-plan hooks}

    Scripted faults used by {!Soda_fault.Injector}. All of them are
    deterministic: random draws come from the bus's split fault RNG, so a
    run remains a pure function of the engine seed. *)

(** [set_partition t (group_a, group_b)] installs a network cut: frames
    whose source and destination sit in opposite groups are dropped at
    delivery time (so frames already in flight are eaten too). Mids in
    neither group are unaffected. Replaces any previous cut.
    @raise Invalid_argument if a mid appears in both groups. *)
val set_partition : t -> int list * int list -> unit

(** Remove the current partition, if any. *)
val heal : t -> unit

val partitioned : t -> bool

(** [duplicate_next ?count t] arranges for the next [count] (default 1)
    frames entering the medium to be delivered twice; the copy trails the
    original like a stale retransmission.
    @raise Invalid_argument on negative [count]. *)
val duplicate_next : ?count:int -> t -> unit

(** [set_delay_jitter t ~min_us ~max_us] adds a per-frame random delivery
    delay drawn from [min_us..max_us]; frames may reorder. [(0, 0)]
    disables jitter.
    @raise Invalid_argument unless [0 <= min_us <= max_us]. *)
val set_delay_jitter : t -> min_us:int -> max_us:int -> unit

val clear_delay_jitter : t -> unit

(** [transmission_time_us t ~payload_bytes] is the time the medium is held
    for a frame of that size (including overhead and CRC trailer). *)
val transmission_time_us : t -> payload_bytes:int -> int

(** [attach t ~mid ~rx] registers a station. [rx] receives every frame
    whose destination matches [mid] (or broadcast), after loss and
    corruption have been applied; CRC checking is the receiver's job.
    A given [mid] may be attached only once.
    @raise Invalid_argument on duplicate [mid]. *)
val attach : t -> mid:int -> rx:(Frame.t -> unit) -> unit

val detach : t -> mid:int -> unit

(** [send t ?ctx ~src ~dst payload] queues [payload] (CRC trailer added
    here) for transmission. Delivery happens after queueing +
    transmission + propagation delay. Frames from one source to one
    destination are delivered in order (the medium is serial). [ctx]
    rides the frame as out-of-band causal metadata (it survives
    duplication and jitter but is not part of the wire bytes). *)
val send : t -> ?ctx:Soda_obs.Causal.ctx -> src:int -> dst:Frame.dst -> bytes -> unit

(** [send_wire t ?ctx ~src ~dst wire] is {!send} for a pre-sealed frame:
    [wire] already carries its CRC trailer ({!Crc16.seal}) and its
    ownership transfers to the bus, which releases it into {!pool} after
    the frame's last delivery event. The sender must not touch [wire]
    after this call. Identical timing, fault handling and statistics to
    {!send} (payload size is [Bytes.length wire - 2]).
    @raise Invalid_argument if [wire] is shorter than the 2-byte trailer. *)
val send_wire :
  t -> ?ctx:Soda_obs.Causal.ctx -> src:int -> dst:Frame.dst -> bytes -> unit
