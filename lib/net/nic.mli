(** Per-node network interface.

    The NIC performs the two cheap screening steps the paper assigns to the
    line interface (§6.12): destination-MID filtering (done by the bus
    delivery fan-out) and CRC verification — a frame with a bad CRC is
    simply discarded (§5.2.2). Good payloads are handed to the attached
    kernel. *)

type t

(** [attach ?stats bus ~mid ~rx] creates the station; [rx] receives
    verified payload bytes together with the sender's mid and whether the
    frame was broadcast. When [stats] is given, CRC-failed frames also
    increment its ["nic.crc_drops"] counter, so the drop count surfaces in
    the node's metrics registry. *)
val attach :
  ?stats:Soda_sim.Stats.t ->
  Bus.t ->
  mid:int ->
  rx:(src:int -> broadcast:bool -> ctx:Soda_obs.Causal.ctx option -> bytes -> unit) ->
  t

(** Zero-copy variant of {!attach}: [rx] receives the frame's wire buffer
    and the verified payload length instead of a [Bytes.sub] copy — the
    payload is [wire.[0 .. len-1]]. The buffer belongs to the bus (it may
    be a pooled buffer recycled after this delivery), so [rx] must finish
    reading before returning and must not retain [wire]. *)
val attach_view :
  ?stats:Soda_sim.Stats.t ->
  Bus.t ->
  mid:int ->
  rx:
    (src:int ->
    broadcast:bool ->
    ctx:Soda_obs.Causal.ctx option ->
    wire:bytes ->
    len:int ->
    unit) ->
  t

val mid : t -> int

(** [send t ?ctx ~dst payload] transmits to a specific machine; [ctx] is
    out-of-band causal metadata riding the frame (see {!Frame.t}). *)
val send : t -> ?ctx:Soda_obs.Causal.ctx -> dst:int -> bytes -> unit

(** [broadcast t ?ctx payload] transmits to every station. *)
val broadcast : t -> ?ctx:Soda_obs.Causal.ctx -> bytes -> unit

(** [send_wire t ?ctx ~dst wire] transmits a pre-sealed frame ([wire]
    carries its CRC trailer already); ownership transfers to the bus —
    see {!Bus.send_wire}. *)
val send_wire : t -> ?ctx:Soda_obs.Causal.ctx -> dst:int -> bytes -> unit

val broadcast_wire : t -> ?ctx:Soda_obs.Causal.ctx -> bytes -> unit

(** Frames dropped by this NIC due to CRC failure. *)
val crc_drops : t -> int

(** Stop delivering frames (simulates powering the node down). *)
val disable : t -> unit

val enable : t -> unit
