type dst = To of int | Broadcast

(* [ctx] is simulated out-of-band metadata: causal identity rides the
   frame value, never the wire bytes, so tracing cannot perturb CRC,
   timing or the golden byte-level trace. *)
type t = { src : int; dst : dst; wire : bytes; ctx : Soda_obs.Causal.ctx option }

let dst_matches dst ~mid =
  match dst with
  | To m -> m = mid
  | Broadcast -> true

let pp_dst ppf = function
  | To m -> Format.fprintf ppf "mid:%d" m
  | Broadcast -> Format.pp_print_string ppf "broadcast"
