module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Stats = Soda_sim.Stats
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

type config = {
  bandwidth_bps : int;
  propagation_us : int;
  frame_overhead_bytes : int;
  loss_rate : float;
  corruption_rate : float;
}

let default_config =
  {
    bandwidth_bps = 1_000_000;
    propagation_us = 5;
    frame_overhead_bytes = 8;
    loss_rate = 0.0;
    corruption_rate = 0.0;
  }

type t = {
  engine : Engine.t;
  mutable config : config;
  stations : (int, Frame.t -> unit) Hashtbl.t;
  (* Broadcast delivery order, cached as parallel arrays sorted by ascending
     mid and rebuilt lazily after attach/detach. The seed rebuilt (fold +
     sort) this list on EVERY delivery, which at thousands of stations
     dominated the whole simulation's allocation. *)
  mutable order_mids : int array;
  mutable order_rx : (Frame.t -> unit) array;
  mutable order_n : int;
  mutable order_dirty : bool;
  mutable busy_until : int;
  fault_rng : Rng.t;
  stats : Stats.t;
  (* Backing cells of the per-frame stats, fetched once: a frame costs
     five accounting updates, and the string-keyed lookups were measurable
     at thousands of frames per simulated second. *)
  c_frames_sent : int ref;
  c_bytes_sent : int ref;
  c_frames_delivered : int ref;
  t_medium_busy : int ref;
  h_frame_bytes : Soda_obs.Metrics.histogram;
  h_queueing_us : Soda_obs.Metrics.histogram;
  pool : Pool.t;
  mutable obs : Recorder.t option;
  (* fault-plan state *)
  mutable partition : (int list * int list) option;
  (* mid -> 1 (group_a) | 2 (group_b); mirrors [partition] so the
     per-delivery cut check is two hashtable probes instead of four
     List.mem scans. *)
  part_group : (int, int) Hashtbl.t;
  mutable duplicate_pending : int;
  mutable jitter : (int * int) option;  (* (min_us, max_us) extra delivery delay *)
  mutable seq_window : int option;  (* transport window claimed by the stations *)
}

let create ?(config = default_config) ?obs engine =
  let stats = Stats.create () in
  {
    engine;
    config;
    stations = Hashtbl.create 16;
    order_mids = [||];
    order_rx = [||];
    order_n = 0;
    order_dirty = false;
    busy_until = 0;
    fault_rng = Rng.split (Engine.rng engine);
    stats;
    c_frames_sent = Stats.counter_cell stats "bus.frames_sent";
    c_bytes_sent = Stats.counter_cell stats "bus.bytes_sent";
    c_frames_delivered = Stats.counter_cell stats "bus.frames_delivered";
    t_medium_busy = Stats.time_ref stats "bus.medium_busy";
    h_frame_bytes = Stats.histogram_cell stats "bus.frame_bytes";
    h_queueing_us = Stats.histogram_cell stats "bus.queueing_us";
    pool = Pool.create ();
    obs;
    partition = None;
    part_group = Hashtbl.create 16;
    duplicate_pending = 0;
    jitter = None;
    seq_window = None;
  }

let engine t = t.engine
let stats t = t.stats
let config t = t.config
let pool t = t.pool

let set_obs t obs = t.obs <- Some obs

(* Seq-space width implied by a station's transport window; mirrors
   Cost_model.seq_space's tiers (1-bit / 4-bit / 8-bit encodings). *)
let seq_space_of_window w = if w <= 1 then 2 else if w <= 8 then 16 else 256

let claim_seq_window t ~window =
  match t.seq_window with
  | None -> t.seq_window <- Some window
  | Some w when w = window -> ()
  | Some w ->
    invalid_arg
      (Printf.sprintf
         "Bus.claim_seq_window: stations disagree on the transport window: the \
          first station claimed window %d (seq space %d), the new station wants \
          window %d (seq space %d). A receiver classifies packets against its \
          own window, so every station on one medium must use the same width"
         w (seq_space_of_window w) window
         (seq_space_of_window window))

(* Hot call sites test [tracing] BEFORE building the event payload: the
   [Event.t] constructor argument is an allocation, and it was paid on
   every frame even with tracing off. *)
let tracing t =
  match t.obs with Some r -> Recorder.tracing r | None -> false

let emit_event t kind =
  match t.obs with
  | Some r when Recorder.tracing r ->
    Recorder.emit r ~time_us:(Engine.now t.engine) ~mid:(-1) ~actor:"bus" kind
  | Some _ | None -> ()

let check_rate name rate =
  (* Written so that NaN also fails the test. *)
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Bus.%s: rate %g outside [0, 1]" name rate)

let set_loss_rate t rate =
  check_rate "set_loss_rate" rate;
  t.config <- { t.config with loss_rate = rate }

let set_corruption_rate t rate =
  check_rate "set_corruption_rate" rate;
  t.config <- { t.config with corruption_rate = rate }

(* ---- fault-plan hooks --------------------------------------------------- *)

let set_partition t (group_a, group_b) =
  List.iter
    (fun m ->
      if List.mem m group_b then
        invalid_arg (Printf.sprintf "Bus.set_partition: mid %d in both groups" m))
    group_a;
  t.partition <- Some (group_a, group_b);
  Hashtbl.reset t.part_group;
  List.iter (fun m -> Hashtbl.replace t.part_group m 1) group_a;
  List.iter (fun m -> Hashtbl.replace t.part_group m 2) group_b;
  emit_event t (Event.Fault_partition { group_a; group_b })

let heal t =
  if t.partition <> None then begin
    t.partition <- None;
    Hashtbl.reset t.part_group;
    emit_event t Event.Fault_heal
  end

let partitioned t = t.partition <> None

(* A frame crosses the cut iff its endpoints sit in opposite groups; mids
   in neither group see no filtering (they talk to everyone). *)
let separated t a b =
  match t.partition with
  | None -> false
  | Some _ ->
    let ga = match Hashtbl.find t.part_group a with g -> g | exception Not_found -> 0 in
    let gb = match Hashtbl.find t.part_group b with g -> g | exception Not_found -> 0 in
    ga <> 0 && gb <> 0 && ga <> gb

let duplicate_next ?(count = 1) t =
  if count < 0 then invalid_arg "Bus.duplicate_next: negative count";
  t.duplicate_pending <- t.duplicate_pending + count;
  emit_event t (Event.Fault_duplicate { count })

let set_delay_jitter t ~min_us ~max_us =
  if min_us < 0 || max_us < min_us then
    invalid_arg
      (Printf.sprintf "Bus.set_delay_jitter: invalid range %d..%d" min_us max_us);
  t.jitter <- (if max_us = 0 then None else Some (min_us, max_us));
  emit_event t (Event.Fault_jitter { min_us; max_us })

let clear_delay_jitter t = t.jitter <- None

let transmission_time_us t ~payload_bytes =
  let bytes = payload_bytes + t.config.frame_overhead_bytes + 2 (* CRC trailer *) in
  (* bits * 1e6 / bps, rounded up to a whole microsecond. *)
  let bits = bytes * 8 in
  (bits * 1_000_000 + t.config.bandwidth_bps - 1) / t.config.bandwidth_bps

let attach t ~mid ~rx =
  if Hashtbl.mem t.stations mid then
    invalid_arg (Printf.sprintf "Bus.attach: mid %d already attached" mid);
  Hashtbl.replace t.stations mid rx;
  t.order_dirty <- true

let detach t ~mid =
  Hashtbl.remove t.stations mid;
  t.order_dirty <- true

let rebuild_order t =
  let n = Hashtbl.length t.stations in
  let mids = Array.make n 0 in
  let i = ref 0 in
  Hashtbl.iter (fun mid _ -> mids.(!i) <- mid; incr i) t.stations;
  Array.sort compare mids;
  let rx = Array.map (fun mid -> Hashtbl.find t.stations mid) mids in
  t.order_mids <- mids;
  t.order_rx <- rx;
  t.order_n <- n;
  t.order_dirty <- false

let corrupt t wire =
  let copy = Bytes.copy wire in
  let idx = Rng.int t.fault_rng (Bytes.length copy) in
  let byte = Char.code (Bytes.get copy idx) in
  Bytes.set copy idx (Char.chr (byte lxor (1 + Rng.int t.fault_rng 255)));
  copy

let deliver_to t frame mid rx =
  if mid <> frame.Frame.src && Frame.dst_matches frame.Frame.dst ~mid then begin
    (* Partition mask is evaluated at delivery time, so a frame already on
       the wire when the cut appears is eaten too — that is exactly the
       "ack eaten by a partition" adversary the chaos suite scripts. *)
    if separated t frame.Frame.src mid then begin
      Stats.incr t.stats "bus.frames_partitioned";
      if tracing t then
        emit_event t
          (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "partitioned" })
    end
    else if Rng.chance t.fault_rng t.config.loss_rate then begin
      Stats.incr t.stats "bus.frames_lost";
      if tracing t then
        emit_event t (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "lost" })
    end
    else begin
      let frame =
        if Rng.chance t.fault_rng t.config.corruption_rate then begin
          Stats.incr t.stats "bus.frames_corrupted";
          if tracing t then
            emit_event t
              (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "corrupted" });
          { frame with Frame.wire = corrupt t frame.Frame.wire }
        end
        else frame
      in
      incr t.c_frames_delivered;
      rx frame
    end
  end

let deliver t frame =
  match frame.Frame.dst with
  | Frame.To mid -> begin
    (* Unicast touches exactly one station; skip the broadcast sweep. The
       fault RNG stream is unchanged versus the seed's all-stations scan:
       non-matching stations never drew from it. *)
    match Hashtbl.find t.stations mid with
    | rx -> deliver_to t frame mid rx
    | exception Not_found -> ()
  end
  | Frame.Broadcast ->
    (* Deterministic delivery order: ascending mid. The arrays are a
       snapshot — a station attached or detached by an rx callback during
       this sweep takes effect from the next delivery, same as the seed's
       fold-into-list behaviour. *)
    if t.order_dirty then rebuild_order t;
    let mids = t.order_mids and rxs = t.order_rx in
    for i = 0 to t.order_n - 1 do
      deliver_to t frame mids.(i) rxs.(i)
    done

(* Core transmission path. [release] marks pool-owned wire buffers: the bus
   frees them after the frame's LAST delivery event (the duplicated copy
   strictly trails the original, so releasing with the final event is safe). *)
let send_frame t ?ctx ~src ~dst ~release wire =
  let payload_bytes = Bytes.length wire - 2 in
  let frame = { Frame.src; dst; wire; ctx } in
  let now = Engine.now t.engine in
  let start = max now t.busy_until in
  let tx = transmission_time_us t ~payload_bytes in
  t.busy_until <- start + tx;
  incr t.c_frames_sent;
  t.c_bytes_sent := !(t.c_bytes_sent) + payload_bytes;
  t.t_medium_busy := !(t.t_medium_busy) + tx;
  Soda_obs.Metrics.Histogram.observe t.h_frame_bytes payload_bytes;
  Soda_obs.Metrics.Histogram.observe t.h_queueing_us (start - now);
  if tracing t then
    emit_event t
      (Event.Bus_frame
         {
           src;
           dst = (match dst with Frame.To d -> d | Frame.Broadcast -> Event.broadcast_peer);
           bytes = payload_bytes;
           start_us = start;
           end_us = start + tx;
         });
  (* Per-frame jitter is drawn at send time from the fault RNG, so runs stay
     a pure function of the seed. Jittered frames may arrive out of order,
     which is what exercises the alternating-bit sequence logic. *)
  let jitter_us =
    match t.jitter with
    | None -> 0
    | Some (min_us, max_us) -> min_us + Rng.int t.fault_rng (max_us - min_us + 1)
  in
  let arrival = start + tx + t.config.propagation_us + jitter_us - now in
  let dup = t.duplicate_pending > 0 in
  let release_now = release && not dup in
  ignore
    (Engine.schedule ~tag:"bus" t.engine ~delay:arrival (fun () ->
         deliver t frame;
         if release_now then Pool.release t.pool wire));
  if dup then begin
    t.duplicate_pending <- t.duplicate_pending - 1;
    Stats.incr t.stats "bus.frames_duplicated";
    (* The copy trails the original by one transmission time plus a small
       random slack: late enough to look like a stale retransmission. *)
    let slack = 1 + Rng.int t.fault_rng (max 1 t.config.propagation_us * 4) in
    ignore
      (Engine.schedule ~tag:"bus" t.engine ~delay:(arrival + tx + slack) (fun () ->
           deliver t frame;
           if release then Pool.release t.pool wire))
  end

let send t ?ctx ~src ~dst payload =
  send_frame t ?ctx ~src ~dst ~release:false (Crc16.append payload)

let send_wire t ?ctx ~src ~dst wire =
  if Bytes.length wire < 2 then
    invalid_arg "Bus.send_wire: frame shorter than its CRC trailer";
  send_frame t ?ctx ~src ~dst ~release:true wire
