module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Stats = Soda_sim.Stats
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

type config = {
  bandwidth_bps : int;
  propagation_us : int;
  frame_overhead_bytes : int;
  loss_rate : float;
  corruption_rate : float;
}

let default_config =
  {
    bandwidth_bps = 1_000_000;
    propagation_us = 5;
    frame_overhead_bytes = 8;
    loss_rate = 0.0;
    corruption_rate = 0.0;
  }

type t = {
  engine : Engine.t;
  mutable config : config;
  stations : (int, Frame.t -> unit) Hashtbl.t;
  mutable busy_until : int;
  fault_rng : Rng.t;
  stats : Stats.t;
  mutable obs : Recorder.t option;
  (* fault-plan state *)
  mutable partition : (int list * int list) option;
  mutable duplicate_pending : int;
  mutable jitter : (int * int) option;  (* (min_us, max_us) extra delivery delay *)
  mutable seq_window : int option;  (* transport window claimed by the stations *)
}

let create ?(config = default_config) ?obs engine =
  {
    engine;
    config;
    stations = Hashtbl.create 16;
    busy_until = 0;
    fault_rng = Rng.split (Engine.rng engine);
    stats = Stats.create ();
    obs;
    partition = None;
    duplicate_pending = 0;
    jitter = None;
    seq_window = None;
  }

let engine t = t.engine
let stats t = t.stats
let config t = t.config

let set_obs t obs = t.obs <- Some obs

let claim_seq_window t ~window =
  match t.seq_window with
  | None -> t.seq_window <- Some window
  | Some w when w = window -> ()
  | Some w ->
    invalid_arg
      (Printf.sprintf
         "Bus.claim_seq_window: stations disagree on the transport window (%d vs %d); \
          a window-1 station's sequence space (2) cannot interoperate with a wider \
          peer's (16)"
         w window)

let emit_event t kind =
  match t.obs with
  | Some r when Recorder.tracing r ->
    Recorder.emit r ~time_us:(Engine.now t.engine) ~mid:(-1) ~actor:"bus" kind
  | Some _ | None -> ()

let check_rate name rate =
  (* Written so that NaN also fails the test. *)
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Bus.%s: rate %g outside [0, 1]" name rate)

let set_loss_rate t rate =
  check_rate "set_loss_rate" rate;
  t.config <- { t.config with loss_rate = rate }

let set_corruption_rate t rate =
  check_rate "set_corruption_rate" rate;
  t.config <- { t.config with corruption_rate = rate }

(* ---- fault-plan hooks --------------------------------------------------- *)

let set_partition t (group_a, group_b) =
  List.iter
    (fun m ->
      if List.mem m group_b then
        invalid_arg (Printf.sprintf "Bus.set_partition: mid %d in both groups" m))
    group_a;
  t.partition <- Some (group_a, group_b);
  emit_event t (Event.Fault_partition { group_a; group_b })

let heal t =
  if t.partition <> None then begin
    t.partition <- None;
    emit_event t Event.Fault_heal
  end

let partitioned t = t.partition <> None

(* A frame crosses the cut iff its endpoints sit in opposite groups; mids
   in neither group see no filtering (they talk to everyone). *)
let separated t a b =
  match t.partition with
  | None -> false
  | Some (ga, gb) ->
    (List.mem a ga && List.mem b gb) || (List.mem a gb && List.mem b ga)

let duplicate_next ?(count = 1) t =
  if count < 0 then invalid_arg "Bus.duplicate_next: negative count";
  t.duplicate_pending <- t.duplicate_pending + count;
  emit_event t (Event.Fault_duplicate { count })

let set_delay_jitter t ~min_us ~max_us =
  if min_us < 0 || max_us < min_us then
    invalid_arg
      (Printf.sprintf "Bus.set_delay_jitter: invalid range %d..%d" min_us max_us);
  t.jitter <- (if max_us = 0 then None else Some (min_us, max_us));
  emit_event t (Event.Fault_jitter { min_us; max_us })

let clear_delay_jitter t = t.jitter <- None

let transmission_time_us t ~payload_bytes =
  let bytes = payload_bytes + t.config.frame_overhead_bytes + 2 (* CRC trailer *) in
  (* bits * 1e6 / bps, rounded up to a whole microsecond. *)
  let bits = bytes * 8 in
  (bits * 1_000_000 + t.config.bandwidth_bps - 1) / t.config.bandwidth_bps

let attach t ~mid ~rx =
  if Hashtbl.mem t.stations mid then
    invalid_arg (Printf.sprintf "Bus.attach: mid %d already attached" mid);
  Hashtbl.replace t.stations mid rx

let detach t ~mid = Hashtbl.remove t.stations mid

let corrupt t wire =
  let copy = Bytes.copy wire in
  let idx = Rng.int t.fault_rng (Bytes.length copy) in
  let byte = Char.code (Bytes.get copy idx) in
  Bytes.set copy idx (Char.chr (byte lxor (1 + Rng.int t.fault_rng 255)));
  copy

let deliver t frame =
  let deliver_to mid rx =
    if mid <> frame.Frame.src && Frame.dst_matches frame.Frame.dst ~mid then begin
      (* Partition mask is evaluated at delivery time, so a frame already on
         the wire when the cut appears is eaten too — that is exactly the
         "ack eaten by a partition" adversary the chaos suite scripts. *)
      if separated t frame.Frame.src mid then begin
        Stats.incr t.stats "bus.frames_partitioned";
        emit_event t
          (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "partitioned" })
      end
      else if Rng.chance t.fault_rng t.config.loss_rate then begin
        Stats.incr t.stats "bus.frames_lost";
        emit_event t (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "lost" })
      end
      else begin
        let frame =
          if Rng.chance t.fault_rng t.config.corruption_rate then begin
            Stats.incr t.stats "bus.frames_corrupted";
            emit_event t
              (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "corrupted" });
            { frame with Frame.wire = corrupt t frame.Frame.wire }
          end
          else frame
        in
        Stats.incr t.stats "bus.frames_delivered";
        rx frame
      end
    end
  in
  (* Deterministic delivery order: ascending mid. *)
  Hashtbl.fold (fun mid rx acc -> (mid, rx) :: acc) t.stations []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (mid, rx) -> deliver_to mid rx)

let send t ?ctx ~src ~dst payload =
  let wire = Crc16.append payload in
  let frame = { Frame.src; dst; wire; ctx } in
  let now = Engine.now t.engine in
  let start = max now t.busy_until in
  let tx = transmission_time_us t ~payload_bytes:(Bytes.length payload) in
  t.busy_until <- start + tx;
  Stats.incr t.stats "bus.frames_sent";
  Stats.add t.stats "bus.bytes_sent" (Bytes.length payload);
  Stats.add_time t.stats "bus.medium_busy" tx;
  Stats.sample t.stats "bus.frame_bytes" (Bytes.length payload);
  Stats.sample t.stats "bus.queueing_us" (start - now);
  emit_event t
    (Event.Bus_frame
       {
         src;
         dst = (match dst with Frame.To d -> d | Frame.Broadcast -> Event.broadcast_peer);
         bytes = Bytes.length payload;
         start_us = start;
         end_us = start + tx;
       });
  (* Per-frame jitter is drawn at send time from the fault RNG, so runs stay
     a pure function of the seed. Jittered frames may arrive out of order,
     which is what exercises the alternating-bit sequence logic. *)
  let jitter_us =
    match t.jitter with
    | None -> 0
    | Some (min_us, max_us) -> min_us + Rng.int t.fault_rng (max_us - min_us + 1)
  in
  let arrival = start + tx + t.config.propagation_us + jitter_us - now in
  ignore (Engine.schedule ~tag:"bus" t.engine ~delay:arrival (fun () -> deliver t frame));
  if t.duplicate_pending > 0 then begin
    t.duplicate_pending <- t.duplicate_pending - 1;
    Stats.incr t.stats "bus.frames_duplicated";
    (* The copy trails the original by one transmission time plus a small
       random slack: late enough to look like a stale retransmission. *)
    let slack = 1 + Rng.int t.fault_rng (max 1 t.config.propagation_us * 4) in
    ignore
      (Engine.schedule ~tag:"bus" t.engine ~delay:(arrival + tx + slack) (fun () -> deliver t frame))
  end
