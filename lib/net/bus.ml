module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Stats = Soda_sim.Stats
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

type config = {
  bandwidth_bps : int;
  propagation_us : int;
  frame_overhead_bytes : int;
  loss_rate : float;
  corruption_rate : float;
}

let default_config =
  {
    bandwidth_bps = 1_000_000;
    propagation_us = 5;
    frame_overhead_bytes = 8;
    loss_rate = 0.0;
    corruption_rate = 0.0;
  }

type t = {
  engine : Engine.t;
  mutable config : config;
  stations : (int, Frame.t -> unit) Hashtbl.t;
  mutable busy_until : int;
  fault_rng : Rng.t;
  stats : Stats.t;
  mutable obs : Recorder.t option;
}

let create ?(config = default_config) ?obs engine =
  {
    engine;
    config;
    stations = Hashtbl.create 16;
    busy_until = 0;
    fault_rng = Rng.split (Engine.rng engine);
    stats = Stats.create ();
    obs;
  }

let engine t = t.engine
let stats t = t.stats

let set_obs t obs = t.obs <- Some obs

let emit_event t kind =
  match t.obs with
  | Some r when Recorder.tracing r ->
    Recorder.emit r ~time_us:(Engine.now t.engine) ~mid:(-1) ~actor:"bus" kind
  | Some _ | None -> ()

let set_loss_rate t rate = t.config <- { t.config with loss_rate = rate }
let set_corruption_rate t rate = t.config <- { t.config with corruption_rate = rate }

let transmission_time_us t ~payload_bytes =
  let bytes = payload_bytes + t.config.frame_overhead_bytes + 2 (* CRC trailer *) in
  (* bits * 1e6 / bps, rounded up to a whole microsecond. *)
  let bits = bytes * 8 in
  (bits * 1_000_000 + t.config.bandwidth_bps - 1) / t.config.bandwidth_bps

let attach t ~mid ~rx =
  if Hashtbl.mem t.stations mid then
    invalid_arg (Printf.sprintf "Bus.attach: mid %d already attached" mid);
  Hashtbl.replace t.stations mid rx

let detach t ~mid = Hashtbl.remove t.stations mid

let corrupt t wire =
  let copy = Bytes.copy wire in
  let idx = Rng.int t.fault_rng (Bytes.length copy) in
  let byte = Char.code (Bytes.get copy idx) in
  Bytes.set copy idx (Char.chr (byte lxor (1 + Rng.int t.fault_rng 255)));
  copy

let deliver t frame =
  let deliver_to mid rx =
    if mid <> frame.Frame.src && Frame.dst_matches frame.Frame.dst ~mid then begin
      if Rng.chance t.fault_rng t.config.loss_rate then begin
        Stats.incr t.stats "bus.frames_lost";
        emit_event t (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "lost" })
      end
      else begin
        let frame =
          if Rng.chance t.fault_rng t.config.corruption_rate then begin
            Stats.incr t.stats "bus.frames_corrupted";
            emit_event t
              (Event.Bus_drop { src = frame.Frame.src; dst = mid; reason = "corrupted" });
            { frame with Frame.wire = corrupt t frame.Frame.wire }
          end
          else frame
        in
        Stats.incr t.stats "bus.frames_delivered";
        rx frame
      end
    end
  in
  (* Deterministic delivery order: ascending mid. *)
  Hashtbl.fold (fun mid rx acc -> (mid, rx) :: acc) t.stations []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (mid, rx) -> deliver_to mid rx)

let send t ~src ~dst payload =
  let wire = Crc16.append payload in
  let frame = { Frame.src; dst; wire } in
  let now = Engine.now t.engine in
  let start = max now t.busy_until in
  let tx = transmission_time_us t ~payload_bytes:(Bytes.length payload) in
  t.busy_until <- start + tx;
  Stats.incr t.stats "bus.frames_sent";
  Stats.add t.stats "bus.bytes_sent" (Bytes.length payload);
  Stats.add_time t.stats "bus.medium_busy" tx;
  Stats.sample t.stats "bus.frame_bytes" (Bytes.length payload);
  Stats.sample t.stats "bus.queueing_us" (start - now);
  emit_event t
    (Event.Bus_frame
       {
         src;
         dst = (match dst with Frame.To d -> d | Frame.Broadcast -> Event.broadcast_peer);
         bytes = Bytes.length payload;
         start_us = start;
         end_us = start + tx;
       });
  let arrival = start + tx + t.config.propagation_us - now in
  ignore (Engine.schedule t.engine ~delay:arrival (fun () -> deliver t frame))
