(** Recursive-descent parser for SODAL (§4.1).

    Grammar (the paper's skeleton, lightly regularised):
    {v
    program    ::= "program" IDENT ";" { decl } section* "."
    decl       ::= "const" IDENT "=" expr ";"
                 | "var" IDENT {"," IDENT} ":" type ";"
    type       ::= "integer" | "boolean" | "string" | "pattern"
                 | "signature" | "queue" "[" INT "]"
    section    ::= ("initialization"|"handler"|"task") "begin" stmts "end" ";"
    stmts      ::= { stmt }
    stmt       ::= IDENT ":=" expr ";"
                 | "if" expr "then" stmts {"elsif" expr "then" stmts}
                   ["else" stmts] "fi" ";"
                 | "while" expr "do" stmts "end" ";"
                 | "loop" stmts "forever" ";"
                 | "case" ("entry"|"completion") "of" case-arm* "esac" ";"
                 | "skip" ";" | "return" ";"
                 | expr ";"                       (procedure call)
    case-arm   ::= (expr | "otherwise") ":" "begin" stmts "end" ";"
    v} *)

exception Parse_error of string * Ast.pos
(** Message (naming the expected-token set where useful) and the 1-based
    line/column of the offending token. *)

val parse : string -> Ast.program

val parse_expr : string -> Ast.expr  (** for tests *)
