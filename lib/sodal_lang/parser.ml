open Ast

exception Parse_error of string * Ast.pos

type state = { mutable tokens : (Lexer.token * Ast.pos) list }

let peek st = match st.tokens with (t, _) :: _ -> t | [] -> Lexer.EOF

let pos st = match st.tokens with (_, p) :: _ -> p | [] -> Ast.no_pos

let advance st = match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let fail st message = raise (Parse_error (message, pos st))

(* [fail_expecting st what] names every token the parser would have
   accepted at this point, e.g.
   "expected one of 'skip', 'return', ...; found keyword esac". *)
let fail_expecting st expected =
  let expected =
    match expected with
    | [ one ] -> one
    | _ -> "one of " ^ String.concat ", " expected
  in
  fail st (Format.asprintf "expected %s; found %a" expected Lexer.pp_token (peek st))

let expect_sym st s =
  match peek st with
  | Lexer.SYM s' when s' = s -> advance st
  | t -> fail st (Format.asprintf "expected '%s', found %a" s Lexer.pp_token t)

let expect_kw st k =
  match peek st with
  | Lexer.KW k' when k' = k -> advance st
  | t -> fail st (Format.asprintf "expected '%s', found %a" k Lexer.pp_token t)

let accept_kw st k =
  match peek st with
  | Lexer.KW k' when k' = k ->
    advance st;
    true
  | _ -> false

let accept_sym st s =
  match peek st with
  | Lexer.SYM s' when s' = s ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | t -> fail st (Format.asprintf "expected an identifier, found %a" Lexer.pp_token t)

(* ---- expressions (precedence climbing) --------------------------------- *)

let rec parse_expression st = parse_or st

and parse_or st =
  let at = pos st in
  let left = parse_and st in
  if accept_kw st "or" then { expr = Binop (Or, left, parse_or st); eloc = at } else left

and parse_and st =
  let at = pos st in
  let left = parse_comparison st in
  if accept_kw st "and" then { expr = Binop (And, left, parse_and st); eloc = at }
  else left

and parse_comparison st =
  let at = pos st in
  let left = parse_additive st in
  let op =
    match peek st with
    | Lexer.SYM "=" -> Some Eq
    | Lexer.SYM "<>" -> Some Neq
    | Lexer.SYM "<" -> Some Lt
    | Lexer.SYM "<=" -> Some Le
    | Lexer.SYM ">" -> Some Gt
    | Lexer.SYM ">=" -> Some Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    { expr = Binop (op, left, parse_additive st); eloc = at }
  | None -> left

and parse_additive st =
  let at = pos st in
  let left = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.SYM "+" ->
      advance st;
      left := { expr = Binop (Add, !left, parse_multiplicative st); eloc = at }
    | Lexer.SYM "-" ->
      advance st;
      left := { expr = Binop (Sub, !left, parse_multiplicative st); eloc = at }
    | _ -> continue := false
  done;
  !left

and parse_multiplicative st =
  let at = pos st in
  let left = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.SYM "*" ->
      advance st;
      left := { expr = Binop (Mul, !left, parse_unary st); eloc = at }
    | Lexer.SYM "/" ->
      advance st;
      left := { expr = Binop (Div, !left, parse_unary st); eloc = at }
    | Lexer.KW "mod" ->
      advance st;
      left := { expr = Binop (Mod, !left, parse_unary st); eloc = at }
    | _ -> continue := false
  done;
  !left

and parse_unary st =
  let at = pos st in
  if accept_kw st "not" then { expr = Unop (Not, parse_unary st); eloc = at }
  else if accept_sym st "-" then { expr = Unop (Neg, parse_unary st); eloc = at }
  else parse_primary st

and parse_primary st =
  let at = pos st in
  let mk node = { expr = node; eloc = at } in
  match peek st with
  | Lexer.INT n ->
    advance st;
    mk (Int n)
  | Lexer.PATTERN p ->
    advance st;
    mk (Pattern_lit p)
  | Lexer.STRING s ->
    advance st;
    mk (Str s)
  | Lexer.KW "true" ->
    advance st;
    mk (Bool true)
  | Lexer.KW "false" ->
    advance st;
    mk (Bool false)
  | Lexer.SYM "(" ->
    advance st;
    let e = parse_expression st in
    expect_sym st ")";
    e
  | Lexer.IDENT name ->
    advance st;
    if accept_sym st "(" then begin
      let args = ref [] in
      if not (accept_sym st ")") then begin
        args := [ parse_expression st ];
        while accept_sym st "," do
          args := parse_expression st :: !args
        done;
        expect_sym st ")"
      end;
      mk (Call (String.uppercase_ascii name, List.rev !args))
    end
    else if accept_sym st "." then begin
      let field = ident st in
      mk (Field (name, String.uppercase_ascii field))
    end
    else mk (Var name)
  | _ ->
    fail_expecting st
      [ "an integer"; "a pattern literal"; "a string"; "'true'"; "'false'"; "'('";
        "an identifier" ]

(* ---- statements ---------------------------------------------------------- *)

let rec parse_statements st ~stop =
  let stmts = ref [] in
  let rec finished () =
    match peek st with
    | Lexer.KW k -> List.mem k stop
    | Lexer.EOF -> true
    | _ -> false
  and loop () =
    if not (finished ()) then begin
      stmts := parse_statement st :: !stmts;
      loop ()
    end
  in
  loop ();
  List.rev !stmts

and parse_statement st =
  let at = pos st in
  let mk node = { stmt = node; sloc = at } in
  match peek st with
  | Lexer.KW "skip" ->
    advance st;
    expect_sym st ";";
    mk Skip
  | Lexer.KW "return" ->
    advance st;
    expect_sym st ";";
    mk Return
  | Lexer.KW "if" ->
    advance st;
    let rec branches () =
      let condition = parse_expression st in
      expect_kw st "then";
      let body = parse_statements st ~stop:[ "elsif"; "else"; "fi" ] in
      if accept_kw st "elsif" then (condition, body) :: branches ()
      else [ (condition, body) ]
    in
    let bs = branches () in
    let else_body =
      if accept_kw st "else" then parse_statements st ~stop:[ "fi" ] else []
    in
    expect_kw st "fi";
    expect_sym st ";";
    mk (If (bs, else_body))
  | Lexer.KW "while" ->
    advance st;
    let condition = parse_expression st in
    expect_kw st "do";
    let body = parse_statements st ~stop:[ "end" ] in
    expect_kw st "end";
    expect_sym st ";";
    mk (While (condition, body))
  | Lexer.KW "loop" ->
    advance st;
    let body = parse_statements st ~stop:[ "forever" ] in
    expect_kw st "forever";
    expect_sym st ";";
    mk (Loop body)
  | Lexer.KW "case" ->
    advance st;
    let kind =
      if accept_kw st "entry" then `Entry
      else if accept_kw st "completion" then `Completion
      else fail_expecting st [ "'entry'"; "'completion'" ]
    in
    expect_kw st "of";
    let arms = ref [] in
    while not (accept_kw st "esac") do
      let label =
        if accept_kw st "otherwise" then None else Some (parse_expression st)
      in
      expect_sym st ":";
      expect_kw st "begin";
      let body = parse_statements st ~stop:[ "end" ] in
      expect_kw st "end";
      expect_sym st ";";
      arms := (label, body) :: !arms
    done;
    expect_sym st ";";
    let arms = List.rev !arms in
    mk (match kind with `Entry -> Case_entry arms | `Completion -> Case_completion arms)
  | Lexer.IDENT name -> begin
      (* assignment or procedure call *)
      match st.tokens with
      | _ :: (Lexer.SYM ":=", _) :: _ ->
        advance st;
        advance st;
        let value = parse_expression st in
        expect_sym st ";";
        mk (Assign (name, value))
      | _ ->
        let e = parse_expression st in
        expect_sym st ";";
        mk (Expr e)
    end
  | _ ->
    fail_expecting st
      [ "'skip'"; "'return'"; "'if'"; "'while'"; "'loop'"; "'case'"; "an identifier" ]

(* ---- declarations and program --------------------------------------------- *)

let parse_type st =
  if accept_kw st "integer" then T_integer
  else if accept_kw st "boolean" then T_boolean
  else if accept_kw st "string" then T_string
  else if accept_kw st "pattern" then T_pattern
  else if accept_kw st "signature" then T_signature
  else if accept_kw st "queue" then begin
    expect_sym st "[";
    let size =
      match peek st with
      | Lexer.INT n ->
        advance st;
        n
      | t -> fail st (Format.asprintf "expected a queue size, found %a" Lexer.pp_token t)
    in
    expect_sym st "]";
    T_queue size
  end
  else
    fail_expecting st
      [ "'integer'"; "'boolean'"; "'string'"; "'pattern'"; "'signature'"; "'queue'" ]

let parse_decls st =
  let decls = ref [] in
  let continue = ref true in
  while !continue do
    let at = pos st in
    if accept_kw st "const" then begin
      let name = ident st in
      expect_sym st "=";
      let value = parse_expression st in
      expect_sym st ";";
      decls := { decl = Const (name, value); dloc = at } :: !decls
    end
    else if accept_kw st "var" then begin
      let names = ref [ ident st ] in
      while accept_sym st "," do
        names := ident st :: !names
      done;
      expect_sym st ":";
      let ty = parse_type st in
      expect_sym st ";";
      decls := { decl = Var_decl (List.rev !names, ty); dloc = at } :: !decls
    end
    else continue := false
  done;
  List.rev !decls

let parse_section st keyword =
  if accept_kw st keyword then begin
    expect_kw st "begin";
    let body = parse_statements st ~stop:[ "end" ] in
    expect_kw st "end";
    expect_sym st ";";
    body
  end
  else []

let parse source =
  let st = { tokens = Lexer.tokenize source } in
  expect_kw st "program";
  let name = ident st in
  expect_sym st ";";
  let decls = parse_decls st in
  let initialization = parse_section st "initialization" in
  let handler = parse_section st "handler" in
  let task = parse_section st "task" in
  expect_sym st ".";
  (match peek st with
   | Lexer.EOF -> ()
   | t -> fail st (Format.asprintf "trailing input: %a" Lexer.pp_token t));
  { name; decls; initialization; handler; task }

let parse_expr source =
  let st = { tokens = Lexer.tokenize source } in
  let e = parse_expression st in
  (match peek st with
   | Lexer.EOF -> ()
   | t -> fail st (Format.asprintf "trailing input: %a" Lexer.pp_token t));
  e
