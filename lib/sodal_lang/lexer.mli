(** Lexer for SODAL source (§4.1): Pascal-ish keywords, [--] line comments,
    [%0123] octal pattern literals, strings in double quotes. *)

type token =
  | IDENT of string
  | INT of int
  | PATTERN of int
  | STRING of string
  | KW of string  (** keywords, lowercased *)
  | SYM of string  (** operators and punctuation *)
  | EOF

exception Lex_error of string * Ast.pos  (** message, position *)

val tokenize : string -> (token * Ast.pos) list
(** Tokens, each with the 1-based line/column of its first character. *)

val pp_token : Format.formatter -> token -> unit
