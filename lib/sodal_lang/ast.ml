(* Abstract syntax of SODAL (§4.1): a small Modula/Pascal-flavoured
   language whose programs are divided into Initialization, Handler and
   Task sections, with `case ENTRY of` / `case COMPLETION of` dispatch in
   the handler and the blocking/non-blocking REQUEST variants as built-in
   procedures.

   Every expression, statement and declaration carries the source
   position of its first token so that the interpreter and the static
   analyzer (lib/analysis) can report `file:line:col` diagnostics. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr = { expr : expr_node; eloc : pos }

and expr_node =
  | Int of int
  | Bool of bool
  | Str of string
  | Pattern_lit of int  (* %0123 literals *)
  | Var of string
  | Field of string * string  (* ASKER.MID etc. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (* built-in functions *)

type stmt = { stmt : stmt_node; sloc : pos }

and stmt_node =
  | Assign of string * expr
  | If of (expr * stmt list) list * stmt list  (* branches, else *)
  | While of expr * stmt list
  | Loop of stmt list  (* loop ... forever *)
  | Expr of expr  (* built-in procedure call *)
  | Case_entry of (expr option * stmt list) list  (* None = OTHERWISE *)
  | Case_completion of (expr option * stmt list) list
  | Skip
  | Return

type decl = { decl : decl_node; dloc : pos }

and decl_node =
  | Const of string * expr
  | Var_decl of string list * type_name

and type_name =
  | T_integer
  | T_boolean
  | T_string
  | T_pattern
  | T_signature
  | T_queue of int

type program = {
  name : string;
  decls : decl list;
  initialization : stmt list;
  handler : stmt list;
  task : stmt list;
}

(* Location-free constructors and equality, mostly for tests and for
   building synthetic fragments. *)

let e node = { expr = node; eloc = no_pos }
let s node = { stmt = node; sloc = no_pos }

let rec equal_expr a b =
  match a.expr, b.expr with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> x = y
  | Pattern_lit x, Pattern_lit y -> x = y
  | Var x, Var y -> x = y
  | Field (x, fx), Field (y, fy) -> x = y && fx = fy
  | Binop (op, l, r), Binop (op', l', r') ->
    op = op' && equal_expr l l' && equal_expr r r'
  | Unop (op, x), Unop (op', y) -> op = op' && equal_expr x y
  | Call (f, args), Call (f', args') ->
    f = f'
    && List.length args = List.length args'
    && List.for_all2 equal_expr args args'
  | _ -> false
