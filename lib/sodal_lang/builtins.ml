(* The SODAL built-in procedures (§4.1): one shared signature table used
   by both the interpreter (arity and existence checks) and the static
   analyzer in lib/analysis (blocking/context classification, REQUEST
   buffer shapes). Keeping the table here — next to the AST — means a new
   built-in cannot be added to the interpreter without the analyzer
   learning about it in the same commit. *)

(* The four REQUEST buffer shapes of §3.3.1: a REQUEST is implicitly a
   SIGNAL/PUT/GET/EXCHANGE depending on which of its two buffers are
   non-empty; ACCEPTs have the mirror-image shapes. *)
type shape = Sig | Put | Get | Exchange

type role =
  | Request of { shape : shape; blocking : bool }
      (** a REQUEST site; argument indices for the analyzer are fixed by
          convention: mid, pattern, arg, then data/size operands *)
  | Accept of { shape : shape; current : bool }
  | Discover  (** blocking broadcast lookup *)
  | Advertise
  | Unadvertise
  | Queue_op of [ `Enqueue | `Dequeue | `Probe ]
  | Handler_ctl of [ `Open | `Close ]
  | Plain  (** pure / local helpers *)

(* Where a built-in may legally be called from.  [Task_only] built-ins
   suspend the calling fiber for unbounded time: issuing one from the
   handler deadlocks the machine, because the completion or arrival that
   would resume it can only be delivered by that same handler (§4.1.1).
   [Handler_only] built-ins address "the current request", which only
   exists in handler context (§4.1.2). *)
type context = Anywhere | Task_only | Handler_only

type t = {
  name : string;
  arity : int option;  (** [None] = variadic (PRINT) *)
  role : role;
  context : context;
  blocking : bool;  (** suspends the calling fiber over simulated time *)
}

let b ?arity ?(role = Plain) ?(context = Anywhere) ?(blocking = false) name =
  { name; arity; role; context; blocking }

let all =
  [
    b "ADVERTISE" ~arity:1 ~role:Advertise;
    b "UNADVERTISE" ~arity:1 ~role:Unadvertise;
    b "GETUNIQUEID" ~arity:0;
    b "DISCOVER" ~arity:1 ~role:Discover ~context:Task_only ~blocking:true;
    b "MYMID" ~arity:0;
    b "OPEN" ~arity:0 ~role:(Handler_ctl `Open);
    b "CLOSE" ~arity:0 ~role:(Handler_ctl `Close);
    b "DIE" ~arity:0 ~context:Task_only;
    b "IDLE" ~arity:0 ~context:Task_only ~blocking:true;
    b "COMPUTE" ~arity:1 ~blocking:true;
    (* non-blocking REQUEST variants (§4.1.1): legal in the handler *)
    b "SIGNAL" ~arity:3 ~role:(Request { shape = Sig; blocking = false });
    b "PUT" ~arity:4 ~role:(Request { shape = Put; blocking = false });
    (* blocking REQUEST variants: task-only (§4.1.1) *)
    b "B_SIGNAL" ~arity:3
      ~role:(Request { shape = Sig; blocking = true })
      ~context:Task_only ~blocking:true;
    b "B_PUT" ~arity:4
      ~role:(Request { shape = Put; blocking = true })
      ~context:Task_only ~blocking:true;
    b "B_GET" ~arity:4
      ~role:(Request { shape = Get; blocking = true })
      ~context:Task_only ~blocking:true;
    b "B_EXCHANGE" ~arity:5
      ~role:(Request { shape = Exchange; blocking = true })
      ~context:Task_only ~blocking:true;
    (* ACCEPT by signature: blocking but bounded; legal in the handler
       (§4.1.2 — "accept_* may, and usually are") *)
    b "ACCEPT_SIGNAL" ~arity:2 ~role:(Accept { shape = Sig; current = false })
      ~blocking:true;
    b "ACCEPT_PUT" ~arity:3 ~role:(Accept { shape = Put; current = false })
      ~blocking:true;
    b "ACCEPT_GET" ~arity:3 ~role:(Accept { shape = Get; current = false })
      ~blocking:true;
    b "ACCEPT_EXCHANGE" ~arity:4
      ~role:(Accept { shape = Exchange; current = false })
      ~blocking:true;
    (* ACCEPT_CURRENT_*: only the handler has a current request (§4.1.2) *)
    b "ACCEPT_CURRENT_SIGNAL" ~arity:1
      ~role:(Accept { shape = Sig; current = true })
      ~context:Handler_only ~blocking:true;
    b "ACCEPT_CURRENT_PUT" ~arity:2
      ~role:(Accept { shape = Put; current = true })
      ~context:Handler_only ~blocking:true;
    b "ACCEPT_CURRENT_GET" ~arity:2
      ~role:(Accept { shape = Get; current = true })
      ~context:Handler_only ~blocking:true;
    b "ACCEPT_CURRENT_EXCHANGE" ~arity:3
      ~role:(Accept { shape = Exchange; current = true })
      ~context:Handler_only ~blocking:true;
    b "REJECT" ~arity:0 ~context:Handler_only;
    b "CANCEL" ~arity:1 ~blocking:true;
    b "ENQUEUE" ~arity:2 ~role:(Queue_op `Enqueue);
    b "DEQUEUE" ~arity:1 ~role:(Queue_op `Dequeue);
    b "ISEMPTY" ~arity:1 ~role:(Queue_op `Probe);
    b "ISFULL" ~arity:1 ~role:(Queue_op `Probe);
    b "ALMOSTFULL" ~arity:1 ~role:(Queue_op `Probe);
    b "ALMOSTEMPTY" ~arity:1 ~role:(Queue_op `Probe);
    (* SCD-broadcast derived objects (lib/scd): join once from the task,
       then operate; every operation blocks until its scd-broadcast
       message is delivered back, so none is legal in the handler *)
    b "SCD_JOIN" ~arity:2 ~context:Task_only;
    b "SCD_WRITE" ~arity:2 ~context:Task_only ~blocking:true;
    b "SCD_SNAPSHOT" ~arity:1 ~context:Task_only ~blocking:true;
    b "SCD_INCR" ~arity:1 ~context:Task_only ~blocking:true;
    b "SCD_CREAD" ~arity:0 ~context:Task_only ~blocking:true;
    b "SIG" ~arity:2;
    b "CONCAT" ~arity:2;
    b "ITOA" ~arity:1;
    b "LENGTH" ~arity:1;
    b "PRINT";
  ]

let table =
  let t = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace t s.name s) all;
  t

let find name = Hashtbl.find_opt table name

(* The protocol-visible effect of one built-in call, derived from the
   table entry: what the whole-system model checker (lib/analysis
   automata/modelcheck) observes when a program executes it. Everything
   not listed here — COMPUTE, string helpers, the SCD_* cluster ops
   (whose members are runtime-hosted, outside the SODAL-program model) —
   is [Eff_pure]: internal to the machine, invisible to its peers. *)
type effect_ =
  | Eff_advertise
  | Eff_unadvertise
  | Eff_request of { shape : shape; blocking : bool }
  | Eff_accept of { shape : shape; current : bool }
  | Eff_reject
  | Eff_discover
  | Eff_enqueue
  | Eff_dequeue
  | Eff_probe  (** queue probe: feeds branch conditions, moves no data *)
  | Eff_open
  | Eff_close
  | Eff_idle
  | Eff_die
  | Eff_pure

let effect_of t =
  match (t.role, t.name) with
  | Request { shape; blocking }, _ -> Eff_request { shape; blocking }
  | Accept { shape; current }, _ -> Eff_accept { shape; current }
  | Discover, _ -> Eff_discover
  | Advertise, _ -> Eff_advertise
  | Unadvertise, _ -> Eff_unadvertise
  | Queue_op `Enqueue, _ -> Eff_enqueue
  | Queue_op `Dequeue, _ -> Eff_dequeue
  | Queue_op `Probe, _ -> Eff_probe
  | Handler_ctl `Open, _ -> Eff_open
  | Handler_ctl `Close, _ -> Eff_close
  | Plain, "REJECT" -> Eff_reject
  | Plain, "IDLE" -> Eff_idle
  | Plain, "DIE" -> Eff_die
  | Plain, _ -> Eff_pure

(* Handler-context variables that always exist in a SODAL program's
   global scope (§4.1.2), shared between the interpreter (which binds
   them) and the analyzer (which must not flag them as undeclared). *)
let context_vars =
  [ "ASKER"; "ARG"; "STATUS"; "PATTERN"; "PUTSIZE"; "GETSIZE"; "TID"; "PARENT";
    "LAST_STATUS"; "LAST_ARG" ]

let shape_name = function
  | Sig -> "SIGNAL"
  | Put -> "PUT"
  | Get -> "GET"
  | Exchange -> "EXCHANGE"
