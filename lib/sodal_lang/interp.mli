(** SODAL interpreter: runs parsed programs as SODA clients.

    The three program sections become the client's Initialization, Handler
    and Task (§4.1). Inside the handler, the variables [ASKER], [ARG],
    [STATUS], [PATTERN], [PUTSIZE], [GETSIZE] and (for completions) [TID]
    are bound exactly as in the paper's skeleton, and [case entry of] /
    [case completion of] dispatch on [PATTERN] / [TID].

    Built-in procedures and functions (case-insensitive):
    - naming: [ADVERTISE p], [UNADVERTISE p], [GETUNIQUEID()],
      [DISCOVER p] (blocking; returns the machine id), [MYMID()]
    - requests: [SIGNAL(mid,p,arg)], [PUT(mid,p,arg,data)] (non-blocking,
      return the TID); [B_SIGNAL]/[B_PUT] (return the status string);
      [B_GET(mid,p,arg,maxlen)] and [B_EXCHANGE(mid,p,arg,data,maxlen)]
      (return the received string; [LAST_STATUS] holds the status)
    - accepts: [ACCEPT_SIGNAL(sig,arg)], [ACCEPT_PUT(sig,arg,maxlen)],
      [ACCEPT_GET(sig,arg,data)], [ACCEPT_EXCHANGE(sig,arg,maxlen,data)],
      the [ACCEPT_CURRENT_*] forms, and [REJECT()]
    - handler control: [OPEN()], [CLOSE()]; process control: [DIE()]
    - task: [IDLE()], [COMPUTE(us)]
    - queues: [ENQUEUE(q,v)], [DEQUEUE(q)], [ISEMPTY(q)], [ISFULL(q)],
      [ALMOSTFULL(q)], [ALMOSTEMPTY(q)]
    - misc: [PRINT(...)], [CONCAT(a,b)], [ITOA(n)], [LENGTH(s)],
      [CANCEL(tid)], [SIG(mid,tid)]
    - SCD objects (task-only; members must run on mids [0..n-1]):
      [SCD_JOIN(n,regs)], then [SCD_WRITE(reg,v)], [SCD_SNAPSHOT(reg)]
      (returns the register's value from an atomic snapshot),
      [SCD_INCR(delta)], [SCD_CREAD()] (returns the counter) *)

module Sodal = Soda_runtime.Sodal

exception Runtime_error of string

(** The names the interpreter's dispatch table actually implements,
    sorted. The lockstep guard test checks this is exactly the name set
    of {!Builtins.all}, so interpreter, analyzer and model checker
    cannot drift. *)
val implemented_builtins : unit -> string list

(** [spec_of_program ?print program] compiles the AST into a client spec.
    [print] receives PRINT output (default: stdout). *)
val spec_of_program : ?print:(string -> unit) -> Ast.program -> Sodal.spec

(** [attach ?print kernel source] parses and installs a SODAL program. *)
val attach : ?print:(string -> unit) -> Soda_core.Kernel.t -> string -> Sodal.env
