type token =
  | IDENT of string
  | INT of int
  | PATTERN of int
  | STRING of string
  | KW of string
  | SYM of string
  | EOF

exception Lex_error of string * Ast.pos

let keywords =
  [ "program"; "const"; "var"; "of"; "initialization"; "handler"; "task"; "begin"; "end";
    "if"; "then"; "elsif"; "else"; "fi"; "while"; "do"; "loop"; "forever"; "case"; "esac";
    "otherwise"; "skip"; "return"; "true"; "false"; "and"; "or"; "not"; "mod"; "integer";
    "boolean"; "string"; "pattern"; "signature"; "queue"; "entry"; "completion" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_octal c = c >= '0' && c <= '7'

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  (* offset of the first character of the current line: columns are
     1-based, so [col] of offset [i] is [i - line_start + 1]. *)
  let line_start = ref 0 in
  let i = ref 0 in
  let pos_at off = { Ast.line = !line; col = off - !line_start + 1 } in
  let emit_at start t = tokens := (t, pos_at start) :: !tokens in
  let error_at off message = raise (Lex_error (message, pos_at off)) in
  let peek off = if !i + off < n then Some source.[!i + off] else None in
  while !i < n do
    let c = source.[!i] in
    let start = !i in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char source.[!i] do
        incr i
      done;
      let word = String.sub source start (!i - start) in
      let lower = String.lowercase_ascii word in
      if List.mem lower keywords then emit_at start (KW lower) else emit_at start (IDENT word)
    end
    else if is_digit c then begin
      while !i < n && (is_digit source.[!i] || source.[!i] = '_') do
        incr i
      done;
      let text = String.sub source start (!i - start) in
      let text = String.concat "" (String.split_on_char '_' text) in
      emit_at start (INT (int_of_string text))
    end
    else if c = '%' then begin
      incr i;
      let digits = !i in
      while !i < n && is_octal source.[!i] do
        incr i
      done;
      if !i = digits then error_at start "empty pattern literal";
      emit_at start (PATTERN (int_of_string ("0o" ^ String.sub source digits (!i - digits))))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let d = source.[!i] in
        if d = '"' then closed := true
        else if d = '\n' then error_at start "unterminated string"
        else Buffer.add_char buf d;
        incr i
      done;
      if not !closed then error_at start "unterminated string";
      emit_at start (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub source !i 2 else "" in
      match two with
      | ":=" | "<>" | "<=" | ">=" ->
        emit_at start (SYM two);
        i := !i + 2
      | _ ->
        (match c with
         | '+' | '-' | '*' | '/' | '=' | '<' | '>' | '(' | ')' | ';' | ':' | ',' | '.'
         | '[' | ']' ->
           emit_at start (SYM (String.make 1 c));
           incr i
         | _ -> error_at start (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit_at !i EOF;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | PATTERN p -> Format.fprintf ppf "pattern %%%o" p
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW k -> Format.fprintf ppf "keyword %s" k
  | SYM s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.fprintf ppf "end of input"
