open Ast
module Pattern = Soda_base.Pattern
module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal
module Bqueue = Soda_runtime.Bqueue
module Scd = Soda_scd.Scd

exception Runtime_error of string

exception Return_signal

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value =
  | VUnit
  | VInt of int
  | VBool of bool
  | VStr of string
  | VPattern of Pattern.t
  | VSig of Types.requester_signature
  | VQueue of value Bqueue.t

let type_name = function
  | VUnit -> "unit"
  | VInt _ -> "integer"
  | VBool _ -> "boolean"
  | VStr _ -> "string"
  | VPattern _ -> "pattern"
  | VSig _ -> "signature"
  | VQueue _ -> "queue"

let as_int = function VInt n -> n | v -> error "expected an integer, got %s" (type_name v)
let as_bool = function VBool b -> b | v -> error "expected a boolean, got %s" (type_name v)
let as_str = function VStr s -> s | v -> error "expected a string, got %s" (type_name v)

let as_pattern = function
  | VPattern p -> p
  | VInt n -> Pattern.well_known n
  | v -> error "expected a pattern, got %s" (type_name v)

let as_sig = function VSig s -> s | v -> error "expected a signature, got %s" (type_name v)

let as_queue = function VQueue q -> q | v -> error "expected a queue, got %s" (type_name v)

let value_to_string = function
  | VUnit -> "()"
  | VInt n -> string_of_int n
  | VBool b -> string_of_bool b
  | VStr s -> s
  | VPattern p -> Format.asprintf "%a" Pattern.pp p
  | VSig s -> Format.asprintf "%a" Types.pp_requester_signature s
  | VQueue q -> Printf.sprintf "queue(%d/%d)" (Bqueue.length q) (Bqueue.capacity q)

let values_equal a b =
  match a, b with
  | VPattern p, VPattern q -> Pattern.equal p q
  | VPattern p, VInt n | VInt n, VPattern p -> Pattern.to_int p = Pattern.to_int (Pattern.well_known n)
  | VSig x, VSig y -> Types.requester_signature_equal x y
  | _ -> a = b

type state = {
  globals : (string, value ref) Hashtbl.t;
  print : string -> unit;
  program : Ast.program;
  mutable scd : Scd.t option;  (** bound by SCD_JOIN, used by the SCD_* ops *)
}

let var_cell state name =
  match Hashtbl.find_opt state.globals (String.uppercase_ascii name) with
  | Some cell -> cell
  | None -> error "undeclared variable %s" name

let set_builtin_var state name value =
  Hashtbl.replace state.globals (String.uppercase_ascii name) (ref value)

let status_string = function
  | Sodal.Comp_ok -> "COMPLETED"
  | Sodal.Comp_rejected -> "REJECTED"
  | Sodal.Comp_crashed -> "CRASHED"
  | Sodal.Comp_unadvertised -> "UNADVERTISED"

let accept_status_string = function
  | Types.Accept_success -> "SUCCESS"
  | Types.Accept_cancelled -> "CANCELLED"
  | Types.Accept_crashed -> "CRASHED"

(* ---- builtins ------------------------------------------------------------ *)

let server_of mid pattern = Sodal.server ~mid ~pattern

let completion_result state c =
  set_builtin_var state "LAST_STATUS" (VStr (status_string c.Sodal.status));
  set_builtin_var state "LAST_ARG" (VInt c.Sodal.reply_arg)

(* Built-in dispatch is an explicit registration table keyed by name, so
   the implemented set is enumerable: the lockstep guard test asserts it
   is exactly the shared signature table {!Builtins.all} — the
   interpreter, the static analyzer and the model checker cannot drift. *)
type impl = state -> Sodal.env -> value list -> value

let impl_table : (string, impl) Hashtbl.t = Hashtbl.create 64

let register name (f : impl) = Hashtbl.replace impl_table name f

let implemented_builtins () =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) impl_table [])

let arg args i = List.nth args i

let scd_op name : impl =
 fun state env args ->
  let h =
    match state.scd with Some h -> h | None -> error "%s before SCD_JOIN" name
  in
  let result =
    match name with
    | "SCD_WRITE" ->
      let reg = as_int (arg args 0) in
      if reg < 0 then error "SCD_WRITE: register index must be non-negative, got %d" reg;
      Result.map (fun (_ : Scd.ts) -> VUnit) (Scd.write env h ~reg (as_int (arg args 1)))
    | "SCD_SNAPSHOT" ->
      let reg = as_int (arg args 0) in
      if reg < 0 then
        error "SCD_SNAPSHOT: register index must be non-negative, got %d" reg;
      Result.map
        (fun arr ->
          if reg >= Array.length arr then
            error "SCD_SNAPSHOT: register %d out of range (%d registers)" reg
              (Array.length arr)
          else VInt (fst arr.(reg)))
        (Scd.snapshot env h)
    | "SCD_INCR" -> Result.map (fun () -> VUnit) (Scd.incr env h ~delta:(as_int (arg args 0)))
    | _ -> Result.map (fun v -> VInt v) (Scd.cread env h)
  in
  match result with
  | Ok v -> v
  | Error Scd.Unreachable -> error "%s: scd cluster unreachable" name

let () =
  register "ADVERTISE" (fun _state env args ->
      Sodal.advertise env (as_pattern (arg args 0));
      VUnit);
  register "UNADVERTISE" (fun _state env args ->
      Sodal.unadvertise env (as_pattern (arg args 0));
      VUnit);
  register "GETUNIQUEID" (fun _state env _args -> VPattern (Sodal.getuniqueid env));
  register "DISCOVER" (fun _state env args ->
      match (Sodal.discover env (as_pattern (arg args 0))).Types.sv_mid with
      | Types.Mid m -> VInt m
      | Types.Broadcast_mid -> error "DISCOVER returned broadcast");
  register "MYMID" (fun _state env _args -> VInt (Sodal.my_mid env));
  register "OPEN" (fun _state env _args ->
      Sodal.open_handler env;
      VUnit);
  register "CLOSE" (fun _state env _args ->
      Sodal.close_handler env;
      VUnit);
  register "DIE" (fun _state env _args -> Sodal.die env);
  register "IDLE" (fun _state env _args ->
      Sodal.idle env;
      VUnit);
  register "COMPUTE" (fun _state env args ->
      Sodal.compute env (as_int (arg args 0));
      VUnit);
  register "SIGNAL" (fun _state env args ->
      VInt
        (Sodal.signal env
           (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
           ~arg:(as_int (arg args 2))));
  register "PUT" (fun _state env args ->
      VInt
        (Sodal.put env
           (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
           ~arg:(as_int (arg args 2))
           (Bytes.of_string (as_str (arg args 3)))));
  register "B_SIGNAL" (fun state env args ->
      let c =
        Sodal.b_signal env
          (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
          ~arg:(as_int (arg args 2))
      in
      completion_result state c;
      VStr (status_string c.Sodal.status));
  register "B_PUT" (fun state env args ->
      let c =
        Sodal.b_put env
          (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
          ~arg:(as_int (arg args 2))
          (Bytes.of_string (as_str (arg args 3)))
      in
      completion_result state c;
      VStr (status_string c.Sodal.status));
  register "B_GET" (fun state env args ->
      let into = Bytes.create (as_int (arg args 3)) in
      let c =
        Sodal.b_get env
          (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
          ~arg:(as_int (arg args 2))
          ~into
      in
      completion_result state c;
      VStr (Bytes.sub_string into 0 c.Sodal.get_transferred));
  register "B_EXCHANGE" (fun state env args ->
      let into = Bytes.create (as_int (arg args 4)) in
      let c =
        Sodal.b_exchange env
          (server_of (as_int (arg args 0)) (as_pattern (arg args 1)))
          ~arg:(as_int (arg args 2))
          (Bytes.of_string (as_str (arg args 3)))
          ~into
      in
      completion_result state c;
      VStr (Bytes.sub_string into 0 c.Sodal.get_transferred));
  register "ACCEPT_SIGNAL" (fun _state env args ->
      VStr
        (accept_status_string
           (Sodal.accept_signal env (as_sig (arg args 0)) ~arg:(as_int (arg args 1)))));
  register "ACCEPT_PUT" (fun state env args ->
      let into = Bytes.create (as_int (arg args 2)) in
      let status, got =
        Sodal.accept_put env (as_sig (arg args 0)) ~arg:(as_int (arg args 1)) ~into
      in
      set_builtin_var state "LAST_STATUS" (VStr (accept_status_string status));
      VStr (Bytes.sub_string into 0 got));
  register "ACCEPT_GET" (fun _state env args ->
      VStr
        (accept_status_string
           (Sodal.accept_get env (as_sig (arg args 0)) ~arg:(as_int (arg args 1))
              ~data:(Bytes.of_string (as_str (arg args 2))))));
  register "ACCEPT_EXCHANGE" (fun state env args ->
      let into = Bytes.create (as_int (arg args 2)) in
      let status, got =
        Sodal.accept_exchange env (as_sig (arg args 0)) ~arg:(as_int (arg args 1)) ~into
          ~data:(Bytes.of_string (as_str (arg args 3)))
      in
      set_builtin_var state "LAST_STATUS" (VStr (accept_status_string status));
      VStr (Bytes.sub_string into 0 got));
  register "ACCEPT_CURRENT_SIGNAL" (fun _state env args ->
      VStr
        (accept_status_string (Sodal.accept_current_signal env ~arg:(as_int (arg args 0)))));
  register "ACCEPT_CURRENT_PUT" (fun state env args ->
      let into = Bytes.create (as_int (arg args 1)) in
      let status, got = Sodal.accept_current_put env ~arg:(as_int (arg args 0)) ~into in
      set_builtin_var state "LAST_STATUS" (VStr (accept_status_string status));
      VStr (Bytes.sub_string into 0 got));
  register "ACCEPT_CURRENT_GET" (fun _state env args ->
      VStr
        (accept_status_string
           (Sodal.accept_current_get env ~arg:(as_int (arg args 0))
              ~data:(Bytes.of_string (as_str (arg args 1))))));
  register "ACCEPT_CURRENT_EXCHANGE" (fun state env args ->
      let into = Bytes.create (as_int (arg args 1)) in
      let status, got =
        Sodal.accept_current_exchange env ~arg:(as_int (arg args 0)) ~into
          ~data:(Bytes.of_string (as_str (arg args 2)))
      in
      set_builtin_var state "LAST_STATUS" (VStr (accept_status_string status));
      VStr (Bytes.sub_string into 0 got));
  register "REJECT" (fun _state env _args ->
      Sodal.reject env;
      VUnit);
  register "CANCEL" (fun _state env args -> VBool (Sodal.cancel env (as_int (arg args 0))));
  register "ENQUEUE" (fun _state _env args ->
      Bqueue.enqueue (as_queue (arg args 0)) (arg args 1);
      VUnit);
  register "DEQUEUE" (fun _state _env args -> Bqueue.dequeue (as_queue (arg args 0)));
  register "ISEMPTY" (fun _state _env args ->
      VBool (Bqueue.is_empty (as_queue (arg args 0))));
  register "ISFULL" (fun _state _env args -> VBool (Bqueue.is_full (as_queue (arg args 0))));
  register "ALMOSTFULL" (fun _state _env args ->
      VBool (Bqueue.almost_full (as_queue (arg args 0))));
  register "ALMOSTEMPTY" (fun _state _env args ->
      VBool (Bqueue.almost_empty (as_queue (arg args 0))));
  register "SIG" (fun _state _env args ->
      VSig { Types.rq_mid = as_int (arg args 0); rq_tid = as_int (arg args 1) });
  register "CONCAT" (fun _state _env args -> VStr (as_str (arg args 0) ^ as_str (arg args 1)));
  register "ITOA" (fun _state _env args -> VStr (string_of_int (as_int (arg args 0))));
  register "LENGTH" (fun _state _env args -> VInt (String.length (as_str (arg args 0))));
  register "PRINT" (fun state _env args ->
      state.print (String.concat "" (List.map value_to_string args));
      VUnit);
  register "SCD_JOIN" (fun state env args ->
      let n = as_int (arg args 0) and regs = as_int (arg args 1) in
      if n <= 0 then error "SCD_JOIN: member count must be positive, got %d" n;
      if regs <= 0 then error "SCD_JOIN: register count must be positive, got %d" regs;
      state.scd <- Some (Scd.handle env ~cluster:"sodal" ~mids:(List.init n Fun.id) ~regs);
      VUnit);
  List.iter
    (fun name -> register name (scd_op name))
    [ "SCD_WRITE"; "SCD_SNAPSHOT"; "SCD_INCR"; "SCD_CREAD" ]

let call_builtin state env name args =
  (* arity and existence come from the shared signature table, the same
     one the static analyzer (lib/analysis) checks against *)
  (match Builtins.find name with
   | None -> error "unknown built-in %s" name
   | Some { Builtins.arity = Some n; _ } when List.length args <> n ->
     error "%s expects %d arguments" name n
   | Some _ -> ());
  match Hashtbl.find_opt impl_table name with
  | Some impl -> impl state env args
  | None -> error "unknown built-in %s" name

(* ---- evaluation --------------------------------------------------------------- *)

let rec eval state env expr =
  match expr.expr with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Str s -> VStr s
  | Pattern_lit n -> VPattern (Pattern.well_known n)
  | Var name -> !(var_cell state name)
  | Field (name, field) ->
    (match !(var_cell state name), field with
     | VSig s, "MID" -> VInt s.Types.rq_mid
     | VSig s, "TID" -> VInt s.Types.rq_tid
     | v, f -> error "no field %s on %s" f (type_name v))
  | Unop (Not, e) -> VBool (not (as_bool (eval state env e)))
  | Unop (Neg, e) -> VInt (-as_int (eval state env e))
  | Binop (op, l, r) -> eval_binop state env op l r
  | Call (name, args) ->
    let args = List.map (eval state env) args in
    call_builtin state env name args

and eval_binop state env op l r =
  match op with
  | And -> VBool (as_bool (eval state env l) && as_bool (eval state env r))
  | Or -> VBool (as_bool (eval state env l) || as_bool (eval state env r))
  | _ ->
    let lv = eval state env l and rv = eval state env r in
    (match op with
     | Add ->
       (match lv, rv with
        | VStr a, VStr b -> VStr (a ^ b)
        | _ -> VInt (as_int lv + as_int rv))
     | Sub -> VInt (as_int lv - as_int rv)
     | Mul -> VInt (as_int lv * as_int rv)
     | Div ->
       let d = as_int rv in
       if d = 0 then error "division by zero";
       VInt (as_int lv / d)
     | Mod ->
       let d = as_int rv in
       if d = 0 then error "mod by zero";
       VInt (as_int lv mod d)
     | Eq -> VBool (values_equal lv rv)
     | Neq -> VBool (not (values_equal lv rv))
     | Lt -> VBool (as_int lv < as_int rv)
     | Le -> VBool (as_int lv <= as_int rv)
     | Gt -> VBool (as_int lv > as_int rv)
     | Ge -> VBool (as_int lv >= as_int rv)
     | And | Or -> assert false)

and exec state env stmt =
  match stmt.stmt with
  | Skip -> ()
  | Return -> raise Return_signal
  | Assign (name, e) -> var_cell state name := eval state env e
  | Expr e -> ignore (eval state env e)
  | If (branches, else_body) ->
    let rec try_branches = function
      | [] -> exec_all state env else_body
      | (condition, body) :: rest ->
        if as_bool (eval state env condition) then exec_all state env body
        else try_branches rest
    in
    try_branches branches
  | While (condition, body) ->
    while as_bool (eval state env condition) do
      exec_all state env body
    done
  | Loop body ->
    while true do
      exec_all state env body
    done
  | Case_entry arms ->
    if as_str !(var_cell state "STATUS") = "ARRIVAL" then
      dispatch_case state env arms !(var_cell state "PATTERN")
  | Case_completion arms ->
    if as_str !(var_cell state "STATUS") <> "ARRIVAL" then
      dispatch_case state env arms !(var_cell state "TID")

and dispatch_case state env arms subject =
  let rec scan = function
    | [] -> ()
    | (Some label, body) :: rest ->
      if values_equal (eval state env label) subject then exec_all state env body
      else scan rest
    | (None, body) :: _ -> exec_all state env body
  in
  scan arms

and exec_all state env stmts = List.iter (exec state env) stmts

let exec_section state env stmts =
  try exec_all state env stmts with Return_signal -> ()

(* ---- program loading ------------------------------------------------------------ *)

let default_value = function
  | T_integer -> VInt 0
  | T_boolean -> VBool false
  | T_string -> VStr ""
  | T_pattern -> VPattern (Pattern.well_known 0)
  | T_signature -> VSig { Types.rq_mid = 0; rq_tid = 0 }
  | T_queue n -> VQueue (Bqueue.create n)

(* Default value for each handler-context variable; the list of names
   itself lives in {!Builtins.context_vars}, shared with the analyzer. *)
let context_var_default = function
  | "ASKER" -> VSig { Types.rq_mid = 0; rq_tid = 0 }
  | "STATUS" | "LAST_STATUS" -> VStr ""
  | "PATTERN" -> VPattern (Pattern.well_known 0)
  | _ -> VInt 0

let make_state ?(print = print_endline) program =
  let state = { globals = Hashtbl.create 32; print; program; scd = None } in
  (* handler context variables always exist *)
  List.iter
    (fun name -> set_builtin_var state name (context_var_default name))
    Builtins.context_vars;
  state

let install_decls state env =
  List.iter
    (fun decl ->
      match decl.decl with
      | Const (name, e) -> set_builtin_var state name (eval state env e)
      | Var_decl (names, ty) ->
        List.iter (fun name -> set_builtin_var state name (default_value ty)) names)
    state.program.decls

let spec_of_program ?print program =
  let state = make_state ?print program in
  {
    Sodal.init =
      (fun env ~parent ->
        install_decls state env;
        set_builtin_var state "PARENT" (VInt parent);
        exec_section state env program.initialization);
    on_request =
      (fun env info ->
        set_builtin_var state "ASKER" (VSig info.Sodal.asker);
        set_builtin_var state "ARG" (VInt info.Sodal.arg);
        set_builtin_var state "STATUS" (VStr "ARRIVAL");
        set_builtin_var state "PATTERN" (VPattern info.Sodal.pattern);
        set_builtin_var state "PUTSIZE" (VInt info.Sodal.put_size);
        set_builtin_var state "GETSIZE" (VInt info.Sodal.get_size);
        exec_section state env program.handler);
    on_completion =
      (fun env c ->
        set_builtin_var state "STATUS" (VStr (status_string c.Sodal.status));
        set_builtin_var state "ARG" (VInt c.Sodal.reply_arg);
        set_builtin_var state "TID" (VInt c.Sodal.tid);
        set_builtin_var state "PUTSIZE" (VInt c.Sodal.put_transferred);
        set_builtin_var state "GETSIZE" (VInt c.Sodal.get_transferred);
        exec_section state env program.handler);
    task =
      (fun env ->
        exec_section state env program.task;
        if program.task = [] then Sodal.serve env);
  }

let attach ?print kernel source =
  let program = Parser.parse source in
  Sodal.attach kernel (spec_of_program ?print program)
