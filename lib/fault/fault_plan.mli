(** Declarative fault plans: virtual-time-scheduled adversarial actions,
    executed deterministically by the sim engine via {!Injector}.

    The text format is line-oriented; [#] starts a comment:

    {v
    at 500000  partition 0,1 | 2,3   # cut the bus between the two groups
    at 800000  heal
    at 1000000 crash 1               # tear node 1 down mid-workload
    at 1600000 reboot 1              # fresh boot epoch + §5.4 quarantine
    at 1700000 duplicate 3           # next 3 frames delivered twice
    at 1800000 jitter 0 2000         # per-frame delivery jitter (reordering)
    at 1900000 loss-burst 0.4 200000 # 40% loss for 200 ms
    v}

    [of_string]/[to_string] round-trip, so a failing chaos case is fully
    reproducible from the printed plan alone. *)

type action =
  | Partition of int list * int list
      (** Frames between the two groups are dropped (in-flight ones too). *)
  | Heal
  | Crash of int  (** Tear the node down; it stays dead until [Reboot]. *)
  | Reboot of int  (** Fresh kernel incarnation + reboot quarantine. *)
  | Duplicate_next of int  (** The next n frames are delivered twice. *)
  | Delay_jitter of { min_us : int; max_us : int }
      (** Per-frame random delivery delay; [{min_us = 0; max_us = 0}] clears. *)
  | Loss_burst of { rate : float; duration_us : int }
      (** Elevated loss rate for a window, then restore. *)

type step = { at_us : int; action : action }
type t = step list

val action_to_string : action -> string
val step_to_string : step -> string

(** One line per step, trailing newline. *)
val to_string : t -> string

(** Parse the text format; steps are returned sorted by time (stable).
    [Error message] carries a 1-based line number. *)
val of_string : string -> (t, string) result

(** Read and parse a plan file. *)
val load : string -> (t, string) result
