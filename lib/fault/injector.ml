module Engine = Soda_sim.Engine
module Bus = Soda_net.Bus
module Network = Soda_core.Network
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event

let emit net kind =
  let r = Network.recorder net in
  if Recorder.tracing r then
    Recorder.emit r ~time_us:(Network.now net) ~mid:(-1) ~actor:"fault" kind

let node_exists net ~mid = List.mem_assoc mid (Network.nodes net)

let apply ?(quarantine = true) ?on_reboot net action =
  let bus = Network.bus net in
  match action with
  | Fault_plan.Partition (a, b) -> Bus.set_partition bus (a, b)
  | Fault_plan.Heal -> Bus.heal bus
  | Fault_plan.Crash mid ->
    (* Tolerate a plan that crashes an already-dead node: randomized plans
       may schedule a crash inside an existing crash window. *)
    if node_exists net ~mid then Network.crash_node net ~mid
  | Fault_plan.Reboot mid ->
    if not (node_exists net ~mid) then begin
      let kernel = Network.reboot_node ~quarantine net ~mid in
      match on_reboot with
      | Some f -> f ~mid kernel
      | None -> ()
    end
  | Fault_plan.Duplicate_next n -> Bus.duplicate_next ~count:n bus
  | Fault_plan.Delay_jitter { min_us; max_us } ->
    Bus.set_delay_jitter bus ~min_us ~max_us
  | Fault_plan.Loss_burst { rate; duration_us } ->
    let saved = (Bus.config bus).Bus.loss_rate in
    Bus.set_loss_rate bus rate;
    emit net
      (Event.Fault_loss_burst
         { rate_pct = int_of_float ((rate *. 100.0) +. 0.5); duration_us });
    ignore
      (Engine.schedule ~tag:"fault" (Network.engine net) ~delay:duration_us (fun () ->
           Bus.set_loss_rate bus saved))

let install ?quarantine ?on_reboot net plan =
  let engine = Network.engine net in
  let now = Engine.now engine in
  List.iter
    (fun { Fault_plan.at_us; action } ->
      let delay = max 0 (at_us - now) in
      ignore
        (Engine.schedule ~tag:"fault" engine ~delay (fun () ->
             apply ?quarantine ?on_reboot net action)))
    plan
