(** Executes a {!Fault_plan.t} against a running {!Soda_core.Network.t}.

    Every action is scheduled on the sim engine at its virtual time, so a
    run with a given (seed, plan) pair is fully deterministic. Actions are
    forgiving of racy randomized plans: crashing an already-dead node or
    rebooting a live one is a no-op. *)

(** [install ?quarantine ?on_reboot net plan] schedules every step of
    [plan]. Steps whose time is already past fire immediately.

    [quarantine] (default [true]) is passed to
    {!Soda_core.Network.reboot_node}. [on_reboot] is invoked after each
    successful reboot with the fresh kernel — the hook test harnesses use
    to re-attach a server client to the new incarnation. *)
val install :
  ?quarantine:bool ->
  ?on_reboot:(mid:int -> Soda_core.Kernel.t -> unit) ->
  Soda_core.Network.t ->
  Fault_plan.t ->
  unit

(** [apply ?quarantine ?on_reboot net action] runs one action now. *)
val apply :
  ?quarantine:bool ->
  ?on_reboot:(mid:int -> Soda_core.Kernel.t -> unit) ->
  Soda_core.Network.t ->
  Fault_plan.action ->
  unit
