type action =
  | Partition of int list * int list
  | Heal
  | Crash of int
  | Reboot of int
  | Duplicate_next of int
  | Delay_jitter of { min_us : int; max_us : int }
  | Loss_burst of { rate : float; duration_us : int }

type step = { at_us : int; action : action }
type t = step list

(* ---- rendering ------------------------------------------------------------ *)

let mids_string = Soda_obs.Event.mids_string

let action_to_string = function
  | Partition (a, b) -> Printf.sprintf "partition %s | %s" (mids_string a) (mids_string b)
  | Heal -> "heal"
  | Crash mid -> Printf.sprintf "crash %d" mid
  | Reboot mid -> Printf.sprintf "reboot %d" mid
  | Duplicate_next n -> Printf.sprintf "duplicate %d" n
  | Delay_jitter { min_us; max_us } -> Printf.sprintf "jitter %d %d" min_us max_us
  | Loss_burst { rate; duration_us } ->
    Printf.sprintf "loss-burst %g %d" rate duration_us

let step_to_string { at_us; action } =
  Printf.sprintf "at %d %s" at_us (action_to_string action)

let to_string plan = String.concat "\n" (List.map step_to_string plan) ^ "\n"

(* ---- parsing -------------------------------------------------------------- *)

let parse_mids s =
  String.split_on_char ',' s
  |> List.filter (fun tok -> String.trim tok <> "")
  |> List.map (fun tok ->
         match int_of_string_opt (String.trim tok) with
         | Some mid -> mid
         | None -> failwith (Printf.sprintf "bad mid %S" tok))

let parse_action tokens =
  match tokens with
  | "heal" :: [] -> Heal
  | "crash" :: [ mid ] -> Crash (int_of_string mid)
  | "reboot" :: [ mid ] -> Reboot (int_of_string mid)
  | "duplicate" :: rest ->
    (match rest with
     | [] -> Duplicate_next 1
     | [ n ] -> Duplicate_next (int_of_string n)
     | _ -> failwith "duplicate takes at most one count")
  | "jitter" :: [ min_us; max_us ] ->
    Delay_jitter { min_us = int_of_string min_us; max_us = int_of_string max_us }
  | "loss-burst" :: [ rate; duration ] ->
    let rate = float_of_string rate in
    if not (rate >= 0.0 && rate <= 1.0) then
      failwith (Printf.sprintf "loss-burst rate %g outside [0, 1]" rate);
    Loss_burst { rate; duration_us = int_of_string duration }
  | "partition" :: rest ->
    (* "partition 0,1 | 2,3" — group tokens may carry spaces around commas,
       so rejoin and split on the bar. *)
    let joined = String.concat " " rest in
    (match String.index_opt joined '|' with
     | None -> failwith "partition needs two groups separated by '|'"
     | Some i ->
       let a = parse_mids (String.sub joined 0 i) in
       let b = parse_mids (String.sub joined (i + 1) (String.length joined - i - 1)) in
       if a = [] || b = [] then failwith "partition groups must be non-empty";
       List.iter
         (fun m ->
           if List.mem m b then failwith (Printf.sprintf "mid %d in both groups" m))
         a;
       Partition (a, b))
  | verb :: _ -> failwith (Printf.sprintf "unknown action %S" verb)
  | [] -> failwith "empty action"

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let tokens =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> None
  | "at" :: at :: rest ->
    let at_us =
      match int_of_string_opt at with
      | Some v when v >= 0 -> v
      | _ -> failwith (Printf.sprintf "bad virtual time %S" at)
    in
    Some { at_us; action = parse_action rest }
  | _ -> failwith "line must start with 'at <virtual-us>'"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let steps = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        match parse_line line with
        | Some step -> steps := step :: !steps
        | None -> ()
        | exception Failure message ->
          error := Some (Printf.sprintf "line %d: %s" (i + 1) message))
    lines;
  match !error with
  | Some message -> Error message
  | None ->
    (* Stable sort preserves file order of same-time steps. *)
    Ok (List.stable_sort (fun a b -> compare a.at_us b.at_us) (List.rev !steps))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
