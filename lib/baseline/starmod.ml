module Engine = Soda_sim.Engine
module Stats = Soda_sim.Stats
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic

type cost = {
  trap_us : int;
  packet_us : int;
  buffer_copy_us : int;
  schedule_us : int;
  dispatch_us : int;
}

(* Calibrated against Leblanc's *MOD measurements on the same hardware
   (sync remote port call 20.7 ms, async port call 11.1 ms): at 170k
   instructions/s these correspond to ~250 instructions per trap, ~380 per
   packet, ~370 per scheduler pass. *)
let default_cost =
  { trap_us = 1500; packet_us = 2250; buffer_copy_us = 300; schedule_us = 2200;
    dispatch_us = 2300 }

(* ---- wire format ------------------------------------------------------- *)

type kind = Msg | Ack | Reply

let kind_to_int = function Msg -> 0 | Ack -> 1 | Reply -> 2

let kind_of_int = function 0 -> Some Msg | 1 -> Some Ack | 2 -> Some Reply | _ -> None

type packet = { kind : kind; seq : int; call_id : int; port : int; payload : bytes }

let encode p =
  let len = Bytes.length p.payload in
  let b = Bytes.create (9 + len) in
  Bytes.set b 0 (Char.chr (kind_to_int p.kind));
  Bytes.set b 1 (Char.chr (p.seq land 0xFF));
  Bytes.set b 2 (Char.chr ((p.call_id lsr 24) land 0xFF));
  Bytes.set b 3 (Char.chr ((p.call_id lsr 16) land 0xFF));
  Bytes.set b 4 (Char.chr ((p.call_id lsr 8) land 0xFF));
  Bytes.set b 5 (Char.chr (p.call_id land 0xFF));
  Bytes.set b 6 (Char.chr ((p.port lsr 8) land 0xFF));
  Bytes.set b 7 (Char.chr (p.port land 0xFF));
  Bytes.set b 8 '\000';
  Bytes.blit p.payload 0 b 9 len;
  b

let decode b =
  if Bytes.length b < 9 then None
  else
    match kind_of_int (Char.code (Bytes.get b 0)) with
    | None -> None
    | Some kind ->
      let u8 i = Char.code (Bytes.get b i) in
      Some
        {
          kind;
          seq = u8 1;
          call_id = (u8 2 lsl 24) lor (u8 3 lsl 16) lor (u8 4 lsl 8) lor u8 5;
          port = (u8 6 lsl 8) lor u8 7;
          payload = Bytes.sub b 9 (Bytes.length b - 9);
        }

(* ---- node --------------------------------------------------------------- *)

type outbound = { ob_packet : packet; ob_dst : int; ob_on_delivered : unit -> unit }

type peer_state = {
  mutable send_seq : int;
  mutable recv_seq : int;  (* next expected; -1 = any *)
  mutable inflight : (outbound * Engine.event_id) option;
  queue : outbound Queue.t;
}

type node = {
  engine : Engine.t;
  bus : Bus.t;
  mid : int;
  cost : cost;
  stats : Stats.t;
  mutable nic : Nic.t option;
  ports : (int, bytes -> bytes option) Hashtbl.t;
  peers : (int, peer_state) Hashtbl.t;
  calls : (int, bytes -> unit) Hashtbl.t;
  mutable next_call : int;
}

let stats node = node.stats

let peer node mid =
  match Hashtbl.find_opt node.peers mid with
  | Some p -> p
  | None ->
    let p = { send_seq = 0; recv_seq = -1; inflight = None; queue = Queue.create () } in
    Hashtbl.replace node.peers mid p;
    p

let retransmit_us = 25_000

let rec pump node dst =
  let p = peer node dst in
  match p.inflight with
  | Some _ -> ()
  | None ->
    if not (Queue.is_empty p.queue) then begin
      let ob = Queue.pop p.queue in
      transmit node dst ob
    end

and transmit node dst ob =
  let p = peer node dst in
  let packet = { ob.ob_packet with seq = p.send_seq } in
  Stats.incr node.stats "starmod.pkt.sent";
  let nic = Option.get node.nic in
  (* kernel protocol work, then the wire *)
  ignore
    (Engine.schedule node.engine ~delay:node.cost.packet_us (fun () ->
         Nic.send nic ~dst (encode packet)));
  let timer =
    Engine.schedule node.engine ~delay:retransmit_us (fun () ->
        Stats.incr node.stats "starmod.pkt.retransmitted";
        transmit node dst ob)
  in
  p.inflight <- Some (ob, timer)

let send_packet node ~dst ~kind ~call_id ~port payload ~on_delivered =
  let ob =
    { ob_packet = { kind; seq = 0; call_id; port; payload }; ob_dst = dst;
      ob_on_delivered = on_delivered }
  in
  let p = peer node dst in
  Queue.push ob p.queue;
  pump node dst

let send_ack node ~dst ~seq =
  Stats.incr node.stats "starmod.pkt.sent";
  let nic = Option.get node.nic in
  ignore
    (Engine.schedule node.engine ~delay:node.cost.packet_us (fun () ->
         Nic.send nic ~dst
           (encode { kind = Ack; seq; call_id = 0; port = 0; payload = Bytes.empty })))

let deliver node ~src packet =
  (* kernel buffering + port demultiplex + wake the owning process *)
  let c = node.cost in
  let delay = c.buffer_copy_us + c.dispatch_us + c.schedule_us in
  ignore
    (Engine.schedule node.engine ~delay (fun () ->
         match packet.kind with
         | Msg ->
           (match Hashtbl.find_opt node.ports packet.port with
            | Some handler ->
              (match handler packet.payload with
               | Some reply ->
                 send_packet node ~dst:src ~kind:Reply ~call_id:packet.call_id
                   ~port:packet.port reply ~on_delivered:(fun () -> ())
                 |> ignore
               | None -> ())
            | None -> ())
         | Reply ->
           (match Hashtbl.find_opt node.calls packet.call_id with
            | Some on_reply ->
              Hashtbl.remove node.calls packet.call_id;
              on_reply packet.payload
            | None -> ())
         | Ack -> ()))

let on_rx node ~src payload =
  match decode payload with
  | None -> Stats.incr node.stats "starmod.pkt.bad"
  | Some packet ->
    Stats.incr node.stats "starmod.pkt.recv";
    ignore
      (Engine.schedule node.engine ~delay:node.cost.packet_us (fun () ->
           match packet.kind with
           | Ack ->
             let p = peer node src in
             (match p.inflight with
              | Some (ob, timer) when packet.seq = p.send_seq ->
                Engine.cancel node.engine timer;
                p.inflight <- None;
                p.send_seq <- (p.send_seq + 1) land 0xFF;
                ob.ob_on_delivered ();
                pump node src
              | Some _ | None -> ())
           | Msg | Reply ->
             let p = peer node src in
             send_ack node ~dst:src ~seq:packet.seq;
             if p.recv_seq = -1 || packet.seq = p.recv_seq then begin
               p.recv_seq <- (packet.seq + 1) land 0xFF;
               deliver node ~src packet
             end))

let create_node ~engine ~bus ~mid ?(cost = default_cost) () =
  let node =
    {
      engine;
      bus;
      mid;
      cost;
      stats = Stats.create ();
      nic = None;
      ports = Hashtbl.create 8;
      peers = Hashtbl.create 8;
      calls = Hashtbl.create 8;
      next_call = 0;
    }
  in
  node.nic <- Some (Nic.attach bus ~mid ~rx:(fun ~src ~broadcast:_ ~ctx:_ payload -> on_rx node ~src payload));
  node

let define_port node ~port handler = Hashtbl.replace node.ports port handler

let sync_call node ~dst ~port payload ~on_reply =
  let call_id = node.next_call in
  node.next_call <- node.next_call + 1;
  Hashtbl.replace node.calls call_id on_reply;
  Stats.incr node.stats "starmod.sync_calls";
  (* user->kernel trap + kernel buffering, then queue for the net process *)
  let delay = node.cost.trap_us + node.cost.buffer_copy_us in
  ignore
    (Engine.schedule node.engine ~delay (fun () ->
         send_packet node ~dst ~kind:Msg ~call_id ~port payload ~on_delivered:(fun () -> ())))

let async_send node ~dst ~port payload ~on_done =
  let call_id = node.next_call in
  node.next_call <- node.next_call + 1;
  Stats.incr node.stats "starmod.async_sends";
  let delay = node.cost.trap_us + node.cost.buffer_copy_us in
  ignore
    (Engine.schedule node.engine ~delay (fun () ->
         send_packet node ~dst ~kind:Msg ~call_id ~port payload ~on_delivered:on_done))
