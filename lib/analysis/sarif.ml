(* SARIF 2.1.0 rendering of sodalint diagnostics (`sodal_check --format
   sarif`), the shape GitHub code scanning ingests: one run, the rule
   metadata taken from the {!Rules} catalog, one result per diagnostic.
   Built with the same hand-rolled JSON escaping as {!Diagnostic.to_json}
   — no JSON library in the tree. *)

let esc = Diagnostic.json_escape

let level = function Diagnostic.Error -> "error" | Diagnostic.Warning -> "warning"

let rule_json (r : Rules.t) =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"},"fullDescription":{"text":"%s"},"defaultConfiguration":{"level":"%s"}}|}
    (esc r.Rules.id) (esc r.Rules.title) (esc r.Rules.detail)
    (level r.Rules.severity)

let result_json (d : Diagnostic.t) =
  Printf.sprintf
    {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (esc d.Diagnostic.rule)
    (level d.Diagnostic.severity)
    (esc d.Diagnostic.message)
    (esc d.Diagnostic.file)
    d.Diagnostic.pos.Soda_sodal_lang.Ast.line d.Diagnostic.pos.Soda_sodal_lang.Ast.col

let render (diags : Diagnostic.t list) =
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"sodalint","rules":[%s]}},"results":[%s]}]}|}
    (String.concat "," (List.map rule_json Rules.all))
    (String.concat "," (List.map result_json diags))
