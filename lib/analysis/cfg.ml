(* Control-flow graphs over one SODAL section (initialization, handler
   or task). The language is block-structured, so the graph is built
   directly from the AST: one node per atomic action (assignment,
   expression statement, condition, case label probe), with branch nodes
   keeping their true/false successors apart so dataflow clients can
   refine facts per edge (e.g. ISFULL(q) on the true edge pins q's
   length interval to its capacity). [loop ... forever] has no normal
   exit: only RETURN reaches the section exit from inside it. *)

module Ast = Soda_sodal_lang.Ast

type instr =
  | Nop of string  (* entry / exit / join points; the string is a debug label *)
  | Assign of string * Ast.expr
  | Eval of Ast.expr  (* expression statement or case-arm label probe *)
  | Branch of Ast.expr  (* successors split into true/false edges *)
  | Ret

type node = {
  id : int;
  instr : instr;
  loc : Ast.pos;
  mutable succ : int list;  (* unconditional successors *)
  mutable succ_true : int list;  (* Branch only *)
  mutable succ_false : int list;  (* Branch only *)
}

type t = { nodes : node array; entry : int; exit_ : int }

(* Dangling out-edges of a partially built region, waiting for their
   target: the region's fall-through plus any open branch edges. *)
type edge = Fall | On_true | On_false

let build (stmts : Ast.stmt list) : t =
  let nodes = ref [] in
  let count = ref 0 in
  let add instr loc =
    let n = { id = !count; instr; loc; succ = []; succ_true = []; succ_false = [] } in
    incr count;
    nodes := n :: !nodes;
    n
  in
  let connect frontier (target : node) =
    List.iter
      (fun ((n : node), e) ->
        match e with
        | Fall -> n.succ <- target.id :: n.succ
        | On_true -> n.succ_true <- target.id :: n.succ_true
        | On_false -> n.succ_false <- target.id :: n.succ_false)
      frontier
  in
  let entry = add (Nop "entry") Ast.no_pos in
  let exit_ = add (Nop "exit") Ast.no_pos in
  let returns = ref [] in
  let rec seq frontier l = List.fold_left one frontier l
  and one frontier (s : Ast.stmt) =
    match s.Ast.stmt with
    | Ast.Skip ->
      let n = add (Nop "skip") s.Ast.sloc in
      connect frontier n;
      [ (n, Fall) ]
    | Ast.Return ->
      let n = add Ret s.Ast.sloc in
      connect frontier n;
      returns := n :: !returns;
      []
    | Ast.Assign (x, e) ->
      let n = add (Assign (x, e)) s.Ast.sloc in
      connect frontier n;
      [ (n, Fall) ]
    | Ast.Expr e ->
      let n = add (Eval e) s.Ast.sloc in
      connect frontier n;
      [ (n, Fall) ]
    | Ast.If (branches, els) ->
      let incoming = ref frontier in
      let out = ref [] in
      List.iter
        (fun (cond, body) ->
          let c = add (Branch cond) cond.Ast.eloc in
          connect !incoming c;
          out := seq [ (c, On_true) ] body @ !out;
          incoming := [ (c, On_false) ])
        branches;
      (match els with [] -> !incoming @ !out | _ -> seq !incoming els @ !out)
    | Ast.While (cond, body) ->
      let c = add (Branch cond) cond.Ast.eloc in
      connect frontier c;
      let back = seq [ (c, On_true) ] body in
      connect back c;
      [ (c, On_false) ]
    | Ast.Loop body ->
      let head = add (Nop "loop") s.Ast.sloc in
      connect frontier head;
      let back = seq [ (head, Fall) ] body in
      connect back head;
      []
    | Ast.Case_entry arms | Ast.Case_completion arms ->
      let head = add (Nop "case") s.Ast.sloc in
      connect frontier head;
      (* labels are probed in order; a labelled arm's probe node flows
         both into its body (match) and on to the next arm (no match) *)
      let incoming = ref [ (head, Fall) ] in
      let out = ref [] in
      let falls_through = ref true in
      List.iter
        (fun (label, body) ->
          match label with
          | Some le ->
            let l = add (Eval le) le.Ast.eloc in
            connect !incoming l;
            out := seq [ (l, Fall) ] body @ !out;
            incoming := [ (l, Fall) ]
          | None ->
            out := seq !incoming body @ !out;
            incoming := [];
            falls_through := false)
        arms;
      (if !falls_through then !incoming else []) @ !out
  in
  let final = seq [ (entry, Fall) ] stmts in
  connect final exit_;
  List.iter (fun (r : node) -> r.succ <- exit_.id :: r.succ) !returns;
  let arr = Array.make !count entry in
  List.iter (fun n -> arr.(n.id) <- n) !nodes;
  { nodes = arr; entry = entry.id; exit_ = exit_.id }
