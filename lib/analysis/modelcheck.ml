(* Bounded explicit-state model checking of a whole SODAL system (the
   communicating automata of {!Automata}) under a message-bag semantics:
   a configuration is every program's control position plus its
   advertised set, handler-open flag and queue contents, together with
   the bag of in-flight requests. Exploration is breadth-first, so the
   first path that reaches a violation is a minimal interleaving trace.

   The semantics mirror lib/core/kernel.ml:
   - a request for a pattern nobody currently advertises completes with
     UNADVERTISED (it does not hang); DISCOVER, by contrast, retries
     until an advertiser exists;
   - a closed handler makes the transport retry (BUSY), so the message
     waits in the bag until some advertiser opens;
   - the handler runs to completion atomically on delivery; an arm that
     neither accepts, rejects nor defers the request leaves the sender
     waiting forever;
   - a task that runs off its end keeps the machine alive and serving
     (only DIE tears it down).

   Rules emitted (docs/ANALYSIS.md "Model checking"):
   SL070 global deadlock        — a reachable configuration with no
                                  enabled transition while some program
                                  is blocked in a request/accept/discover
   SL071 orphan message         — a request site that is sent on some path
                                  but never completed (accepted, rejected,
                                  crashed or unadvertised) anywhere in the
                                  exhaustively explored state space
   SL072 BUSY/retry livelock    — a cycle the system can repeat forever in
                                  which requests are rejected or complete
                                  unadvertised but none is ever accepted
   SL073 advertise-withdrawal race — a request completes UNADVERTISED for
                                  a pattern some program has withdrawn

   Partial-order reduction: a pending request *send* commutes with every
   other enabled transition and disables none of them, so when a program's
   next step is a send, only that transition is expanded from the
   configuration (a persistent set of size one); the pruned interleavings
   reach the same configurations through the successor. Bounds (depth,
   configuration count, bag capacity) mark the run as non-exhausted, which
   suppresses the universal rule SL071. *)

module A = Automata
module Builtins = Soda_sodal_lang.Builtins

type pending = {
  p_sender : int;
  p_site : int;
  p_shape : Builtins.shape;
  p_blocking : bool;
  p_pattern : int;
}

type qentry = Q_req of pending | Q_data

type pos = { node : int; idx : int }

type phase =
  | P_run of pos
  | P_block_req of { cont : pos; site : int; pattern : int }
  | P_block_disc of { cont : pos; site : int; pattern : int }
  | P_block_acc of { cont : pos; site : int; queue : int option }
  | P_idle of { cont : pos; site : int }
  | P_spin  (* internal divergence; the handler still serves *)
  | P_done  (* task finished; the machine stays up and serves *)
  | P_dead  (* DIE *)

type qval = Qlen of int | Qsig of qentry list

type proc = { phase : phase; open_ : bool; adv : int list; queues : qval array }

type config = { procs : proc array; bag : pending list; withdrawn : int list }

(* completion / send markers carried on transition edges *)
type ekind =
  | K_send of int
  | K_accept of int
  | K_reject of int
  | K_unadv of int * bool  (* site, pattern was withdrawn *)
  | K_crash of int

type violation = {
  v_rule : string;
  v_severity : Diagnostic.severity;
  v_sites : A.site list;
  v_message : string;
  v_trace : string list;
}

type result = {
  violations : violation list;
  configs_explored : int;
  exhausted : bool;
  wait_cycles : (A.site * string) list;  (* the SL055 back-end *)
}

module CT = Hashtbl.Make (struct
  type t = config

  let equal = ( = )
  let hash (c : config) = Hashtbl.hash_param 128 256 c
end)

type explorer = {
  sys : A.system;
  bag_cap : int;
  max_configs : int;
  max_depth : int;
  ids : int CT.t;
  states : (int, config) Hashtbl.t;
  parent : (int, int * string) Hashtbl.t;
  depth : (int, int) Hashtbl.t;
  mutable n_states : int;
  mutable edges : (int * int * ekind list) list;
  site_sent : bool array;
  site_completed : bool array;
  site_first_sent : int option array;
  mutable truncated : bool;
}

(* ---- small helpers --------------------------------------------------------- *)

let ins_sorted x l = if List.mem x l then l else List.sort compare (x :: l)
let remove1 x l = List.filter (fun y -> y <> x) l

let with_proc cfg i p =
  let procs = Array.copy cfg.procs in
  procs.(i) <- p;
  { cfg with procs }

let qlen = function Qlen n -> n | Qsig l -> List.length l

let set_queue (p : proc) q v =
  let queues = Array.copy p.queues in
  queues.(q) <- v;
  { p with queues }

let has_advertiser cfg pat =
  Array.exists (fun (p : proc) -> List.mem pat p.adv) cfg.procs

let site ex id = ex.sys.sites.(id)
let prog_name ex i = ex.sys.progs.(i).A.p_name

let site_label ex id = A.site_name (site ex id)

let unblock_sender procs (m : pending) =
  if not m.p_blocking then procs
  else
    match procs.(m.p_sender).phase with
    | P_block_req { cont; _ } ->
      let procs = Array.copy procs in
      procs.(m.p_sender) <- { procs.(m.p_sender) with phase = P_run cont };
      procs
    | _ -> procs

(* one instance of each distinct pending, preserving order *)
let rec distinct = function
  | [] -> []
  | m :: rest -> m :: distinct (List.filter (fun x -> x <> m) rest)

(* ---- control closure -------------------------------------------------------- *)

let resolve_cond (prog : A.prog) (p : proc) = function
  | A.Unknown -> None
  | A.Probe { queue; kind; negated } ->
    let n = qlen p.queues.(queue) in
    let v =
      match kind with `Empty -> n = 0 | `Full -> n >= prog.A.p_q_caps.(queue)
    in
    Some (if negated then not v else v)

(* where control goes after the effects of [node_id] are done: the next
   effect positions, section exit, or internal divergence *)
let control_outcomes (prog : A.prog) (p : proc) node_id =
  let outs = ref [] in
  let work = ref 0 in
  let add o = if not (List.mem o !outs) then outs := !outs @ [ o ] in
  let rec succs path id =
    incr work;
    if !work > 4096 then add `Spin
    else
      match prog.A.p_nodes.(id).A.kind with
      | A.Exit_section -> add `Exit
      | A.Seq ss -> List.iter (visit path) ss
      | A.Branch (cond, ts, fs) -> (
        match resolve_cond prog p cond with
        | Some true -> List.iter (visit path) ts
        | Some false -> List.iter (visit path) fs
        | None ->
          List.iter (visit path) ts;
          List.iter (visit path) fs)
  and visit path id =
    (* reaching any effect node is progress — even the one we left, as a
       loop back to a send is a retry, not divergence; only a cycle
       through effect-free nodes spins *)
    if Array.length prog.A.p_nodes.(id).A.effs > 0 then
      add (`At { node = id; idx = 0 })
    else if List.mem id path then add `Spin
    else succs (id :: path) id
  in
  succs [ node_id ] node_id;
  !outs

(* ---- handler-arm execution --------------------------------------------------- *)

(* which arms can receive pattern [pat]: first matching label wins;
   labels that don't fold are tried both ways *)
let dispatch_arms (prog : A.prog) pat =
  let rec go = function
    | [] -> [ None ]
    | (a : A.arm) :: rest -> (
      match a.A.a_label with
      | `Pat q when q = pat -> [ Some a ]
      | `Pat _ -> go rest
      | `Otherwise -> [ Some a ]
      | `Unknown -> Some a :: go rest)
  in
  go prog.A.p_arms

(* Run one handler arm of program [j] atomically on delivery of [m],
   returning every resulting configuration with its completion markers
   and a short description of what the arm did to the request. *)
let run_arm ex cfg j (m : pending) (arm : A.arm option) =
  let prog = ex.sys.progs.(j) in
  let results = ref [] in
  let budget = ref 512 in
  let finish cfg consumed kinds =
    let desc =
      if List.exists (function K_accept _ -> true | _ -> false) kinds then "accepted"
      else if List.exists (function K_reject _ -> true | _ -> false) kinds then
        "rejected"
      else if consumed = `Deferred then "deferred"
      else "left unanswered"
    in
    results := (cfg, kinds, desc) :: !results
  in
  let fallback cfg consumed kinds =
    (* budget or loop guard hit: assume the benign outcome so the bounded
       run over-approximates liveness; universal rules are suppressed *)
    ex.truncated <- true;
    match consumed with
    | `No ->
      let procs = unblock_sender cfg.procs m in
      finish { cfg with procs } `Yes (K_accept m.p_site :: kinds)
    | c -> finish cfg c kinds
  in
  match arm with
  | None -> [ ({ cfg with procs = cfg.procs }, [], "ignored (no matching arm)") ]
  | Some arm ->
    let rec go path apos cfg consumed kinds =
      decr budget;
      if !budget <= 0 then fallback cfg consumed kinds
      else
        let node = arm.A.a_nodes.(apos.node) in
        if apos.idx < Array.length node.A.effs then begin
          let next = { apos with idx = apos.idx + 1 } in
          let self = cfg.procs.(j) in
          match node.A.effs.(apos.idx) with
          | A.Accept_current _ ->
            if consumed = `No then
              let procs = unblock_sender cfg.procs m in
              go path next { cfg with procs } `Yes (K_accept m.p_site :: kinds)
            else go path next cfg consumed kinds
          | A.Reject _ ->
            if consumed = `No then
              let procs = unblock_sender cfg.procs m in
              go path next { cfg with procs } `Yes (K_reject m.p_site :: kinds)
            else go path next cfg consumed kinds
          | A.Defer { queue; _ } ->
            let entries =
              match self.queues.(queue) with Qsig l -> l | Qlen _ -> []
            in
            if consumed = `No then
              let entries =
                if List.length entries >= prog.A.p_q_caps.(queue) then begin
                  (* the runtime would raise on the full queue; drop *)
                  ex.truncated <- true;
                  entries
                end
                else entries @ [ Q_req m ]
              in
              let cfg = with_proc cfg j (set_queue self queue (Qsig entries)) in
              go path next cfg `Deferred kinds
            else
              let entries =
                if List.length entries >= prog.A.p_q_caps.(queue) then entries
                else entries @ [ Q_data ]
              in
              let cfg = with_proc cfg j (set_queue self queue (Qsig entries)) in
              go path next cfg consumed kinds
          | A.Accept_queued { queue; _ } -> (
            let pick =
              match queue with
              | Some q -> (
                match self.queues.(q) with Qsig (e :: rest) -> Some (q, e, rest) | _ -> None)
              | None ->
                let found = ref None in
                Array.iteri
                  (fun q v ->
                    match v with
                    | Qsig (e :: rest) when !found = None && prog.A.p_q_sig.(q) ->
                      found := Some (q, e, rest)
                    | _ -> ())
                  self.queues;
                !found
            in
            match pick with
            | Some (q, Q_req pend, rest) ->
              let cfg = with_proc cfg j (set_queue self q (Qsig rest)) in
              let procs = unblock_sender cfg.procs pend in
              go path next { cfg with procs } consumed (K_accept pend.p_site :: kinds)
            | Some (q, Q_data, rest) ->
              go path next (with_proc cfg j (set_queue self q (Qsig rest))) consumed kinds
            | None ->
              (* by-signature accept with nothing queued: the handler
                 would wait; assume the wait is eventually served *)
              ex.truncated <- true;
              go path next cfg consumed kinds)
          | A.Request { blocking = _; pattern; site; shape } -> (
            (* a handler-side send is fire-and-forget (a blocking one is
               an SL001 error; modelled as non-blocking) *)
            match pattern with
            | Some pat ->
              if List.length cfg.bag >= ex.bag_cap then begin
                ex.truncated <- true;
                go path next cfg consumed kinds
              end
              else
                let m' =
                  {
                    p_sender = j;
                    p_site = site;
                    p_shape = shape;
                    p_blocking = false;
                    p_pattern = pat;
                  }
                in
                go path next
                  { cfg with bag = List.sort compare (m' :: cfg.bag) }
                  consumed
                  (K_send site :: kinds)
            | None -> go path next cfg consumed kinds)
          | A.Advertise (Some pat) ->
            go path next (with_proc cfg j { self with adv = ins_sorted pat self.adv })
              consumed kinds
          | A.Unadvertise (Some pat) ->
            let cfg =
              with_proc cfg j { self with adv = remove1 pat self.adv }
            in
            go path next { cfg with withdrawn = ins_sorted pat cfg.withdrawn } consumed kinds
          | A.Advertise None | A.Unadvertise None -> go path next cfg consumed kinds
          | A.Enqueue_data q ->
            let v =
              match self.queues.(q) with
              | Qlen n -> Qlen (min (n + 1) prog.A.p_q_caps.(q))
              | Qsig l ->
                if List.length l >= prog.A.p_q_caps.(q) then Qsig l
                else Qsig (l @ [ Q_data ])
            in
            go path next (with_proc cfg j (set_queue self q v)) consumed kinds
          | A.Dequeue_data q ->
            let v =
              match self.queues.(q) with
              | Qlen n -> Some (Qlen (max (n - 1) 0))
              | Qsig _ -> None
              (* signature queues are popped by the accept that names them *)
            in
            let cfg =
              match v with
              | Some v -> with_proc cfg j (set_queue self q v)
              | None -> cfg
            in
            go path next cfg consumed kinds
          | A.Open_h -> go path next (with_proc cfg j { self with open_ = true }) consumed kinds
          | A.Close_h ->
            go path next (with_proc cfg j { self with open_ = false }) consumed kinds
          | A.Discover _ | A.Idle _ ->
            (* blocking in the handler is an SL001 error; skip *)
            go path next cfg consumed kinds
          | A.Die _ ->
            let cfg = with_proc cfg j { self with phase = P_dead; adv = [] } in
            finish cfg consumed kinds
        end
        else
          match node.A.kind with
          | A.Exit_section | A.Seq [] -> finish cfg consumed kinds
          | A.Seq ss ->
            List.iter
              (fun s -> step_into path s cfg consumed kinds)
              ss
          | A.Branch (cond, ts, fs) -> (
            match resolve_cond prog cfg.procs.(j) cond with
            | Some true -> List.iter (fun s -> step_into path s cfg consumed kinds) ts
            | Some false -> List.iter (fun s -> step_into path s cfg consumed kinds) fs
            | None ->
              List.iter (fun s -> step_into path s cfg consumed kinds) ts;
              List.iter (fun s -> step_into path s cfg consumed kinds) fs)
    and step_into path id cfg consumed kinds =
      if List.mem id path then fallback cfg consumed kinds
      else go (id :: path) { node = id; idx = 0 } cfg consumed kinds
    in
    go [ arm.A.a_entry ] { node = arm.A.a_entry; idx = 0 } cfg `No [];
    List.rev !results

(* ---- transition generation --------------------------------------------------- *)

(* local transitions of program [i] running at [pos] *)
let local_steps ex cfg i pos ~elided =
  let prog = ex.sys.progs.(i) in
  let self = cfg.procs.(i) in
  let node = prog.A.p_nodes.(pos.node) in
  let name = prog_name ex i in
  if pos.idx < Array.length node.A.effs then begin
    let next = { pos with idx = pos.idx + 1 } in
    let run phase = { self with phase } in
    match node.A.effs.(pos.idx) with
    | A.Advertise (Some pat) ->
      [
        ( Printf.sprintf "%s: ADVERTISE %%0%o" name pat,
          [],
          with_proc cfg i { (run (P_run next)) with adv = ins_sorted pat self.adv } );
      ]
    | A.Unadvertise (Some pat) ->
      let cfg' =
        with_proc cfg i { (run (P_run next)) with adv = remove1 pat self.adv }
      in
      [
        ( Printf.sprintf "%s: UNADVERTISE %%0%o" name pat,
          [],
          { cfg' with withdrawn = ins_sorted pat cfg'.withdrawn } );
      ]
    | A.Advertise None | A.Unadvertise None -> [ ("", [], with_proc cfg i (run (P_run next))) ]
    | A.Request { shape; blocking; pattern = Some pat; site } ->
      if List.length cfg.bag >= ex.bag_cap then begin
        elided := true;
        []
      end
      else
        let m =
          { p_sender = i; p_site = site; p_shape = shape; p_blocking = blocking; p_pattern = pat }
        in
        let phase =
          if blocking then P_block_req { cont = next; site; pattern = pat }
          else P_run next
        in
        let cfg' =
          { (with_proc cfg i (run phase)) with bag = List.sort compare (m :: cfg.bag) }
        in
        [
          ( Printf.sprintf "%s: %s%s" name (site_label ex site)
              (if blocking then " (blocks)" else ""),
            [ K_send site ],
            cfg' );
        ]
    | A.Request { pattern = None; _ } -> [ ("", [], with_proc cfg i (run (P_run next))) ]
    | A.Discover { pattern = Some pat; site } ->
      if has_advertiser cfg pat then
        [
          ( Printf.sprintf "%s: DISCOVER %%0%o finds an advertiser" name pat,
            [],
            with_proc cfg i (run (P_run next)) );
        ]
      else
        [
          ( Printf.sprintf "%s: DISCOVER %%0%o (blocks)" name pat,
            [],
            with_proc cfg i (run (P_block_disc { cont = next; site; pattern = pat })) );
        ]
    | A.Discover { pattern = None; _ } -> [ ("", [], with_proc cfg i (run (P_run next))) ]
    | A.Accept_queued { queue; site = acc_site } -> (
      let pick =
        match queue with
        | Some q -> (
          match self.queues.(q) with
          | Qsig (e :: rest) -> Some (q, e, rest)
          | Qsig [] -> None
          | Qlen _ -> None)
        | None ->
          let found = ref None in
          Array.iteri
            (fun q v ->
              match v with
              | Qsig (e :: rest) when !found = None && prog.A.p_q_sig.(q) ->
                found := Some (q, e, rest)
              | _ -> ())
            self.queues;
          !found
      in
      let plain_queue = match queue with Some q -> not prog.A.p_q_sig.(q) | None -> false in
      if plain_queue then [ ("", [], with_proc cfg i (run (P_run next))) ]
      else
        match pick with
        | Some (q, Q_req pend, rest) ->
          let cfg' = with_proc cfg i (set_queue (run (P_run next)) q (Qsig rest)) in
          let procs = unblock_sender cfg'.procs pend in
          [
            ( Printf.sprintf "%s: %s completes the deferred %s from %s" name
                (site ex acc_site).A.s_builtin
                (site_label ex pend.p_site)
                (prog_name ex pend.p_sender),
              [ K_accept pend.p_site ],
              { cfg' with procs } );
          ]
        | Some (q, Q_data, rest) ->
          [ ("", [], with_proc cfg i (set_queue (run (P_run next)) q (Qsig rest))) ]
        | None ->
          [
            ( Printf.sprintf "%s: %s waits for a queued signature" name
                (site ex acc_site).A.s_builtin,
              [],
              with_proc cfg i (run (P_block_acc { cont = next; site = acc_site; queue })) );
          ])
    | A.Accept_current _ | A.Reject _ -> [ ("", [], with_proc cfg i (run (P_run next))) ]
    | A.Defer { queue; _ } | A.Enqueue_data queue ->
      let v =
        match self.queues.(queue) with
        | Qlen n -> Qlen (min (n + 1) prog.A.p_q_caps.(queue))
        | Qsig l ->
          if List.length l >= prog.A.p_q_caps.(queue) then Qsig l else Qsig (l @ [ Q_data ])
      in
      [ ("", [], with_proc cfg i (set_queue (run (P_run next)) queue v)) ]
    | A.Dequeue_data q ->
      let v =
        match self.queues.(q) with
        | Qlen n -> Some (Qlen (max (n - 1) 0))
        | Qsig _ -> None
      in
      let p = run (P_run next) in
      let p = match v with Some v -> set_queue p q v | None -> p in
      [ ("", [], with_proc cfg i p) ]
    | A.Open_h -> [ (Printf.sprintf "%s: OPEN" name, [], with_proc cfg i { (run (P_run next)) with open_ = true }) ]
    | A.Close_h ->
      [ (Printf.sprintf "%s: CLOSE" name, [], with_proc cfg i { (run (P_run next)) with open_ = false }) ]
    | A.Idle { site } ->
      (* The runtime wakes idlers after every handler invocation, and the
         cooperative task never yields between a queue probe and idle()
         registration — so a task cannot sleep past work its handler has
         already queued. Model: IDLE is a pass-through while any queue is
         non-empty; it only truly sleeps on an empty machine (a later
         delivery wakes it). *)
      if Array.exists (fun v -> qlen v > 0) self.queues then
        [ ("", [], with_proc cfg i (run (P_run next))) ]
      else
        [
          ( Printf.sprintf "%s: IDLE" name,
            [],
            with_proc cfg i (run (P_idle { cont = next; site })) );
        ]
    | A.Die _ ->
      (* death crash-completes whatever the program had deferred *)
      let kinds = ref [] in
      let procs = ref cfg.procs in
      Array.iter
        (fun v ->
          match v with
          | Qsig l ->
            List.iter
              (fun e ->
                match e with
                | Q_req pend ->
                  kinds := K_crash pend.p_site :: !kinds;
                  procs := unblock_sender !procs pend
                | Q_data -> ())
              l
          | Qlen _ -> ())
        self.queues;
      let dead =
        {
          phase = P_dead;
          open_ = false;
          adv = [];
          queues = Array.map (fun _ -> Qsig []) self.queues;
        }
      in
      let procs = Array.copy !procs in
      procs.(i) <- dead;
      [ (Printf.sprintf "%s: DIE" name, !kinds, { cfg with procs }) ]
  end
  else
    List.map
      (fun o ->
        let phase =
          match o with `At p -> P_run p | `Exit -> P_done | `Spin -> P_spin
        in
        ("", [], with_proc cfg i { self with phase }))
      (control_outcomes prog self pos.node)

let remove1_first m bag =
  let rec go = function
    | [] -> []
    | x :: rest -> if x = m then rest else x :: go rest
  in
  go bag

let deliveries ex cfg =
  let out = ref [] in
  List.iter
    (fun (m : pending) ->
      let bag' = remove1_first m cfg.bag in
      let advertisers = ref [] in
      Array.iteri
        (fun j (p : proc) -> if List.mem m.p_pattern p.adv then advertisers := j :: !advertisers)
        cfg.procs;
      let advertisers = List.rev !advertisers in
      if advertisers = [] then begin
        let withdrawn = List.mem m.p_pattern cfg.withdrawn in
        let procs = unblock_sender cfg.procs m in
        out :=
          ( Printf.sprintf "%s from %s completes UNADVERTISED"
              (site_label ex m.p_site)
              (prog_name ex m.p_sender),
            [ K_unadv (m.p_site, withdrawn) ],
            { cfg with procs; bag = bag' } )
          :: !out
      end
      else
        List.iter
          (fun j ->
            if cfg.procs.(j).open_ then begin
              (* the handler runs even while the task computes or blocks;
                 an idle task is resumed by the activity *)
              let cfg0 = { cfg with bag = bag' } in
              let cfg0 =
                match cfg0.procs.(j).phase with
                | P_idle { cont; _ } ->
                  with_proc cfg0 j { (cfg0.procs.(j)) with phase = P_run cont }
                | _ -> cfg0
              in
              List.iter
                (fun arm ->
                  List.iter
                    (fun (cfg', kinds, desc) ->
                      out :=
                        ( Printf.sprintf "deliver %s from %s to %s: %s"
                            (site_label ex m.p_site)
                            (prog_name ex m.p_sender) (prog_name ex j) desc,
                          kinds,
                          cfg' )
                        :: !out)
                    (run_arm ex cfg0 j m arm))
                (dispatch_arms ex.sys.progs.(j) m.p_pattern)
            end)
          advertisers)
    (distinct cfg.bag);
  List.rev !out

let expand ex cfg =
  let elided = ref false in
  (* partial-order reduction: a program whose next step is an enabled
     send commutes with everything else — expand only it *)
  let por =
    let found = ref None in
    Array.iteri
      (fun i (p : proc) ->
        if !found = None then
          match p.phase with
          | P_run pos ->
            let prog = ex.sys.progs.(i) in
            let node = prog.A.p_nodes.(pos.node) in
            if pos.idx < Array.length node.A.effs then (
              match node.A.effs.(pos.idx) with
              | A.Request { pattern = Some _; _ }
                when List.length cfg.bag < ex.bag_cap ->
                found := Some (i, pos)
              | _ -> ())
          | _ -> ())
      cfg.procs;
    !found
  in
  match por with
  | Some (i, pos) ->
    let trans = local_steps ex cfg i pos ~elided in
    (trans, !elided)
  | None ->
    let trans = ref [] in
    Array.iteri
      (fun i (p : proc) ->
        match p.phase with
        | P_run pos -> trans := !trans @ local_steps ex cfg i pos ~elided
        | P_block_disc { cont; pattern; _ } ->
          if has_advertiser cfg pattern then
            trans :=
              !trans
              @ [
                  ( Printf.sprintf "%s: DISCOVER %%0%o completes" (prog_name ex i) pattern,
                    [],
                    with_proc cfg i { p with phase = P_run cont } );
                ]
        | P_block_acc { cont; site = s; queue } -> (
          let prog = ex.sys.progs.(i) in
          let pick =
            match queue with
            | Some q -> (
              match p.queues.(q) with Qsig (e :: rest) -> Some (q, e, rest) | _ -> None)
            | None ->
              let found = ref None in
              Array.iteri
                (fun q v ->
                  match v with
                  | Qsig (e :: rest) when !found = None && prog.A.p_q_sig.(q) ->
                    found := Some (q, e, rest)
                  | _ -> ())
                p.queues;
              !found
          in
          match pick with
          | Some (q, Q_req pend, rest) ->
            let cfg' = with_proc cfg i (set_queue { p with phase = P_run cont } q (Qsig rest)) in
            let procs = unblock_sender cfg'.procs pend in
            trans :=
              !trans
              @ [
                  ( Printf.sprintf "%s: %s completes the deferred %s from %s"
                      (prog_name ex i) (site ex s).A.s_builtin
                      (site_label ex pend.p_site)
                      (prog_name ex pend.p_sender),
                    [ K_accept pend.p_site ],
                    { cfg' with procs } );
                ]
          | Some (q, Q_data, rest) ->
            trans :=
              !trans
              @ [ ("", [], with_proc cfg i (set_queue { p with phase = P_run cont } q (Qsig rest))) ]
          | None -> ())
        | P_block_req _ | P_idle _ | P_spin | P_done | P_dead -> ())
      cfg.procs;
    (!trans @ deliveries ex cfg, !elided)

(* ---- the instantaneous wait-for cycle scan (SL055 back-end) ------------------- *)

let wait_cycle_edges cfg =
  (* i -> j when i is blocked in a request for a pattern j advertises *)
  let n = Array.length cfg.procs in
  let edges = Array.make n [] in
  Array.iteri
    (fun i (p : proc) ->
      match p.phase with
      | P_block_req { pattern; site; _ } ->
        Array.iteri
          (fun j (q : proc) ->
            if j <> i && List.mem pattern q.adv then
              edges.(i) <- (j, pattern, site) :: edges.(i))
          cfg.procs
      | _ -> ())
    cfg.procs;
  let reaches src dst =
    let seen = Array.make n false in
    let rec go i =
      if seen.(i) then false
      else begin
        seen.(i) <- true;
        List.exists (fun (j, _, _) -> j = dst || go j) edges.(i)
      end
    in
    go src
  in
  let hits = ref [] in
  Array.iteri
    (fun i es ->
      List.iter
        (fun (j, pattern, s) -> if reaches j i then hits := (i, j, pattern, s) :: !hits)
        (List.rev es))
    edges;
  List.rev !hits

(* ---- exploration -------------------------------------------------------------- *)

let intern ex cfg ~from ~label ~d =
  match CT.find_opt ex.ids cfg with
  | Some id -> (id, false)
  | None ->
    let id = ex.n_states in
    ex.n_states <- id + 1;
    CT.add ex.ids cfg id;
    Hashtbl.replace ex.states id cfg;
    Hashtbl.replace ex.depth id d;
    (match from with
     | Some src -> Hashtbl.replace ex.parent id (src, label)
     | None -> ());
    (id, true)

let trace_to ex id =
  let rec go id acc =
    match Hashtbl.find_opt ex.parent id with
    | None -> acc
    | Some (src, label) -> go src (if label = "" then acc else label :: acc)
  in
  go id []

let blocked_sites cfg =
  let sites = ref [] in
  Array.iter
    (fun (p : proc) ->
      match p.phase with
      | P_block_req { site; _ } | P_block_disc { site; _ } | P_block_acc { site; _ } ->
        sites := site :: !sites
      | _ -> ())
    cfg.procs;
  List.rev !sites

let initial_config (sys : A.system) =
  {
    procs =
      Array.map
        (fun (p : A.prog) ->
          {
            phase = P_run { node = p.A.p_entry; idx = 0 };
            open_ = true;
            adv = [];
            queues = Array.map (fun s -> if s then Qsig [] else Qlen 0) p.A.p_q_sig;
          })
        sys.progs;
    bag = [];
    withdrawn = [];
  }

(* ---- SCC analysis for SL072 ---------------------------------------------------- *)

(* Kosaraju with explicit stacks; returns the SCC id of every config *)
let scc_ids n edges =
  let adj = Array.make n [] and radj = Array.make n [] in
  List.iter
    (fun (u, v, _) ->
      adj.(u) <- v :: adj.(u);
      radj.(v) <- u :: radj.(v))
    edges;
  let visited = Array.make n false in
  let order = ref [] in
  for s = 0 to n - 1 do
    if not visited.(s) then begin
      let stack = ref [ (s, adj.(s)) ] in
      visited.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, []) :: rest ->
          order := u :: !order;
          stack := rest
        | (u, v :: vs) :: rest ->
          stack := (u, vs) :: rest;
          if not visited.(v) then begin
            visited.(v) <- true;
            stack := (v, adj.(v)) :: !stack
          end
      done
    end
  done;
  let comp = Array.make n (-1) in
  let c = ref 0 in
  List.iter
    (fun s ->
      if comp.(s) = -1 then begin
        let stack = ref [ s ] in
        comp.(s) <- !c;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
            stack := rest;
            List.iter
              (fun v ->
                if comp.(v) = -1 then begin
                  comp.(v) <- !c;
                  stack := v :: !stack
                end)
              radj.(u)
        done;
        incr c
      end)
    !order;
  comp

(* ---- entry point ---------------------------------------------------------------- *)

let run ?(max_configs = 100_000) ?(max_depth = 100_000) ?(bag_cap = 6)
    (sys : A.system) : result =
  let n_sites = Array.length sys.sites in
  let ex =
    {
      sys;
      bag_cap;
      max_configs;
      max_depth;
      ids = CT.create 4096;
      states = Hashtbl.create 4096;
      parent = Hashtbl.create 4096;
      depth = Hashtbl.create 4096;
      n_states = 0;
      edges = [];
      site_sent = Array.make (max 1 n_sites) false;
      site_completed = Array.make (max 1 n_sites) false;
      site_first_sent = Array.make (max 1 n_sites) None;
      truncated = false;
    }
  in
  let whole_system = Array.length sys.progs >= 2 in
  let root, _ = intern ex (initial_config sys) ~from:None ~label:"" ~d:0 in
  let q = Queue.create () in
  Queue.push root q;
  let deadlocks = ref [] in  (* (sorted blocked sites, config id), first hit *)
  let unadv_races = ref [] in  (* (site, config id), first hit *)
  let wait_hits = ref [] in  (* (site, message), first hit *)
  let explored = ref 0 in
  while not (Queue.is_empty q) do
    let cid = Queue.pop q in
    if !explored >= ex.max_configs then ex.truncated <- true
    else begin
      incr explored;
      let cfg = Hashtbl.find ex.states cid in
      let d = Hashtbl.find ex.depth cid in
      if whole_system then
        List.iter
          (fun (i, j, pattern, s) ->
            if not (List.mem_assoc s !wait_hits) then
              wait_hits :=
                !wait_hits
                @ [
                    ( s,
                      Printf.sprintf
                        "blocking request to %%0%o (served by program %s) lies on a \
                         synchronous wait cycle: %s can block waiting on %s in turn"
                        pattern (prog_name ex j) (prog_name ex j) (prog_name ex i) );
                  ])
          (wait_cycle_edges cfg);
      if d >= ex.max_depth then ex.truncated <- true
      else begin
        let trans, elided = expand ex cfg in
        if elided then ex.truncated <- true;
        if trans = [] && not elided then begin
          let blocked = blocked_sites cfg in
          if blocked <> [] then begin
            let key = List.sort_uniq compare blocked in
            if not (List.mem_assoc key !deadlocks) then
              deadlocks := !deadlocks @ [ (key, cid) ]
          end
        end;
        List.iter
          (fun (label, kinds, cfg') ->
            let cid', fresh = intern ex cfg' ~from:(Some cid) ~label ~d:(d + 1) in
            ex.edges <- (cid, cid', kinds) :: ex.edges;
            List.iter
              (fun k ->
                match k with
                | K_send s ->
                  ex.site_sent.(s) <- true;
                  if ex.site_first_sent.(s) = None then
                    ex.site_first_sent.(s) <- Some cid'
                | K_accept s | K_reject s | K_crash s -> ex.site_completed.(s) <- true
                | K_unadv (s, withdrawn) ->
                  ex.site_completed.(s) <- true;
                  if withdrawn && not (List.mem_assoc s !unadv_races) then
                    unadv_races := !unadv_races @ [ (s, cid') ])
              kinds;
            if fresh then Queue.push cid' q)
          trans
      end
    end
  done;
  let exhausted = (not ex.truncated) && not sys.sys_imprecise in
  let violations = ref [] in
  (* SL070: global deadlock *)
  List.iter
    (fun (sites, cid) ->
      let cfg = Hashtbl.find ex.states cid in
      let parts =
        List.filter_map
          (fun (p : proc) ->
            match p.phase with
            | P_block_req { site = s; pattern; _ } ->
              Some
                (Printf.sprintf "%s is blocked in %s for %%0%o"
                   (site ex s).A.s_prog (site ex s).A.s_builtin pattern)
            | P_block_disc { site = s; pattern; _ } ->
              Some
                (Printf.sprintf "%s is blocked in DISCOVER %%0%o" (site ex s).A.s_prog
                   pattern)
            | P_block_acc { site = s; _ } ->
              Some
                (Printf.sprintf "%s is blocked in %s with nothing queued"
                   (site ex s).A.s_prog (site ex s).A.s_builtin)
            | _ -> None)
          (Array.to_list cfg.procs)
      in
      violations :=
        {
          v_rule = "SL070";
          v_severity = Diagnostic.Error;
          v_sites = List.map (site ex) sites;
          v_message =
            Printf.sprintf "global deadlock: %s; no transition can ever fire again"
              (String.concat ", " parts);
          v_trace = trace_to ex cid;
        }
        :: !violations)
    !deadlocks;
  (* SL071: orphan messages (only meaningful after exhaustive exploration) *)
  if exhausted then
    Array.iteri
      (fun s sent ->
        if sent && not ex.site_completed.(s) then
          violations :=
            {
              v_rule = "SL071";
              v_severity = Diagnostic.Error;
              v_sites = [ site ex s ];
              v_message =
                Printf.sprintf
                  "orphan message: this %s is never completed on any reachable path \
                   — no peer state accepts, rejects or fails it"
                  (site_label ex s);
              v_trace =
                (match ex.site_first_sent.(s) with
                 | Some cid -> trace_to ex cid
                 | None -> []);
            }
            :: !violations)
      ex.site_sent;
  (* SL072: reject/unadvertised retry cycles with no accept *)
  let comp = scc_ids ex.n_states ex.edges in
  let module IM = Map.Make (Int) in
  let scc_info = ref IM.empty in
  let get c = try IM.find c !scc_info with Not_found -> ([], [], false, []) in
  List.iter
    (fun (u, v, kinds) ->
      if comp.(u) = comp.(v) then begin
        let members, bad_sites, has_accept, labels = get comp.(u) in
        let members = u :: v :: members in
        let bad_sites, has_accept =
          List.fold_left
            (fun (bs, ha) k ->
              match k with
              | K_reject s | K_unadv (s, _) -> (s :: bs, ha)
              | K_accept _ -> (bs, true)
              | _ -> (bs, ha))
            (bad_sites, has_accept) kinds
        in
        let label =
          match Hashtbl.find_opt ex.parent v with Some (_, l) -> l | None -> ""
        in
        scc_info := IM.add comp.(u) (members, bad_sites, has_accept, label :: labels) !scc_info
      end)
    ex.edges;
  (* several SCCs can witness the same livelock (e.g. with and without an
     unrelated idle step in the cycle): keep one violation per site set,
     the one entered earliest — its trace is shortest *)
  let livelocks = ref [] in
  IM.iter
    (fun _ (members, bad_sites, has_accept, _) ->
      if bad_sites <> [] && not has_accept then begin
        let sites = List.sort_uniq compare bad_sites in
        let entry =
          List.fold_left
            (fun best m ->
              let dm = Hashtbl.find ex.depth m in
              match best with
              | Some (_, db) when db <= dm -> best
              | _ -> Some (m, dm))
            None (List.sort_uniq compare members)
        in
        match entry with
        | None -> ()
        | Some (m, d) ->
          let cycle_labels =
            List.filter_map
              (fun (u, v, _) ->
                if comp.(u) = comp.(v) && comp.(u) = comp.(List.hd members) then
                  match Hashtbl.find_opt ex.parent v with
                  | Some (_, l) when l <> "" -> Some l
                  | _ -> None
                else None)
              ex.edges
          in
          let trace =
            trace_to ex m
            @ ("-- the cycle repeats --" :: List.sort_uniq compare cycle_labels)
          in
          let better =
            match List.assoc_opt sites !livelocks with
            | Some (d', _) -> d < d'
            | None -> true
          in
          if better then
            livelocks := (sites, (d, trace)) :: List.remove_assoc sites !livelocks
      end)
    !scc_info;
  List.iter
    (fun (sites, (_, trace)) ->
      violations :=
        {
          v_rule = "SL072";
          v_severity = Diagnostic.Warning;
          v_sites = List.map (site ex) sites;
          v_message =
            "retry livelock: the system can cycle forever while this request is \
             rejected or completes unadvertised, and no accept ever happens in \
             the cycle";
          v_trace = trace;
        }
        :: !violations)
    (List.rev !livelocks);
  (* SL073: request completes UNADVERTISED after a matching withdrawal *)
  List.iter
    (fun (s, cid) ->
      violations :=
        {
          v_rule = "SL073";
          v_severity = Diagnostic.Warning;
          v_sites = [ site ex s ];
          v_message =
            Printf.sprintf
              "advertise-withdrawal race: this %s can complete UNADVERTISED because \
               the serving program withdraws the pattern"
              (site_label ex s);
          v_trace = trace_to ex cid;
        }
        :: !violations)
    !unadv_races;
  {
    violations = List.rev !violations;
    configs_explored = !explored;
    exhausted;
    wait_cycles =
      List.map (fun (s, message) -> (site ex s, message)) !wait_hits;
  }

(* ---- diagnostics ---------------------------------------------------------------- *)

let diagnostics_of (r : result) : Diagnostic.t list =
  List.concat_map
    (fun v ->
      List.map
        (fun (s : A.site) ->
          Diagnostic.make ~file:s.A.s_file ~pos:s.A.s_pos ~severity:v.v_severity
            ~rule:v.v_rule ~message:v.v_message)
        v.v_sites)
    r.violations

let check ?max_configs ?max_depth ?bag_cap (programs : (string * Soda_sodal_lang.Ast.program) list) :
    result =
  run ?max_configs ?max_depth ?bag_cap (A.extract programs)
