(* The sodalint entry point: parse each source, run the per-program
   rules ({!Check}) and — unless disabled — the cross-program rules
   ({!Crosscheck}) over everything that parsed, and return one sorted,
   de-duplicated diagnostic list. Parse and lex failures become SL000
   diagnostics rather than exceptions, so one broken file never hides
   findings in its neighbours. *)

module Parser = Soda_sodal_lang.Parser
module Lexer = Soda_sodal_lang.Lexer

type source = { path : string; text : string }

let parse_source (src : source) =
  match Parser.parse src.text with
  | program -> Ok (src.path, program)
  | exception Parser.Parse_error (message, pos) ->
    Error
      (Diagnostic.make ~file:src.path ~pos ~severity:Diagnostic.Error ~rule:"SL000"
         ~message:("syntax error: " ^ message))
  | exception Lexer.Lex_error (message, pos) ->
    Error
      (Diagnostic.make ~file:src.path ~pos ~severity:Diagnostic.Error ~rule:"SL000"
         ~message:("lexical error: " ^ message))

(* every source that parses, plus SL000 diagnostics for those that don't
   — the shape both [analyze] and the model-check CLI path consume *)
let parse_programs (sources : source list) =
  let parsed, parse_diags =
    List.fold_left
      (fun (ok, bad) src ->
        match parse_source src with
        | Ok p -> (p :: ok, bad)
        | Error d -> (ok, d :: bad))
      ([], []) sources
  in
  (List.rev parsed, List.rev parse_diags)

let analyze ?(cross = true) (sources : source list) : Diagnostic.t list =
  let parsed, parse_diags = parse_programs sources in
  let per_program =
    List.concat_map (fun (file, program) -> Check.check ~file program) parsed
  in
  let cross_program = if cross then Crosscheck.check parsed else [] in
  List.sort_uniq Diagnostic.compare
    (List.rev_append parse_diags (per_program @ cross_program))

(* Severity-respecting exit status: errors always fail; warnings only
   fail under [strict]. *)
let exit_status ?(strict = false) diags =
  if Diagnostic.has_errors diags then 1
  else if strict && diags <> [] then 1
  else 0
