(* Communicating-automata extraction for the whole-system model checker
   (see {!Modelcheck} and docs/ANALYSIS.md "Model checking").

   Each SODAL program becomes one finite automaton: states are the CFG
   program points of its initialization and task sections (chained, the
   way the runtime runs them), and every protocol-visible built-in call
   — classified by {!Builtins.effect_of}, the same shared table the
   interpreter dispatches on — becomes an effect on the node that
   contains it, in evaluation (post-)order, so a nested
   [ACCEPT_PUT(DEQUEUE(q), ...)] reads "pop the deferred signature, then
   accept it". Handler [case entry] arms are extracted as their own
   little automata, executed atomically on message delivery (§4.1.1: the
   handler runs to completion).

   Pattern operands are resolved by the same constant folding the
   cross-program rules use; whatever cannot be resolved statically
   (GETUNIQUEID patterns, computed queue names, effects hidden in
   [case completion] arms) sets the [imprecise] flag, which makes the
   model checker refrain from the universal claims (SL071). *)

module Ast = Soda_sodal_lang.Ast
module Builtins = Soda_sodal_lang.Builtins
module SM = Map.Make (String)

type site = {
  s_file : string;
  s_prog : string;
  s_pos : Ast.pos;
  s_builtin : string;
  s_pattern : int option;
}

(* one protocol-visible effect, in evaluation order within its node *)
type eff =
  | Advertise of int option
  | Unadvertise of int option
  | Request of {
      shape : Builtins.shape;
      blocking : bool;
      pattern : int option;
      site : int;
    }
  | Discover of { pattern : int option; site : int }
  | Accept_current of { shape : Builtins.shape; site : int }
  | Accept_queued of { queue : int option; site : int }
      (* by-signature accept; [queue] is the signature queue index when
         the signature operand is literally DEQUEUE(q) — the §4.2.1 port
         idiom *)
  | Reject of { site : int }
  | Defer of { queue : int; site : int }  (* ENQUEUE(q, ASKER) *)
  | Enqueue_data of int
  | Dequeue_data of int
  | Open_h
  | Close_h
  | Idle of { site : int }
  | Die of { site : int }

(* branch conditions the model can resolve exactly against the tracked
   queue lengths; everything else is nondeterministic *)
type cond =
  | Unknown
  | Probe of { queue : int; kind : [ `Empty | `Full ]; negated : bool }

type kind =
  | Seq of int list  (* successors *)
  | Branch of cond * int list * int list  (* true / false successors *)
  | Exit_section  (* end of the task: the machine keeps serving *)

type node = { effs : eff array; kind : kind }

type arm = {
  a_label : [ `Pat of int | `Otherwise | `Unknown ];
  a_nodes : node array;
  a_entry : int;
}

type prog = {
  p_file : string;
  p_name : string;
  p_entry : int;
  p_nodes : node array;
  p_arms : arm list;
  p_q_caps : int array;
  p_q_sig : bool array;  (* the queue ever holds requester signatures *)
  p_q_names : string array;
  p_imprecise : bool;
}

type system = {
  progs : prog array;
  sites : site array;
  sys_imprecise : bool;
}

let site_name (s : site) =
  match s.s_pattern with
  | Some p -> Printf.sprintf "%s %%0%o" s.s_builtin p
  | None -> s.s_builtin

(* ---- per-program extraction ---------------------------------------------- *)

type ctx = {
  file : string;
  prog_name : string;
  env : Check.const_value SM.t;
  q_index : int SM.t;
  q_sig : bool array;
  sites_acc : site list ref;
  mutable n_sites : int;
  mutable imprecise : bool;
}

let mk_site ctx name pos pattern =
  let id = ctx.n_sites in
  ctx.n_sites <- id + 1;
  ctx.sites_acc :=
    {
      s_file = ctx.file;
      s_prog = ctx.prog_name;
      s_pos = pos;
      s_builtin = name;
      s_pattern = pattern;
    }
    :: !(ctx.sites_acc);
  id

let queue_of ctx (e : Ast.expr) =
  match e.Ast.expr with
  | Ast.Var q -> SM.find_opt (String.uppercase_ascii q) ctx.q_index
  | _ -> None

let rec mentions_asker (e : Ast.expr) =
  match e.Ast.expr with
  | Ast.Var x | Ast.Field (x, _) -> String.uppercase_ascii x = "ASKER"
  | Ast.Binop (_, a, b) -> mentions_asker a || mentions_asker b
  | Ast.Unop (_, a) -> mentions_asker a
  | Ast.Call (_, args) -> List.exists mentions_asker args
  | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Pattern_lit _ -> false

let nth_opt = List.nth_opt

let pattern_arg ctx args i =
  Option.bind (nth_opt args i) (Check.as_pattern_const ctx.env)

(* effects of one expression, evaluation order (arguments first) *)
let rec effs_of_expr ctx acc (e : Ast.expr) =
  match e.Ast.expr with
  | Ast.Binop (_, a, b) -> effs_of_expr ctx (effs_of_expr ctx acc a) b
  | Ast.Unop (_, a) -> effs_of_expr ctx acc a
  | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Pattern_lit _ | Ast.Var _ | Ast.Field _
    ->
    acc
  | Ast.Call (name, args) -> (
    match Builtins.find name with
    | None -> List.fold_left (effs_of_expr ctx) acc args
    | Some b -> (
      match Builtins.effect_of b with
      | Builtins.Eff_accept { current = false; shape = _ } -> (
        (* nested DEQUEUE(q) as the signature operand: pop that deferred
           requester and complete it — don't also count the dequeue *)
        match args with
        | ({ Ast.expr = Ast.Call (dq, [ qe ]); _ } as sig_arg) :: rest
          when (match Builtins.find dq with
               | Some db -> Builtins.effect_of db = Builtins.Eff_dequeue
               | None -> false) -> (
          match queue_of ctx qe with
          | Some q when ctx.q_sig.(q) ->
            let acc = List.fold_left (effs_of_expr ctx) acc rest in
            Accept_queued { queue = Some q; site = mk_site ctx name e.Ast.eloc None }
            :: acc
          | _ ->
            let acc = List.fold_left (effs_of_expr ctx) acc (sig_arg :: rest) in
            Accept_queued { queue = None; site = mk_site ctx name e.Ast.eloc None }
            :: acc)
        | _ ->
          let acc = List.fold_left (effs_of_expr ctx) acc args in
          Accept_queued { queue = None; site = mk_site ctx name e.Ast.eloc None }
          :: acc)
      | eff -> (
        let acc = List.fold_left (effs_of_expr ctx) acc args in
        match eff with
        | Builtins.Eff_advertise ->
          let p = pattern_arg ctx args 0 in
          if p = None then ctx.imprecise <- true;
          Advertise p :: acc
        | Builtins.Eff_unadvertise ->
          let p = pattern_arg ctx args 0 in
          if p = None then ctx.imprecise <- true;
          Unadvertise p :: acc
        | Builtins.Eff_request { shape; blocking } ->
          let p = pattern_arg ctx args 1 in
          if p = None then ctx.imprecise <- true;
          Request
            { shape; blocking; pattern = p; site = mk_site ctx name e.Ast.eloc p }
          :: acc
        | Builtins.Eff_discover ->
          let p = pattern_arg ctx args 0 in
          if p = None then ctx.imprecise <- true;
          Discover { pattern = p; site = mk_site ctx name e.Ast.eloc p } :: acc
        | Builtins.Eff_accept { current = true; shape } ->
          Accept_current { shape; site = mk_site ctx name e.Ast.eloc None } :: acc
        | Builtins.Eff_accept { current = false; _ } -> assert false
        | Builtins.Eff_reject -> Reject { site = mk_site ctx name e.Ast.eloc None } :: acc
        | Builtins.Eff_enqueue -> (
          match (nth_opt args 0, nth_opt args 1) with
          | Some qe, Some v -> (
            match queue_of ctx qe with
            | Some q ->
              if mentions_asker v && ctx.q_sig.(q) then
                Defer { queue = q; site = mk_site ctx "ENQUEUE" e.Ast.eloc None } :: acc
              else Enqueue_data q :: acc
            | None ->
              ctx.imprecise <- true;
              acc)
          | _ -> acc)
        | Builtins.Eff_dequeue -> (
          match Option.bind (nth_opt args 0) (queue_of ctx) with
          | Some q -> Dequeue_data q :: acc
          | None ->
            ctx.imprecise <- true;
            acc)
        | Builtins.Eff_probe -> acc
        | Builtins.Eff_open -> Open_h :: acc
        | Builtins.Eff_close -> Close_h :: acc
        | Builtins.Eff_idle -> Idle { site = mk_site ctx name e.Ast.eloc None } :: acc
        | Builtins.Eff_die -> Die { site = mk_site ctx name e.Ast.eloc None } :: acc
        | Builtins.Eff_pure -> acc)))

let effs_of_instr ctx (instr : Cfg.instr) =
  let exprs =
    match instr with
    | Cfg.Assign (_, e) | Cfg.Eval e | Cfg.Branch e -> [ e ]
    | Cfg.Nop _ | Cfg.Ret -> []
  in
  Array.of_list
    (List.rev (List.fold_left (fun acc e -> effs_of_expr ctx acc e) [] exprs))

let rec classify_cond ctx negated (e : Ast.expr) =
  match e.Ast.expr with
  | Ast.Unop (Ast.Not, a) -> classify_cond ctx (not negated) a
  | Ast.Call ("ISEMPTY", [ qe ]) -> (
    match queue_of ctx qe with
    | Some q -> Probe { queue = q; kind = `Empty; negated }
    | None -> Unknown)
  | Ast.Call ("ISFULL", [ qe ]) -> (
    match queue_of ctx qe with
    | Some q -> Probe { queue = q; kind = `Full; negated }
    | None -> Unknown)
  | _ -> Unknown

(* translate one section CFG into nodes, with ids shifted by [offset];
   [on_exit] gives the section exit node's kind *)
let nodes_of_cfg ctx (cfg : Cfg.t) ~offset ~exit_kind =
  Array.map
    (fun (n : Cfg.node) ->
      let shift = List.map (fun id -> id + offset) in
      let effs = effs_of_instr ctx n.Cfg.instr in
      let kind =
        if n.Cfg.id = cfg.Cfg.exit_ then exit_kind
        else
          match n.Cfg.instr with
          | Cfg.Branch e ->
            Branch
              (classify_cond ctx false e, shift n.Cfg.succ_true, shift n.Cfg.succ_false)
          | _ -> Seq (shift n.Cfg.succ)
      in
      { effs; kind })
    cfg.Cfg.nodes

let extract_prog ~file (p : Ast.program) : prog * site list =
  let env = Check.const_env p in
  (* queue declarations, in declaration order *)
  let q_names = ref [] and q_caps = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.decl with
      | Ast.Var_decl (names, Ast.T_queue cap) ->
        List.iter
          (fun n ->
            q_names := String.uppercase_ascii n :: !q_names;
            q_caps := cap :: !q_caps)
          names
      | _ -> ())
    p.Ast.decls;
  let q_names = Array.of_list (List.rev !q_names) in
  let q_caps = Array.of_list (List.rev !q_caps) in
  let q_index =
    Array.to_seq q_names
    |> Seq.fold_lefti (fun m i name -> SM.add name i m) SM.empty
  in
  (* a queue is a signature queue when anything ENQUEUEs ASKER into it *)
  let q_sig = Array.make (Array.length q_names) false in
  List.iter
    (fun (_, stmts) ->
      Check.iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call ("ENQUEUE", [ { Ast.expr = Ast.Var q; _ }; v ]) -> (
            match SM.find_opt (String.uppercase_ascii q) q_index with
            | Some i when mentions_asker v -> q_sig.(i) <- true
            | _ -> ())
          | _ -> ())
        stmts)
    (Check.sections p);
  let ctx =
    {
      file;
      prog_name = p.Ast.name;
      env;
      q_index;
      q_sig;
      sites_acc = ref [];
      n_sites = 0;
      imprecise = false;
    }
  in
  (* initialization chained into the task, the way the runtime runs them *)
  let cfg_init = Cfg.build p.Ast.initialization in
  let cfg_task = Cfg.build p.Ast.task in
  let n_init = Array.length cfg_init.Cfg.nodes in
  let init_nodes =
    nodes_of_cfg ctx cfg_init ~offset:0 ~exit_kind:(Seq [ n_init + cfg_task.Cfg.entry ])
  in
  let task_nodes = nodes_of_cfg ctx cfg_task ~offset:n_init ~exit_kind:Exit_section in
  let nodes = Array.append init_nodes task_nodes in
  (* handler arms: [case entry of] dispatches arrivals; effects outside
     those arms (or in [case completion]) are invisible to the model *)
  let arms = ref [] in
  let in_arms = ref [] in
  List.iter
    (Check.iter_stmt
       ~expr:(fun _ -> ())
       ~stmt:(fun (s : Ast.stmt) ->
         match s.Ast.stmt with
         | Ast.Case_entry case_arms ->
           List.iter
             (fun (label, body) ->
               in_arms := body :: !in_arms;
               let a_label =
                 match label with
                 | None -> `Otherwise
                 | Some le -> (
                   match Check.as_pattern_const env le with
                   | Some pat -> `Pat pat
                   | None ->
                     ctx.imprecise <- true;
                     `Unknown)
               in
               let cfg = Cfg.build body in
               let a_nodes = nodes_of_cfg ctx cfg ~offset:0 ~exit_kind:(Seq []) in
               arms := { a_label; a_nodes; a_entry = cfg.Cfg.entry } :: !arms)
             case_arms
         | _ -> ()))
    p.Ast.handler;
  (* handler effects outside any entry arm would run where the model
     cannot see them: flag, don't model *)
  let armed_stmts = List.concat !in_arms in
  let armed = ref [] in
  List.iter
    (Check.iter_stmt
       ~expr:(fun e -> armed := e :: !armed)
       ~stmt:(fun _ -> ()))
    armed_stmts;
  let in_armed (e : Ast.expr) =
    List.exists (fun (a : Ast.expr) -> a == e) !armed
  in
  List.iter
    (Check.iter_stmt
       ~expr:(fun e ->
         Check.iter_expr
           (fun (sub : Ast.expr) ->
             match sub.Ast.expr with
             | Ast.Call (name, _) -> (
               match Builtins.find name with
               | Some b
                 when Builtins.effect_of b <> Builtins.Eff_pure
                      && Builtins.effect_of b <> Builtins.Eff_probe
                      && not (in_armed e) ->
                 ctx.imprecise <- true
               | _ -> ())
             | _ -> ())
           e)
       ~stmt:(fun _ -> ()))
    p.Ast.handler;
  ( {
      p_file = file;
      p_name = p.Ast.name;
      p_entry = cfg_init.Cfg.entry;
      p_nodes = nodes;
      p_arms = List.rev !arms;
      p_q_caps = q_caps;
      p_q_sig = q_sig;
      p_q_names = q_names;
      p_imprecise = ctx.imprecise;
    },
    List.rev !(ctx.sites_acc) )

(* ---- whole-system extraction ----------------------------------------------- *)

(* Site ids are per-system: each program's local ids are shifted onto one
   global table so the model checker can index bookkeeping arrays. *)
let shift_sites offset (p : prog) =
  let shift_eff = function
    | Request r -> Request { r with site = r.site + offset }
    | Discover d -> Discover { d with site = d.site + offset }
    | Accept_current a -> Accept_current { a with site = a.site + offset }
    | Accept_queued a -> Accept_queued { a with site = a.site + offset }
    | Reject r -> Reject { site = r.site + offset }
    | Defer d -> Defer { d with site = d.site + offset }
    | Idle i -> Idle { site = i.site + offset }
    | Die d -> Die { site = d.site + offset }
    | (Advertise _ | Unadvertise _ | Enqueue_data _ | Dequeue_data _ | Open_h | Close_h)
      as e ->
      e
  in
  let shift_nodes = Array.map (fun n -> { n with effs = Array.map shift_eff n.effs }) in
  {
    p with
    p_nodes = shift_nodes p.p_nodes;
    p_arms = List.map (fun a -> { a with a_nodes = shift_nodes a.a_nodes }) p.p_arms;
  }

let extract (programs : (string * Ast.program) list) : system =
  let progs, site_lists =
    List.split (List.map (fun (file, p) -> extract_prog ~file p) programs)
  in
  let shifted, _ =
    List.fold_left2
      (fun (acc, offset) p sites ->
        (shift_sites offset p :: acc, offset + List.length sites))
      ([], 0) progs site_lists
  in
  let progs = Array.of_list (List.rev shifted) in
  {
    progs;
    sites = Array.of_list (List.concat site_lists);
    sys_imprecise = Array.exists (fun p -> p.p_imprecise) progs;
  }
