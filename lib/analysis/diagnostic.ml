(* Diagnostics for sodalint (lib/analysis): every finding carries a
   file, a 1-based line/column, a stable rule id (documented in
   docs/ANALYSIS.md) and a severity. Only [Error]s affect the checker's
   exit status; [Warning]s are advisory. *)

module Ast = Soda_sodal_lang.Ast

type severity = Error | Warning

type t = {
  file : string;
  pos : Ast.pos;
  severity : severity;
  rule : string;  (** stable id, e.g. "SL001" *)
  message : string;
}

let make ~file ~pos ~severity ~rule ~message = { file; pos; severity; rule; message }

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.pos.Ast.line b.pos.Ast.line in
    if c <> 0 then c
    else
      let c = Int.compare a.pos.Ast.col b.pos.Ast.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* file:line:col: severity: [rule] message — the shape editors and CI
   log-scrapers already understand. *)
let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s: [%s] %s" d.file d.pos.Ast.line d.pos.Ast.col
    (severity_name d.severity) d.rule d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"severity":"%s","rule":"%s","message":"%s"}|}
    (json_escape d.file) d.pos.Ast.line d.pos.Ast.col (severity_name d.severity) d.rule
    (json_escape d.message)
