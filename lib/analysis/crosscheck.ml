(* Cross-program sodalint rules, run over the whole set of files given
   on the command line (the "system"):

   SL050  request/discover for a pattern no program advertises  (warning)
   SL051  the same pattern advertised twice by one program      (warning)
   SL053  request shape incompatible with the serving handler   (error)
   SL054  transfer provably truncated by a buffer size          (warning)
   SL055  cyclic synchronous wait between programs              (warning)

   SL050 and SL055 only make sense when the checker can see the whole
   system, so they are gated on at least two programs being checked
   together. SL053/SL054 fire as soon as a matching handler arm is in
   the set — including a program requesting from itself. *)

module Ast = Soda_sodal_lang.Ast
module Builtins = Soda_sodal_lang.Builtins

type request_site = {
  r_shape : Builtins.shape;
  r_blocking : bool;
  r_pattern : int option;
  r_put_len : int option;  (* bytes the requester sends *)
  r_get_len : int option;  (* requester's receive-buffer size *)
  r_loc : Ast.pos;
}

type accept_site = {
  a_shape : Builtins.shape;
  a_into_len : int option;  (* server's receive capacity *)
  a_data_len : int option;  (* bytes the server sends back *)
  a_loc : Ast.pos;
}

type arm = {
  arm_pattern : int;
  accepts : accept_site list;  (* ACCEPT_CURRENT_* sites in the arm *)
  defers : bool;  (* arm rejects or hands the request to the task *)
}

type summary = {
  file : string;
  prog : string;
  advertised : (int * Ast.pos) list;
  requests : request_site list;
  discovers : (int * Ast.pos) list;
  arms : arm list;
}

let as_int_const env e =
  match Check.fold_const env e with Some (Check.Cint n) -> Some n | _ -> None

(* the length of a data operand, when the string is a compile-time
   constant *)
let as_len_const env e =
  match Check.fold_const env e with
  | Some (Check.Cstr s) -> Some (String.length s)
  | _ -> None

let nth_opt = List.nth_opt

let summarize ~file (p : Ast.program) : summary =
  let env = Check.const_env p in
  let advertised = ref [] in
  let requests = ref [] in
  let discovers = ref [] in
  let on_expr (e : Ast.expr) =
    match e.Ast.expr with
    | Ast.Call (name, args) -> (
      match Builtins.find name with
      | Some { Builtins.role = Builtins.Advertise; _ } -> (
        match nth_opt args 0 with
        | Some a -> (
          match Check.as_pattern_const env a with
          | Some pat -> advertised := (pat, e.Ast.eloc) :: !advertised
          | None -> ())
        | None -> ())
      | Some { Builtins.role = Builtins.Discover; _ } -> (
        match nth_opt args 0 with
        | Some a -> (
          match Check.as_pattern_const env a with
          | Some pat -> discovers := (pat, e.Ast.eloc) :: !discovers
          | None -> ())
        | None -> ())
      | Some { Builtins.role = Builtins.Request { shape; blocking }; _ } ->
        let pattern = Option.bind (nth_opt args 1) (Check.as_pattern_const env) in
        let put_len =
          match shape with
          | Builtins.Put | Builtins.Exchange ->
            Option.bind (nth_opt args 3) (as_len_const env)
          | Builtins.Sig | Builtins.Get -> None
        in
        let get_len =
          match shape with
          | Builtins.Get -> Option.bind (nth_opt args 3) (as_int_const env)
          | Builtins.Exchange -> Option.bind (nth_opt args 4) (as_int_const env)
          | Builtins.Sig | Builtins.Put -> None
        in
        requests :=
          { r_shape = shape; r_blocking = blocking; r_pattern = pattern; r_put_len = put_len; r_get_len = get_len; r_loc = e.Ast.eloc }
          :: !requests
      | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun (_, stmts) -> Check.iter_section_exprs on_expr stmts)
    (Check.sections p);
  (* handler arms: [case entry of PATTERN : ...] dispatches arrivals *)
  let arms = ref [] in
  let collect_arm pat body =
    let accepts = ref [] in
    let defers = ref false in
    let on_arm_expr (e : Ast.expr) =
      match e.Ast.expr with
      | Ast.Call (name, args) -> (
        match Builtins.find name with
        | Some { Builtins.role = Builtins.Accept { shape; current = true }; _ } ->
          let into_len, data_len =
            match shape with
            | Builtins.Sig -> (None, None)
            | Builtins.Put -> (Option.bind (nth_opt args 1) (as_int_const env), None)
            | Builtins.Get -> (None, Option.bind (nth_opt args 1) (as_len_const env))
            | Builtins.Exchange ->
              ( Option.bind (nth_opt args 1) (as_int_const env),
                Option.bind (nth_opt args 2) (as_len_const env) )
          in
          accepts :=
            { a_shape = shape; a_into_len = into_len; a_data_len = data_len; a_loc = e.Ast.eloc }
            :: !accepts
        | Some { Builtins.role = Builtins.Accept { current = false; _ }; _ }
        | Some { Builtins.role = Builtins.Queue_op `Enqueue; _ } ->
          (* the arm queues work (or accepts by signature later): data
             movement happens elsewhere, so shapes can't be judged here *)
          defers := true
        | Some { Builtins.name = "REJECT"; _ } -> defers := true
        | _ -> ())
      | _ -> ()
    in
    List.iter
      (Check.iter_stmt ~expr:(Check.iter_expr on_arm_expr) ~stmt:(fun _ -> ()))
      body;
    arms := { arm_pattern = pat; accepts = List.rev !accepts; defers = !defers } :: !arms
  in
  List.iter
    (Check.iter_stmt
       ~expr:(fun _ -> ())
       ~stmt:(fun (s : Ast.stmt) ->
         match s.Ast.stmt with
         | Ast.Case_entry case_arms ->
           List.iter
             (fun (label, body) ->
               match Option.bind label (Check.as_pattern_const env) with
               | Some pat -> collect_arm pat body
               | None -> ())
             case_arms
         | _ -> ()))
    p.Ast.handler;
  {
    file;
    prog = p.Ast.name;
    advertised = List.rev !advertised;
    requests = List.rev !requests;
    discovers = List.rev !discovers;
    arms = List.rev !arms;
  }

(* request shape R is served by accept shape A: an EXCHANGE accept also
   covers plain PUT (no reply wanted) and plain GET (nothing sent) *)
let serves ~request ~accept =
  match (request, accept) with
  | Builtins.Sig, Builtins.Sig
  | Builtins.Put, (Builtins.Put | Builtins.Exchange)
  | Builtins.Get, (Builtins.Get | Builtins.Exchange)
  | Builtins.Exchange, Builtins.Exchange ->
    true
  | _ -> false

let check (programs : (string * Ast.program) list) : Diagnostic.t list =
  let diags = ref [] in
  let emit file pos severity rule message =
    diags := Diagnostic.make ~file ~pos ~severity ~rule ~message :: !diags
  in
  let summaries = List.map (fun (file, p) -> summarize ~file p) programs in
  let whole_system = List.length summaries >= 2 in
  let advertised_anywhere pat =
    List.exists (fun s -> List.exists (fun (p, _) -> p = pat) s.advertised) summaries
  in
  (* SL051: re-advertising a pattern the same program already advertises *)
  List.iter
    (fun s ->
      ignore
        (List.fold_left
           (fun seen (pat, pos) ->
             if List.mem pat seen then
               emit s.file pos Diagnostic.Warning "SL051"
                 (Printf.sprintf "pattern %%0%o is already advertised by this program"
                    pat);
             pat :: seen)
           [] s.advertised))
    summaries;
  (* SL050: nobody in the system advertises the requested pattern *)
  if whole_system then
    List.iter
      (fun s ->
        List.iter
          (fun (pat, pos) ->
            if not (advertised_anywhere pat) then
              emit s.file pos Diagnostic.Warning "SL050"
                (Printf.sprintf
                   "no program in this set advertises %%0%o: DISCOVER will block \
                    until one does"
                   pat))
          s.discovers;
        List.iter
          (fun r ->
            match r.r_pattern with
            | Some pat when not (advertised_anywhere pat) ->
              emit s.file r.r_loc Diagnostic.Warning "SL050"
                (Printf.sprintf "no program in this set advertises %%0%o" pat)
            | _ -> ())
          s.requests)
      summaries;
  (* SL053/SL054: judge each request against every handler arm that
     serves its pattern and handles the request inline *)
  List.iter
    (fun requester ->
      List.iter
        (fun r ->
          match r.r_pattern with
          | None -> ()
          | Some pat ->
            List.iter
              (fun server ->
                List.iter
                  (fun arm ->
                    if arm.arm_pattern = pat && (not arm.defers) && arm.accepts <> []
                    then begin
                      let compatible =
                        List.filter
                          (fun a -> serves ~request:r.r_shape ~accept:a.a_shape)
                          arm.accepts
                      in
                      if compatible = [] then
                        emit requester.file r.r_loc Diagnostic.Error "SL053"
                          (Printf.sprintf
                             "this is a %s request, but program %s's handler \
                              serves %%0%o with %s accepts only (§3.3.1 buffer \
                              shapes do not match)"
                             (Builtins.shape_name r.r_shape) server.prog pat
                             (String.concat "/"
                                (List.sort_uniq String.compare
                                   (List.map
                                      (fun a -> Builtins.shape_name a.a_shape)
                                      arm.accepts))))
                      else
                        List.iter
                          (fun a ->
                            (match (r.r_put_len, a.a_into_len) with
                             | Some sent, Some cap when sent > cap ->
                               emit requester.file r.r_loc Diagnostic.Warning
                                 "SL054"
                                 (Printf.sprintf
                                    "sends %d bytes but program %s accepts at \
                                     most %d: the transfer is truncated"
                                    sent server.prog cap)
                             | _ -> ());
                            match (r.r_get_len, a.a_data_len) with
                            | Some cap, Some sent when sent > cap ->
                              emit requester.file r.r_loc Diagnostic.Warning
                                "SL054"
                                (Printf.sprintf
                                   "receive buffer holds %d bytes but program \
                                    %s sends %d back: the reply is truncated"
                                   cap server.prog sent)
                            | _ -> ())
                          compatible
                    end)
                  server.arms)
              summaries)
        requester.requests)
    summaries;
  (* SL055: cyclic synchronous wait. The rule id and message predate the
     model checker; the back-end is now precise — {!Modelcheck.run}
     explores the product automaton and reports a blocking request only
     when some *reachable* configuration has it on an instantaneous
     wait-for cycle (every program on the cycle blocked at once). *)
  if whole_system then begin
    let r =
      Modelcheck.run ~max_configs:20_000 ~max_depth:20_000
        (Automata.extract programs)
    in
    List.iter
      (fun ((s : Automata.site), message) ->
        emit s.Automata.s_file s.Automata.s_pos Diagnostic.Warning "SL055" message)
      r.Modelcheck.wait_cycles
  end;
  List.rev !diags
