(* A small forward dataflow engine over {!Cfg}: monotone worklist
   iteration to a fixpoint. Domains must have finite height (all of
   sodalint's do: intersection of a finite variable set, a four-point
   handler-state lattice, per-queue intervals bounded by capacity).

   [run] returns the in-state of every node — [None] for nodes the
   analysis never reached (dead code) — so rule passes can re-walk the
   graph and report against the solved states. *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (D : DOMAIN) = struct
  (* [transfer node s] maps a node's in-state to its out-state.
     [refine node out polarity] specialises a Branch node's out-state for
     its true ([polarity = true]) or false edge; the default is no
     refinement. *)
  let run (cfg : Cfg.t) ~(init : D.t) ~(transfer : Cfg.node -> D.t -> D.t)
      ?(refine = fun _ out _ -> out) () : D.t option array =
    let n = Array.length cfg.Cfg.nodes in
    let in_states : D.t option array = Array.make n None in
    let work = Queue.create () in
    in_states.(cfg.Cfg.entry) <- Some init;
    Queue.add cfg.Cfg.entry work;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      let node = cfg.Cfg.nodes.(id) in
      match in_states.(id) with
      | None -> ()
      | Some s ->
        let out = transfer node s in
        let push target value =
          let next =
            match in_states.(target) with
            | None -> Some value
            | Some prev -> Some (D.join prev value)
          in
          let changed =
            match in_states.(target), next with
            | None, Some _ -> true
            | Some a, Some b -> not (D.equal a b)
            | _, None -> false
          in
          if changed then begin
            in_states.(target) <- next;
            Queue.add target work
          end
        in
        List.iter (fun t -> push t out) node.Cfg.succ;
        List.iter (fun t -> push t (refine node out true)) node.Cfg.succ_true;
        List.iter (fun t -> push t (refine node out false)) node.Cfg.succ_false
    done;
    in_states
end
