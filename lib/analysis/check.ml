(* Per-program sodalint rules (see docs/ANALYSIS.md for the catalogue):

   SL001  blocking built-in in handler context          (error)
   SL002  handler-only built-in outside the handler     (error)
   SL003  unknown built-in                              (error)
   SL004  built-in arity mismatch                       (error)
   SL010  undeclared variable                           (error)
   SL011  duplicate declaration                         (warning)
   SL012  unused declaration                            (warning)
   SL020  use before definite assignment                (error)
   SL030  CLOSE never balanced by any OPEN              (error)
   SL031  CLOSE when provably already closed            (warning)
   SL040  ENQUEUE on a provably full queue              (error)
   SL041  DEQUEUE on a provably empty queue             (error)
   SL052  UNADVERTISE of a never-advertised pattern     (error)
   SL060  SCD operation but the program never SCD_JOINs (error)
   SL061  SCD argument provably out of range            (error)

   The handler is analyzed as of its first invocation: values assigned by
   earlier invocations or by the task are not "definitely assigned" — by
   design, since nothing orders those writes before the first arrival. *)

module Ast = Soda_sodal_lang.Ast
module Builtins = Soda_sodal_lang.Builtins
module SS = Set.Make (String)
module SM = Map.Make (String)

let uc = String.uppercase_ascii

type section = Init | Handler | Task

let section_name = function
  | Init -> "initialization"
  | Handler -> "handler"
  | Task -> "task"

let sections (p : Ast.program) =
  [ (Init, p.Ast.initialization); (Handler, p.Ast.handler); (Task, p.Ast.task) ]

(* ---- AST walking ---------------------------------------------------------- *)

let rec iter_expr f (e : Ast.expr) =
  f e;
  match e.Ast.expr with
  | Ast.Binop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Ast.Unop (_, a) -> iter_expr f a
  | Ast.Call (_, args) -> List.iter (iter_expr f) args
  | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Pattern_lit _ | Ast.Var _ | Ast.Field _ ->
    ()

let rec iter_stmt ~expr ~stmt (s : Ast.stmt) =
  stmt s;
  match s.Ast.stmt with
  | Ast.Assign (_, e) | Ast.Expr e -> expr e
  | Ast.If (branches, els) ->
    List.iter
      (fun (c, body) ->
        expr c;
        List.iter (iter_stmt ~expr ~stmt) body)
      branches;
    List.iter (iter_stmt ~expr ~stmt) els
  | Ast.While (c, body) ->
    expr c;
    List.iter (iter_stmt ~expr ~stmt) body
  | Ast.Loop body -> List.iter (iter_stmt ~expr ~stmt) body
  | Ast.Case_entry arms | Ast.Case_completion arms ->
    List.iter
      (fun (l, body) ->
        Option.iter expr l;
        List.iter (iter_stmt ~expr ~stmt) body)
      arms
  | Ast.Skip | Ast.Return -> ()

let iter_section ~expr ~stmt stmts = List.iter (iter_stmt ~expr ~stmt) stmts

(* every expression in the section, including nested sub-expressions *)
let iter_section_exprs f stmts =
  iter_section ~expr:(iter_expr f) ~stmt:(fun _ -> ()) stmts

(* ---- constant folding ------------------------------------------------------ *)

type const_value = Cint of int | Cstr of string

let rec fold_const env (e : Ast.expr) =
  match e.Ast.expr with
  | Ast.Int n -> Some (Cint n)
  | Ast.Pattern_lit p -> Some (Cint p)
  | Ast.Str s -> Some (Cstr s)
  | Ast.Var x -> SM.find_opt (uc x) env
  | Ast.Unop (Ast.Neg, a) ->
    (match fold_const env a with Some (Cint n) -> Some (Cint (-n)) | _ -> None)
  | Ast.Binop (op, a, b) -> (
    match (fold_const env a, fold_const env b) with
    | Some (Cint x), Some (Cint y) -> (
      match op with
      | Ast.Add -> Some (Cint (x + y))
      | Ast.Sub -> Some (Cint (x - y))
      | Ast.Mul -> Some (Cint (x * y))
      | _ -> None)
    | Some (Cstr x), Some (Cstr y) when op = Ast.Add -> Some (Cstr (x ^ y))
    | _ -> None)
  | _ -> None

let const_env (p : Ast.program) =
  List.fold_left
    (fun env (d : Ast.decl) ->
      match d.Ast.decl with
      | Ast.Const (name, e) -> (
        match fold_const env e with Some v -> SM.add (uc name) v env | None -> env)
      | Ast.Var_decl _ -> env)
    SM.empty p.Ast.decls

let as_pattern_const env e =
  match fold_const env e with Some (Cint n) -> Some n | _ -> None

(* ---- declarations ---------------------------------------------------------- *)

type var_kind = Kconst | Kvar of Ast.type_name

type decl_info = { kind : var_kind; dpos : Ast.pos; mutable used : bool }

let context_vars = SS.of_list Builtins.context_vars

let collect_decls emit (p : Ast.program) =
  let table = ref SM.empty in
  let declare name kind pos =
    let key = uc name in
    (match SM.find_opt key !table with
     | Some _ ->
       emit pos Diagnostic.Warning "SL011"
         (Printf.sprintf "duplicate declaration of %s" name)
     | None -> ());
    table := SM.add key { kind; dpos = pos; used = false } !table
  in
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.decl with
      | Ast.Const (name, _) -> declare name Kconst d.Ast.dloc
      | Ast.Var_decl (names, ty) ->
        List.iter (fun name -> declare name (Kvar ty) d.Ast.dloc) names)
    p.Ast.decls;
  !table

(* ---- SL001..SL004: built-in usage ------------------------------------------ *)

let check_builtins emit (p : Ast.program) =
  List.iter
    (fun (section, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call (name, args) -> (
            match Builtins.find name with
            | None ->
              emit e.Ast.eloc Diagnostic.Error "SL003"
                (Printf.sprintf "unknown built-in %s" name)
            | Some signature ->
              (match signature.Builtins.arity with
               | Some n when n <> List.length args ->
                 emit e.Ast.eloc Diagnostic.Error "SL004"
                   (Printf.sprintf "%s expects %d argument%s, got %d" name n
                      (if n = 1 then "" else "s")
                      (List.length args))
               | _ -> ());
              (match (signature.Builtins.context, section) with
               | Builtins.Task_only, Handler ->
                 emit e.Ast.eloc Diagnostic.Error "SL001"
                   (if signature.Builtins.blocking then
                      Printf.sprintf
                        "%s blocks for unbounded time and may not be called from \
                         the handler: the handler must run to completion (§4.1.1)"
                        name
                    else
                      Printf.sprintf "%s may not be called from the handler" name)
               | Builtins.Handler_only, (Init | Task) ->
                 emit e.Ast.eloc Diagnostic.Error "SL002"
                   (Printf.sprintf
                      "%s addresses the current request, which only exists inside \
                       the handler (§4.1.2); in the %s section there is none"
                      name (section_name section))
               | _ -> ()))
          | _ -> ())
        stmts)
    (sections p)

(* ---- SL010/SL012: declared/used bookkeeping -------------------------------- *)

let check_vars emit decls (p : Ast.program) =
  let reference ?(write = false) name pos =
    let key = uc name in
    match SM.find_opt key decls with
    | Some info -> info.used <- true
    | None ->
      if not (SS.mem key context_vars) then
        emit pos Diagnostic.Error "SL010"
          (Printf.sprintf "undeclared variable %s%s" name
             (if write then " (assignment target)" else ""))
  in
  let on_expr (e : Ast.expr) =
    match e.Ast.expr with
    | Ast.Var x -> reference x e.Ast.eloc
    | Ast.Field (x, _) -> reference x e.Ast.eloc
    | _ -> ()
  in
  (* const initialisers may reference earlier declarations *)
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.decl with
      | Ast.Const (_, e) -> iter_expr on_expr e
      | Ast.Var_decl _ -> ())
    p.Ast.decls;
  List.iter
    (fun (_, stmts) ->
      iter_section
        ~expr:(iter_expr on_expr)
        ~stmt:(fun (s : Ast.stmt) ->
          match s.Ast.stmt with
          | Ast.Assign (x, _) -> reference ~write:true x s.Ast.sloc
          | _ -> ())
        stmts)
    (sections p);
  SM.iter
    (fun _ info ->
      if not info.used then
        emit info.dpos Diagnostic.Warning "SL012" "declaration is never used")
    decls

(* ---- SL020: definite assignment -------------------------------------------- *)

module Assign_df = Dataflow.Make (struct
  type t = SS.t

  let join = SS.inter
  let equal = SS.equal
end)

let node_exprs (node : Cfg.node) =
  match node.Cfg.instr with
  | Cfg.Assign (_, e) | Cfg.Eval e | Cfg.Branch e -> [ e ]
  | Cfg.Nop _ | Cfg.Ret -> []

let check_definite_assignment emit decls (p : Ast.program) =
  (* base facts: consts and queues are initialised by their declaration,
     context variables always exist *)
  let base =
    SM.fold
      (fun key info acc ->
        match info.kind with
        | Kconst | Kvar (Ast.T_queue _) -> SS.add key acc
        | Kvar _ -> acc)
      decls context_vars
  in
  let is_plain_var name =
    match SM.find_opt (uc name) decls with
    | Some { kind = Kvar (Ast.T_queue _); _ } -> false
    | Some { kind = Kvar _; _ } -> true
    | Some { kind = Kconst; _ } | None -> false
  in
  let transfer (node : Cfg.node) s =
    match node.Cfg.instr with
    | Cfg.Assign (x, _) -> SS.add (uc x) s
    | _ -> s
  in
  let run stmts entry =
    let cfg = Cfg.build stmts in
    let in_states = Assign_df.run cfg ~init:entry ~transfer () in
    (* report reads of not-definitely-assigned plain variables *)
    Array.iteri
      (fun id state ->
        match state with
        | None -> ()
        | Some s ->
          List.iter
            (iter_expr (fun (e : Ast.expr) ->
                 match e.Ast.expr with
                 | Ast.Var x | Ast.Field (x, _) ->
                   if is_plain_var x && not (SS.mem (uc x) s) then
                     emit e.Ast.eloc Diagnostic.Error "SL020"
                       (Printf.sprintf
                          "%s is read before any assignment on some path \
                           (initialise it in the initialization section)"
                          x)
                 | _ -> ()))
            (node_exprs cfg.Cfg.nodes.(id)))
      in_states;
    (* the state the next section starts from: what init definitely
       assigned by its exit *)
    match in_states.(cfg.Cfg.exit_) with Some s -> s | None -> entry
  in
  (* const initialisers: a const may only read consts declared before it *)
  ignore
    (List.fold_left
       (fun known (d : Ast.decl) ->
         match d.Ast.decl with
         | Ast.Const (name, e) ->
           iter_expr
             (fun (sub : Ast.expr) ->
               match sub.Ast.expr with
               | Ast.Var x when is_plain_var x || not (SS.mem (uc x) known) ->
                 if SM.mem (uc x) decls || SS.mem (uc x) context_vars then
                   emit sub.Ast.eloc Diagnostic.Error "SL020"
                     (Printf.sprintf "const %s reads %s before it is initialised" name x)
               | _ -> ())
             e;
           SS.add (uc name) known
         | Ast.Var_decl _ -> known)
       context_vars p.Ast.decls);
  let after_init = run p.Ast.initialization base in
  ignore (run p.Ast.handler after_init);
  ignore (run p.Ast.task after_init)

(* ---- SL030/SL031: OPEN/CLOSE balance ---------------------------------------- *)

type hstate = Opened | Closed | Either

module Handler_df = Dataflow.Make (struct
  type t = hstate

  let join a b = if a = b then a else Either
  let equal = ( = )
end)

let check_open_close emit (p : Ast.program) =
  let opens = ref [] and closes = ref [] in
  List.iter
    (fun (_, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call ("OPEN", []) -> opens := e.Ast.eloc :: !opens
          | Ast.Call ("CLOSE", []) -> closes := e.Ast.eloc :: !closes
          | _ -> ())
        stmts)
    (sections p);
  (* SL030: a CLOSE with no OPEN anywhere can never be undone *)
  if !opens = [] then
    List.iter
      (fun pos ->
        emit pos Diagnostic.Error "SL030"
          "CLOSE is never balanced by an OPEN anywhere in the program: once \
           closed, the machine refuses new requests forever")
      (List.rev !closes);
  (* SL031: path-sensitive double-CLOSE within one section activation *)
  let handler_toggles = ref false in
  iter_section_exprs
    (fun (e : Ast.expr) ->
      match e.Ast.expr with
      | Ast.Call (("OPEN" | "CLOSE"), []) -> handler_toggles := true
      | _ -> ())
    p.Ast.handler;
  let rec hfold ?emit_close section state (e : Ast.expr) =
    match e.Ast.expr with
    | Ast.Binop (_, a, b) -> hfold ?emit_close section (hfold ?emit_close section state a) b
    | Ast.Unop (_, a) -> hfold ?emit_close section state a
    | Ast.Call (name, args) -> (
      let state = List.fold_left (hfold ?emit_close section) state args in
      match name with
      | "OPEN" -> Opened
      | "CLOSE" ->
        (match emit_close with
         | Some f when state = Closed -> f e.Ast.eloc
         | _ -> ());
        Closed
      | _ -> (
        match Builtins.find name with
        (* while a task-side call blocks, the handler may run and flip
           the state under us *)
        | Some { Builtins.blocking = true; _ } when section <> Handler && !handler_toggles
          ->
          Either
        | _ -> state))
    | _ -> state
  in
  let run section stmts entry =
    let cfg = Cfg.build stmts in
    let transfer (node : Cfg.node) s =
      List.fold_left (hfold section) s (node_exprs node)
    in
    let in_states = Handler_df.run cfg ~init:entry ~transfer () in
    Array.iteri
      (fun id state ->
        match state with
        | None -> ()
        | Some s ->
          let emit_close pos =
            emit pos Diagnostic.Warning "SL031"
              "CLOSE, but the machine is already closed on every path to this \
               point"
          in
          ignore
            (List.fold_left (hfold ~emit_close section) s
               (node_exprs cfg.Cfg.nodes.(id))))
      in_states;
    match in_states.(cfg.Cfg.exit_) with Some s -> s | None -> entry
  in
  (* a machine boots open (§3.4); the handler can be entered in either
     state (arrivals need it open, completions arrive regardless) *)
  let after_init = run Init p.Ast.initialization Opened in
  ignore (run Handler p.Ast.handler Either);
  ignore (run Task p.Ast.task after_init)

(* ---- SL040/SL041: queue bounds ---------------------------------------------- *)

module Queue_df = Dataflow.Make (struct
  type t = (int * int) SM.t

  let join = SM.union (fun _ (a, b) (c, d) -> Some (min a c, max b d))
  let equal = SM.equal (fun (a, b) (c, d) -> a = c && b = d)
end)

let check_queue_bounds emit decls (p : Ast.program) =
  let caps =
    SM.fold
      (fun key info acc ->
        match info.kind with
        | Kvar (Ast.T_queue n) -> SM.add key n acc
        | _ -> acc)
      decls SM.empty
  in
  if not (SM.is_empty caps) then begin
    let feasible (lo, hi) = lo <= hi in
    let rec qfold ?emit_op state (e : Ast.expr) =
      match e.Ast.expr with
      | Ast.Binop (_, a, b) -> qfold ?emit_op (qfold ?emit_op state a) b
      | Ast.Unop (_, a) -> qfold ?emit_op state a
      | Ast.Call (name, args) -> (
        let state = List.fold_left (qfold ?emit_op) state args in
        match (name, args) with
        | "ENQUEUE", { Ast.expr = Ast.Var q; _ } :: _ when SM.mem (uc q) caps ->
          let key = uc q in
          let cap = SM.find key caps in
          let ((lo, hi) as iv) = SM.find key state in
          (match emit_op with
           | Some f when feasible iv && lo >= cap ->
             f e.Ast.eloc Diagnostic.Error "SL040"
               (Printf.sprintf
                  "ENQUEUE on %s, which is provably full here (capacity %d): \
                   Bqueue.enqueue raises at run time"
                  q cap)
           | _ -> ());
          SM.add key (min (lo + 1) cap, min (hi + 1) cap) state
        | "DEQUEUE", [ { Ast.expr = Ast.Var q; _ } ] when SM.mem (uc q) caps ->
          let key = uc q in
          let ((lo, hi) as iv) = SM.find key state in
          (match emit_op with
           | Some f when feasible iv && hi <= 0 ->
             f e.Ast.eloc Diagnostic.Error "SL041"
               (Printf.sprintf "DEQUEUE on %s, which is provably empty here" q)
           | _ -> ());
          SM.add key (max (lo - 1) 0, max (hi - 1) 0) state
        | _ -> state)
      | _ -> state
    in
    (* branch refinement: ISFULL/ISEMPTY probes pin the interval on each edge *)
    let rec refine_cond polarity state (cond : Ast.expr) =
      match cond.Ast.expr with
      | Ast.Unop (Ast.Not, inner) -> refine_cond (not polarity) state inner
      | Ast.Call ("ISFULL", [ { Ast.expr = Ast.Var q; _ } ]) when SM.mem (uc q) caps ->
        let key = uc q in
        let cap = SM.find key caps in
        let lo, hi = SM.find key state in
        if polarity then SM.add key (max lo cap, hi) state
        else SM.add key (lo, min hi (cap - 1)) state
      | Ast.Call ("ISEMPTY", [ { Ast.expr = Ast.Var q; _ } ]) when SM.mem (uc q) caps ->
        let key = uc q in
        let lo, hi = SM.find key state in
        if polarity then SM.add key (lo, min hi 0) state
        else SM.add key (max lo 1, hi) state
      | _ -> state
    in
    let run stmts entry =
      let cfg = Cfg.build stmts in
      let transfer (node : Cfg.node) s = List.fold_left qfold s (node_exprs node) in
      let refine (node : Cfg.node) out polarity =
        match node.Cfg.instr with
        | Cfg.Branch cond -> refine_cond polarity out cond
        | _ -> out
      in
      let in_states = Queue_df.run cfg ~init:entry ~transfer ~refine () in
      Array.iteri
        (fun id state ->
          match state with
          | None -> ()
          | Some s ->
            ignore
              (List.fold_left (qfold ~emit_op:emit) s (node_exprs cfg.Cfg.nodes.(id))))
        in_states
    in
    let empty = SM.map (fun _ -> (0, 0)) caps in
    let top = SM.map (fun cap -> (0, cap)) caps in
    (* initialization starts with every queue empty; the handler and task
       interleave, so each starts from the full interval *)
    run p.Ast.initialization empty;
    run p.Ast.handler top;
    run p.Ast.task top
  end

(* ---- SL052: UNADVERTISE without ADVERTISE ----------------------------------- *)

let check_unadvertise emit (p : Ast.program) =
  let env = const_env p in
  let advertised = ref [] in
  List.iter
    (fun (_, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call ("ADVERTISE", [ arg ]) -> (
            match as_pattern_const env arg with
            | Some pat -> advertised := pat :: !advertised
            | None -> ())
          | _ -> ())
        stmts)
    (sections p);
  List.iter
    (fun (_, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call ("UNADVERTISE", [ arg ]) -> (
            match as_pattern_const env arg with
            | Some pat when not (List.mem pat !advertised) ->
              emit e.Ast.eloc Diagnostic.Error "SL052"
                (Printf.sprintf
                   "UNADVERTISE %%0%o, but this program never advertises that \
                    pattern"
                   pat)
            | _ -> ())
          | _ -> ())
        stmts)
    (sections p)

(* ---- SL060/SL061: SCD object usage ------------------------------------------ *)

let scd_ops = [ "SCD_WRITE"; "SCD_SNAPSHOT"; "SCD_INCR"; "SCD_CREAD" ]

let check_scd emit (p : Ast.program) =
  let env = const_env p in
  let as_int_const e =
    match fold_const env e with Some (Cint n) -> Some n | _ -> None
  in
  (* does any section SCD_JOIN?  join order vs. op order is a runtime
     concern (the task owns both); never joining at all is static *)
  let joined = ref false in
  (* registers count, when the join's second argument folds *)
  let joined_regs = ref None in
  List.iter
    (fun (_, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call ("SCD_JOIN", [ n; regs ]) ->
            joined := true;
            (match as_int_const n with
             | Some k when k <= 0 ->
               emit e.Ast.eloc Diagnostic.Error "SL061"
                 (Printf.sprintf "SCD_JOIN member count is %d, must be positive" k)
             | _ -> ());
            (match as_int_const regs with
             | Some k when k <= 0 ->
               emit e.Ast.eloc Diagnostic.Error "SL061"
                 (Printf.sprintf "SCD_JOIN register count is %d, must be positive" k)
             | Some k -> joined_regs := Some k
             | None -> ())
          | _ -> ())
        stmts)
    (sections p);
  List.iter
    (fun (_, stmts) ->
      iter_section_exprs
        (fun (e : Ast.expr) ->
          match e.Ast.expr with
          | Ast.Call (name, args) when List.mem name scd_ops ->
            if not !joined then
              emit e.Ast.eloc Diagnostic.Error "SL060"
                (Printf.sprintf
                   "%s, but this program never calls SCD_JOIN; the operation can \
                    only raise at runtime"
                   name);
            (match (name, args) with
             | ("SCD_WRITE" | "SCD_SNAPSHOT"), reg :: _ -> (
               match as_int_const reg with
               | Some r when r < 0 ->
                 emit e.Ast.eloc Diagnostic.Error "SL061"
                   (Printf.sprintf "%s register index is %d, must be non-negative"
                      name r)
               | Some r -> (
                 match !joined_regs with
                 | Some regs when r >= regs ->
                   emit e.Ast.eloc Diagnostic.Error "SL061"
                     (Printf.sprintf
                        "%s register index is %d, but SCD_JOIN declared only %d \
                         register(s)"
                        name r regs)
                 | _ -> ())
               | None -> ())
             | _ -> ())
          | _ -> ())
        stmts)
    (sections p)

(* ---- entry point ------------------------------------------------------------- *)

let check ~file (p : Ast.program) : Diagnostic.t list =
  let diags = ref [] in
  let emit pos severity rule message =
    diags := Diagnostic.make ~file ~pos ~severity ~rule ~message :: !diags
  in
  let decls = collect_decls emit p in
  check_builtins emit p;
  check_vars emit decls p;
  check_definite_assignment emit decls p;
  check_open_close emit p;
  check_queue_bounds emit decls p;
  check_unadvertise emit p;
  check_scd emit p;
  List.rev !diags
