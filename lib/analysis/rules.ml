(* The sodalint rule catalog: one entry per stable rule id, feeding
   `sodal_check --explain SLNNN`, the generated docs/RULES.md, and the
   SARIF rule metadata. The catalog-completeness test checks that every
   rule id the analyzers can emit has an entry here, so a new rule
   cannot ship undocumented. *)

type t = {
  id : string;
  severity : Diagnostic.severity;
  title : string;  (** one line, imperative mood *)
  detail : string;  (** paragraph: what, why, paper citation *)
  example : string;  (** a minimal SODAL trigger, derived from a fixture *)
}

let r id severity title detail example = { id; severity; title; detail; example }

let all =
  [
    r "SL000" Diagnostic.Error "the source does not parse"
      "A lexical or syntax error. The message carries the expected-token \
       set; nothing else is checked in a file that does not parse, but \
       other files given on the same command line still are."
      "task begin\n  i := ;        -- syntax error: expression expected\nend;";
    r "SL001" Diagnostic.Error "blocking built-in in the handler"
      "B_SIGNAL/B_PUT/B_GET/B_EXCHANGE, DISCOVER, IDLE and DIE suspend \
       the calling fiber for unbounded time. The handler must run to \
       completion (section 3.3.2/4.1.1): a blocked handler can never be \
       resumed, because the arrival or completion that would resume it is \
       delivered by that same handler. By-signature ACCEPT_* waits are \
       bounded and explicitly permitted in the handler (section 4.1.2)."
      "handler begin\n\
      \  case entry of\n\
      \    SVC : begin\n\
      \      st := B_SIGNAL(peer, SVC, 0);   -- deadlocks the machine\n\
      \    end;\n\
      \  esac;\nend;";
    r "SL002" Diagnostic.Error "ACCEPT_CURRENT_*/REJECT outside the handler"
      "Only the handler has a \"current request\" (section 4.1.2); in the \
       initialization or task there is nothing these built-ins could \
       address."
      "task begin\n  ACCEPT_CURRENT_SIGNAL(0);   -- no current request here\nend;";
    r "SL003" Diagnostic.Error "call to a built-in that does not exist"
      "The name is not in the shared built-in table (lib/sodal_lang/\
       builtins.ml) that the interpreter, the analyzer and the model \
       checker all dispatch on."
      "task begin\n  BSIGNAL(peer, SVC, 0);   -- misspelt B_SIGNAL\nend;";
    r "SL004" Diagnostic.Error "built-in called with the wrong arity"
      "Argument count does not match the table signature; the interpreter \
       would refuse the call at run time."
      "task begin\n  ADVERTISE();   -- ADVERTISE expects 1 argument\nend;";
    r "SL010" Diagnostic.Error "reference to an undeclared variable"
      "The name is neither declared nor one of the handler context \
       variables of section 4.1.2 (ASKER, ARG, STATUS, PATTERN, PUTSIZE, \
       GETSIZE, TID, ...), which are always in scope."
      "task begin\n  counter := counter + 1;   -- counter is never declared\nend;";
    r "SL011" Diagnostic.Warning "the same name declared twice"
      "A later declaration shadows the earlier one; almost always a \
       copy-paste slip." "var item : string;\nvar item : integer;";
    r "SL012" Diagnostic.Warning "a declaration that is never used"
      "The variable is neither read nor written outside its declaration."
      "var scratch : string;   -- never mentioned again";
    r "SL020" Diagnostic.Error "read before definite assignment"
      "Dataflow over the CFG: the variable is not assigned on every path \
       reaching the read. The handler and task inherit what the \
       initialization definitely assigned; the handler is judged as of \
       its first invocation. Queues and consts are initialised by their \
       declarations."
      "task begin\n\
      \  if not ISEMPTY(q) then\n\
      \    item := DEQUEUE(q);\n\
      \  fi;\n\
      \  PRINT(item);   -- unassigned when the queue was empty\nend;";
    r "SL030" Diagnostic.Error "CLOSE with no OPEN anywhere"
      "Once the machine closes (section 3.4) it refuses arrivals forever; \
       with no OPEN in the program the handler can never serve again."
      "handler begin\n\
      \  case entry of\n\
      \    SVC : begin\n\
      \      ACCEPT_CURRENT_SIGNAL(0);\n\
      \      CLOSE();   -- and nothing ever reopens\n\
      \    end;\n\
      \  esac;\nend;";
    r "SL031" Diagnostic.Warning "CLOSE on a provably closed machine"
      "Three-point lattice (open/closed/either) through the CFG; a \
       blocking task-side call resets to *either* when the handler \
       itself toggles the state, as the port program of section 4.2.1 \
       does." "CLOSE();\nCLOSE();   -- already closed on every path here";
    r "SL040" Diagnostic.Error "ENQUEUE on a provably full queue"
      "Queue length intervals are tracked through the CFG and refined by \
       ISFULL/ISEMPTY branches; Bqueue.enqueue raises at run time \
       (section 4.1.4: queues are bounded)."
      "var q : queue[1];\n...\nENQUEUE(q, 1);\nENQUEUE(q, 2);   -- q holds at most one";
    r "SL041" Diagnostic.Error "DEQUEUE on a provably empty queue"
      "Mirror image of SL040: the length interval proves the queue empty \
       at the dequeue." "var q : queue[3];\n...\nitem := DEQUEUE(q);   -- nothing was ever enqueued";
    r "SL050" Diagnostic.Warning "request for a pattern nobody advertises"
      "No program in the checked set advertises the pattern: a DISCOVER \
       blocks forever, a request completes UNADVERTISED (section 3.4.1). \
       Needs at least two files on the command line."
      "-- no program in the set advertises %0700\ntask begin\n\
      \  server := DISCOVER(%0700);\nend;";
    r "SL051" Diagnostic.Warning "the same pattern advertised twice"
      "The second ADVERTISE by the same program is a no-op at best and \
       usually a sign two services were merged by mistake."
      "initialization begin\n  ADVERTISE(SVC);\n  ADVERTISE(SVC);\nend;";
    r "SL052" Diagnostic.Error "UNADVERTISE of a never-advertised pattern"
      "The pattern set is per-machine (section 3.4.1), so withdrawing a \
       pattern this program never advertises on any path is a no-op and \
       almost always names the wrong constant."
      "initialization begin\n  UNADVERTISE(%0777); -- never advertised\nend;";
    r "SL053" Diagnostic.Error "request shape does not match the serving accept"
      "A REQUEST is implicitly SIGNAL/PUT/GET/EXCHANGE by which of its \
       buffers are non-empty (section 3.3.1), and the accept must present \
       the mirror image; an EXCHANGE accept also serves plain PUT or GET. \
       Arms that defer the request (REJECT, ENQUEUE of the signature, \
       by-signature ACCEPT later — the section 4.2.1 port idiom) are \
       exempt."
      "-- requester:  st := B_PUT(server, SVC, 0, \"payload\");\n\
       -- server arm: ACCEPT_CURRENT_GET(\"reply\")   -- GET cannot serve PUT";
    r "SL054" Diagnostic.Warning "transfer provably truncated"
      "The requester sends more bytes than the serving accept's buffer \
       holds, or the reply exceeds the requester's receive buffer; \
       section 3.3.1: \"the smaller of the two sizes\" wins."
      "-- requester sends 11 bytes:  B_PUT(server, SVC, 0, \"hello world\")\n\
       -- server accepts at most 4:  ACCEPT_CURRENT_PUT(0, 4)";
    r "SL055" Diagnostic.Warning "blocking request on a reachable wait cycle"
      "Machine A blocks on a pattern B advertises while B in turn blocks \
       on A. The back-end is the whole-system model checker: the request \
       is flagged only when some reachable configuration really has every \
       program on the cycle blocked at once. Needs at least two files."
      "-- program a: B_SIGNAL(DISCOVER(B_SVC), B_SVC, 0)\n\
       -- program b: B_SIGNAL(DISCOVER(A_SVC), A_SVC, 0)\n\
       -- each serves its own pattern only after the request completes";
    r "SL060" Diagnostic.Error "SCD operation without SCD_JOIN"
      "SCD_WRITE/SCD_SNAPSHOT/SCD_INCR/SCD_CREAD in a program that never \
       calls SCD_JOIN can only raise at run time; see docs/BROADCAST.md."
      "task begin\n  SCD_WRITE(0, 7);   -- never joined a cluster\nend;";
    r "SL061" Diagnostic.Error "SCD argument provably out of range"
      "Constant folding proves a non-positive member or register count in \
       SCD_JOIN, a negative register index, or an index >= the folded \
       register count." "task begin\n  SCD_JOIN(3, 2);\n  SCD_WRITE(5, 1);   -- only registers 0 and 1 exist\nend;";
    r "SL070" Diagnostic.Error "global deadlock"
      "The model checker found a reachable configuration of the whole \
       system in which no transition can ever fire again while at least \
       one program is blocked in a request, a DISCOVER or a by-signature \
       accept. The diagnostic carries a minimal interleaving trace \
       (sodal_check --model-check --counterexample)."
      "-- dl_a and dl_b both run:\n\
       task begin\n\
      \  B_SIGNAL(DISCOVER(PEER), PEER, 0);   -- blocks; the peer's handler\n\
      \  ...                                  -- only ENQUEUEs the signature\n\
       end;\n\
       -- both are blocked before either task ever serves its queue";
    r "SL071" Diagnostic.Error "orphan message"
      "A request is sent on some path but never completed — accepted, \
       rejected, crashed or failed UNADVERTISED — in any reachable \
       configuration: the handler arm that matches it forgets to answer. \
       Only reported when the exploration was exhaustive (no bound was \
       hit and nothing in the system defeated static extraction)."
      "handler begin\n\
      \  case entry of\n\
      \    FLAG : begin\n\
      \      PRINT(\"seen a flag\");   -- neither accepts nor rejects\n\
      \    end;\n\
      \  esac;\nend;";
    r "SL072" Diagnostic.Warning "BUSY/retry livelock"
      "The system can cycle forever through configurations in which the \
       request is rejected or completes UNADVERTISED but no accept ever \
       happens: a retry loop against a server that always says no."
      "-- server arm:  REJECT();\n\
       -- client task: while st <> \"COMPLETED\" do\n\
       --                st := B_SIGNAL(server, SVC, 0);\n\
       --              end;";
    r "SL073" Diagnostic.Warning "advertise-withdrawal race"
      "A request can complete UNADVERTISED because the serving program \
       withdraws the pattern (UNADVERTISE) while the request is in \
       flight: whether the caller is served depends on the schedule."
      "-- server task: UNADVERTISE(FLAG);   -- client may still be sending\n\
       -- client task: st := B_SIGNAL(0, FLAG, 0);";
  ]

let find id = List.find_opt (fun x -> x.id = id) all

let explain id =
  match find id with
  | None -> None
  | Some x ->
    Some
      (Printf.sprintf "%s (%s): %s\n\n%s\n\nExample:\n%s\n" x.id
         (Diagnostic.severity_name x.severity)
         x.title x.detail x.example)

(* docs/RULES.md is generated from this catalog: `sodal_check --rules-md`
   writes it, CI diffs it against the committed copy. *)
let to_markdown () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# sodalint rules\n\n\
     <!-- Generated by `sodal_check --rules-md`; do not edit by hand.\n\
    \     CI fails when this file drifts from lib/analysis/rules.ml. -->\n\n\
     Every diagnostic the `sodal_check` analyzer (lib/analysis) can emit, \n\
     one section per stable rule id. `sodal_check --explain SLNNN` prints \n\
     the same text at the command line; docs/ANALYSIS.md explains how the \n\
     analyses work, including the whole-system model checker behind \n\
     SL055 and SL070–SL073.\n\n";
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf "## %s — %s (%s)\n\n%s\n\n```\n%s\n```\n\n" x.id x.title
           (Diagnostic.severity_name x.severity)
           x.detail x.example))
    all;
  Buffer.contents buf
