module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Cost = Soda_base.Cost_model
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Nameserver = Soda_facilities.Nameserver
module Fault_plan = Soda_fault.Fault_plan
module Injector = Soda_fault.Injector

type op = {
  client : int;
  index : int;
  key : int;
  kind : [ `Read | `Write of string ];
  start_us : int;
  end_us : int;
  outcome : [ `Ok of string option | `Written | `No_quorum ];
}

type result = {
  net : Network.t;
  history : op list;
  clients_total : int;
  clients_done : int;
  replicas : Store.replica array;
  elapsed_us : int;
}

let cluster = "h"

(* A client's script, fixed before the run from a split of the engine
   RNG so the (seed, plan) pair fully determines the workload. Think
   times pace the script across the fault plan's schedule. *)
let script rng ~mid ~ops ~keys ~think_us =
  List.init ops (fun i ->
      let key = Rng.int rng (max keys 1) in
      let think = if think_us > 0 then Rng.int rng think_us else 0 in
      if Rng.bool rng then (i, key, `Read, think)
      else (i, key, `Write (Printf.sprintf "c%d#%d" mid i), think))

let client_spec ~n ~use_nameserver ~script ~record ~done_count =
  {
    Sodal.default_spec with
    task =
      (fun env ->
        (* let replicas boot and (in switchboard mode) register *)
        Sodal.compute env 50_000;
        let handle =
          if use_nameserver then
            let rec connect k =
              match Store.connect env ~cluster ~n () with
              | Ok h -> Some h
              | Error _ when k < 5 ->
                Sodal.compute env 200_000;
                connect (k + 1)
              | Error _ -> None
            in
            connect 1
          else Some (Store.handle env ~cluster ~mids:(List.init n Fun.id))
        in
        match handle with
        | None -> ()  (* switchboard unreachable: script abandoned *)
        | Some h ->
          List.iter
            (fun (index, key, kind, think) ->
              if think > 0 then Sodal.compute env think;
              let start_us = Sodal.now env in
              let outcome =
                match kind with
                | `Read ->
                  (match Store.read env h ~key with
                   | Ok v -> `Ok (Option.map Bytes.to_string v)
                   | Error Store.No_quorum -> `No_quorum)
                | `Write v ->
                  (match Store.write env h ~key (Bytes.of_string v) with
                   | Ok () -> `Written
                   | Error Store.No_quorum -> `No_quorum)
              in
              record
                {
                  client = Sodal.my_mid env;
                  index;
                  key;
                  kind;
                  start_us;
                  end_us = Sodal.now env;
                  outcome;
                })
            script;
          incr done_count);
  }

let run ?(n = 3) ?(clients = 2) ?(ops = 8) ?(keys = 2) ?(seed = 1) ?(loss = 0.0)
    ?(think_us = 250_000) ?plan ?(use_nameserver = false) ?trace
    ?(horizon_us = 600_000_000) () =
  (* dead replicas can pin fan-out slots for a whole Delta-t verdict;
     give clients headroom beyond the default MAXREQUESTS = 3 *)
  let cost = { Cost.default with maxrequests = n + 2 } in
  (* Tracing implies causal: a traced store run should reconstruct each
     client op's cross-node tree without a second switch to remember. *)
  let net = Network.create ~seed ~cost ?trace ?causal:trace () in
  if loss > 0.0 then Soda_net.Bus.set_loss_rate (Network.bus net) loss;
  let replicas = Array.init n (fun index -> Store.replica ~cluster ~index) in
  for mid = 0 to n - 1 do
    let kernel = Network.add_node net ~mid in
    ignore (Sodal.attach kernel (Store.replica_spec ~register:use_nameserver replicas.(mid)))
  done;
  if use_nameserver then begin
    let kernel = Network.add_node net ~mid:n in
    ignore (Sodal.attach kernel (Nameserver.spec ()))
  end;
  let history = ref [] in
  let record op = history := op :: !history in
  let done_count = ref 0 in
  let rng = Rng.split (Engine.rng (Network.engine net)) in
  for c = 0 to clients - 1 do
    let mid = n + 1 + c in
    let kernel = Network.add_node net ~mid in
    let script = script (Rng.split rng) ~mid ~ops ~keys ~think_us in
    ignore
      (Sodal.attach kernel
         (client_spec ~n ~use_nameserver ~script ~record ~done_count))
  done;
  (match plan with
   | Some plan ->
     (* preserved-state reboot: re-attach the same replica value *)
     Injector.install net plan ~on_reboot:(fun ~mid kernel ->
         if mid < n then
           ignore
             (Sodal.attach kernel
                (Store.replica_spec ~register:use_nameserver replicas.(mid))))
   | None -> ());
  let elapsed_us = Network.run ~until:horizon_us net in
  {
    net;
    history = List.rev !history;
    clients_total = clients;
    clients_done = !done_count;
    replicas;
    elapsed_us;
  }

let pp_history ppf history =
  List.iter
    (fun op ->
      let kind =
        match op.kind with `Read -> "read" | `Write v -> Printf.sprintf "write %S" v
      in
      let outcome =
        match op.outcome with
        | `Ok None -> "-> none"
        | `Ok (Some v) -> Printf.sprintf "-> %S" v
        | `Written -> "-> ok"
        | `No_quorum -> "-> NO QUORUM"
      in
      Format.fprintf ppf "c%d#%d [%d..%d] key=%d %s %s@." op.client op.index
        op.start_us op.end_us op.key kind outcome)
    history
