(** Deterministic store workload harness, shared by the qcheck
    linearizability suite ([test/test_store.ml]), the CLI runner
    ([sodal_run --store]) and the benchmark STORE section — the same
    (seed, fault plan) pair replays bit-for-bit everywhere.

    Topology: [n] replicas on mids [0 .. n-1], the switchboard (only with
    [~use_nameserver:true]) on mid [n], and [clients] writer/reader
    clients on the mids above. Client scripts (key choice, read/write
    mix, op count) are derived from a split of the engine RNG, and every
    write value is unique (["c<mid>#<index>"]), so a recorded history
    can be checked for linearizability afterwards. Replica tables live
    outside the kernel (stable storage): a scripted [reboot] re-attaches
    the same replica value to the fresh incarnation. *)

module Network = Soda_core.Network
module Fault_plan = Soda_fault.Fault_plan

(** One completed (or failed) client operation, as recorded. *)
type op = {
  client : int;  (** issuing client's mid *)
  index : int;  (** op index within that client's script *)
  key : int;
  kind : [ `Read | `Write of string ];
  start_us : int;
  end_us : int;
  outcome : [ `Ok of string option  (** read result; [Some v] / [None] *)
            | `Written  (** write acked by a quorum *)
            | `No_quorum ];
}

type result = {
  net : Network.t;
  history : op list;  (** every recorded op, in recording order *)
  clients_total : int;
  clients_done : int;  (** scripts that ran to completion (no hang) *)
  replicas : Store.replica array;
  elapsed_us : int;
}

(** [run ()] builds the network, attaches replicas and clients, installs
    the fault [plan] (if any), runs to quiescence (bounded by
    [horizon_us]) and returns the recorded history.

    [loss] is the bus frame-loss probability. [think_us] is the maximum
    per-op client think time (drawn from the script RNG; paces the
    workload across the plan's schedule — [0] disables). [use_nameserver]
    switches replicas to [~register:true] and clients from direct
    {!Store.handle} to switchboard {!Store.connect}. [ops] is per
    client. *)
val run :
  ?n:int ->
  ?clients:int ->
  ?ops:int ->
  ?keys:int ->
  ?seed:int ->
  ?loss:float ->
  ?think_us:int ->
  ?plan:Fault_plan.t ->
  ?use_nameserver:bool ->
  ?trace:bool ->
  ?horizon_us:int ->
  unit ->
  result

(** Render a history, one op per line (diagnostics for failing cases). *)
val pp_history : Format.formatter -> op list -> unit
