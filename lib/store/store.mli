(** A crash-tolerant, linearizable key-value store replicated across [n]
    SODA nodes with majority quorums (multi-writer multi-reader atomic
    registers in the ABD style; see docs/STORE.md).

    Each replica is a {!Sodal.spec} client serving a per-key
    [(tag, value)] pair behind a cluster-derived advertised pattern; a
    client operation is one or two quorum rounds over plain SODA
    REQUESTs:

    - {b query} — a GET whose argument is the key; the reply carries the
      replica's current tag and value for that key;
    - {b propagate} — a PUT whose argument is the key and whose data is a
      tagged value; the replica keeps the pair iff the tag exceeds the
      one it holds (so retries and reordered deliveries are idempotent).

    [read] queries a majority for the maximum tag, then propagates that
    tag-value back to a majority before returning (skipped when the
    query round itself proved the tag is already on a majority).
    [write] queries a majority for the maximum tag, then propagates
    [(max.seq + 1, my mid)] with the new value to a majority. Crashed or
    partitioned replicas are skipped on the Delta-t crash verdict
    (bounded retransmissions), exactly like the RPC facility's failover:
    a round completes as soon as any majority answers. Rounds that fail
    to assemble a majority are retried with capped exponential backoff
    and then surface {!No_quorum}.

    Tolerates [f < n/2] replica crashes. Rebooted replicas must come
    back with their table intact (stable storage) — re-attach the same
    {!replica} value — or atomicity is lost; see docs/STORE.md. *)

module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

(** {1 Replica side} *)

(** A replica's identity plus its durable table. The table survives the
    kernel incarnation: re-attaching the same [replica] after a scripted
    reboot models crash-recovery with stable storage. *)
type replica

val replica : cluster:string -> index:int -> replica

(** The stable advertised entry point of replica [index] of [cluster]
    (derived from the cluster name, same in every incarnation). *)
val replica_pattern : cluster:string -> index:int -> Pattern.t

(** The switchboard name ["/store/<cluster>/<index>"]. *)
val replica_name : cluster:string -> index:int -> string

(** [replica_spec ?register r] is the server program. With
    [~register:true] the task additionally mints a fresh per-incarnation
    unique entry point, advertises it alongside the stable pattern, and
    binds it in the §6.14 switchboard under {!replica_name} —
    [register]ing on first boot and [rebind]ing to reclaim the name when
    a previous incarnation's binding is still there. *)
val replica_spec : ?register:bool -> replica -> Sodal.spec

(** Incarnation count (bumped by each boot), and direct table access for
    tests. *)
val incarnations : replica -> int

val peek_replica : replica -> key:int -> (Tag.t * bytes) option

(** Seed a replica's stable storage directly (test fixture: builds the
    asymmetric states a partially-propagated write leaves behind). Obeys
    the same keep-iff-newer rule as the wire path. *)
val poke_replica : replica -> key:int -> Tag.t -> bytes -> unit

(** {1 Client side} *)

type t

type error = No_quorum  (** no majority answered within the retry budget *)

(** [handle env ~cluster ~mids] addresses the replicas directly through
    their stable patterns (no switchboard involved). *)
val handle :
  ?max_value:int ->
  ?attempts:int ->
  ?backoff_base_us:int ->
  ?backoff_cap_us:int ->
  Sodal.env ->
  cluster:string ->
  mids:int list ->
  t

(** [connect env ~cluster ~n ()] resolves all [n] replicas through the
    switchboard ({!replica_name} bindings). The handle re-resolves a
    replica's binding between rounds when it answers UNADVERTISED — the
    signature a reboot with [~register:true] replaces. *)
val connect :
  ?max_value:int ->
  ?attempts:int ->
  ?backoff_base_us:int ->
  ?backoff_cap_us:int ->
  ?resolve_attempts:int ->
  Sodal.env ->
  cluster:string ->
  n:int ->
  unit ->
  (t, Soda_facilities.Nameserver.error) result

val quorum : t -> int

(** [read env t ~key] — linearizable read; [None] if never written. *)
val read : Sodal.env -> t -> key:int -> (bytes option, error) result

(** [write env t ~key value] — linearizable write. *)
val write : Sodal.env -> t -> key:int -> bytes -> (unit, error) result

(** [cas env t ~key ~expect value] — read-modify-write round: writes
    [value] and returns [true] iff the read phase observed [expect].
    Atomic only in the absence of concurrent writers to [key] (a quorum
    round is not consensus); see docs/STORE.md. *)
val cas :
  Sodal.env -> t -> key:int -> expect:bytes option -> bytes -> (bool, error) result
