module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Nameserver = Soda_facilities.Nameserver
module Recorder = Soda_obs.Recorder
module Metrics = Soda_obs.Metrics
module Event = Soda_obs.Event

(* ---- replica ----------------------------------------------------------- *)

type replica = {
  cluster : string;
  index : int;
  table : (int, Tag.t * bytes) Hashtbl.t;  (* the replica's stable storage *)
  mutable boots : int;
}

let replica ~cluster ~index = { cluster; index; table = Hashtbl.create 32; boots = 0 }

let incarnations r = r.boots

let peek_replica r ~key = Hashtbl.find_opt r.table key

(* Stable per-(cluster, index) well-known pattern: a store tag in the top
   bits, a cluster hash in the middle, the replica index in the low byte
   (all inside the 40-bit well-known name space). *)
let replica_pattern ~cluster ~index =
  let h = Hashtbl.hash cluster land 0x3FFFFFF in
  Pattern.well_known ((0o5 lsl 37) lor (h lsl 8) lor (index land 0xFF))

let replica_name ~cluster ~index = Printf.sprintf "/store/%s/%d" cluster index

(* Query reply: present(1) tag(8) len(2) value. *)
let encode_query_reply entry =
  match entry with
  | None -> Bytes.make 1 '\000'
  | Some (tag, value) ->
    let len = Bytes.length value in
    let b = Bytes.create (1 + Tag.encoded_size + 2 + len) in
    Bytes.set b 0 '\001';
    Bytes.blit (Tag.encode tag) 0 b 1 Tag.encoded_size;
    Bytes.set b 9 (Char.chr ((len lsr 8) land 0xFF));
    Bytes.set b 10 (Char.chr (len land 0xFF));
    Bytes.blit value 0 b 11 len;
    b

let decode_query_reply b ~len =
  if len < 1 then None
  else if Bytes.get b 0 = '\000' then Some (Tag.zero, None)
  else
    match Tag.decode b ~at:1 with
    | None -> None
    | Some tag ->
      if len < 11 then None
      else begin
        let vlen = (Char.code (Bytes.get b 9) lsl 8) lor Char.code (Bytes.get b 10) in
        if 11 + vlen > len then None else Some (tag, Some (Bytes.sub b 11 vlen))
      end

(* Propagate payload: tag(8) len(2) value. *)
let encode_propagate tag value =
  let len = Bytes.length value in
  let b = Bytes.create (Tag.encoded_size + 2 + len) in
  Bytes.blit (Tag.encode tag) 0 b 0 Tag.encoded_size;
  Bytes.set b 8 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 9 (Char.chr (len land 0xFF));
  Bytes.blit value 0 b 10 len;
  b

let decode_propagate b ~len =
  match Tag.decode b ~at:0 with
  | None -> None
  | Some tag ->
    if len < 10 then None
    else begin
      let vlen = (Char.code (Bytes.get b 8) lsl 8) lor Char.code (Bytes.get b 9) in
      if 10 + vlen > len then None else Some (tag, Bytes.sub b 10 vlen)
    end

(* Keep the incoming pair iff its tag is strictly newer: retries across
   incarnations and duplicated/reordered deliveries are idempotent. *)
let merge r ~key tag value =
  match Hashtbl.find_opt r.table key with
  | Some (cur, _) when Tag.compare cur tag >= 0 -> ()
  | _ -> Hashtbl.replace r.table key (tag, value)

let poke_replica = merge

(* The switchboard-registration task of the [~register:true] variant: a
   fresh unique entry point per incarnation, bound under the stable name
   — register on first boot, rebind to reclaim the name from a dead
   incarnation's binding. *)
let register_task r env =
  let unique = Sodal.getuniqueid env in
  Sodal.advertise env unique;
  let sb = Sodal.discover env Nameserver.switchboard_pattern in
  let me = Sodal.server ~mid:(Sodal.my_mid env) ~pattern:unique in
  let name = replica_name ~cluster:r.cluster ~index:r.index in
  let rec bind attempt =
    let outcome =
      match Nameserver.register env sb ~name me with
      | Ok () -> Ok ()
      | Error Nameserver.Already_registered -> Nameserver.rebind env sb ~name me
      | Error _ as e -> e
    in
    match outcome with
    | Ok () -> ()
    | Error _ when attempt < 8 ->
      Sodal.compute env 100_000;
      bind (attempt + 1)
    | Error _ -> ()
  in
  bind 1;
  Sodal.serve env

let replica_spec ?(register = false) r =
  let pattern = replica_pattern ~cluster:r.cluster ~index:r.index in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        r.boots <- r.boots + 1;
        Sodal.advertise env pattern);
    on_request =
      (fun env info ->
        let key = info.Sodal.arg in
        if key < 0 then Sodal.reject env
        else if info.Sodal.put_size > 0 && info.Sodal.get_size = 0 then begin
          (* propagate: PUT of a tagged value *)
          let into = Bytes.create info.Sodal.put_size in
          let status, got = Sodal.accept_current_put env ~arg:0 ~into in
          match status with
          | Types.Accept_success ->
            (match decode_propagate into ~len:got with
             | Some (tag, value) -> merge r ~key tag value
             | None -> ())
          | Types.Accept_cancelled | Types.Accept_crashed -> ()
        end
        else if info.Sodal.get_size > 0 && info.Sodal.put_size = 0 then
          (* query: GET of the current tag-value for the key *)
          ignore
            (Sodal.accept_current_get env ~arg:0
               ~data:(encode_query_reply (Hashtbl.find_opt r.table key)))
        else Sodal.reject env);
    task = (if register then register_task r else Sodal.serve);
  }

(* ---- client ------------------------------------------------------------ *)

type t = {
  cluster : string;
  n : int;
  q : int;
  replicas : Types.server_signature array;
  (* [Some f]: switchboard-backed; re-resolve replica [i] after it
     answers UNADVERTISED (its incarnation — and unique pattern — changed). *)
  resolve : (int -> Types.server_signature option) option;
  max_value : int;
  attempts : int;
  backoff_base_us : int;
  backoff_cap_us : int;
  rng : Rng.t;
}

type error = No_quorum

let quorum t = t.q

let recorder env = Kernel.recorder (Sodal.kernel env)

(* Store events are stamped with the ambient operation span (set by
   [with_op_ctx] below), tying phase/retry/complete events into the same
   causal tree as the quorum fan-out they describe. *)
let emit env kind =
  let r = recorder env in
  if Recorder.tracing r then
    Recorder.emit r
      ?ctx:(Kernel.causal_parent (Sodal.kernel env))
      ~time_us:(Sodal.now env) ~mid:(Sodal.my_mid env) ~actor:"store" kind

(* One causal root per client-visible store operation: every REQUEST the
   op traps — quorum fan-out, backoff retries, failover re-sends — minted
   while it runs becomes a child of this root, so the whole cross-node
   operation reconstructs as one tree. The previous ambient parent is
   restored on exit (ops can nest under a larger operation). *)
let with_op_ctx env f =
  let kernel = Sodal.kernel env in
  let saved = Kernel.causal_parent kernel in
  (match Kernel.mint_causal_root kernel with
   | Some _ as ctx -> Kernel.set_causal_parent kernel ctx
   | None -> ());
  Fun.protect ~finally:(fun () -> Kernel.set_causal_parent kernel saved) f

let metrics env = Recorder.metrics (recorder env)

let make_handle env ~cluster ~replicas ~resolve ~max_value ~attempts ~backoff_base_us
    ~backoff_cap_us =
  let n = Array.length replicas in
  if n = 0 then invalid_arg "Store.handle: no replicas";
  {
    cluster;
    n;
    q = (n / 2) + 1;
    replicas;
    resolve;
    max_value;
    attempts;
    backoff_base_us;
    backoff_cap_us;
    rng = Rng.split (Engine.rng (Kernel.engine (Sodal.kernel env)));
  }

let handle ?(max_value = 512) ?(attempts = 10) ?(backoff_base_us = 20_000)
    ?(backoff_cap_us = 500_000) env ~cluster ~mids =
  let replicas =
    Array.of_list
      (List.mapi
         (fun i mid -> Sodal.server ~mid ~pattern:(replica_pattern ~cluster ~index:i))
         mids)
  in
  make_handle env ~cluster ~replicas ~resolve:None ~max_value ~attempts ~backoff_base_us
    ~backoff_cap_us

let connect ?(max_value = 512) ?(attempts = 10) ?(backoff_base_us = 20_000)
    ?(backoff_cap_us = 500_000) ?(resolve_attempts = 20) env ~cluster ~n () =
  let sb = Sodal.discover env Nameserver.switchboard_pattern in
  let lookup i = Nameserver.lookup env sb ~name:(replica_name ~cluster ~index:i) in
  let rec resolve_one i attempt =
    match lookup i with
    | Ok signature -> Ok signature
    | Error _ as e ->
      if attempt >= resolve_attempts then e
      else begin
        (* replicas register asynchronously after boot; give them time *)
        Sodal.compute env 100_000;
        resolve_one i (attempt + 1)
      end
  in
  let rec resolve_all i acc =
    if i = n then Ok (Array.of_list (List.rev acc))
    else
      match resolve_one i 1 with
      | Ok signature -> resolve_all (i + 1) (signature :: acc)
      | Error e -> Error e
  in
  match resolve_all 0 [] with
  | Error e -> Error e
  | Ok replicas ->
    let re_resolve i = match lookup i with Ok s -> Some s | Error _ -> None in
    Ok
      (make_handle env ~cluster ~replicas ~resolve:(Some re_resolve) ~max_value ~attempts
         ~backoff_base_us ~backoff_cap_us)

(* Issue a non-blocking REQUEST, idling while the kernel is at its
   MAXREQUESTS limit (a slot frees on any completion interrupt). *)
let rec submit env f =
  match f () with
  | tid -> tid
  | exception Sodal.Too_many_requests ->
    Sodal.idle env;
    submit env f

(* One quorum round: launch [launch i] at every replica, collect decoded
   acks as completions arrive, return as soon as a majority has answered
   (or everyone has answered without reaching one). Laggards — typically
   requests still retransmitting into a crashed or partitioned replica —
   keep their callbacks and resolve harmlessly later: that is the RPC
   facility's skip-after-verdict failover discipline, not a timeout. *)
let round env h ~launch ~decode =
  let acks = ref [] in
  let failed = ref 0 in
  let unadvertised = ref [] in
  for i = 0 to h.n - 1 do
    let tid = submit env (fun () -> launch i) in
    Sodal.on_completion_of env tid (fun c ->
        match decode i c with
        | Some v -> acks := (i, v) :: !acks
        | None ->
          if c.Sodal.status = Sodal.Comp_unadvertised then
            unadvertised := i :: !unadvertised;
          incr failed)
  done;
  while List.length !acks < h.q && List.length !acks + !failed < h.n do
    Sodal.idle env
  done;
  (List.rev !acks, !unadvertised)

(* Retry wrapper: capped exponential backoff with jitter from the
   handle's split RNG, re-resolving switchboard bindings for replicas
   that answered UNADVERTISED (their incarnation changed). *)
let phase env h ~op ~name ~key ~launch ~decode =
  let m = metrics env in
  let rec attempt k =
    let t0 = Sodal.now env in
    let acks, unadvertised = round env h ~launch ~decode in
    Metrics.incr m "store.rounds";
    Metrics.observe m "store.round.acks" (List.length acks);
    emit env
      (Event.Store_phase
         { op; phase = name; key; acks = List.length acks; quorum = h.q;
           elapsed_us = Sodal.now env - t0 });
    if List.length acks >= h.q then Ok acks
    else if k >= h.attempts then begin
      Metrics.incr m "store.no_quorum";
      Error No_quorum
    end
    else begin
      Metrics.incr m "store.retries";
      emit env (Event.Store_retry { op; phase = name; key; attempt = k });
      (match h.resolve with
       | Some resolve ->
         List.iter
           (fun i ->
             match resolve i with
             | Some signature -> h.replicas.(i) <- signature
             | None -> ())
           unadvertised
       | None -> ());
      let d = min h.backoff_cap_us (h.backoff_base_us lsl (k - 1)) in
      Sodal.compute env (d + Rng.int h.rng (max d 1));
      attempt (k + 1)
    end
  in
  attempt 1

(* Phase 1: GET the per-replica (tag, value) for [key] from a majority. *)
let query_phase env h ~op ~key =
  let buffers = Array.init h.n (fun _ -> Bytes.create (11 + h.max_value)) in
  phase env h ~op ~name:"query" ~key
    ~launch:(fun i -> Sodal.get env h.replicas.(i) ~arg:key ~into:buffers.(i))
    ~decode:(fun i c ->
      match c.Sodal.status with
      | Sodal.Comp_ok -> decode_query_reply buffers.(i) ~len:c.Sodal.get_transferred
      | Sodal.Comp_rejected | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> None)

(* Phase 2: PUT the tagged value to a majority. *)
let propagate_phase env h ~op ~key tag value =
  let payload = encode_propagate tag value in
  phase env h ~op ~name:"propagate" ~key
    ~launch:(fun i -> Sodal.put env h.replicas.(i) ~arg:key payload)
    ~decode:(fun _ c ->
      match c.Sodal.status with
      | Sodal.Comp_ok -> Some ()
      | Sodal.Comp_rejected | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> None)

let max_of_acks acks =
  List.fold_left
    (fun (best_tag, best_v) (_, (tag, v)) ->
      if Tag.compare tag best_tag > 0 then (tag, v) else (best_tag, best_v))
    (Tag.zero, None) acks

let finish env ~op ~key ~t0 ~rounds result =
  let elapsed = Sodal.now env - t0 in
  Metrics.observe (metrics env) (Printf.sprintf "store.%s.us" op) elapsed;
  emit env
    (Event.Store_complete
       { op; key; ok = Result.is_ok result; rounds; elapsed_us = elapsed });
  result

let read env h ~key =
  with_op_ctx env @@ fun () ->
  let t0 = Sodal.now env in
  match query_phase env h ~op:"read" ~key with
  | Error No_quorum -> finish env ~op:"read" ~key ~t0 ~rounds:1 (Error No_quorum)
  | Ok acks ->
    let tag, value = max_of_acks acks in
    if Tag.compare tag Tag.zero = 0 then
      (* a majority never saw a write: no completed write exists *)
      finish env ~op:"read" ~key ~t0 ~rounds:1 (Ok None)
    else begin
      let at_max =
        List.length (List.filter (fun (_, (t, _)) -> Tag.compare t tag = 0) acks)
      in
      let v = match value with Some v -> v | None -> Bytes.empty in
      if at_max >= h.q then
        (* the query round itself proved the tag is on a majority *)
        finish env ~op:"read" ~key ~t0 ~rounds:1 (Ok (Some v))
      else
        match propagate_phase env h ~op:"read" ~key tag v with
        | Ok _ -> finish env ~op:"read" ~key ~t0 ~rounds:2 (Ok (Some v))
        | Error No_quorum -> finish env ~op:"read" ~key ~t0 ~rounds:2 (Error No_quorum)
    end

let write env h ~key value =
  with_op_ctx env @@ fun () ->
  let t0 = Sodal.now env in
  match query_phase env h ~op:"write" ~key with
  | Error No_quorum -> finish env ~op:"write" ~key ~t0 ~rounds:1 (Error No_quorum)
  | Ok acks ->
    let max_tag, _ = max_of_acks acks in
    let tag = Tag.next max_tag ~wid:(Sodal.my_mid env) in
    (match propagate_phase env h ~op:"write" ~key tag value with
     | Ok _ -> finish env ~op:"write" ~key ~t0 ~rounds:2 (Ok ())
     | Error No_quorum -> finish env ~op:"write" ~key ~t0 ~rounds:2 (Error No_quorum))

let cas env h ~key ~expect value =
  with_op_ctx env @@ fun () ->
  let t0 = Sodal.now env in
  match query_phase env h ~op:"cas" ~key with
  | Error No_quorum -> finish env ~op:"cas" ~key ~t0 ~rounds:1 (Error No_quorum)
  | Ok acks ->
    let max_tag, current = max_of_acks acks in
    let current =
      if Tag.compare max_tag Tag.zero = 0 then None
      else Some (match current with Some v -> v | None -> Bytes.empty)
    in
    if current <> expect then finish env ~op:"cas" ~key ~t0 ~rounds:1 (Ok false)
    else begin
      let tag = Tag.next max_tag ~wid:(Sodal.my_mid env) in
      match propagate_phase env h ~op:"cas" ~key tag value with
      | Ok _ -> finish env ~op:"cas" ~key ~t0 ~rounds:2 (Ok true)
      | Error No_quorum -> finish env ~op:"cas" ~key ~t0 ~rounds:2 (Error No_quorum)
    end
