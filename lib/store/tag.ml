type t = { seq : int; wid : int }

let zero = { seq = 0; wid = 0 }

let compare a b =
  match Int.compare a.seq b.seq with 0 -> Int.compare a.wid b.wid | c -> c

let next t ~wid = { seq = t.seq + 1; wid }

let to_string t = Printf.sprintf "(%d,%d)" t.seq t.wid

let encoded_size = 8

let encode t =
  let b = Bytes.create encoded_size in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr ((t.seq lsr (8 * (5 - i))) land 0xFF))
  done;
  Bytes.set b 6 (Char.chr ((t.wid lsr 8) land 0xFF));
  Bytes.set b 7 (Char.chr (t.wid land 0xFF));
  b

let decode b ~at =
  if at < 0 || at + encoded_size > Bytes.length b then None
  else begin
    let seq = ref 0 in
    for i = 0 to 5 do
      seq := (!seq lsl 8) lor Char.code (Bytes.get b (at + i))
    done;
    let wid = (Char.code (Bytes.get b (at + 6)) lsl 8) lor Char.code (Bytes.get b (at + 7)) in
    Some { seq = !seq; wid }
  end
