(** Write tags for the quorum-replicated store.

    A tag is the [(seq, writer_mid)] pair of the ABD/quorum family
    (Konwar et al.; Aspnes, shared memory from message passing): totally
    ordered lexicographically, so concurrent writers that pick the same
    sequence number are still deterministically ordered by their machine
    id. [zero] is the tag of the never-written register. *)

type t = { seq : int; wid : int }

val zero : t

(** Lexicographic: by [seq], ties broken by [wid]. *)
val compare : t -> t -> int

(** [next t ~wid] is the tag a writer at [wid] picks after observing a
    maximum of [t] in its query phase. *)
val next : t -> wid:int -> t

val to_string : t -> string

(** {1 Wire format}: 8 bytes, big-endian [seq] (48 bits) then [wid]
    (16 bits). *)

val encoded_size : int
val encode : t -> bytes

(** [decode b ~at] reads a tag at offset [at]; [None] if out of range. *)
val decode : bytes -> at:int -> t option
