module Pattern = Soda_base.Pattern

type err_code = Err_unadvertised | Err_crashed | Err_cancelled

type body =
  | Request of {
      tid : int;
      pattern : Pattern.t;
      arg : int;
      put_size : int;
      get_size : int;
      data : bytes;
      retry : bool;
    }
  | Accept of {
      tid : int;
      arg : int;
      put_transferred : int;
      need_put_data : bool;
      data : bytes;
    }
  | Put_data of { tid : int; data : bytes }
  | Ack
  | Busy of { tid : int }
  | Error of { tid : int; code : err_code }
  | Cancel_request of { tid : int }
  | Cancel_reply of { tid : int; ok : bool }
  | Probe of { tid : int }
  | Probe_reply of { tid : int; alive : bool }
  | Discover of { tid : int; pattern : Pattern.t }
  | Discover_reply of { tid : int }

type t = {
  src : int;
  reliable : bool;
  seq : int;
  ack : int option;
  run : bool;
      (* first packet of a send run: every earlier slot is acknowledged, so a
         receiver with no connection record may safely synchronise its window
         base here (Delta-t's run flag). Never set at window 1. *)
  body : body;
}

(* Sequence numbers are 8-bit (space 256, window <= 64), spread over the
   seed's original flag positions plus up to two extension bytes so that
   narrower configurations keep their historical encodings byte for byte:
   - bit 0 lives in the seed's flag positions (0x02 seq / 0x08 ack);
   - bits 1-3 live in a first extension byte, present (flag 0x40) only
     when nonzero — exactly the 4-bit layout windows <= 8 have always
     used, so their packets stay byte-identical;
   - bits 4-7 live in a second extension byte whose presence is
     signalled by bit 6 (0x40) of the first.
   A window-1 node's packets remain byte-identical to the seed's
   alternating-bit encoding. *)
let seq_mask = 0xFF

(* --- encoding helpers ------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf v

let put_i32 buf v =
  (* two's-complement 32-bit *)
  put_u32 buf (v land 0xFFFFFFFF)

let put_u48 buf v =
  put_u16 buf (v lsr 32);
  put_u32 buf v

let put_data_field buf data =
  put_u32 buf (Bytes.length data);
  Buffer.add_bytes buf data

(* Offset writers for the zero-copy encode path: each takes a position
   and returns the next one, so [encode_into] fills a caller-supplied
   (typically pooled) buffer without any intermediate [Buffer]. *)

let w8 b p v =
  Bytes.set b p (Char.chr (v land 0xFF));
  p + 1

let w16 b p v =
  let p = w8 b p (v lsr 8) in
  w8 b p v

let w32 b p v =
  let p = w16 b p (v lsr 16) in
  w16 b p v

let wi32 b p v = w32 b p (v land 0xFFFFFFFF)

let w48 b p v =
  let p = w16 b p (v lsr 32) in
  w32 b p v

let wdata b p data =
  let len = Bytes.length data in
  let p = w32 b p len in
  Bytes.blit data 0 b p len;
  p + len

(* [limit] bounds the readable slice so a packet can be decoded straight
   out of a larger frame buffer without a [Bytes.sub] of the payload. *)
type reader = { bytes : bytes; mutable pos : int; limit : int }

exception Truncated

let get_u8 r =
  if r.pos >= r.limit then raise Truncated;
  let v = Char.code (Bytes.get r.bytes r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  (hi lsl 8) lor get_u8 r

let get_u32 r =
  let hi = get_u16 r in
  (hi lsl 16) lor get_u16 r

let get_i32 r =
  let v = get_u32 r in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get_u48 r =
  let hi = get_u16 r in
  (hi lsl 32) lor get_u32 r

let get_data_field r =
  let len = get_u32 r in
  if len < 0 || r.pos + len > r.limit then raise Truncated;
  let data = Bytes.sub r.bytes r.pos len in
  r.pos <- r.pos + len;
  data

(* --- kinds ------------------------------------------------------------ *)

let kind_of_body = function
  | Request _ -> 1
  | Accept _ -> 2
  | Put_data _ -> 3
  | Ack -> 4
  | Busy _ -> 5
  | Error _ -> 6
  | Cancel_request _ -> 7
  | Cancel_reply _ -> 8
  | Probe _ -> 9
  | Probe_reply _ -> 10
  | Discover _ -> 11
  | Discover_reply _ -> 12

let err_to_int = function Err_unadvertised -> 0 | Err_crashed -> 1 | Err_cancelled -> 2

let err_of_int = function
  | 0 -> Ok Err_unadvertised
  | 1 -> Ok Err_crashed
  | 2 -> Ok Err_cancelled
  | n -> Error (Printf.sprintf "bad error code %d" n)

(* --- encode ----------------------------------------------------------- *)

(* Second extension byte: seq bits 4-7 in the low nibble, ack bits 4-7
   in the high nibble. Zero (and thus absent) whenever both numbers fit
   in 4 bits, which keeps every window<=8 packet on the old format. *)
let seq_ext2 t =
  let seq_hi = (t.seq land seq_mask) lsr 4 in
  let ack_hi = match t.ack with None -> 0 | Some a -> (a land seq_mask) lsr 4 in
  seq_hi lor (ack_hi lsl 4)

(* First extension byte: seq bits 1-3, ack bits 1-3, and bit 6 marking
   the presence of the second extension byte. *)
let seq_ext t =
  let seq_mid = (t.seq land 0x0F) lsr 1 in
  let ack_mid = match t.ack with None -> 0 | Some a -> (a land 0x0F) lsr 1 in
  seq_mid lor (ack_mid lsl 3) lor (if seq_ext2 t <> 0 then 0x40 else 0)

let flags t ~retry ~need_put_data =
  (if t.reliable then 0x01 else 0)
  lor (if t.seq land 1 <> 0 then 0x02 else 0)
  lor (match t.ack with None -> 0 | Some _ -> 0x04)
  lor (match t.ack with Some a when a land 1 <> 0 -> 0x08 | _ -> 0)
  lor (if retry then 0x10 else 0)
  lor (if need_put_data then 0x20 else 0)
  lor (if seq_ext t <> 0 then 0x40 else 0)
  lor if t.run then 0x80 else 0

(* Exact wire size of a packet, kept in lockstep with the encoders below:
   4 header bytes (kind, flags, src), up to two optional extension
   bytes, then the body. Used to acquire exactly-sized pooled buffers so
   a frame's [Bytes.length] still means what it meant under the Buffer
   encoder. *)
let body_size = function
  | Request { data; _ } -> 6 + 6 + 4 + 4 + 4 + 4 + Bytes.length data
  | Accept { data; _ } -> 6 + 4 + 4 + 4 + Bytes.length data
  | Put_data { data; _ } -> 6 + 4 + Bytes.length data
  | Ack -> 0
  | Busy _ | Cancel_request _ | Probe _ | Discover_reply _ -> 6
  | Error _ | Cancel_reply _ | Probe_reply _ -> 7
  | Discover _ -> 12

let encoded_size t =
  4
  + (if seq_ext t <> 0 then 1 else 0)
  + (if seq_ext2 t <> 0 then 1 else 0)
  + body_size t.body

(* Zero-copy encoder: writes the packet into [buf] starting at [off] and
   returns the number of bytes written (always [encoded_size t]). The
   caller guarantees capacity; [Bytes.set] still bounds-checks. *)
let encode_into t buf ~off =
  let retry = match t.body with Request { retry; _ } -> retry | _ -> false in
  let need_put_data =
    match t.body with Accept { need_put_data; _ } -> need_put_data | _ -> false
  in
  let p = off in
  let p = w8 buf p (kind_of_body t.body) in
  let p = w8 buf p (flags t ~retry ~need_put_data) in
  let p = w16 buf p t.src in
  let p = if seq_ext t <> 0 then w8 buf p (seq_ext t) else p in
  let p = if seq_ext2 t <> 0 then w8 buf p (seq_ext2 t) else p in
  let p =
    match t.body with
    | Request { tid; pattern; arg; put_size; get_size; data; retry = _ } ->
      let p = w48 buf p tid in
      let p = w48 buf p (Pattern.to_int pattern) in
      let p = wi32 buf p arg in
      let p = w32 buf p put_size in
      let p = w32 buf p get_size in
      wdata buf p data
    | Accept { tid; arg; put_transferred; need_put_data = _; data } ->
      let p = w48 buf p tid in
      let p = wi32 buf p arg in
      let p = w32 buf p put_transferred in
      wdata buf p data
    | Put_data { tid; data } ->
      let p = w48 buf p tid in
      wdata buf p data
    | Ack -> p
    | Busy { tid } -> w48 buf p tid
    | Error { tid; code } ->
      let p = w48 buf p tid in
      w8 buf p (err_to_int code)
    | Cancel_request { tid } -> w48 buf p tid
    | Cancel_reply { tid; ok } ->
      let p = w48 buf p tid in
      w8 buf p (if ok then 1 else 0)
    | Probe { tid } -> w48 buf p tid
    | Probe_reply { tid; alive } ->
      let p = w48 buf p tid in
      w8 buf p (if alive then 1 else 0)
    | Discover { tid; pattern } ->
      let p = w48 buf p tid in
      w48 buf p (Pattern.to_int pattern)
    | Discover_reply { tid } -> w48 buf p tid
  in
  p - off

let encode t =
  let size = encoded_size t in
  let buf = Bytes.create size in
  let written = encode_into t buf ~off:0 in
  assert (written = size);
  buf

(* The seed's Buffer-based allocator, retained verbatim as the reference
   implementation: the property suite in test/test_scale.ml checks that
   [encode]/[encode_into] reproduce its output byte-for-byte on random
   packets of every kind. *)
let encode_buffer t =
  let buf = Buffer.create 64 in
  let retry = match t.body with Request { retry; _ } -> retry | _ -> false in
  let need_put_data =
    match t.body with Accept { need_put_data; _ } -> need_put_data | _ -> false
  in
  put_u8 buf (kind_of_body t.body);
  put_u8 buf (flags t ~retry ~need_put_data);
  put_u16 buf t.src;
  if seq_ext t <> 0 then put_u8 buf (seq_ext t);
  if seq_ext2 t <> 0 then put_u8 buf (seq_ext2 t);
  (match t.body with
   | Request { tid; pattern; arg; put_size; get_size; data; retry = _ } ->
     put_u48 buf tid;
     put_u48 buf (Pattern.to_int pattern);
     put_i32 buf arg;
     put_u32 buf put_size;
     put_u32 buf get_size;
     put_data_field buf data
   | Accept { tid; arg; put_transferred; need_put_data = _; data } ->
     put_u48 buf tid;
     put_i32 buf arg;
     put_u32 buf put_transferred;
     put_data_field buf data
   | Put_data { tid; data } ->
     put_u48 buf tid;
     put_data_field buf data
   | Ack -> ()
   | Busy { tid } -> put_u48 buf tid
   | Error { tid; code } ->
     put_u48 buf tid;
     put_u8 buf (err_to_int code)
   | Cancel_request { tid } -> put_u48 buf tid
   | Cancel_reply { tid; ok } ->
     put_u48 buf tid;
     put_u8 buf (if ok then 1 else 0)
   | Probe { tid } -> put_u48 buf tid
   | Probe_reply { tid; alive } ->
     put_u48 buf tid;
     put_u8 buf (if alive then 1 else 0)
   | Discover { tid; pattern } ->
     put_u48 buf tid;
     put_u48 buf (Pattern.to_int pattern)
   | Discover_reply { tid } -> put_u48 buf tid);
  Buffer.to_bytes buf

(* --- decode ----------------------------------------------------------- *)

(* Decode the packet occupying [bytes.[off .. off+len-1]] — the payload
   view of a frame buffer — without copying the slice first. *)
let decode_sub bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    Stdlib.Error "bad slice"
  else
  try
    let r = { bytes; pos = off; limit = off + len } in
    let kind = get_u8 r in
    let flags = get_u8 r in
    let src = get_u16 r in
    let reliable = flags land 0x01 <> 0 in
    let ext = if flags land 0x40 <> 0 then get_u8 r else 0 in
    let ext2 = if ext land 0x40 <> 0 then get_u8 r else 0 in
    let seq =
      (if flags land 0x02 <> 0 then 1 else 0)
      lor ((ext land 0x07) lsl 1)
      lor ((ext2 land 0x0F) lsl 4)
    in
    let ack =
      if flags land 0x04 <> 0 then
        Some
          ((if flags land 0x08 <> 0 then 1 else 0)
           lor (((ext lsr 3) land 0x07) lsl 1)
           lor (((ext2 lsr 4) land 0x0F) lsl 4))
      else None
    in
    let retry = flags land 0x10 <> 0 in
    let need_put_data = flags land 0x20 <> 0 in
    let run = flags land 0x80 <> 0 in
    let body_result =
      match kind with
      | 1 ->
        let tid = get_u48 r in
        let pattern = Pattern.of_int (get_u48 r) in
        let arg = get_i32 r in
        let put_size = get_u32 r in
        let get_size = get_u32 r in
        let data = get_data_field r in
        Ok (Request { tid; pattern; arg; put_size; get_size; data; retry })
      | 2 ->
        let tid = get_u48 r in
        let arg = get_i32 r in
        let put_transferred = get_u32 r in
        let data = get_data_field r in
        Ok (Accept { tid; arg; put_transferred; need_put_data; data })
      | 3 ->
        let tid = get_u48 r in
        let data = get_data_field r in
        Ok (Put_data { tid; data })
      | 4 -> Ok Ack
      | 5 -> Ok (Busy { tid = get_u48 r })
      | 6 ->
        let tid = get_u48 r in
        (match err_of_int (get_u8 r) with
         | Ok code -> Ok (Error { tid; code })
         | Error e -> Error e)
      | 7 -> Ok (Cancel_request { tid = get_u48 r })
      | 8 ->
        let tid = get_u48 r in
        Ok (Cancel_reply { tid; ok = get_u8 r <> 0 })
      | 9 -> Ok (Probe { tid = get_u48 r })
      | 10 ->
        let tid = get_u48 r in
        Ok (Probe_reply { tid; alive = get_u8 r <> 0 })
      | 11 ->
        let tid = get_u48 r in
        let pattern = Pattern.of_int (get_u48 r) in
        Ok (Discover { tid; pattern })
      | 12 -> Ok (Discover_reply { tid = get_u48 r })
      | n -> Error (Printf.sprintf "unknown packet kind %d" n)
    in
    match body_result with
    | Error _ as e -> e
    | Ok body ->
      if r.pos <> off + len then Error "trailing bytes"
      else Ok { src; reliable; seq; ack; run; body }
  with
  | Truncated -> Error "truncated packet"
  | Invalid_argument msg -> Error msg

let decode bytes = decode_sub bytes ~off:0 ~len:(Bytes.length bytes)

let data_bytes t =
  match t.body with
  | Request { data; _ } | Accept { data; _ } | Put_data { data; _ } -> Bytes.length data
  | Ack | Busy _ | Error _ | Cancel_request _ | Cancel_reply _ | Probe _ | Probe_reply _
  | Discover _ | Discover_reply _ -> 0

let describe t =
  let body =
    match t.body with
    | Request { tid; data; retry; _ } ->
      Printf.sprintf "REQ#%d%s%s" (tid land 0xFFFF)
        (if Bytes.length data > 0 then Printf.sprintf "+%dB" (Bytes.length data) else "")
        (if retry then " (retry)" else "")
    | Accept { tid; data; need_put_data; _ } ->
      Printf.sprintf "ACCEPT#%d%s%s" (tid land 0xFFFF)
        (if Bytes.length data > 0 then Printf.sprintf "+%dB" (Bytes.length data) else "")
        (if need_put_data then " (need-data)" else "")
    | Put_data { tid; data } -> Printf.sprintf "DATA#%d+%dB" (tid land 0xFFFF) (Bytes.length data)
    | Ack -> "ACK"
    | Busy { tid } -> Printf.sprintf "BUSY#%d" (tid land 0xFFFF)
    | Error { tid; code } ->
      Printf.sprintf "ERR#%d:%s" (tid land 0xFFFF)
        (match code with
         | Err_unadvertised -> "unadvertised"
         | Err_crashed -> "crashed"
         | Err_cancelled -> "cancelled")
    | Cancel_request { tid } -> Printf.sprintf "CANCEL#%d" (tid land 0xFFFF)
    | Cancel_reply { tid; ok } -> Printf.sprintf "CANCEL-R#%d:%b" (tid land 0xFFFF) ok
    | Probe { tid } -> Printf.sprintf "PROBE#%d" (tid land 0xFFFF)
    | Probe_reply { tid; alive } -> Printf.sprintf "PROBE-R#%d:%b" (tid land 0xFFFF) alive
    | Discover { tid; _ } -> Printf.sprintf "DISCOVER#%d" (tid land 0xFFFF)
    | Discover_reply { tid } -> Printf.sprintf "DISCOVER-R#%d" (tid land 0xFFFF)
  in
  let ack = match t.ack with None -> "" | Some a -> Printf.sprintf "+ack(%d)" a in
  Printf.sprintf "%s%s" body ack

let pp ppf t = Format.pp_print_string ppf (describe t)
