(** SODA wire format.

    Every kernel-to-kernel message is one of these packets, really encoded
    to bytes before hitting the simulated bus (so transmission time, CRC
    corruption and codec bugs are all exercised for real).

    The protocol follows §5.2.2–§5.2.3 of the paper:
    - [Request] carries put-direction data only on its first transmission;
      retries are flagged and dataless;
    - [Accept] is both the server's data transfer and (usually) the
      piggybacked acknowledgement of the REQUEST;
    - [Busy] is the NACK returned when the server handler (and, in the
      non-pipelined kernel, the input buffer) is unavailable;
    - [Put_data] re-supplies put-direction data that was wasted on a
      transmission that met a busy handler (the "DATA+ACK" packet of the
      six-packet EXCHANGE trace);
    - [Probe]/[Probe_reply] implement delivered-request monitoring (§3.6.2);
    - [Discover]/[Discover_reply] implement broadcast name lookup (§3.4.4). *)

type err_code =
  | Err_unadvertised  (** pattern not advertised at destination *)
  | Err_crashed  (** transaction predates a crash/reboot *)
  | Err_cancelled  (** transaction cancelled or already completed *)

type body =
  | Request of {
      tid : int;
      pattern : Soda_base.Pattern.t;
      arg : int;
      put_size : int;  (** bytes the requester is offering *)
      get_size : int;  (** bytes the requester can receive *)
      data : bytes;  (** put data; empty on retries *)
      retry : bool;
    }
  | Accept of {
      tid : int;
      arg : int;
      put_transferred : int;  (** bytes of put data the server is taking *)
      need_put_data : bool;  (** true when the put data was wasted and must be resent *)
      data : bytes;  (** get-direction data *)
    }
  | Put_data of { tid : int; data : bytes }
  | Ack
  | Busy of { tid : int }
  | Error of { tid : int; code : err_code }
  | Cancel_request of { tid : int }
  | Cancel_reply of { tid : int; ok : bool }
  | Probe of { tid : int }
  | Probe_reply of { tid : int; alive : bool }
  | Discover of { tid : int; pattern : Soda_base.Pattern.t }
  | Discover_reply of { tid : int }

type t = {
  src : int;  (** sender machine id *)
  reliable : bool;  (** sender retransmits until acknowledged *)
  seq : int;
      (** modular sequence number, 0..[seq_mask] (meaningful when
          [reliable]); the window-1 degenerate case only ever uses 0/1 and
          encodes exactly as the original alternating bit *)
  ack : int option;  (** piggybacked cumulative acknowledgement *)
  run : bool;
      (** first packet of a send run (nothing else outstanding when it was
          launched): a receiver holding no connection record may synchronise
          its window base on it. Windowed (> 1) transports only; the
          window-1 encoding never sets the flag. *)
  body : body;
}

(** Sequence numbers are 8 bits on the wire, in a two-tier extension
    scheme: the low bit rides the original flag positions; bits 1-3 ride
    a first extension byte present only when non-zero (flag 0x40) — the
    historical 4-bit layout; bits 4-7 ride a second extension byte whose
    presence is signalled by bit 6 of the first. Window-1 packets stay
    byte-identical to the seed encoding and window<=8 packets to the
    single-extension 4-bit format. *)
val seq_mask : int

(** Exact number of bytes {!encode} produces for [t] (header, up to two
    optional extension bytes, body). Lets callers acquire exactly-sized
    pooled buffers up front. *)
val encoded_size : t -> int

(** [encode_into t buf ~off] writes the packet at [buf.[off ..]] and
    returns the byte count (always [encoded_size t]). The buffer must
    have room for [encoded_size t] bytes at [off]; used with pooled
    frame buffers so encoding allocates nothing. *)
val encode_into : t -> bytes -> off:int -> int

val encode : t -> bytes

(** The seed's [Buffer]-based encoder, kept as the reference allocator:
    byte-for-byte equal to {!encode} on every packet (property-tested in
    test/test_scale.ml), but allocating. Not used on any hot path. *)
val encode_buffer : t -> bytes

val decode : bytes -> (t, string) result

(** [decode_sub bytes ~off ~len] decodes the packet occupying exactly
    [bytes.[off .. off+len-1]] — the payload view of a frame buffer —
    without copying the slice out first. Rejects trailing bytes within
    the slice, like {!decode}. *)
val decode_sub : bytes -> off:int -> len:int -> (t, string) result

(** Number of payload-data bytes carried (for accounting). *)
val data_bytes : t -> int

(** Short human-readable form for traces: "REQ#12+800B" etc. *)
val describe : t -> string

val pp : Format.formatter -> t -> unit
