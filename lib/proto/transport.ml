module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Stats = Soda_sim.Stats
module Trace = Soda_sim.Trace
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Types = Soda_base.Types

type completion =
  | Comp_accepted of { arg : int; put_transferred : int; get_data : bytes }
  | Comp_unadvertised
  | Comp_crashed
  | Comp_discovered of int list

type accept_outcome = Acc_success of bytes | Acc_cancelled | Acc_crashed

type delivery_decision = [ `Deliver | `Busy | `Unadvertised ]

type callbacks = {
  deliver_request :
    src:int ->
    tid:int ->
    pattern:Pattern.t ->
    arg:int ->
    put_size:int ->
    get_size:int ->
    delivery_decision;
  complete_request : tid:int -> completion -> unit;
  advertised : Pattern.t -> bool;
  classify_unknown_tid : int -> [ `Completed | `Stale ];
}

(* ---- outbound reliable machinery -------------------------------------- *)

type send_outcome =
  | Out_acked
  | Out_error of Wire.err_code
  | Out_cancel_reply of bool
  | Out_timeout

type send_kind = K_request | K_accept | K_put_data | K_cancel

type inflight = {
  if_kind : send_kind;
  if_tid : int;
  if_body : Wire.body;
  mutable if_seq : bool;
  mutable if_retries : int;
  mutable if_busy_attempts : int;
  mutable if_waiting_busy : bool;  (* parked between BUSY retries *)
  mutable if_timer : Engine.event_id option;
  mutable if_finished : bool;
  if_done : send_outcome -> unit;
}

type pending_send = {
  ps_kind : send_kind;
  ps_tid : int;
  ps_body : Wire.body;
  ps_done : send_outcome -> unit;
  ps_retries : int;  (* preserved when a parked in-flight send is requeued *)
  ps_busy : int;
}

type conn = {
  peer : int;
  mutable send_bit : bool;
  mutable inflight : inflight option;
  sendq : pending_send Queue.t;
  mutable recv_bit : bool option;  (* expected next incoming bit; None = take any *)
  mutable last_acked_bit : bool option;  (* last consumed incoming bit *)
  mutable last_consumed : (int * int) option;  (* (kind code, tid) of last consumed *)
  mutable last_response : Wire.body option;  (* replayed on duplicates *)
  mutable ack_owed : bool option;
  mutable ack_timer : Engine.event_id option;
  mutable expiry_timer : Engine.event_id option;
}

(* ---- requester-side transaction records -------------------------------- *)

type req_state = Rq_sent | Rq_delivered | Rq_done

type out_req = {
  or_tid : int;
  or_dst : int;
  or_put : bytes;
  or_get_size : int;
  or_submit_us : int;  (* trap time, for the completion-latency histogram *)
  mutable or_state : req_state;
  mutable or_probe_timer : Engine.event_id option;
  mutable or_probe_misses : int;
  mutable or_probe_outstanding : bool;
  mutable or_cancel_pending : (bool -> unit) option;
      (* a CANCEL blocked until the server's state is known (§5.2.3) *)
}

type discover_req = {
  dr_tid : int;
  dr_max : int;
  mutable dr_mids : int list;  (* reverse order *)
  mutable dr_timer : Engine.event_id option;
}

(* ---- server-side transaction records ----------------------------------- *)

type accept_ctx = {
  ac_put_transferred : int;
  mutable ac_need_data : bool;
  mutable ac_awaiting_ack : bool;
  mutable ac_received : bytes;
  mutable ac_done : bool;
  mutable ac_data_timer : Engine.event_id option;
  ac_on_done : accept_outcome -> unit;
}

type srv_state =
  | Srv_buffered
  | Srv_delivered
  | Srv_accepting of accept_ctx
  | Srv_completed
  | Srv_cancelled

type srv_txn = {
  st_src : int;
  st_tid : int;
  st_put_size : int;
  st_get_size : int;
  mutable st_put_data : bytes option;
  mutable st_state : srv_state;
  mutable st_gc : Engine.event_id option;
}

type buffered_request = {
  br_src : int;
  br_tid : int;
  br_pattern : Pattern.t;
  br_arg : int;
  br_put_size : int;
  br_get_size : int;
}

type t = {
  engine : Engine.t;
  bus : Bus.t;
  mid : int;
  cost : Cost.t;
  trace : Trace.t;  (* the network's shared structured-event recorder *)
  actor_name : string;
  stats : Stats.t;
  rng : Rng.t;
  mutable nic : Nic.t option;
  mutable cb : callbacks option;
  conns : (int, conn) Hashtbl.t;
  out_reqs : (int, out_req) Hashtbl.t;
  discovers : (int, discover_req) Hashtbl.t;
  srv_txns : (int * int, srv_txn) Hashtbl.t;
  mutable buffered : buffered_request option;  (* pipelined input buffer *)
  mutable epoch : int;  (* bumped on reset; stale deferred events are dropped *)
}

let mid t = t.mid
let stats t = t.stats
let cost t = t.cost

let callbacks t =
  match t.cb with
  | Some cb -> cb
  | None -> failwith "Transport: callbacks not set"

let actor t = t.actor_name

(* Structured-event emission: one branch when tracing is off; the payload
   is only built under the guard, so a quiet run allocates nothing. *)
let tracing t = Recorder.tracing t.trace

let event t kind =
  Recorder.emit t.trace ~time_us:(Engine.now t.engine) ~mid:t.mid ~actor:t.actor_name kind

(* Schedule an engine event that is dropped if the node resets meanwhile. *)
let defer t ~delay fn =
  let epoch = t.epoch in
  Engine.schedule t.engine ~delay (fun () -> if t.epoch = epoch then fn ())

(* Charge kernel CPU for one packet event and attribute it (§5.5 breakdown). *)
let packet_cpu_us t =
  Stats.add_time t.stats (Cost.label Cost.Protocol) t.cost.Cost.packet_protocol_us;
  Stats.add_time t.stats (Cost.label Cost.Conn_timer) t.cost.Cost.conn_timer_us;
  Stats.add_time t.stats (Cost.label Cost.Retrans_timer) t.cost.Cost.retrans_timer_us;
  t.cost.Cost.packet_protocol_us + t.cost.Cost.conn_timer_us + t.cost.Cost.retrans_timer_us

(* ---- connection records ------------------------------------------------ *)

let conn_active conn =
  conn.inflight <> None || not (Queue.is_empty conn.sendq) || conn.ack_owed <> None

let rec arm_expiry t conn =
  (match conn.expiry_timer with
   | Some id -> Engine.cancel t.engine id
   | None -> ());
  let delay = Cost.record_expiry_us t.cost in
  conn.expiry_timer <-
    Some
      (defer t ~delay (fun () ->
           conn.expiry_timer <- None;
           if conn_active conn then arm_expiry t conn
           else begin
             Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
               "delta-t record for peer %d expired (take any SN)" conn.peer;
             Stats.incr t.stats "deltat.records_expired";
             Hashtbl.remove t.conns conn.peer
           end))

let conn_for t peer =
  match Hashtbl.find_opt t.conns peer with
  | Some c -> c
  | None ->
    let c =
      {
        peer;
        send_bit = false;
        inflight = None;
        sendq = Queue.create ();
        recv_bit = None;
        last_acked_bit = None;
        last_consumed = None;
        last_response = None;
        ack_owed = None;
        ack_timer = None;
        expiry_timer = None;
      }
    in
    Hashtbl.replace t.conns peer c;
    Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
      "delta-t record created for peer %d" peer;
    Stats.incr t.stats "deltat.records_created";
    arm_expiry t c;
    c

let touch t conn = arm_expiry t conn

(* ---- raw packet emission ----------------------------------------------- *)

let kind_name body =
  match body with
  | Wire.Request _ -> "REQ"
  | Wire.Accept _ -> "ACCEPT"
  | Wire.Put_data _ -> "DATA"
  | Wire.Ack -> "ACK"
  | Wire.Busy _ -> "BUSY"
  | Wire.Error _ -> "ERR"
  | Wire.Cancel_request _ -> "CANCEL"
  | Wire.Cancel_reply _ -> "CANCEL_R"
  | Wire.Probe _ -> "PROBE"
  | Wire.Probe_reply _ -> "PROBE_R"
  | Wire.Discover _ -> "DISCOVER"
  | Wire.Discover_reply _ -> "DISCOVER_R"

let pkt_of_body body =
  match body with
  | Wire.Request _ -> Event.P_request
  | Wire.Accept _ -> Event.P_accept
  | Wire.Put_data _ -> Event.P_put_data
  | Wire.Ack -> Event.P_ack
  | Wire.Busy _ -> Event.P_busy
  | Wire.Error _ -> Event.P_error
  | Wire.Cancel_request _ -> Event.P_cancel
  | Wire.Cancel_reply _ -> Event.P_cancel_reply
  | Wire.Probe _ -> Event.P_probe
  | Wire.Probe_reply _ -> Event.P_probe_reply
  | Wire.Discover _ -> Event.P_discover
  | Wire.Discover_reply _ -> Event.P_discover_reply

let tid_of_body body =
  match body with
  | Wire.Request { tid; _ }
  | Wire.Accept { tid; _ }
  | Wire.Put_data { tid; _ }
  | Wire.Busy { tid }
  | Wire.Error { tid; _ }
  | Wire.Cancel_request { tid }
  | Wire.Cancel_reply { tid; _ }
  | Wire.Probe { tid }
  | Wire.Probe_reply { tid; _ }
  | Wire.Discover { tid; _ }
  | Wire.Discover_reply { tid } -> tid
  | Wire.Ack -> Event.no_tid

(* Emit a packet to [dst], picking up any owed acknowledgement (piggyback,
   §5.2.3). The kernel CPU cost is charged before the NIC transmits. *)
let emit t ~dst ?(reliable = false) ?(seq = false) ?force_ack body =
  let nic = match t.nic with Some n -> n | None -> failwith "Transport: no NIC" in
  let ack =
    match force_ack with
    | Some _ as a -> a
    | None ->
      (match dst with
       | `Peer peer ->
         let conn = conn_for t peer in
         let owed = conn.ack_owed in
         if owed <> None then begin
           conn.ack_owed <- None;
           (match conn.ack_timer with
            | Some id ->
              Engine.cancel t.engine id;
              conn.ack_timer <- None
            | None -> ())
         end;
         owed
       | `Broadcast -> None)
  in
  let pkt = { Wire.src = t.mid; reliable; seq; ack; body } in
  let bytes = Wire.encode pkt in
  let cpu = packet_cpu_us t in
  let tx = Bus.transmission_time_us t.bus ~payload_bytes:(Bytes.length bytes) in
  Stats.add_time t.stats (Cost.label Cost.Transmission) tx;
  Stats.incr t.stats "pkt.sent.total";
  Stats.incr t.stats (Printf.sprintf "pkt.sent.%s" (kind_name body));
  if tracing t then
    event t
      (Event.Tx
         {
           tid = tid_of_body body;
           peer = (match dst with `Peer p -> p | `Broadcast -> Event.broadcast_peer);
           pkt = pkt_of_body body;
           bytes = Bytes.length bytes;
           seq;
           retry = (match body with Wire.Request { retry; _ } -> retry | _ -> false);
         });
  ignore
    (defer t ~delay:cpu (fun () ->
         match dst with
         | `Peer peer -> Nic.send nic ~dst:peer bytes
         | `Broadcast -> Nic.broadcast nic bytes))

(* A response to a consumed reliable message: remember it for duplicate
   replay, and let it carry the owed ack. *)
let respond_consumed t conn body =
  conn.last_response <- Some body;
  emit t ~dst:(`Peer conn.peer) body

(* ---- owed acknowledgements --------------------------------------------- *)

let owe_ack ?(extra_grace = 0) t conn bit =
  conn.ack_owed <- Some bit;
  if conn.ack_timer = None then
    conn.ack_timer <-
      Some
        (defer t ~delay:(t.cost.Cost.ack_grace_us + extra_grace) (fun () ->
             conn.ack_timer <- None;
             if conn.ack_owed <> None then begin
               Stats.incr t.stats "pkt.standalone_acks";
               emit t ~dst:(`Peer conn.peer) Wire.Ack
             end))

let replay_response t conn =
  Stats.incr t.stats "pkt.duplicates";
  Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
    "duplicate from peer %d; replaying response" conn.peer;
  if conn.ack_owed <> None then begin
    (* Our ack is still within its grace window; quell the retransmission
       with an immediate standalone ack. *)
    emit t ~dst:(`Peer conn.peer) Wire.Ack
  end
  else begin
    match conn.last_response, conn.last_acked_bit with
    | Some body, ack -> emit t ~dst:(`Peer conn.peer) ?force_ack:ack body
    | None, Some bit -> emit t ~dst:(`Peer conn.peer) ~force_ack:bit Wire.Ack
    | None, None -> ()
  end

(* ---- stop-and-wait sending --------------------------------------------- *)

let retrans_delay t inflight =
  let base =
    float_of_int t.cost.Cost.retrans_interval_us
    *. (t.cost.Cost.retrans_backoff ** float_of_int inflight.if_retries)
  in
  (* A 2000-byte frame holds the 1 Mbit medium for ~16 ms, and the expected
     acknowledgement path includes the peer's data copies and (for a
     REQUEST) the whole accept turn-around; the timeout must comfortably
     exceed all of it or every large transfer retransmits spuriously. *)
  let tx bytes = Bus.transmission_time_us t.bus ~payload_bytes:(bytes + 40) in
  let copy bytes = Cost.data_copy_us t.cost ~bytes in
  let turnaround =
    t.cost.Cost.ack_grace_us + t.cost.Cost.accept_trap_us + t.cost.Cost.context_switch_us
    + (4 * t.cost.Cost.packet_protocol_us)
  in
  let extra =
    match inflight.if_body with
    | Wire.Request { data; get_size; _ } ->
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + tx get_size + copy get_size + turnaround
    | Wire.Accept { data; put_transferred; _ } ->
      (* the ack usually rides the next REQUEST, which carries a comparable
         put payload: allow for its copy and transmission too *)
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + (2 * copy put_transferred) + tx put_transferred
      + turnaround
    | Wire.Put_data { data; _ } ->
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + turnaround
    | _ -> 2 * tx 0
  in
  let jitter = Rng.float t.rng (base *. 0.25) in
  int_of_float (base +. jitter) + extra

let busy_delay t inflight =
  let base =
    float_of_int t.cost.Cost.busy_retry_us
    *. (t.cost.Cost.busy_retry_backoff ** float_of_int (inflight.if_busy_attempts - 1))
  in
  let capped = min base (float_of_int t.cost.Cost.busy_retry_max_us) in
  let jitter = Rng.float t.rng (capped *. 0.1) in
  int_of_float (capped +. jitter)

let body_for_transmission inflight =
  match inflight.if_body with
  | Wire.Request r when inflight.if_retries + inflight.if_busy_attempts > 0 ->
    (* Data rides only on the first transmission (§5.2.3). *)
    Wire.Request
      {
        tid = r.tid;
        pattern = r.pattern;
        arg = r.arg;
        put_size = r.put_size;
        get_size = r.get_size;
        data = Bytes.empty;
        retry = true;
      }
  | body -> body

let rec transmit_inflight t conn inflight =
  inflight.if_seq <- conn.send_bit;
  let attempt = inflight.if_retries + inflight.if_busy_attempts in
  if attempt > 0 then begin
    Stats.incr t.stats "pkt.retransmissions";
    if tracing t then
      event t
        (Event.Retransmit
           { tid = inflight.if_tid; peer = conn.peer; pkt = pkt_of_body inflight.if_body;
             attempt })
  end;
  let body = body_for_transmission inflight in
  (* The kernel copies the client buffer into the output buffer as part of
     sending (§5.2): data-bearing transmissions pay one copy here, in the
     stop-and-wait critical path. *)
  let data_bytes =
    match body with
    | Wire.Request { data; _ } | Wire.Accept { data; _ } | Wire.Put_data { data; _ } ->
      Bytes.length data
    | _ -> 0
  in
  let copy_us = if data_bytes > 0 then Cost.data_copy_us t.cost ~bytes:data_bytes else 0 in
  if copy_us > 0 then Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
  if copy_us = 0 then begin
    emit t ~dst:(`Peer conn.peer) ~reliable:true ~seq:inflight.if_seq body;
    arm_retrans t conn inflight
  end
  else begin
    (* The imminent emission will carry any owed ack; hold the standalone
       ack back while the output buffer is being filled. *)
    (match conn.ack_timer with
     | Some id when conn.ack_owed <> None ->
       Engine.cancel t.engine id;
       conn.ack_timer <- None
     | Some _ | None -> ());
    ignore
      (defer t ~delay:copy_us (fun () ->
           if not inflight.if_finished then begin
             emit t ~dst:(`Peer conn.peer) ~reliable:true ~seq:inflight.if_seq body;
             arm_retrans t conn inflight
           end
           else if conn.ack_owed <> None then
             (* the emission was cancelled; release the held ack *)
             owe_ack t conn (Option.get conn.ack_owed)))
  end

and arm_retrans t conn inflight =
  (match inflight.if_timer with
   | Some id -> Engine.cancel t.engine id
   | None -> ());
  let delay = retrans_delay t inflight in
  inflight.if_timer <-
    Some
      (defer t ~delay (fun () ->
           inflight.if_timer <- None;
           if not inflight.if_finished then begin
             if inflight.if_retries >= t.cost.Cost.max_retrans then
               finish_inflight t conn inflight Out_timeout
             else begin
               inflight.if_retries <- inflight.if_retries + 1;
               transmit_inflight t conn inflight
             end
           end))

and finish_inflight t conn inflight outcome =
  if not inflight.if_finished then begin
    inflight.if_finished <- true;
    (match outcome with
     | Out_acked when tracing t ->
       event t
         (Event.Acked
            { tid = inflight.if_tid; peer = conn.peer; pkt = pkt_of_body inflight.if_body })
     | _ -> ());
    (match inflight.if_timer with
     | Some id ->
       Engine.cancel t.engine id;
       inflight.if_timer <- None
     | None -> ());
    (match outcome with
     | Out_acked | Out_cancel_reply _ -> conn.send_bit <- not conn.send_bit
     | Out_error code when code <> Wire.Err_unadvertised ->
       (* The peer consumed the message before rejecting it. *)
       conn.send_bit <- not conn.send_bit
     | Out_error _ | Out_timeout -> ());
    conn.inflight <- None;
    inflight.if_done outcome;
    start_next t conn
  end

and start_next t conn =
  if conn.inflight = None && not (Queue.is_empty conn.sendq) then begin
    let pending = Queue.pop conn.sendq in
    let inflight =
      {
        if_kind = pending.ps_kind;
        if_tid = pending.ps_tid;
        if_body = pending.ps_body;
        if_seq = conn.send_bit;
        if_retries = pending.ps_retries;
        if_busy_attempts = pending.ps_busy;
        if_waiting_busy = false;
        if_timer = None;
        if_finished = false;
        if_done = pending.ps_done;
      }
    in
    conn.inflight <- Some inflight;
    transmit_inflight t conn inflight
  end

let queue_push_front queue x =
  let tmp = Queue.create () in
  Queue.push x tmp;
  Queue.transfer queue tmp;
  Queue.transfer tmp queue

(* The DATA of an in-progress exchange must not starve behind a new
   REQUEST that is bouncing off the very handler the exchange is blocking:
   park the busy-waiting request back at the head of the queue so the
   pending Put_data goes first. *)
let park_busy_inflight t conn inflight =
  (match inflight.if_timer with
   | Some id ->
     Engine.cancel t.engine id;
     inflight.if_timer <- None
   | None -> ());
  inflight.if_finished <- true;
  conn.inflight <- None;
  queue_push_front conn.sendq
    {
      ps_kind = inflight.if_kind;
      ps_tid = inflight.if_tid;
      ps_body = inflight.if_body;
      ps_done = inflight.if_done;
      ps_retries = inflight.if_retries;
      ps_busy = inflight.if_busy_attempts;
    };
  (* keep any pending DATA ahead of requeued requests *)
  let puts = Queue.create () and rest = Queue.create () in
  Queue.iter (fun p -> Queue.push p (if p.ps_kind = K_put_data then puts else rest)) conn.sendq;
  Queue.clear conn.sendq;
  Queue.transfer puts conn.sendq;
  Queue.transfer rest conn.sendq

let send_reliable t ~peer ~kind ~tid body ~on_done =
  let conn = conn_for t peer in
  touch t conn;
  if tracing t then event t (Event.Enqueue { tid; peer; pkt = pkt_of_body body });
  let pending =
    { ps_kind = kind; ps_tid = tid; ps_body = body; ps_done = on_done; ps_retries = 0;
      ps_busy = 0 }
  in
  (match kind, conn.inflight with
   | K_put_data, Some inflight
     when inflight.if_waiting_busy && inflight.if_kind = K_request
          && not inflight.if_finished ->
     park_busy_inflight t conn inflight;
     queue_push_front conn.sendq pending
   | _ -> Queue.push pending conn.sendq);
  start_next t conn

(* ---- creation ----------------------------------------------------------- *)

let create ~engine ~bus ~mid ~cost ~trace =
  let t =
    {
      engine;
      bus;
      mid;
      cost;
      trace;
      actor_name = Printf.sprintf "soda-%d" mid;
      stats = Stats.create ();
      rng = Rng.split (Engine.rng engine);
      nic = None;
      cb = None;
      conns = Hashtbl.create 8;
      out_reqs = Hashtbl.create 16;
      discovers = Hashtbl.create 4;
      srv_txns = Hashtbl.create 16;
      buffered = None;
      epoch = 0;
    }
  in
  t

let set_callbacks t cb = t.cb <- Some cb

(* ---- probes (§3.6.2) ---------------------------------------------------- *)

let stop_probing t req =
  match req.or_probe_timer with
  | Some id ->
    Engine.cancel t.engine id;
    req.or_probe_timer <- None
  | None -> ()

let complete_out_req t req completion =
  if req.or_state <> Rq_done then begin
    req.or_state <- Rq_done;
    stop_probing t req;
    Hashtbl.remove t.out_reqs req.or_tid;
    Stats.sample t.stats "req.latency_us" (Engine.now t.engine - req.or_submit_us);
    if tracing t then begin
      let status =
        match completion with
        | Comp_accepted _ -> "accepted"
        | Comp_unadvertised -> "unadvertised"
        | Comp_crashed -> "crashed"
        | Comp_discovered _ -> "discovered"
      in
      event t (Event.Complete { tid = req.or_tid; status })
    end;
    (* A pending CANCEL loses the race against completion (§3.3.3). *)
    (match req.or_cancel_pending with
     | Some k ->
       req.or_cancel_pending <- None;
       k false
     | None -> ());
    (callbacks t).complete_request ~tid:req.or_tid completion
  end

let rec arm_probe t req =
  req.or_probe_timer <-
    Some
      (defer t ~delay:t.cost.Cost.probe_interval_us (fun () ->
           req.or_probe_timer <- None;
           if req.or_state = Rq_delivered then begin
             if req.or_probe_outstanding then begin
               req.or_probe_misses <- req.or_probe_misses + 1;
               Stats.incr t.stats "probe.misses"
             end;
             if req.or_probe_misses >= t.cost.Cost.probe_miss_limit then begin
               Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
                 "probe: server %d silent for request #%d; reporting CRASHED" req.or_dst
                 req.or_tid;
               complete_out_req t req Comp_crashed
             end
             else begin
               req.or_probe_outstanding <- true;
               Stats.incr t.stats "probe.sent";
               if tracing t then
                 event t
                   (Event.Probe
                      { tid = req.or_tid; peer = req.or_dst; misses = req.or_probe_misses });
               emit t ~dst:(`Peer req.or_dst) (Wire.Probe { tid = req.or_tid });
               arm_probe t req
             end
           end))

let rec mark_delivered t req =
  if req.or_state = Rq_sent then begin
    req.or_state <- Rq_delivered;
    arm_probe t req;
    (* A CANCEL waiting for the server's state to become known can now
       proceed remotely. *)
    match req.or_cancel_pending with
    | Some k ->
      req.or_cancel_pending <- None;
      send_remote_cancel t req k
    | None -> ()
  end

and send_remote_cancel t req k =
  send_reliable t ~peer:req.or_dst ~kind:K_cancel ~tid:req.or_tid
    (Wire.Cancel_request { tid = req.or_tid })
    ~on_done:(fun outcome ->
      match outcome with
      | Out_cancel_reply true ->
        if req.or_state <> Rq_done then begin
          req.or_state <- Rq_done;
          stop_probing t req;
          Hashtbl.remove t.out_reqs req.or_tid;
          k true
        end
        else k false
      | Out_cancel_reply false -> k false
      | Out_error _ | Out_acked -> k false
      | Out_timeout ->
        (* Server dead: the request itself fails CRASHED; cancel fails
           because the request "completed" first. *)
        complete_out_req t req Comp_crashed;
        k false)

(* ---- requester: submitting --------------------------------------------- *)

let submit_request t ~dst ~tid ~pattern ~arg ~put_data ~get_size =
  let req =
    {
      or_tid = tid;
      or_dst = dst;
      or_put = put_data;
      or_get_size = get_size;
      or_submit_us = Engine.now t.engine;
      or_state = Rq_sent;
      or_probe_timer = None;
      or_probe_misses = 0;
      or_probe_outstanding = false;
      or_cancel_pending = None;
    }
  in
  Hashtbl.replace t.out_reqs tid req;
  Stats.incr t.stats "req.submitted";
  let body =
    Wire.Request
      {
        tid;
        pattern;
        arg;
        put_size = Bytes.length put_data;
        get_size;
        data = put_data;
        retry = false;
      }
  in
  send_reliable t ~peer:dst ~kind:K_request ~tid body ~on_done:(fun outcome ->
      match outcome with
      | Out_acked -> mark_delivered t req
      | Out_error Wire.Err_unadvertised -> complete_out_req t req Comp_unadvertised
      | Out_error _ -> complete_out_req t req Comp_crashed
      | Out_timeout -> complete_out_req t req Comp_crashed
      | Out_cancel_reply _ -> ())

let submit_discover t ~tid ~pattern ~max_mids =
  let dr = { dr_tid = tid; dr_max = max_mids; dr_mids = []; dr_timer = None } in
  Hashtbl.replace t.discovers tid dr;
  Stats.incr t.stats "discover.submitted";
  emit t ~dst:`Broadcast (Wire.Discover { tid; pattern });
  dr.dr_timer <-
    Some
      (defer t ~delay:t.cost.Cost.discover_window_us (fun () ->
           dr.dr_timer <- None;
           Hashtbl.remove t.discovers tid;
           (callbacks t).complete_request ~tid (Comp_discovered (List.rev dr.dr_mids))))

(* ---- server: transactions ----------------------------------------------- *)

let srv_gc t txn =
  (match txn.st_gc with Some id -> Engine.cancel t.engine id | None -> ());
  txn.st_gc <-
    Some
      (defer t ~delay:(Cost.record_expiry_us t.cost) (fun () ->
           Hashtbl.remove t.srv_txns (txn.st_src, txn.st_tid)))

let accept_check_done t txn ctx =
  if (not ctx.ac_done) && (not ctx.ac_need_data) && not ctx.ac_awaiting_ack then begin
    ctx.ac_done <- true;
    txn.st_state <- Srv_completed;
    srv_gc t txn;
    ctx.ac_on_done (Acc_success ctx.ac_received)
  end

let truncate_bytes data len =
  if Bytes.length data <= len then data else Bytes.sub data 0 len

let accept t ~requester_mid ~requester_tid ~arg ~get_capacity ~data_out ~on_done =
  let key = (requester_mid, requester_tid) in
  match Hashtbl.find_opt t.srv_txns key with
  | Some { st_state = Srv_cancelled; _ } -> on_done Acc_cancelled
  | Some ({ st_state = Srv_accepting _ | Srv_completed; _ } as _txn) ->
    (* Double accept of the same request. *)
    on_done Acc_cancelled
  | Some ({ st_state = Srv_delivered | Srv_buffered; _ } as txn) ->
    let put_transferred = min txn.st_put_size get_capacity in
    let data_out = truncate_bytes data_out txn.st_get_size in
    let need_data = put_transferred > 0 && txn.st_put_data = None in
    let received =
      match txn.st_put_data with
      | Some data -> truncate_bytes data put_transferred
      | None -> Bytes.empty
    in
    (* The input-buffer -> client copy of the requester's put data happens
       as part of the ACCEPT command; the outbound copy is charged at
       transmit time. *)
    let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length received) in
    Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
    let ctx =
      {
        ac_put_transferred = put_transferred;
        ac_need_data = need_data;
        ac_awaiting_ack = Bytes.length data_out > 0;
        ac_received = received;
        ac_done = false;
        ac_data_timer = None;
        ac_on_done = on_done;
      }
    in
    txn.st_state <- Srv_accepting ctx;
    (* The put data was wasted on a busy transmission and must be fetched
       from the requester. That wait is bounded by the Delta-t receive
       lifetime: a requester that crashed (or was reset) after our ACCEPT
       will never send it, and without this timer the handler — and with
       it the whole server — would stay busy forever. *)
    if need_data then
      ctx.ac_data_timer <-
        Some
          (defer t ~delay:(Cost.record_expiry_us t.cost) (fun () ->
               ctx.ac_data_timer <- None;
               if (not ctx.ac_done) && ctx.ac_need_data then begin
                 Stats.incr t.stats "accept.data_timeouts";
                 Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
                   "accept of tid %d: put data never arrived; declaring peer %d crashed"
                   requester_tid requester_mid;
                 ctx.ac_done <- true;
                 txn.st_state <- Srv_completed;
                 srv_gc t txn;
                 ctx.ac_on_done Acc_crashed
               end));
    let body =
      Wire.Accept
        { tid = requester_tid; arg; put_transferred; need_put_data = need_data; data = data_out }
    in
    ignore
      (defer t ~delay:copy_us (fun () ->
           send_reliable t ~peer:requester_mid ~kind:K_accept ~tid:requester_tid body
             ~on_done:(fun outcome ->
               match outcome with
               | Out_acked ->
                 ctx.ac_awaiting_ack <- false;
                 accept_check_done t txn ctx
               | Out_error Wire.Err_cancelled ->
                 if not ctx.ac_done then begin
                   ctx.ac_done <- true;
                   txn.st_state <- Srv_completed;
                   srv_gc t txn;
                   ctx.ac_on_done Acc_cancelled
                 end
               | Out_error _ | Out_timeout ->
                 if not ctx.ac_done then begin
                   ctx.ac_done <- true;
                   txn.st_state <- Srv_completed;
                   srv_gc t txn;
                   ctx.ac_on_done Acc_crashed
                 end
               | Out_cancel_reply _ -> ());
           accept_check_done t txn ctx))
  | None ->
    (* Blind accept: either a guessed signature or a requester that crashed
       and lost our record. Send it; the requester's kernel will answer with
       the appropriate error (§3.3.2 rule 6, §5.4 staleness). *)
    let body =
      Wire.Accept
        { tid = requester_tid; arg; put_transferred = 0; need_put_data = false;
          data = Bytes.empty }
    in
    send_reliable t ~peer:requester_mid ~kind:K_accept ~tid:requester_tid body
      ~on_done:(fun outcome ->
        match outcome with
        | Out_acked -> on_done Acc_cancelled
        | Out_error Wire.Err_crashed -> on_done Acc_crashed
        | Out_error _ -> on_done Acc_cancelled
        | Out_timeout -> on_done Acc_crashed
        | Out_cancel_reply _ -> ())

(* ---- cancel -------------------------------------------------------------- *)

let cancel t ~tid ~on_done =
  match Hashtbl.find_opt t.out_reqs tid with
  | None -> on_done false
  | Some req ->
    (match req.or_state with
     | Rq_done -> on_done false
     | Rq_delivered -> send_remote_cancel t req on_done
     | Rq_sent ->
       let conn = conn_for t req.or_dst in
       (* Still queued behind other traffic? Then the server has never seen
          it: kill it locally. *)
       let in_queue =
         Queue.fold
           (fun found p -> found || (p.ps_tid = tid && p.ps_kind = K_request))
           false conn.sendq
       in
       if in_queue then begin
         let keep = Queue.create () in
         Queue.iter
           (fun p -> if not (p.ps_tid = tid && p.ps_kind = K_request) then Queue.push p keep)
           conn.sendq;
         Queue.clear conn.sendq;
         Queue.transfer keep conn.sendq;
         req.or_state <- Rq_done;
         Hashtbl.remove t.out_reqs tid;
         on_done true
       end
       else begin
         match conn.inflight with
         | Some inflight
           when inflight.if_tid = tid && inflight.if_kind = K_request
                && inflight.if_waiting_busy ->
           (* Bouncing off a busy handler: the server never took delivery
              (BUSY does not consume the sequence bit), so a local abort is
              safe and the sequence bit stays unflipped. *)
           inflight.if_finished <- true;
           (match inflight.if_timer with
            | Some id ->
              Engine.cancel t.engine id;
              inflight.if_timer <- None
            | None -> ());
           conn.inflight <- None;
           req.or_state <- Rq_done;
           Hashtbl.remove t.out_reqs tid;
           start_next t conn;
           on_done true
         | _ ->
           (* Await the acknowledgement; the outcome callback resolves us. *)
           req.or_cancel_pending <- Some on_done
       end)

(* ---- incoming packet processing ------------------------------------------ *)

let handle_ack t conn bit =
  match conn.inflight with
  | Some inflight when inflight.if_seq = bit && inflight.if_kind = K_cancel ->
    (* A CANCEL is resolved by its Cancel_reply body (usually in the same
       packet as this ack), not by the bare acknowledgement. *)
    ()
  | Some inflight when inflight.if_seq = bit && not inflight.if_waiting_busy ->
    finish_inflight t conn inflight Out_acked
  | Some inflight when inflight.if_seq = bit && inflight.if_waiting_busy ->
    (* The BUSY was stale; an ack arrived after all (e.g. pipelined hold). *)
    inflight.if_waiting_busy <- false;
    finish_inflight t conn inflight Out_acked
  | _ -> ()

(* Identify a reliable message for duplicate disambiguation: after the
   sender exhausts retransmissions it reuses the sequence bit for its NEXT
   message, so a stale-looking bit with a different transaction id is a
   fresh message, not a duplicate. *)
let message_key body =
  match body with
  | Wire.Request { tid; _ } -> Some (1, tid)
  | Wire.Accept { tid; _ } -> Some (2, tid)
  | Wire.Put_data { tid; _ } -> Some (3, tid)
  | Wire.Cancel_request { tid } -> Some (4, tid)
  | _ -> None

(* Consume a reliable message's sequence bit if it is fresh. Returns
   [`Fresh] if the body should be processed, [`Dup] otherwise. *)
let consume_bit t conn ~key seq =
  let is_dup =
    match conn.recv_bit with
    | Some expected when seq <> expected -> conn.last_consumed = key || key = None
    | Some _ | None -> false
  in
  if is_dup then `Dup
  else begin
    if conn.recv_bit = None then
      Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
        "taking any SN from peer %d (no record)" conn.peer;
    conn.recv_bit <- Some (not seq);
    conn.last_acked_bit <- Some seq;
    conn.last_consumed <- key;
    conn.last_response <- None;
    `Fresh
  end

let handle_request t conn src (r : Wire.body) seq =
  match r with
  | Wire.Request { tid; pattern; arg; put_size; get_size; data; retry } ->
    (match conn.recv_bit with
     | Some expected when seq <> expected && conn.last_consumed = Some (1, tid) ->
       replay_response t conn
     | _ ->
       let cb = callbacks t in
       (match cb.deliver_request ~src ~tid ~pattern ~arg ~put_size ~get_size with
        | `Unadvertised ->
          Stats.incr t.stats "req.unadvertised";
          emit t ~dst:(`Peer conn.peer) (Wire.Error { tid; code = Wire.Err_unadvertised })
        | `Deliver ->
          ignore (consume_bit t conn ~key:(Some (1, tid)) seq);
          (* Hold the ack long enough for a promptly-issued ACCEPT --
             including both its input and output data copies -- to
             piggyback it (§5.2.3). *)
          let extra_grace =
            Cost.data_copy_us t.cost ~bytes:put_size
            + Cost.data_copy_us t.cost ~bytes:get_size
            + t.cost.Cost.accept_trap_us + t.cost.Cost.context_switch_us
            + t.cost.Cost.handler_client_us
          in
          owe_ack ~extra_grace t conn seq;
          let txn =
            {
              st_src = src;
              st_tid = tid;
              st_put_size = put_size;
              st_get_size = get_size;
              st_put_data = (if (not retry) && put_size > 0 then Some data else None);
              st_state = Srv_delivered;
              st_gc = None;
            }
          in
          Hashtbl.replace t.srv_txns (src, tid) txn;
          Stats.incr t.stats "req.delivered";
          if tracing t then
            event t
              (Event.Deliver
                 { tid; src; pattern = Pattern.to_int pattern; put_size; get_size;
                   from_buffer = false })
        | `Busy ->
          if t.cost.Cost.pipelined && t.buffered = None then begin
            ignore (consume_bit t conn ~key:(Some (1, tid)) seq);
            let extra_grace =
              Cost.data_copy_us t.cost ~bytes:put_size
              + Cost.data_copy_us t.cost ~bytes:get_size
              + t.cost.Cost.accept_trap_us + t.cost.Cost.context_switch_us
              + t.cost.Cost.handler_client_us
            in
            owe_ack ~extra_grace t conn seq;
            let txn =
              {
                st_src = src;
                st_tid = tid;
                st_put_size = put_size;
                st_get_size = get_size;
                st_put_data = (if (not retry) && put_size > 0 then Some data else None);
                st_state = Srv_buffered;
                st_gc = None;
              }
            in
            Hashtbl.replace t.srv_txns (src, tid) txn;
            t.buffered <-
              Some
                { br_src = src; br_tid = tid; br_pattern = pattern; br_arg = arg;
                  br_put_size = put_size; br_get_size = get_size };
            Stats.incr t.stats "req.buffered"
          end
          else begin
            Stats.incr t.stats "req.busy_nacked";
            if tracing t then event t (Event.Busy_nack { tid; peer = conn.peer });
            emit t ~dst:(`Peer conn.peer) (Wire.Busy { tid })
          end))
  | _ -> assert false

let flush_buffered t =
  match t.buffered with
  | None -> ()
  | Some br ->
    let cb = callbacks t in
    (match
       cb.deliver_request ~src:br.br_src ~tid:br.br_tid ~pattern:br.br_pattern
         ~arg:br.br_arg ~put_size:br.br_put_size ~get_size:br.br_get_size
     with
     | `Deliver ->
       t.buffered <- None;
       (match Hashtbl.find_opt t.srv_txns (br.br_src, br.br_tid) with
        | Some txn when txn.st_state = Srv_buffered -> txn.st_state <- Srv_delivered
        | Some _ | None -> ());
       Stats.incr t.stats "req.delivered";
       Stats.incr t.stats "req.delivered_from_buffer";
       if tracing t then
         event t
           (Event.Deliver
              { tid = br.br_tid; src = br.br_src; pattern = Pattern.to_int br.br_pattern;
                put_size = br.br_put_size; get_size = br.br_get_size; from_buffer = true })
     | `Busy -> ()
     | `Unadvertised ->
       t.buffered <- None;
       (match Hashtbl.find_opt t.srv_txns (br.br_src, br.br_tid) with
        | Some txn when txn.st_state = Srv_buffered ->
          Hashtbl.remove t.srv_txns (br.br_src, br.br_tid)
        | Some _ | None -> ());
       emit t ~dst:(`Peer br.br_src) (Wire.Error { tid = br.br_tid; code = Wire.Err_unadvertised }))

let handle_accept_body t conn src (a : Wire.body) =
  match a with
  | Wire.Accept { tid; arg; put_transferred; need_put_data; data } ->
    (match Hashtbl.find_opt t.out_reqs tid with
     | Some req when req.or_state <> Rq_done ->
       if src <> req.or_dst then
         (* Rule 6 of §3.3.2: only the addressed server may accept. *)
         respond_consumed t conn (Wire.Error { tid; code = Wire.Err_cancelled })
       else begin
         let get_data = truncate_bytes data req.or_get_size in
         let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length get_data) in
         Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
         if need_put_data then begin
           (* The put data was wasted on a busy transmission and must be
              re-sent; the data exchange -- and hence the requester's
              completion -- is only over once the server acknowledges it. *)
           let payload = truncate_bytes req.or_put put_transferred in
           Stats.incr t.stats "req.data_resend";
           send_reliable t ~peer:src ~kind:K_put_data ~tid
             (Wire.Put_data { tid; data = payload })
             ~on_done:(fun outcome ->
               match outcome with
               | Out_acked ->
                 complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })
               | Out_error _ | Out_timeout -> complete_out_req t req Comp_crashed
               | Out_cancel_reply _ -> ())
         end
         else if copy_us = 0 then
           complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })
         else
           ignore
             (defer t ~delay:copy_us (fun () ->
                  complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })))
       end
     | Some _ | None ->
       (match (callbacks t).classify_unknown_tid tid with
        | `Completed -> respond_consumed t conn (Wire.Error { tid; code = Wire.Err_cancelled })
        | `Stale -> respond_consumed t conn (Wire.Error { tid; code = Wire.Err_crashed })))
  | _ -> assert false

let handle_put_data t conn (d : Wire.body) =
  match d with
  | Wire.Put_data { tid; data } ->
    (match Hashtbl.find_opt t.srv_txns (conn.peer, tid) with
     | Some ({ st_state = Srv_accepting ctx; _ } as txn) when ctx.ac_need_data ->
       (match ctx.ac_data_timer with
        | Some id ->
          Engine.cancel t.engine id;
          ctx.ac_data_timer <- None
        | None -> ());
       ctx.ac_received <- truncate_bytes data ctx.ac_put_transferred;
       ctx.ac_need_data <- false;
       let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length ctx.ac_received) in
       Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
       ignore (defer t ~delay:copy_us (fun () -> accept_check_done t txn ctx))
     | Some _ | None -> ())
  | _ -> assert false

let handle_cancel_request t conn (c : Wire.body) =
  match c with
  | Wire.Cancel_request { tid } ->
    let key = (conn.peer, tid) in
    let ok =
      match Hashtbl.find_opt t.srv_txns key with
      | Some ({ st_state = Srv_delivered; _ } as txn) ->
        txn.st_state <- Srv_cancelled;
        srv_gc t txn;
        true
      | Some ({ st_state = Srv_buffered; _ } as txn) ->
        txn.st_state <- Srv_cancelled;
        srv_gc t txn;
        (match t.buffered with
         | Some br when br.br_src = conn.peer && br.br_tid = tid -> t.buffered <- None
         | Some _ | None -> ());
        true
      | Some { st_state = Srv_cancelled; _ } -> true
      | Some { st_state = Srv_accepting _ | Srv_completed; _ } -> false
      | None -> true
    in
    if ok then Stats.incr t.stats "cancel.granted" else Stats.incr t.stats "cancel.refused";
    respond_consumed t conn (Wire.Cancel_reply { tid; ok })
  | _ -> assert false

let handle_busy t conn tid =
  match conn.inflight with
  | Some inflight
    when inflight.if_tid = tid && inflight.if_kind = K_request
         && not inflight.if_finished ->
    (match inflight.if_timer with
     | Some id ->
       Engine.cancel t.engine id;
       inflight.if_timer <- None
     | None -> ());
    inflight.if_busy_attempts <- inflight.if_busy_attempts + 1;
    inflight.if_waiting_busy <- true;
    Stats.incr t.stats "req.busy_received";
    let queued_put_data =
      Queue.fold (fun found p -> found || p.ps_kind = K_put_data) false conn.sendq
    in
    if queued_put_data then begin
      (* A pending DATA transfer is what will free the busy handler; let it
         overtake the parked request. *)
      park_busy_inflight t conn inflight;
      start_next t conn
    end
    else begin
      let delay = busy_delay t inflight in
      inflight.if_timer <-
        Some
          (defer t ~delay (fun () ->
               inflight.if_timer <- None;
               if not inflight.if_finished then begin
                 inflight.if_waiting_busy <- false;
                 transmit_inflight t conn inflight
               end))
    end
  | _ -> ()

let handle_error t conn tid code =
  match conn.inflight with
  | Some inflight when inflight.if_tid = tid && not inflight.if_finished ->
    finish_inflight t conn inflight (Out_error code)
  | _ -> ()

let handle_cancel_reply t conn tid ok =
  match conn.inflight with
  | Some inflight
    when inflight.if_tid = tid && inflight.if_kind = K_cancel && not inflight.if_finished ->
    finish_inflight t conn inflight (Out_cancel_reply ok)
  | _ -> ignore t

let handle_probe t conn tid =
  let alive =
    match Hashtbl.find_opt t.srv_txns (conn.peer, tid) with
    | Some { st_state = Srv_cancelled; _ } -> false
    | Some _ -> true
    | None -> false
  in
  Stats.incr t.stats "probe.answered";
  emit t ~dst:(`Peer conn.peer) (Wire.Probe_reply { tid; alive })

let handle_probe_reply t tid alive =
  match Hashtbl.find_opt t.out_reqs tid with
  | Some req when req.or_state = Rq_delivered ->
    req.or_probe_outstanding <- false;
    req.or_probe_misses <- 0;
    if not alive then begin
      Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
        "probe reply: server lost request #%d (crash+reboot); CRASHED" tid;
      complete_out_req t req Comp_crashed
    end
  | Some _ | None -> ()

let handle_discover t src tid pattern =
  if (callbacks t).advertised pattern then begin
    let delay = t.cost.Cost.discover_stagger_us * (t.mid + 1) in
    Stats.incr t.stats "discover.matched";
    ignore
      (defer t ~delay (fun () -> emit t ~dst:(`Peer src) (Wire.Discover_reply { tid })))
  end

let handle_discover_reply t src tid =
  match Hashtbl.find_opt t.discovers tid with
  | Some dr ->
    if (not (List.mem src dr.dr_mids)) && List.length dr.dr_mids < dr.dr_max then
      dr.dr_mids <- src :: dr.dr_mids
  | None -> ()

let process_packet t ~bytes pkt =
  let src = pkt.Wire.src in
  Stats.incr t.stats "pkt.recv.total";
  Stats.incr t.stats (Printf.sprintf "pkt.recv.%s" (kind_name pkt.Wire.body));
  if tracing t then
    event t
      (Event.Rx
         { tid = tid_of_body pkt.Wire.body; peer = src; pkt = pkt_of_body pkt.Wire.body;
           bytes; seq = pkt.Wire.seq });
  let conn = conn_for t src in
  touch t conn;
  (* For reliable bodies, consume the sequence bit and register the owed
     acknowledgement BEFORE processing the piggybacked ack: acking our
     in-flight message may immediately transmit the next queued one, which
     should carry the ack we now owe (§5.2.3 piggybacking). *)
  let freshness =
    match pkt.Wire.body with
    | Wire.Accept { data; _ } ->
      (match consume_bit t conn ~key:(message_key pkt.Wire.body) pkt.Wire.seq with
       | `Dup -> `Dup
       | `Fresh ->
         (* Hold the ack long enough for the kernel->client copy and the
            client's next request to piggyback it. *)
         let extra_grace =
           Cost.data_copy_us t.cost ~bytes:(Bytes.length data)
           + t.cost.Cost.request_trap_us + t.cost.Cost.context_switch_us
         in
         owe_ack ~extra_grace t conn pkt.Wire.seq;
         `Fresh)
    | Wire.Put_data _ | Wire.Cancel_request _ ->
      (match consume_bit t conn ~key:(message_key pkt.Wire.body) pkt.Wire.seq with
       | `Dup -> `Dup
       | `Fresh ->
         owe_ack t conn pkt.Wire.seq;
         `Fresh)
    | _ -> `Fresh
  in
  (* An Error response both acknowledges (transport level) and rejects
     (semantic level) the in-flight message; its body must win, so the
     piggybacked ack is suppressed and handle_error flips the bit. *)
  (match pkt.Wire.ack, pkt.Wire.body with
   | Some _, Wire.Error _ -> ()
   | Some bit, _ -> handle_ack t conn bit
   | None, _ -> ());
  match pkt.Wire.body, freshness with
  | _, `Dup -> replay_response t conn
  | Wire.Request _, _ -> handle_request t conn src pkt.Wire.body pkt.Wire.seq
  | Wire.Accept _, _ -> handle_accept_body t conn src pkt.Wire.body
  | Wire.Put_data _, _ -> handle_put_data t conn pkt.Wire.body
  | Wire.Cancel_request _, _ -> handle_cancel_request t conn pkt.Wire.body
  | Wire.Ack, _ -> ()
  | Wire.Busy { tid }, _ -> handle_busy t conn tid
  | Wire.Error { tid; code }, _ -> handle_error t conn tid code
  | Wire.Cancel_reply { tid; ok }, _ -> handle_cancel_reply t conn tid ok
  | Wire.Probe { tid }, _ -> handle_probe t conn tid
  | Wire.Probe_reply { tid; alive }, _ -> handle_probe_reply t tid alive
  | Wire.Discover { tid; pattern }, _ -> handle_discover t src tid pattern
  | Wire.Discover_reply { tid }, _ -> handle_discover_reply t src tid

let attach_nic t =
  let nic =
    Nic.attach ~stats:t.stats t.bus ~mid:t.mid ~rx:(fun ~src:_ ~broadcast:_ payload ->
        match Wire.decode payload with
        | Error _ -> Stats.incr t.stats "pkt.decode_errors"
        | Ok pkt ->
          let cpu = packet_cpu_us t in
          let bytes = Bytes.length payload in
          ignore (defer t ~delay:cpu (fun () -> process_packet t ~bytes pkt)))
  in
  t.nic <- Some nic;
  nic

(* ---- reset ---------------------------------------------------------------- *)

let reset t =
  t.epoch <- t.epoch + 1;
  Hashtbl.iter
    (fun _ conn ->
      (match conn.inflight with
       | Some inflight ->
         (match inflight.if_timer with Some id -> Engine.cancel t.engine id | None -> ())
       | None -> ());
      (match conn.ack_timer with Some id -> Engine.cancel t.engine id | None -> ());
      (match conn.expiry_timer with Some id -> Engine.cancel t.engine id | None -> ()))
    t.conns;
  Hashtbl.iter
    (fun _ req ->
      match req.or_probe_timer with Some id -> Engine.cancel t.engine id | None -> ())
    t.out_reqs;
  Hashtbl.iter
    (fun _ dr -> match dr.dr_timer with Some id -> Engine.cancel t.engine id | None -> ())
    t.discovers;
  Hashtbl.iter
    (fun _ txn -> match txn.st_gc with Some id -> Engine.cancel t.engine id | None -> ())
    t.srv_txns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.out_reqs;
  Hashtbl.reset t.discovers;
  Hashtbl.reset t.srv_txns;
  t.buffered <- None;
  Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t) "kernel state reset"

let shutdown t =
  reset t;
  Bus.detach t.bus ~mid:t.mid;
  t.nic <- None

let outstanding_requests t = Hashtbl.length t.out_reqs + Hashtbl.length t.discovers
